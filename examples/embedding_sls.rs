//! Embedding sparse-length-sum on PIM — the recommendation-model kernel
//! the paper's introduction motivates (Section II-A) and excludes from the
//! evaluation only for capacity reasons (Section VII-A).
//!
//! Demonstrates (1) the capacity check that rules real RM tables out, and
//! (2) the SLS kernel itself on a table that does fit, with the row-
//! conflict-bound timing random gathers really have.
//!
//! Run with: `cargo run -p pim-bench --example embedding_sls --release`

use pim_models::capacity::{embedding_fits, MemoryCapacity};
use pim_runtime::{PimBlas, PimContext};

fn main() {
    // 1. The paper's capacity argument, executable.
    let cap = MemoryCapacity::paper_pim_system();
    println!(
        "system capacity: {} GB; production RM embeddings (256 GB) fit: {}",
        cap.total_bytes() >> 30,
        embedding_fits(&cap, 256 << 30)
    );
    assert!(!embedding_fits(&cap, 256 << 30));

    // 2. A table that does fit: 4096 rows × 64 dims.
    let rows = 4096;
    let dim = 64;
    let table: Vec<f32> = (0..rows * dim).map(|i| ((i % 17) as f32 - 8.0) * 0.125).collect();
    // A "user history" of 40 pseudo-random lookups.
    let mut state = 0xC0FFEEu64;
    let indices: Vec<u32> = (0..40)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % rows as u64) as u32
        })
        .collect();

    let mut ctx = PimContext::paper_system();
    let (sum, report) = PimBlas::sls(&mut ctx, &table, rows, dim, &indices).expect("sls");

    // Verify against the FP16 sequential reference.
    let mut reference = vec![0.0f32; dim];
    for d in 0..dim {
        let mut acc = pim_fp16::F16::from_f32(table[indices[0] as usize * dim + d]);
        for &i in &indices[1..] {
            acc = acc + pim_fp16::F16::from_f32(table[i as usize * dim + d]);
        }
        reference[d] = acc.to_f32();
    }
    assert_eq!(sum, reference);
    println!("SLS over {} lookups of {dim}-dim embeddings: verified", indices.len());
    println!(
        "kernel: {} cycles = {:.2} us, {} commands ({} per lookup: random rows pay ACT/PRE)",
        report.cycles,
        report.seconds * 1e6,
        report.commands,
        report.commands / indices.len() as u64 / ctx.sys.channel_count() as u64,
    );
}
