//! Quickstart: add two vectors on the PIM execution units.
//!
//! This is the smallest end-to-end trip through the stack: allocate PIM
//! memory, lay the operands out bank-interleaved, program the microkernel
//! into every CRF with memory-mapped writes, drive it with standard DRAM
//! commands, and read the result back — exactly the path a TensorFlow
//! custom op takes in the paper's Fig. 7.
//!
//! Run with: `cargo run -p pim-bench --example quickstart --release`

use pim_runtime::{PimBlas, PimContext};

fn main() {
    // The paper's evaluation platform: an unmodified host with 4 PIM-HBM
    // stacks (64 pseudo channels, 512 PIM units, 8192 FP16 lanes).
    let mut ctx = PimContext::paper_system();

    let n = 1 << 20; // one million elements
    let x: Vec<f32> = (0..n).map(|i| (i % 100) as f32 * 0.25).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 50) as f32 * 0.5).collect();

    println!("PIM ADD over {n} elements on {} channels...", ctx.sys.channel_count());
    let (z, report) = PimBlas::add(&mut ctx, &x, &y).expect("pim add");

    // The device computed in FP16; these inputs are exactly representable,
    // so the results are exact.
    let mut errors = 0;
    for i in 0..n {
        if z[i] != x[i] + y[i] {
            errors += 1;
        }
    }
    println!("verified: {} mismatches out of {n}", errors);
    assert_eq!(errors, 0);

    println!(
        "kernel: {} cycles = {:.1} us | {} DRAM commands | {} fences | {} PIM triggers",
        report.cycles,
        report.seconds * 1e6,
        report.commands,
        report.fences,
        report.pim_triggers,
    );
    println!(
        "throughput: {:.1} G elements/s ({:.1} GB/s of operand traffic)",
        report.elements_per_second() / 1e9,
        report.elements_per_second() * 6.0 / 1e9,
    );
}
