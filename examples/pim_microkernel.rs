//! Bare-metal PIM programming: hand-assemble a microkernel and drive it
//! with raw, standard DRAM commands — no BLAS, no runtime.
//!
//! This is what the paper means by "the host processor can control
//! execution of every PIM instruction one by one with its load and store
//! instructions which are translated into standard DRAM commands": the
//! entire choreography below is ACT / WR / RD / PRE, and an unmodified
//! JEDEC controller checks every timing constraint.
//!
//! The kernel computes `relu(a * s)` for a 16-lane vector per unit, with
//! `s` a scalar from SRF_M — a miniature activation layer.
//!
//! Run with: `cargo run -p pim-bench --example pim_microkernel --release`

use pim_core::isa::{Instruction, Operand};
use pim_core::{conf, LaneVec, PimChannel, PimConfig, PimMode};
use pim_dram::{BankAddr, Command, CommandSink, TimingParams};
use pim_fp16::F16;

/// Issues each command at its earliest legal cycle; returns the clock.
fn run(ch: &mut PimChannel, cmds: &[Command], mut now: u64) -> u64 {
    for c in cmds {
        let at = ch.earliest_issue(c, now);
        ch.issue(c, at).unwrap_or_else(|e| panic!("{c}: {e}"));
        now = at;
    }
    now
}

fn main() {
    let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
    let bank0 = BankAddr::new(0, 0);

    // 1. Seed input data: each unit's even bank gets its own vector at
    //    row 0, column 0 (normal host writes / DMA before the kernel).
    for u in 0..8 {
        let vals: [f32; 16] = std::array::from_fn(|l| (u as f32 + 1.0) * (l as f32 - 8.0));
        ch.dram_mut().bank_mut(BankAddr::from_flat_index(2 * u)).poke_block(
            0,
            0,
            &LaneVec::from_f32(vals).to_block(),
        );
    }

    // 2. Enter all-bank mode: ACT + PRE on the ABMR row. Standard commands.
    let mut now = run(&mut ch, &conf::enter_ab_sequence(), 0);
    assert_eq!(ch.mode(), PimMode::AllBank);

    // 3. Hand-assemble the microkernel and write it into every CRF through
    //    the memory-mapped CRF row (one 32-byte WR = 8 instructions).
    let program = [
        // MUL GRF_A[0] = EVEN_BANK * SRF_M[0]
        Instruction::Mul {
            dst: Operand::grf_a(0),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(0),
            aam: false,
        },
        // MOV(ReLU) writes the clamped product back to the bank at the
        // triggering column.
        Instruction::Mov {
            dst: Operand::even_bank(),
            src: Operand::grf_a(0),
            relu: true,
            aam: false,
        },
        Instruction::Exit,
    ];
    let mut crf_block = [0u8; 32];
    for (i, ins) in program.iter().enumerate() {
        crf_block[i * 4..i * 4 + 4].copy_from_slice(&ins.encode().to_le_bytes());
    }
    for (i, b) in crf_block.iter_mut().enumerate().skip(program.len() * 4) {
        if i % 4 == 3 {
            *b = 0x20; // pad with EXIT opcodes
        }
    }
    now = run(
        &mut ch,
        &[
            Command::Act { bank: bank0, row: conf::CRF_ROW },
            Command::Wr { bank: bank0, col: 0, data: crf_block },
            Command::Pre { bank: bank0 },
        ],
        now,
    );

    // 4. Load the scalar s = 0.5 into SRF_M[0] of every unit.
    let mut srf = [F16::ZERO; 16];
    srf[0] = F16::from_f32(0.5);
    now = run(
        &mut ch,
        &[
            Command::Act { bank: bank0, row: conf::SRF_ROW },
            Command::Wr { bank: bank0, col: 0, data: LaneVec::from_lanes(srf).to_block() },
            Command::Pre { bank: bank0 },
        ],
        now,
    );

    // 5. PIM_OP_MODE = 1, open the data row, fire two RD triggers (one per
    //    instruction), close, PIM_OP_MODE = 0, exit to single-bank mode.
    now = run(&mut ch, &conf::set_pim_op_mode_sequence(true), now);
    now = run(
        &mut ch,
        &[
            Command::Act { bank: bank0, row: 0 },
            Command::Rd { bank: bank0, col: 0 }, // trigger: MUL
            Command::Rd { bank: bank0, col: 0 }, // trigger: MOV(ReLU) store
            Command::Pre { bank: bank0 },
        ],
        now,
    );
    now = run(&mut ch, &conf::set_pim_op_mode_sequence(false), now);
    let end = run(&mut ch, &conf::exit_ab_sequence(), now);
    assert_eq!(ch.mode(), PimMode::SingleBank);

    // 6. Verify: every even bank now holds relu(a * 0.5).
    println!("hand-assembled kernel ran in {end} bus cycles; results:");
    for u in 0..8 {
        let bank = BankAddr::from_flat_index(2 * u);
        let got = LaneVec::from_block(&ch.dram().bank(bank).peek_block(0, 0));
        let want: [f32; 16] =
            std::array::from_fn(|l| (((u as f32 + 1.0) * (l as f32 - 8.0)) * 0.5).max(0.0));
        assert_eq!(got.to_f32(), want, "unit {u}");
        println!("  unit {u}: lane 15 = {} (= relu({} * 0.5))", got[15], (u + 1) as f32 * 7.0);
    }
    println!("all 8 units verified: standard DRAM commands are the whole interface.");
    println!("PIM triggers delivered: {}", ch.stats().pim_triggers);
}
