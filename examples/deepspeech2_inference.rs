//! End-to-end DeepSpeech2 inference: the paper's flagship application.
//!
//! Executes the DS2 layer graph (2 convs + 6 bidirectional LSTM layers +
//! FC) on the HBM baseline and on PIM-HBM at batch 1, printing per-layer
//! times, the end-to-end speedup (paper: 3.5×), and the energy comparison
//! (paper: 3.2× better efficiency).
//!
//! Run with: `cargo run -p pim-bench --example deepspeech2_inference --release`

use pim_bench::report::{format_table, time};
use pim_energy::SystemPowerModel;
use pim_models::{models, CostModel, ModelRunner, SystemKind};

fn main() {
    let mut cost = CostModel::paper();
    let power = SystemPowerModel::paper();
    let model = models::deepspeech2();

    let hbm = ModelRunner::run(&mut cost, &power, &model, SystemKind::ProcHbm, 1);
    let pim = ModelRunner::run(&mut cost, &power, &model, SystemKind::PimHbm, 1);

    println!("DeepSpeech2 inference, batch 1 (2-second utterance)\n");
    let rows: Vec<Vec<String>> = hbm
        .layers
        .iter()
        .zip(pim.layers.iter())
        .map(|(h, p)| {
            vec![
                h.name.to_string(),
                time(h.seconds),
                time(p.seconds),
                if p.on_pim { "PIM".into() } else { "host".into() },
            ]
        })
        .collect();
    println!("{}", format_table(&["Layer", "PROC-HBM", "PIM-HBM", "runs on"], &rows));

    println!(
        "end-to-end: {} -> {}  = {:.2}x speedup (paper: 3.5x)",
        time(hbm.total_seconds),
        time(pim.total_seconds),
        pim.speedup_over(&hbm)
    );
    let e_hbm = hbm.energy_j(&power);
    let e_pim = pim.energy_j(&power);
    println!(
        "energy: {:.2} J -> {:.2} J = {:.2}x better efficiency (paper: 3.2x)",
        e_hbm,
        e_pim,
        e_hbm / e_pim
    );
    println!(
        "average power: {:.0} W -> {:.0} W (Fig. 13: faster AND lower power)",
        hbm.trace.average_power_w(&power),
        pim.trace.average_power_w(&power)
    );
}
