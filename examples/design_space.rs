//! Design-space exploration as a downstream user would do it: define a
//! custom PIM configuration, run the microbenchmark suite against it, and
//! compare with the shipped chip — the Fig. 14 workflow opened up.
//!
//! The custom point here: a hypothetical "PIM-HBM-lite" with 4 execution
//! units per pseudo channel (half the silicon, per the Section III-A
//! cost/bandwidth trade-off) combined with the 2× fence window.
//!
//! Run with: `cargo run -p pim-bench --example design_space --release`

use pim_bench::micro::{add_micro, gemv_micro, geo_mean};
use pim_bench::report::{format_table, ratio};
use pim_bench::workloads;
use pim_core::{PimConfig, PimVariant};
use pim_dram::TimingParams;
use pim_host::HostConfig;
use pim_models::CostModel;

fn evaluate(label: &str, pim: PimConfig, rows: &mut Vec<Vec<String>>) -> f64 {
    pim.validate().expect("custom configuration must be self-consistent");
    let mut cost = CostModel::new(HostConfig::paper(), pim, TimingParams::hbm2());
    let mut speedups = Vec::new();
    for w in workloads::gemv_workloads() {
        speedups.push(gemv_micro(&mut cost, &w, 1).speedup());
    }
    for w in workloads::add_workloads() {
        speedups.push(add_micro(&mut cost, &w, 1).speedup());
    }
    let geo = geo_mean(&speedups);
    rows.push(vec![
        label.to_string(),
        ratio(speedups[3]), // GEMV4
        ratio(speedups[4]), // ADD1
        ratio(geo),
    ]);
    geo
}

fn main() {
    println!("Custom design points over the Table VI suite (batch 1)\n");
    let mut rows = Vec::new();

    let base = evaluate("PIM-HBM (shipped)", PimConfig::paper(), &mut rows);

    // Half the execution units: half the silicon, half the operand banks.
    let mut lite = PimConfig::paper();
    lite.units_per_pch = 4;
    let lite_geo = evaluate("PIM-HBM-lite (4 units/pCH)", lite, &mut rows);

    // The paper's 2x variant for reference.
    evaluate("PIM-HBM-2x", PimConfig::with_variant(PimVariant::DoubleResources), &mut rows);

    // Lite + double GRF: spend the saved FPU area on registers instead.
    let mut lite2x = PimConfig::with_variant(PimVariant::DoubleResources);
    lite2x.units_per_pch = 4;
    let lite2x_geo = evaluate("lite + 2x GRF", lite2x, &mut rows);

    println!("{}", format_table(&["Configuration", "GEMV4", "ADD1", "geo-mean"], &rows));
    println!(
        "Halving the units costs {:.0}% of the geo-mean; spending the area on\n\
         GRF depth instead buys back {:.0}% — the quantified version of the\n\
         paper's 'trade-off between the cost and the on-chip compute bandwidth'.",
        (1.0 - lite_geo / base) * 100.0,
        (lite2x_geo / lite_geo - 1.0) * 100.0,
    );
}
