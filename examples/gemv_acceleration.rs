//! GEMV acceleration sweep: the paper's headline experiment.
//!
//! Runs the Table VI GEMV sizes at batch 1, 2 and 4 on the HBM baseline
//! and on PIM-HBM, printing the relative-performance curve of Fig. 10 —
//! including the batch-4 crossover where the host's batched GEMM takes
//! the lead and the runtime keeps the kernel on the host.
//!
//! Run with: `cargo run -p pim-bench --example gemv_acceleration --release`

use pim_bench::micro::gemv_micro;
use pim_bench::report::{format_table, ratio, time};
use pim_bench::workloads::gemv_workloads;
use pim_models::CostModel;

fn main() {
    let mut cost = CostModel::paper();
    println!("GEMV on PIM-HBM vs HBM (the paper's 1.4x .. 11.2x headline)\n");
    let mut rows = Vec::new();
    for batch in [1usize, 2, 4] {
        for w in gemv_workloads() {
            let r = gemv_micro(&mut cost, &w, batch);
            rows.push(vec![
                w.name.to_string(),
                format!("{}x{}", w.n, w.k),
                format!("B{batch}"),
                time(r.hbm_s),
                time(r.pim_s),
                ratio(r.speedup()),
            ]);
        }
    }
    println!(
        "{}",
        format_table(&["Workload", "Shape", "Batch", "HBM", "PIM-HBM", "PIM speedup"], &rows)
    );
    println!("Note the shape: at batch 1 the speedup grows with N (PIM computes all");
    println!("outputs in one lock-step pass); by batch 4 the host's batched GEMM has");
    println!("enough LLC reuse to win — \"the processor with HBM begins to outperform\".");
}
