//! The layer vocabulary of the evaluated applications.

use pim_runtime::StreamOp;

/// How the host launches the kernels of a layer — the mechanism behind the
/// paper's GNMT observation: "the LSTM decoder is required to invoke the
/// PIM kernel at every step and every layer [...] the overhead caused by
/// many kernel calls limits the performance improvement" while the encoder,
/// whose inputs are all available up front, "can reduce the number of
/// kernel calls".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchPattern {
    /// One launch for the whole layer.
    Single,
    /// One launch per recurrence step (decoder-style data dependence).
    PerStep,
}

/// A layer of one of the evaluated applications.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// A 2-D convolution: compute-bound, host-only (Section VII-A: "most
    /// layers of both AlexNet and ResNet are compute-bound, which are not
    /// a target for PIM").
    Conv2d {
        /// Layer name.
        name: &'static str,
        /// FLOPs per input sample.
        gflops: f64,
    },
    /// A fully connected layer: GEMV at batch 1 — PIM-eligible when marked.
    FullyConnected {
        /// Layer name.
        name: &'static str,
        /// Output dimension.
        n: usize,
        /// Input dimension.
        k: usize,
        /// Whether the stack offloads this layer (the paper accelerates
        /// AlexNet's FC layers but not GNMT's vocabulary projection).
        pim_eligible: bool,
    },
    /// An LSTM layer over a sequence.
    Lstm {
        /// Layer name.
        name: &'static str,
        /// Hidden state size.
        hidden: usize,
        /// Input size per step.
        input: usize,
        /// Sequence length.
        steps: usize,
        /// Bidirectional (two independent directions).
        bidirectional: bool,
        /// Launch structure (encoder vs decoder).
        launches: LaunchPattern,
    },
    /// Batch normalization over `elements` activations.
    BatchNorm {
        /// Layer name.
        name: &'static str,
        /// Activation elements.
        elements: usize,
    },
    /// ReLU over `elements` activations.
    Relu {
        /// Layer name.
        name: &'static str,
        /// Activation elements.
        elements: usize,
    },
    /// A residual (skip-connection) addition.
    ResidualAdd {
        /// Layer name.
        name: &'static str,
        /// Activation elements.
        elements: usize,
    },
    /// Attention / softmax block — host-only in this PIM generation.
    Attention {
        /// Layer name.
        name: &'static str,
        /// FLOPs per sample.
        gflops: f64,
    },
}

impl Layer {
    /// The layer's name.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Conv2d { name, .. }
            | Layer::FullyConnected { name, .. }
            | Layer::Lstm { name, .. }
            | Layer::BatchNorm { name, .. }
            | Layer::Relu { name, .. }
            | Layer::ResidualAdd { name, .. }
            | Layer::Attention { name, .. } => name,
        }
    }

    /// Weight bytes (FP16) the layer must *stream from DRAM* per use:
    /// the memory-bound layers' parameters. Convolution weights are not
    /// tracked — they are small relative to their compute and the conv
    /// path never streams through PIM.
    pub fn weight_bytes(&self) -> u64 {
        match self {
            Layer::FullyConnected { n, k, .. } => (n * k * 2) as u64,
            Layer::Lstm { hidden, input, .. } => (4 * hidden * (input + hidden) * 2) as u64,
            _ => 0,
        }
    }

    /// The stream op a memory-bound activation layer maps to.
    pub fn stream_op(&self) -> Option<(StreamOp, usize)> {
        match self {
            Layer::BatchNorm { elements, .. } => Some((StreamOp::Bn, *elements)),
            Layer::Relu { elements, .. } => Some((StreamOp::Relu, *elements)),
            Layer::ResidualAdd { elements, .. } => Some((StreamOp::Add, *elements)),
            _ => None,
        }
    }

    /// Directions of an LSTM layer (2 if bidirectional).
    pub fn lstm_directions(&self) -> usize {
        match self {
            Layer::Lstm { bidirectional, .. } => {
                if *bidirectional {
                    2
                } else {
                    1
                }
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_accounting() {
        let fc = Layer::FullyConnected { name: "fc", n: 100, k: 50, pim_eligible: true };
        assert_eq!(fc.weight_bytes(), 100 * 50 * 2);
        let lstm = Layer::Lstm {
            name: "l",
            hidden: 8,
            input: 4,
            steps: 10,
            bidirectional: true,
            launches: LaunchPattern::Single,
        };
        assert_eq!(lstm.weight_bytes(), (4 * 8 * 12 * 2) as u64);
        assert_eq!(lstm.lstm_directions(), 2);
    }

    #[test]
    fn stream_op_mapping() {
        let bn = Layer::BatchNorm { name: "bn", elements: 10 };
        assert_eq!(bn.stream_op(), Some((StreamOp::Bn, 10)));
        let conv = Layer::Conv2d { name: "c", gflops: 1.0 };
        assert_eq!(conv.stream_op(), None);
        assert_eq!(conv.name(), "c");
    }
}
