//! Kernel cost models for the application runner.
//!
//! **PIM costs are measured, not modelled**: for each distinct kernel shape
//! the cost model generates the actual command choreography with
//! `pim-runtime`'s builders and issues it against a real simulated
//! [`pim_core::PimChannel`]. Lock-step execution means one channel's cycle
//! count *is* the system wall time, so a single-channel run per shape is
//! exact and cheap; results are memoized per shape.
//!
//! **Host (HBM-baseline) costs** use the documented streaming-efficiency /
//! LLC / compute models of [`pim_host`] — the substitution for the paper's
//! real GPU libraries (see DESIGN.md).

use pim_core::{PimChannel, PimConfig};
use pim_dram::{
    AddressMapping, BankAddr, Command, ControllerConfig, Cycle, MemoryController, SchedulingPolicy,
    TimingParams,
};
use pim_host::{llc, ExecutionMode, HostConfig, KernelEngine};
use pim_runtime::{gemv_microkernel, stream_microkernel, Executor, StreamOp};
use std::collections::HashMap;

/// The measured / modelled cost of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Bus cycles (PIM kernels only; 0 for analytic host costs).
    pub cycles: Cycle,
    /// DRAM commands issued per channel (PIM kernels only).
    pub commands: u64,
    /// Fences per channel (PIM kernels only).
    pub fences: u64,
}

impl KernelCost {
    fn analytic(seconds: f64) -> KernelCost {
        KernelCost { seconds, cycles: 0, commands: 0, fences: 0 }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ShapeKey {
    Gemv { n: usize, k: usize },
    Stream { op: u8, elements: usize },
}

/// Memoizing cost model bound to one system configuration.
#[derive(Debug)]
pub struct CostModel {
    /// Host configuration (baseline efficiencies, launch overhead).
    pub host: HostConfig,
    /// PIM device configuration (variant, fence window).
    pub pim: PimConfig,
    /// DRAM timing.
    pub timing: TimingParams,
    /// Ordering regime for PIM kernels.
    pub mode: ExecutionMode,
    cache: HashMap<ShapeKey, KernelCost>,
}

impl CostModel {
    /// The paper system's cost model.
    pub fn paper() -> CostModel {
        CostModel::new(HostConfig::paper(), PimConfig::paper(), TimingParams::hbm2())
    }

    /// A cost model over explicit configurations.
    pub fn new(host: HostConfig, pim: PimConfig, timing: TimingParams) -> CostModel {
        CostModel {
            host,
            pim,
            timing,
            mode: ExecutionMode::Fenced { reorder_seed: None },
            cache: HashMap::new(),
        }
    }

    /// Total pseudo channels in the system.
    pub fn channels(&self) -> usize {
        self.host.stacks * 16
    }

    /// Output lanes one lock-step pass covers.
    pub fn lanes_per_pass(&self) -> usize {
        self.channels() * self.pim.units_per_pch * 16
    }

    fn fresh_channel(&self) -> MemoryController<PimChannel> {
        let cfg = ControllerConfig {
            timing: self.timing.clone(),
            mapping: AddressMapping::new(16),
            pch_id: 0,
            policy: SchedulingPolicy::FrFcfs,
            page_policy: pim_dram::PagePolicy::Open,
            refresh_enabled: false,
        };
        MemoryController::with_sink(cfg, PimChannel::new(self.timing.clone(), self.pim.clone()))
    }

    /// Measures the PIM GEMV time for an `n × k` matrix (batch 1) by
    /// issuing the real command choreography on one channel.
    pub fn pim_gemv(&mut self, n: usize, k: usize) -> KernelCost {
        let key = ShapeKey::Gemv { n, k };
        if let Some(c) = self.cache.get(&key) {
            return *c;
        }
        let passes = n.div_ceil(self.lanes_per_pass());
        let kpad = k.div_ceil(8) * 8;
        let groups = (kpad / 8) as u32;
        let program = gemv_microkernel(groups, &self.pim);
        let x = vec![0.0f32; 0]; // operand values are irrelevant to timing
        let data = pim_runtime::kernels::gemv_batches(kpad, 0, &x, &self.pim);
        let batches = Executor::full_kernel(&program, None, true, &data);

        let mut ctrl = self.fresh_channel();
        let mut end = 0;
        let mut commands = 0;
        let mut fences = 0;
        for _ in 0..passes {
            let r = KernelEngine::run_on_channel(&self.host, &mut ctrl, &batches, self.mode);
            commands += r.commands;
            fences += r.fences;
            // Partial-sum readback: per channel, 8 units × (ACT + 8 RD +
            // PRE) on the memory-mapped GRF row, in single-bank mode.
            end = self.issue_readback(&mut ctrl);
            debug_assert!(end >= r.end_cycle);
        }
        let cost = KernelCost {
            seconds: self.timing.cycles_to_seconds(end),
            cycles: end,
            commands,
            fences,
        };
        self.cache.insert(key, cost);
        cost
    }

    fn issue_readback(&self, ctrl: &mut MemoryController<PimChannel>) -> Cycle {
        let mut cmds = Vec::new();
        for u in 0..self.pim.units_per_pch {
            let bank = BankAddr::from_flat_index(2 * u);
            cmds.push(Command::Act { bank, row: pim_core::conf::GRF_ROW });
            for c in 8..16 {
                cmds.push(Command::Rd { bank, col: c });
            }
            cmds.push(Command::Pre { bank });
        }
        ctrl.issue_raw(&cmds)
    }

    /// Measures the PIM time of a streaming op over `elements`.
    pub fn pim_stream(&mut self, op: StreamOp, elements: usize) -> KernelCost {
        let opk = match op {
            StreamOp::Add => 0u8,
            StreamOp::Mul => 1,
            StreamOp::Relu => 2,
            StreamOp::Bn => 3,
            StreamOp::Axpy => 4,
        };
        let key = ShapeKey::Stream { op: opk, elements };
        if let Some(c) = self.cache.get(&key) {
            return *c;
        }
        let nblocks = elements.div_ceil(16);
        let slots = nblocks.div_ceil(self.channels() * self.pim.units_per_pch).max(1);
        let rows = (slots as u32).div_ceil(8);
        let program = stream_microkernel(op, rows, &self.pim);
        let data = pim_runtime::kernels::stream_batches(op, rows, 0, &self.pim);
        let batches = Executor::full_kernel(&program, None, false, &data);
        let mut ctrl = self.fresh_channel();
        let r = KernelEngine::run_on_channel(&self.host, &mut ctrl, &batches, self.mode);
        let cost = KernelCost {
            seconds: self.timing.cycles_to_seconds(r.end_cycle),
            cycles: r.end_cycle,
            commands: r.commands,
            fences: r.fences,
        };
        self.cache.insert(key, cost);
        cost
    }

    /// One PIM LSTM step: the two gate GEMVs (`4h × x` and `4h × h`).
    pub fn pim_lstm_step(&mut self, hidden: usize, input: usize) -> KernelCost {
        let a = self.pim_gemv(4 * hidden, input);
        let b = self.pim_gemv(4 * hidden, hidden);
        KernelCost {
            seconds: a.seconds + b.seconds,
            cycles: a.cycles + b.cycles,
            commands: a.commands + b.commands,
            fences: a.fences + b.fences,
        }
    }

    /// Host GEMV at the given batch: streaming the (LLC-filtered) weight
    /// traffic at the *unoptimized-GEMV* efficiency (batch-dependent —
    /// batching dispatches progressively better GEMM kernels), floored by
    /// compute.
    pub fn host_gemv(&self, n: usize, k: usize, batch: usize, bandwidth_scale: f64) -> KernelCost {
        self.host_matrix_kernel(n, k, batch, self.host.gemv_efficiency(batch), bandwidth_scale)
    }

    /// Host LSTM-class GEMV (library quality) at the given batch.
    ///
    /// `eff_scale` captures how library efficiency grows with the layer's
    /// total weight footprint (bigger matrices amortize kernel overheads
    /// better); the runner derives it from the layer's weight bytes.
    pub fn host_lstm_gemv(
        &self,
        n: usize,
        k: usize,
        batch: usize,
        bandwidth_scale: f64,
        eff_scale: f64,
    ) -> KernelCost {
        let eff = (self.host.lstm_efficiency(batch) * eff_scale).min(1.0);
        self.host_matrix_kernel(n, k, batch, eff, bandwidth_scale)
    }

    /// Library-efficiency scale for an LSTM layer with `weight_bytes` of
    /// parameters: `(wb / 48 MB)^0.25`, clamped — large layers keep the
    /// memory pipeline busier.
    pub fn lstm_size_factor(weight_bytes: u64) -> f64 {
        ((weight_bytes as f64 / (48.0 * 1048576.0)).powf(0.25)).clamp(0.65, 1.15)
    }

    fn host_matrix_kernel(
        &self,
        n: usize,
        k: usize,
        batch: usize,
        efficiency: f64,
        bandwidth_scale: f64,
    ) -> KernelCost {
        let weight_bytes = (n * k * 2) as u64;
        let traffic = llc::batched_traffic_bytes(weight_bytes, self.host.llc_bytes, batch);
        let t_mem = self.host.stream_time_s(traffic, 19.2 * bandwidth_scale, efficiency);
        // Batched GEMM approaches the compute roofline at modest
        // utilization for skinny matrices.
        let flops = 2 * n * k * batch;
        let t_compute = self.host.compute_time_s(flops as u64, 0.35);
        KernelCost::analytic(t_mem.max(t_compute))
    }

    /// Host streaming element-wise op over `elements` (near-peak).
    pub fn host_stream(&self, op: StreamOp, elements: usize, bandwidth_scale: f64) -> KernelCost {
        let bytes = elements as u64 * op.bytes_per_element();
        KernelCost::analytic(self.host.stream_time_s(
            bytes,
            19.2 * bandwidth_scale,
            self.host.add_stream_efficiency,
        ))
    }

    /// Host compute-bound kernel (convolutions, attention, batched GEMM)
    /// at the given batch size.
    ///
    /// Batch-1 inference leaves most CUs idle (kernels too small to fill
    /// 60 CUs): utilization starts at ~2.5% and grows with batch, matching
    /// observed batch-1 latencies of AlexNet/ResNet-class models on
    /// GPU-class parts (a few ms).
    pub fn host_compute(&self, flops: u64, batch: usize) -> KernelCost {
        let util = (0.025 * batch as f64).min(0.55);
        KernelCost::analytic(self.host.compute_time_s(flops, util))
    }

    /// One kernel launch.
    pub fn launch(&self) -> KernelCost {
        KernelCost::analytic(self.host.launch_overhead_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_gemv_scales_with_k() {
        let mut m = CostModel::paper();
        let small = m.pim_gemv(1024, 1024);
        let big = m.pim_gemv(1024, 4096);
        assert!(big.seconds > 3.0 * small.seconds, "{} vs {}", big.seconds, small.seconds);
        assert!(small.cycles > 0 && small.fences > 0);
    }

    #[test]
    fn pim_gemv_passes_scale_with_n() {
        let mut m = CostModel::paper();
        let one_pass = m.pim_gemv(8192, 512);
        let two_pass = m.pim_gemv(8192 * 2, 512);
        let ratio = two_pass.seconds / one_pass.seconds;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pim_gemv_is_memoized() {
        let mut m = CostModel::paper();
        let a = m.pim_gemv(2048, 2048);
        let b = m.pim_gemv(2048, 2048);
        assert_eq!(a, b);
    }

    #[test]
    fn ordered_mode_is_faster_than_fenced() {
        let mut fenced = CostModel::paper();
        let mut ordered = CostModel::paper();
        ordered.mode = ExecutionMode::Ordered;
        let f = fenced.pim_gemv(4096, 4096);
        let o = ordered.pim_gemv(4096, 4096);
        let ratio = f.seconds / o.seconds;
        // §VII-B: removing fences buys ~2.2× on the microbenchmarks.
        assert!((1.5..3.0).contains(&ratio), "fence overhead ratio {ratio}");
    }

    #[test]
    fn pim_stream_scales_linearly() {
        let mut m = CostModel::paper();
        let a = m.pim_stream(StreamOp::Add, 1 << 21);
        let b = m.pim_stream(StreamOp::Add, 1 << 22);
        let ratio = b.seconds / a.seconds;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn host_gemv_batch_amortizes() {
        let m = CostModel::paper();
        let b1 = m.host_gemv(8192, 8192, 1, 1.0);
        let b4 = m.host_gemv(8192, 8192, 4, 1.0);
        // 4× the work in less than 4× the time (LLC reuse).
        assert!(b4.seconds < 4.0 * b1.seconds);
    }

    #[test]
    fn bandwidth_scale_speeds_host_kernels() {
        let m = CostModel::paper();
        let x1 = m.host_gemv(8192, 8192, 1, 1.0);
        let x4 = m.host_gemv(8192, 8192, 1, 4.0);
        let ratio = x1.seconds / x4.seconds;
        assert!((3.9..4.1).contains(&ratio), "PROC-HBM×4 ratio {ratio}");
    }
}
