//! The five evaluated applications (Section VII-A), expressed as layer
//! graphs with the structures the paper describes and dimensioned from the
//! cited model papers. Input sizing follows the paper: 2-second voice
//! clips for DS2/RNN-T, ~50-word sentences for GNMT, 224×224×3 images for
//! the CV models.

use crate::layer::{LaunchPattern, Layer};

/// An application: a named sequence of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Application name as used in Fig. 10.
    pub name: &'static str,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Total weight bytes across layers.
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes()).sum()
    }

    /// Approximate FLOPs per batch-1 inference (convs + attention from
    /// their declared GFLOPs; GEMV-class layers at 2 FLOPs per weight;
    /// LSTMs over their full sequence; element-wise ops at 1 FLOP/element).
    pub fn inference_flops(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l {
                crate::layer::Layer::Conv2d { gflops, .. }
                | crate::layer::Layer::Attention { gflops, .. } => (gflops * 1e9) as u64,
                crate::layer::Layer::FullyConnected { n, k, .. } => (2 * n * k) as u64,
                crate::layer::Layer::Lstm { hidden, input, steps, bidirectional, .. } => {
                    let dirs = if *bidirectional { 2 } else { 1 };
                    (2 * 4 * hidden * (input + hidden) * steps * dirs) as u64
                }
                crate::layer::Layer::BatchNorm { elements, .. } => (2 * elements) as u64,
                crate::layer::Layer::Relu { elements, .. }
                | crate::layer::Layer::ResidualAdd { elements, .. } => *elements as u64,
            })
            .sum()
    }

    /// Fraction of the model's weights living in layers the stack may
    /// offload (LSTM always; FC when marked eligible).
    pub fn pim_eligible_weight_fraction(&self) -> f64 {
        let total = self.weight_bytes();
        if total == 0 {
            return 0.0;
        }
        let eligible: u64 = self
            .layers
            .iter()
            .map(|l| match l {
                crate::layer::Layer::Lstm { .. } => l.weight_bytes(),
                crate::layer::Layer::FullyConnected { pim_eligible: true, .. } => l.weight_bytes(),
                _ => 0,
            })
            .sum();
        eligible as f64 / total as f64
    }
}

/// Baidu DeepSpeech2: "2 convolution layers, 6 bidirectional LSTM layers,
/// and a fully connected layer" (Section VII-A), hidden size 1760 per the
/// DS2 paper, ~100 post-stride time steps for a 2-second spectrogram.
pub fn deepspeech2() -> Model {
    let mut layers = vec![
        Layer::Conv2d { name: "conv1 41x11", gflops: 0.47 },
        Layer::Conv2d { name: "conv2 21x11", gflops: 1.94 },
    ];
    for i in 0..6 {
        layers.push(Layer::Lstm {
            name: match i {
                0 => "bilstm1",
                1 => "bilstm2",
                2 => "bilstm3",
                3 => "bilstm4",
                4 => "bilstm5",
                _ => "bilstm6",
            },
            hidden: 1760,
            // First layer consumes the conv features; later layers consume
            // the concatenated bidirectional outputs.
            input: if i == 0 { 1312 } else { 3520 },
            steps: 100,
            bidirectional: true,
            // Speech inputs are fully available: encoder-style batched
            // launches.
            launches: LaunchPattern::Single,
        });
    }
    layers.push(Layer::FullyConnected { name: "fc out", n: 29, k: 3520, pim_eligible: false });
    Model { name: "DS2", layers }
}

/// Google RNN-T (the MLPerf inference variant, Section VII-A): "5 LSTM
/// encoder layers with dropout, 2 LSTM prediction layers with dropout, and
/// 2 fully connected joint-network layers".
pub fn rnnt() -> Model {
    let mut layers = Vec::new();
    for i in 0..5 {
        layers.push(Layer::Lstm {
            name: match i {
                0 => "enc-lstm1",
                1 => "enc-lstm2",
                2 => "enc-lstm3",
                3 => "enc-lstm4",
                _ => "enc-lstm5",
            },
            hidden: 1024,
            input: if i == 0 { 240 } else { 1024 },
            // 2 s of audio at 10 ms frames with 2× time reduction after
            // layer 2 — keep a uniform effective 100 steps for simplicity.
            steps: 100,
            bidirectional: false,
            launches: LaunchPattern::Single,
        });
    }
    for i in 0..2 {
        layers.push(Layer::Lstm {
            name: if i == 0 { "pred-lstm1" } else { "pred-lstm2" },
            hidden: 320,
            input: 320,
            steps: 40, // emitted symbols
            bidirectional: false,
            // The prediction network is autoregressive.
            launches: LaunchPattern::PerStep,
        });
    }
    layers.push(Layer::FullyConnected { name: "joint fc1", n: 512, k: 1344, pim_eligible: true });
    layers.push(Layer::FullyConnected { name: "joint fc2", n: 29, k: 512, pim_eligible: false });
    Model { name: "RNN-T", layers }
}

/// Google NMT: "8 LSTM encoders, 8 LSTM decoders, and an attention layer"
/// (Section VII-A), hidden 1024, ~50-word sentences. The decoder "is
/// required to invoke the PIM kernel at every step and every layer".
pub fn gnmt() -> Model {
    let mut layers = Vec::new();
    for i in 0..8 {
        layers.push(Layer::Lstm {
            name: "enc-lstm",
            hidden: 1024,
            input: 1024,
            steps: 50,
            bidirectional: i == 0,
            launches: LaunchPattern::Single,
        });
    }
    layers.push(Layer::Attention { name: "attention", gflops: 0.4 });
    for _ in 0..8 {
        layers.push(Layer::Lstm {
            name: "dec-lstm",
            hidden: 1024,
            input: 1024,
            steps: 50,
            bidirectional: false,
            launches: LaunchPattern::PerStep,
        });
    }
    // Vocabulary projection: huge GEMM-style layer kept on the host (the
    // paper accelerates only the LSTM layers of GNMT).
    layers.push(Layer::FullyConnected {
        name: "vocab proj",
        n: 32_000,
        k: 1024,
        pim_eligible: false,
    });
    Model { name: "GNMT", layers }
}

/// AlexNet: "5 convolution layers and 3 fully connected layers"; the paper
/// accelerates the FC layers.
pub fn alexnet() -> Model {
    Model {
        name: "AlexNet",
        layers: vec![
            Layer::Conv2d { name: "conv1", gflops: 0.21 },
            Layer::Conv2d { name: "conv2", gflops: 0.45 },
            Layer::Conv2d { name: "conv3", gflops: 0.30 },
            Layer::Conv2d { name: "conv4", gflops: 0.22 },
            Layer::Conv2d { name: "conv5", gflops: 0.15 },
            Layer::FullyConnected { name: "fc6", n: 4096, k: 9216, pim_eligible: true },
            Layer::FullyConnected { name: "fc7", n: 4096, k: 4096, pim_eligible: true },
            Layer::FullyConnected { name: "fc8", n: 1000, k: 4096, pim_eligible: true },
        ],
    }
}

/// ResNet-50: dominated by 3×3 and 1×1 convolutions; BN/ReLU/residual adds
/// operate on feature maps small enough to live in the LLC, so nothing
/// offloads and PIM-HBM must match HBM exactly (Fig. 10: "PIM-HBM gives
/// the same performance as HBM ... to demonstrate the PIM-HBM does not
/// hurt the performance of compute-bound applications").
pub fn resnet50() -> Model {
    let mut layers = vec![Layer::Conv2d { name: "conv1 7x7", gflops: 0.24 }];
    // Four stages of bottleneck blocks: (3, 4, 6, 3) blocks.
    let stages: [(usize, f64, usize); 4] = [
        (3, 0.46, 56 * 56 * 256),
        (4, 0.44, 28 * 28 * 512),
        (6, 0.42, 14 * 14 * 1024),
        (3, 0.40, 7 * 7 * 2048),
    ];
    for (blocks, gflops, elements) in stages {
        for _ in 0..blocks {
            layers.push(Layer::Conv2d { name: "bottleneck convs", gflops });
            layers.push(Layer::BatchNorm { name: "bn", elements });
            layers.push(Layer::ResidualAdd { name: "residual add", elements });
            layers.push(Layer::Relu { name: "relu", elements });
        }
    }
    layers.push(Layer::FullyConnected { name: "fc", n: 1000, k: 2048, pim_eligible: false });
    Model { name: "ResNet-50", layers }
}

/// VGG16 (Simonyan & Zisserman, the paper's reference \[50\] for early
/// compute-bound CNNs): 13 convolution layers and 3 fully connected
/// layers. Not part of the paper's evaluated set — included as an
/// extension because its giant fc6 (25088→4096) is the classic
/// memory-bound FC and stresses the multi-pass GEMV path.
pub fn vgg16() -> Model {
    let convs: [(&'static str, f64); 13] = [
        ("conv1_1", 0.17),
        ("conv1_2", 3.7),
        ("conv2_1", 1.85),
        ("conv2_2", 3.7),
        ("conv3_1", 1.85),
        ("conv3_2", 3.7),
        ("conv3_3", 3.7),
        ("conv4_1", 1.85),
        ("conv4_2", 3.7),
        ("conv4_3", 3.7),
        ("conv5_1", 0.92),
        ("conv5_2", 0.92),
        ("conv5_3", 0.92),
    ];
    let mut layers: Vec<Layer> =
        convs.iter().map(|&(name, gflops)| Layer::Conv2d { name, gflops }).collect();
    layers.push(Layer::FullyConnected { name: "fc6", n: 4096, k: 25088, pim_eligible: true });
    layers.push(Layer::FullyConnected { name: "fc7", n: 4096, k: 4096, pim_eligible: true });
    layers.push(Layer::FullyConnected { name: "fc8", n: 1000, k: 4096, pim_eligible: true });
    Model { name: "VGG16", layers }
}

/// All five applications in Fig. 10 order.
pub fn all_models() -> Vec<Model> {
    vec![deepspeech2(), rnnt(), gnmt(), alexnet(), resnet50()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_described_structures() {
        let ds2 = deepspeech2();
        assert_eq!(
            ds2.layers.iter().filter(|l| matches!(l, Layer::Conv2d { .. })).count(),
            2,
            "DS2 has 2 conv layers"
        );
        assert_eq!(
            ds2.layers.iter().filter(|l| matches!(l, Layer::Lstm { .. })).count(),
            6,
            "DS2 has 6 biLSTM layers"
        );
        let r = rnnt();
        assert_eq!(r.layers.iter().filter(|l| matches!(l, Layer::Lstm { .. })).count(), 7);
        let g = gnmt();
        assert_eq!(g.layers.iter().filter(|l| matches!(l, Layer::Lstm { .. })).count(), 16);
        assert_eq!(alexnet().layers.len(), 8);
        let v = vgg16();
        assert_eq!(
            v.layers.iter().filter(|l| matches!(l, Layer::Conv2d { .. })).count(),
            13,
            "VGG16 has 13 conv layers"
        );
        assert_eq!(
            v.layers.iter().filter(|l| matches!(l, Layer::FullyConnected { .. })).count(),
            3
        );
        // fc6 alone is ~200 MB of FP16 weights — the memory-bound classic.
        assert!(v.weight_bytes() > 200 << 20);
    }

    #[test]
    fn inference_flops_are_plausible() {
        // DS2 on a 2 s clip: tens of GFLOPs (6 biLSTM layers over 100
        // steps dominate). ResNet-50: ~8 GFLOPs. AlexNet: ~1.4 + FCs.
        let ds2 = deepspeech2().inference_flops() as f64 / 1e9;
        assert!((10.0..200.0).contains(&ds2), "DS2 {ds2} GFLOPs");
        let resnet = resnet50().inference_flops() as f64 / 1e9;
        assert!((4.0..12.0).contains(&resnet), "ResNet {resnet} GFLOPs");
        assert!(vgg16().inference_flops() > resnet50().inference_flops());
    }

    #[test]
    fn eligibility_fractions_match_the_papers_story() {
        // DS2 is LSTM weights through and through; ResNet offloads nothing.
        assert!(deepspeech2().pim_eligible_weight_fraction() > 0.95);
        assert_eq!(resnet50().pim_eligible_weight_fraction(), 0.0);
        // AlexNet's FCs are nearly all of its parameters.
        assert!(alexnet().pim_eligible_weight_fraction() > 0.9);
        // GNMT's vocab projection stays on the host, diluting eligibility.
        let g = gnmt().pim_eligible_weight_fraction();
        assert!((0.5..1.0).contains(&g), "GNMT {g}");
    }

    #[test]
    fn ds2_weights_exceed_the_llc() {
        // The LSTM stack is tens of MB — the memory-bound premise.
        let ds2 = deepspeech2();
        assert!(ds2.weight_bytes() > 100 << 20, "{} bytes", ds2.weight_bytes());
    }

    #[test]
    fn resnet_activation_layers_fit_in_llc() {
        for l in resnet50().layers {
            if let Some((_, elements)) = l.stream_op() {
                assert!(elements * 2 <= 8 << 20, "{}: {elements} elements", l.name());
            }
        }
    }

    #[test]
    fn gnmt_decoder_launches_per_step() {
        let g = gnmt();
        let dec_per_step = g
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Lstm { launches: LaunchPattern::PerStep, .. }))
            .count();
        assert_eq!(dec_per_step, 8, "all 8 decoder layers launch per step");
    }
}
