//! The model runner: executes an application's layer graph on a given
//! system (PROC-HBM, PIM-HBM, PROC-HBM×4) at a given batch size,
//! producing per-layer times and the power phases for Fig. 12/13.
//!
//! Offload decisions go through the real [`pim_runtime::Preprocessor`] —
//! the same component the software stack uses — so the batch-size
//! crossover of Fig. 10 emerges from the stack's own policy rather than
//! from hard-coded per-figure switches.

use crate::cost::CostModel;
use crate::layer::{LaunchPattern, Layer};
use crate::models::Model;
use pim_energy::{HostPowerState, PowerTrace, SystemPowerModel};
use pim_runtime::ops::OpKind;
use pim_runtime::{ExecutionTarget, Preprocessor, StreamOp};

/// Which evaluated system a run models (Fig. 12's three bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The baseline: processor + 4 HBM stacks.
    ProcHbm,
    /// Processor + 4 PIM-HBM stacks.
    PimHbm,
    /// The hypothetical processor with 4× the HBM devices/bandwidth.
    ProcHbmX4,
}

impl SystemKind {
    /// Off-chip bandwidth multiplier relative to PROC-HBM.
    pub fn bandwidth_scale(self) -> f64 {
        match self {
            SystemKind::ProcHbmX4 => 4.0,
            _ => 1.0,
        }
    }

    /// HBM stacks in the system (for memory power).
    pub fn stacks(self) -> usize {
        match self {
            SystemKind::ProcHbmX4 => 16,
            _ => 4,
        }
    }

    /// Fig. 12 label.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::ProcHbm => "PROC-HBM",
            SystemKind::PimHbm => "PIM-HBM",
            SystemKind::ProcHbmX4 => "PROC-HBMx4",
        }
    }
}

/// One layer's execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTime {
    /// Layer name.
    pub name: &'static str,
    /// Seconds spent.
    pub seconds: f64,
    /// Whether the layer ran on the PIM units.
    pub on_pim: bool,
}

/// The outcome of running one model on one system at one batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Application name.
    pub model: &'static str,
    /// System evaluated.
    pub system: SystemKind,
    /// Batch size.
    pub batch: usize,
    /// Per-layer records.
    pub layers: Vec<LayerTime>,
    /// End-to-end seconds.
    pub total_seconds: f64,
    /// Power phases for energy integration (Fig. 12/13).
    pub trace: PowerTrace,
}

impl RunReport {
    /// Speedup of this run over `baseline` (baseline_time / this_time).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.total_seconds / self.total_seconds
    }

    /// Energy in joules under `power`.
    pub fn energy_j(&self, power: &SystemPowerModel) -> f64 {
        self.trace.total_energy_j(power)
    }

    /// Fraction of time spent on PIM.
    pub fn pim_time_fraction(&self) -> f64 {
        if self.total_seconds == 0.0 {
            return 0.0;
        }
        let pim: f64 = self.layers.iter().filter(|l| l.on_pim).map(|l| l.seconds).sum();
        pim / self.total_seconds
    }
}

/// Runs models over systems.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelRunner;

impl ModelRunner {
    /// Executes `model` on `system` at `batch`, using `cost` for kernel
    /// times and `power` for the phase bookkeeping.
    pub fn run(
        cost: &mut CostModel,
        power: &SystemPowerModel,
        model: &Model,
        system: SystemKind,
        batch: usize,
    ) -> RunReport {
        assert!(batch >= 1, "batch must be at least 1");
        let scale = system.bandwidth_scale();
        let stacks = system.stacks();
        let pim_available = system == SystemKind::PimHbm;
        let mut layers = Vec::new();
        let mut trace = PowerTrace::new();
        let host_cfg = cost.host.clone();

        let record = |layers: &mut Vec<LayerTime>,
                      trace: &mut PowerTrace,
                      name: &'static str,
                      seconds: f64,
                      on_pim: bool,
                      state: HostPowerState,
                      memory_w: f64| {
            layers.push(LayerTime { name, seconds, on_pim });
            trace.push(name, seconds, state, memory_w);
        };

        // The ×4 system's scaled host I/O & controllers, folded into each
        // phase's memory term (see SystemPowerModel::x4_host_overhead).
        // Only bandwidth-active (streaming) phases pay it: the extra PHYs
        // clock-gate while the host computes.
        let x4_extra = |state: HostPowerState| -> f64 {
            if system == SystemKind::ProcHbmX4 && state == HostPowerState::Streaming {
                power.host_power_w(state) * power.x4_host_overhead
            } else {
                0.0
            }
        };

        for layer in &model.layers {
            match layer {
                Layer::Conv2d { name, gflops } | Layer::Attention { name, gflops } => {
                    let t = cost.host_compute((gflops * 1e9) as u64 * batch as u64, batch).seconds
                        + cost.launch().seconds;
                    let mem = power.memory_stream_power_w(0.15, stacks)
                        + x4_extra(HostPowerState::Compute);
                    record(&mut layers, &mut trace, name, t, false, HostPowerState::Compute, mem);
                }
                Layer::FullyConnected { name, n, k, pim_eligible } => {
                    let to_pim = pim_available
                        && *pim_eligible
                        && Preprocessor::decide(
                            &host_cfg,
                            OpKind::Gemv,
                            layer.weight_bytes(),
                            batch,
                        ) == ExecutionTarget::Pim;
                    if to_pim {
                        let t =
                            batch as f64 * cost.pim_gemv(*n, *k).seconds + cost.launch().seconds;
                        let mem = power.memory_pim_power_w(SystemPowerModel::PIM_PHASE_UTILIZATION);
                        record(
                            &mut layers,
                            &mut trace,
                            name,
                            t,
                            true,
                            HostPowerState::DrivingPim,
                            mem,
                        );
                    } else {
                        let t =
                            cost.host_gemv(*n, *k, batch, scale).seconds + cost.launch().seconds;
                        let util = host_cfg.gemv_efficiency(batch).min(1.0);
                        let mem = power.memory_stream_power_w(util, stacks)
                            + x4_extra(HostPowerState::Streaming);
                        record(
                            &mut layers,
                            &mut trace,
                            name,
                            t,
                            false,
                            HostPowerState::Streaming,
                            mem,
                        );
                    }
                }
                Layer::Lstm { name, hidden, input, steps, launches, .. } => {
                    let dirs = layer.lstm_directions();
                    let to_pim = pim_available
                        && Preprocessor::decide(
                            &host_cfg,
                            OpKind::Lstm,
                            layer.weight_bytes(),
                            batch,
                        ) == ExecutionTarget::Pim;
                    if to_pim {
                        let step_cost = cost.pim_lstm_step(*hidden, *input).seconds;
                        let launch_count = match launches {
                            // Autoregressive: every step launches the two
                            // gate GEMVs plus the element-wise gate and
                            // state kernels — the GNMT decoder's limiter
                            // ("the overhead caused by many kernel calls
                            // limits the performance improvement").
                            LaunchPattern::PerStep => steps * dirs * 4,
                            // All inputs available: a couple of launches
                            // per direction cover the sequence.
                            LaunchPattern::Single => 2 * dirs,
                        };
                        let t = batch as f64 * (*steps as f64) * dirs as f64 * step_cost
                            + launch_count as f64 * cost.launch().seconds;
                        let mem = power.memory_pim_power_w(SystemPowerModel::PIM_PHASE_UTILIZATION);
                        record(
                            &mut layers,
                            &mut trace,
                            name,
                            t,
                            true,
                            HostPowerState::DrivingPim,
                            mem,
                        );
                    } else {
                        let eff_scale = CostModel::lstm_size_factor(layer.weight_bytes());
                        let per_step = cost
                            .host_lstm_gemv(4 * hidden, *input, batch, scale, eff_scale)
                            .seconds
                            + cost
                                .host_lstm_gemv(4 * hidden, *hidden, batch, scale, eff_scale)
                                .seconds;
                        // The host library fuses the sequence into one
                        // launch regardless of recurrence.
                        let t = (*steps as f64) * dirs as f64 * per_step + cost.launch().seconds;
                        let util = host_cfg.lstm_efficiency(batch);
                        let mem = power.memory_stream_power_w(util, stacks)
                            + x4_extra(HostPowerState::Streaming);
                        record(
                            &mut layers,
                            &mut trace,
                            name,
                            t,
                            false,
                            HostPowerState::Streaming,
                            mem,
                        );
                    }
                }
                Layer::BatchNorm { name, .. }
                | Layer::Relu { name, .. }
                | Layer::ResidualAdd { name, .. } => {
                    let (op, elements) = layer.stream_op().expect("stream layer");
                    let kind = match op {
                        StreamOp::Add => OpKind::Add,
                        StreamOp::Mul => OpKind::Mul,
                        StreamOp::Relu => OpKind::Relu,
                        // AXPY shares ADD's level-1 BLAS profile.
                        StreamOp::Axpy => OpKind::Add,
                        StreamOp::Bn => OpKind::Bn,
                    };
                    let bytes = (elements * batch) as u64 * op.bytes_per_element();
                    let to_pim = pim_available
                        && Preprocessor::decide(&host_cfg, kind, bytes, 1) == ExecutionTarget::Pim;
                    if to_pim {
                        let t =
                            cost.pim_stream(op, elements * batch).seconds + cost.launch().seconds;
                        let mem = power.memory_pim_power_w(SystemPowerModel::PIM_PHASE_UTILIZATION);
                        record(
                            &mut layers,
                            &mut trace,
                            name,
                            t,
                            true,
                            HostPowerState::DrivingPim,
                            mem,
                        );
                    } else {
                        let t = cost.host_stream(op, elements * batch, scale).seconds
                            + cost.launch().seconds;
                        let util = host_cfg.add_stream_efficiency;
                        let mem = power.memory_stream_power_w(util, stacks)
                            + x4_extra(HostPowerState::Streaming);
                        record(
                            &mut layers,
                            &mut trace,
                            name,
                            t,
                            false,
                            HostPowerState::Streaming,
                            mem,
                        );
                    }
                }
            }
        }

        let total_seconds = layers.iter().map(|l| l.seconds).sum();
        RunReport { model: model.name, system, batch, layers, total_seconds, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn run_pair(model: &Model, batch: usize) -> (RunReport, RunReport) {
        let mut cost = CostModel::paper();
        let power = SystemPowerModel::paper();
        let hbm = ModelRunner::run(&mut cost, &power, model, SystemKind::ProcHbm, batch);
        let pim = ModelRunner::run(&mut cost, &power, model, SystemKind::PimHbm, batch);
        (hbm, pim)
    }

    #[test]
    fn ds2_speedup_is_substantial_at_batch_1() {
        let (hbm, pim) = run_pair(&models::deepspeech2(), 1);
        let s = pim.speedup_over(&hbm);
        assert!(s > 2.0, "DS2 speedup {s}");
        assert!(pim.pim_time_fraction() > 0.5, "DS2 is LSTM-dominated on PIM");
    }

    #[test]
    fn resnet_performance_parity() {
        let (hbm, pim) = run_pair(&models::resnet50(), 1);
        let s = pim.speedup_over(&hbm);
        assert!((0.95..1.05).contains(&s), "ResNet-50 speedup {s} should be ~1.0");
        assert_eq!(pim.pim_time_fraction(), 0.0, "nothing offloads");
    }

    #[test]
    fn gnmt_limited_by_decoder_launches() {
        let (hbm, pim) = run_pair(&models::gnmt(), 1);
        let s = pim.speedup_over(&hbm);
        assert!(s > 1.0 && s < 4.0, "GNMT speedup {s} limited by kernel calls");
    }

    #[test]
    fn alexnet_modest_speedup_via_fc() {
        let (hbm, pim) = run_pair(&models::alexnet(), 1);
        let s = pim.speedup_over(&hbm);
        assert!(s > 1.0 && s < 3.0, "AlexNet speedup {s}");
    }

    #[test]
    fn speedups_shrink_with_batch() {
        let model = models::deepspeech2();
        let (h1, p1) = run_pair(&model, 1);
        let (h4, p4) = run_pair(&model, 4);
        let s1 = p1.speedup_over(&h1);
        let s4 = p4.speedup_over(&h4);
        assert!(s4 < s1, "batch 4 speedup {s4} must be below batch 1 {s1}");
    }

    #[test]
    fn x4_bandwidth_helps_memory_bound_apps() {
        let mut cost = CostModel::paper();
        let power = SystemPowerModel::paper();
        let model = models::deepspeech2();
        let hbm = ModelRunner::run(&mut cost, &power, &model, SystemKind::ProcHbm, 1);
        let x4 = ModelRunner::run(&mut cost, &power, &model, SystemKind::ProcHbmX4, 1);
        let s = x4.speedup_over(&hbm);
        assert!(s > 2.0, "4x bandwidth speedup {s}");
    }

    #[test]
    fn energy_accounting_is_positive_and_consistent() {
        let (hbm, pim) = run_pair(&models::deepspeech2(), 1);
        let power = SystemPowerModel::paper();
        let e_hbm = hbm.energy_j(&power);
        let e_pim = pim.energy_j(&power);
        assert!(e_hbm > 0.0 && e_pim > 0.0);
        // PIM runs faster AND at no more power: energy strictly improves.
        assert!(e_pim < e_hbm, "PIM energy {e_pim} vs HBM {e_hbm}");
    }
}
