//! Capacity analysis: why recommendation models are out of scope, and the
//! paper's HBM3-generation collaborative-GEMV future work.
//!
//! Section VII-A: "the embedding look-up layer of recommendation models is
//! memory-bound but it also requires a large memory capacity (e.g.,
//! 256GB). Thus, processors integrated with HBM are not suitable for
//! running such applications as they provide limited memory capacity
//! (e.g., 32GB with 4 HBM devices)." — [`embedding_fits`] makes that
//! check executable.
//!
//! Section VIII: "we see an opportunity that both the host processor and
//! PIM can perform GEMV in a collaborative way" once HBM3-generation PIM
//! supports fine-grained SB/AB-PIM interleaving — [`collaborative_gemv`]
//! quantifies the opportunity with the existing cost models.

use crate::cost::CostModel;

/// Capacity of the paper's memory system in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryCapacity {
    /// HBM stacks.
    pub stacks: usize,
    /// Bytes per stack (paper: 6 GB PIM-HBM cubes; plain HBM2E 8 GB).
    pub bytes_per_stack: u64,
}

impl MemoryCapacity {
    /// The paper's 4 × 6 GB PIM-HBM system.
    pub fn paper_pim_system() -> MemoryCapacity {
        MemoryCapacity { stacks: 4, bytes_per_stack: 6 << 30 }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.stacks as u64 * self.bytes_per_stack
    }
}

/// Whether a recommendation model's embedding tables fit the system —
/// the executable form of the paper's RM exclusion.
pub fn embedding_fits(capacity: &MemoryCapacity, embedding_bytes: u64) -> bool {
    embedding_bytes <= capacity.total_bytes()
}

/// The collaborative-GEMV analysis: split the output rows of an `n × k`
/// GEMV between the host (streaming its share through the SB interface at
/// `host_speedup ×` the calibrated GEMV efficiency) and PIM (computing its
/// share in AB-PIM mode), as HBM3-generation fine-grained mode
/// interleaving would allow. Returns `(best_host_fraction,
/// combined_seconds, pim_only_seconds)`.
///
/// Structure of the result: PIM's GEMV time is quantized in whole passes
/// of 8192 outputs (time ∝ K per pass), so the host only helps when it can
/// absorb an entire pass's worth of rows faster than PIM would run that
/// pass. With the paper-calibrated host (~13% of peak) it never can —
/// quantifying why the paper leaves collaboration as future work — while
/// an optimized host kernel (`host_speedup ≳ 8`) turns the split
/// profitable for multi-pass matrices.
pub fn collaborative_gemv(
    cost: &mut CostModel,
    n: usize,
    k: usize,
    host_speedup: f64,
) -> (f64, f64, f64) {
    assert!(host_speedup >= 1.0, "host_speedup is a multiplier on the calibrated kernel");
    let pim_only = cost.pim_gemv(n, k).seconds;
    let mut best = (0.0f64, pim_only);
    // Sweep the host's share of output rows in 5% steps: PIM time is
    // pass-quantized, so finer steps cannot change the optimum.
    for pct in (5..=80).step_by(5) {
        let f = pct as f64 / 100.0;
        let host_rows = ((n as f64 * f) as usize / 16) * 16;
        if host_rows == 0 || host_rows >= n {
            continue;
        }
        let pim_rows = n - host_rows;
        let t_host = cost.host_gemv(host_rows, k, 1, 1.0).seconds / host_speedup;
        let t_pim = cost.pim_gemv(pim_rows, k).seconds;
        // Fine-grained interleaving lets both run concurrently on disjoint
        // banks; the combined time is the slower side.
        let t = t_host.max(t_pim);
        if t < best.1 {
            best = (f, t);
        }
    }
    (best.0, best.1, pim_only)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_models_do_not_fit() {
        // The paper's example: 256 GB of embeddings vs ~24 GB of PIM-HBM.
        let cap = MemoryCapacity::paper_pim_system();
        assert_eq!(cap.total_bytes(), 24 << 30);
        assert!(!embedding_fits(&cap, 256 << 30));
        // DS2's weights, by contrast, fit trivially.
        assert!(embedding_fits(&cap, crate::models::deepspeech2().weight_bytes()));
    }

    #[test]
    fn calibrated_host_cannot_help() {
        // With the paper's unoptimized host GEMV, no split beats PIM alone
        // even on a two-pass matrix — the quantified reason collaboration
        // is future work.
        let mut cost = CostModel::paper();
        let (share, combined, pim_only) = collaborative_gemv(&mut cost, 16384, 4096, 1.0);
        assert_eq!(share, 0.0);
        assert_eq!(combined, pim_only);
    }

    #[test]
    fn optimized_host_makes_collaboration_profitable() {
        // A host GEMV 10× better than the calibrated one (a well-tiled
        // kernel) can absorb one full PIM pass of a two-pass matrix.
        let mut cost = CostModel::paper();
        let (share, combined, pim_only) = collaborative_gemv(&mut cost, 16384, 4096, 10.0);
        assert!(share >= 0.5, "host must absorb a whole pass: share {share}");
        let gain = pim_only / combined;
        assert!((1.3..2.1).contains(&gain), "collaboration gain {gain}");
    }

    #[test]
    fn collaboration_degenerates_for_single_pass_matrices() {
        let mut cost = CostModel::paper();
        // PIM already takes one K-bound pass: splitting rows saves nothing.
        let (share, combined, pim_only) = collaborative_gemv(&mut cost, 1024, 1024, 10.0);
        assert_eq!(share, 0.0);
        assert_eq!(combined, pim_only);
    }
}
