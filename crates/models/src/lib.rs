//! The evaluated workloads (Section VII-A): microbenchmark definitions and
//! the five applications — DeepSpeech2, RNN-T, GNMT, AlexNet and
//! ResNet-50 — expressed as layer graphs and executed through the same
//! cost machinery the microbenchmarks use.
//!
//! * [`cost`] — kernel cost models. PIM kernel times come from the **real
//!   simulator**: the per-channel command stream for a shape is generated
//!   by `pim-runtime`'s builders and issued against a real
//!   [`pim_core::PimChannel`]; because execution is lock-step, one
//!   channel's cycle count is the wall time. Host (HBM-baseline) times
//!   come from the documented streaming/compute/LLC models in `pim-host`.
//! * [`layer`] — the layer vocabulary (convolutions, LSTM, fully
//!   connected, BN, ReLU, residual ADD, attention) with per-layer FLOP and
//!   byte accounting.
//! * [`models`] — the five applications with their paper-described
//!   structures (e.g. DS2: "2 convolution layers, 6 bidirectional LSTM
//!   layers, and a fully connected layer").
//! * [`runner`] — executes a model on the HBM system and the PIM-HBM
//!   system at a given batch size, producing per-layer times, end-to-end
//!   speedups, and power phases for the energy figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod cost;
pub mod layer;
pub mod models;
pub mod runner;

pub use cost::{CostModel, KernelCost};
pub use layer::{LaunchPattern, Layer};
pub use models::{alexnet, deepspeech2, gnmt, resnet50, rnnt, vgg16, Model};
pub use runner::{LayerTime, ModelRunner, RunReport, SystemKind};
