//! Per-command, per-component DRAM energy (the Fig. 11 decomposition).
//!
//! A standard (single-bank) column access moves data from the cell array
//! through the IOSA/decoders, the internal global I/O bus, the TSVs and
//! buffer-die circuitry, and finally the I/O PHY toward the host. An
//! AB-PIM column command instead stops at the bank I/O where the PIM unit
//! consumes the data: the array-side components are paid once **per
//! operating bank**, the transport-side components are not paid at all,
//! and the buffer-die data I/O keeps toggling in the fabricated chip (the
//! paper notes gating it would have saved another ~10%).
//!
//! Fractions are calibrated so that, at the paper's operating point
//! (8 operating banks per command at tCCD_L vs one bank per tCCD_S), the
//! three headline results of Section VII-C hold simultaneously:
//! **+5.4% power at 4× on-chip bandwidth**, **≈3.5× lower energy per bit**
//! (after activation energy is included), and **≈10% saving** from gating
//! the buffer-die I/O. The unit tests verify all three.

/// The power components of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerComponent {
    /// DRAM cell array access.
    Cell,
    /// I/O sense amplifiers and row/column decoders.
    IosaDecoder,
    /// Internal global I/O bus (bank I/O → TSV area).
    GlobalIo,
    /// Off-chip I/O PHY (buffer die → interposer).
    IoPhy,
    /// Buffer-die 1024-bit data I/O circuitry.
    BufferDieIo,
    /// The PIM execution units.
    PimUnit,
}

impl PowerComponent {
    /// All components in Fig. 11 stacking order.
    pub const ALL: [PowerComponent; 6] = [
        PowerComponent::Cell,
        PowerComponent::IosaDecoder,
        PowerComponent::GlobalIo,
        PowerComponent::IoPhy,
        PowerComponent::BufferDieIo,
        PowerComponent::PimUnit,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PowerComponent::Cell => "cell",
            PowerComponent::IosaDecoder => "IOSA/decoders",
            PowerComponent::GlobalIo => "internal global I/O bus",
            PowerComponent::IoPhy => "I/O PHY",
            PowerComponent::BufferDieIo => "buffer-die data I/O",
            PowerComponent::PimUnit => "PIM execution units",
        }
    }
}

/// Per-command energies in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Energy of one single-bank 32-byte column access, cell-array share.
    pub col_cell_pj: f64,
    /// IOSA/decoder share of a column access.
    pub col_iosa_pj: f64,
    /// Internal global I/O bus share.
    pub col_global_io_pj: f64,
    /// I/O PHY share.
    pub col_io_phy_pj: f64,
    /// Buffer-die data I/O share.
    pub col_buffer_io_pj: f64,
    /// One PIM instruction on one unit (16 FP16 lanes).
    pub pim_instr_pj: f64,
    /// One bank activation (ACT+PRE pair, amortized to the ACT).
    pub act_bank_pj: f64,
    /// Static (background + refresh) power per device, in watts.
    pub device_static_w: f64,
}

impl EnergyParams {
    /// The calibrated HBM2 / PIM-HBM parameter set.
    ///
    /// Anchors: HBM2 at ≈3.9 pJ/bit for a streamed read → ≈1000 pJ per
    /// 256-bit column access, split across components with the transport
    /// side (global bus + PHY + buffer I/O) carrying ~77% — transport
    /// dominance is the entire premise of processing near the bank.
    pub fn hbm2() -> EnergyParams {
        EnergyParams {
            col_cell_pj: 105.0,
            col_iosa_pj: 124.0,
            col_global_io_pj: 380.0,
            col_io_phy_pj: 190.0,
            col_buffer_io_pj: 200.0,
            pim_instr_pj: 10.0,
            // One bank ACT+PRE over a 1 KiB HBM2 page — small pages keep
            // activation cheap relative to the 8–16 KiB pages of DDR4.
            act_bank_pj: 400.0,
            device_static_w: 1.8,
        }
    }

    /// Total energy of one single-bank column access (pJ).
    pub fn sb_column_pj(&self) -> f64 {
        self.col_cell_pj
            + self.col_iosa_pj
            + self.col_global_io_pj
            + self.col_io_phy_pj
            + self.col_buffer_io_pj
    }

    /// Energy of one AB-PIM column command with `operating_banks` banks
    /// feeding `units` PIM units (pJ). `buffer_io_gated` models the
    /// paper's "feature eliminating unnecessary power consumption by the
    /// buffer die's 1024-bit data I/O circuit".
    pub fn abpim_column_pj(
        &self,
        operating_banks: usize,
        units: usize,
        buffer_io_gated: bool,
    ) -> f64 {
        let array = (self.col_cell_pj + self.col_iosa_pj) * operating_banks as f64;
        let buffer = if buffer_io_gated { 0.0 } else { self.col_buffer_io_pj };
        array + buffer + self.pim_instr_pj * units as f64
    }

    /// Per-component power (watts) of a back-to-back column-read stream.
    ///
    /// `interval_cycles` is the command cadence (tCCD_S for SB, tCCD_L for
    /// AB-PIM) and `bus_mhz` the bus clock.
    pub fn stream_power_w(
        &self,
        mode: StreamMode,
        interval_cycles: u64,
        bus_mhz: u64,
    ) -> MemoryEnergyBreakdown {
        let cmds_per_sec = bus_mhz as f64 * 1e6 / interval_cycles as f64;
        let to_w = |pj: f64| pj * 1e-12 * cmds_per_sec;
        match mode {
            StreamMode::SingleBank => MemoryEnergyBreakdown {
                cell: to_w(self.col_cell_pj),
                iosa_decoder: to_w(self.col_iosa_pj),
                global_io: to_w(self.col_global_io_pj),
                io_phy: to_w(self.col_io_phy_pj),
                buffer_die_io: to_w(self.col_buffer_io_pj),
                pim_unit: 0.0,
            },
            StreamMode::AbPim { operating_banks, units, buffer_io_gated } => {
                MemoryEnergyBreakdown {
                    cell: to_w(self.col_cell_pj * operating_banks as f64),
                    iosa_decoder: to_w(self.col_iosa_pj * operating_banks as f64),
                    global_io: 0.0,
                    io_phy: 0.0,
                    buffer_die_io: if buffer_io_gated { 0.0 } else { to_w(self.col_buffer_io_pj) },
                    pim_unit: to_w(self.pim_instr_pj * units as f64),
                }
            }
        }
    }

    /// Energy per *useful* bit of a streamed access (pJ/bit), including the
    /// amortized activation energy over a full row's worth of columns.
    ///
    /// SB: one bank's 256 bits per command; AB-PIM: `operating_banks × 256`
    /// bits per command, with all 16 banks activating per row.
    pub fn energy_per_bit_pj(&self, mode: StreamMode) -> f64 {
        const COLS_PER_ROW: f64 = 32.0;
        const BITS_PER_BLOCK: f64 = 256.0;
        match mode {
            StreamMode::SingleBank => {
                let act_amortized = self.act_bank_pj / COLS_PER_ROW;
                (self.sb_column_pj() + act_amortized) / BITS_PER_BLOCK
            }
            StreamMode::AbPim { operating_banks, units, buffer_io_gated } => {
                // An all-bank ACT opens all 16 banks; each row supplies 32
                // columns to `operating_banks` banks' worth of operands.
                let act_amortized = self.act_bank_pj * 16.0 / COLS_PER_ROW;
                let col = self.abpim_column_pj(operating_banks, units, buffer_io_gated);
                (col + act_amortized) / (BITS_PER_BLOCK * operating_banks as f64)
            }
        }
    }
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        EnergyParams::hbm2()
    }
}

/// What kind of column stream is being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// Standard single-bank operation.
    SingleBank,
    /// All-bank PIM operation.
    AbPim {
        /// Banks whose data is consumed per command (8 on the paper chip).
        operating_banks: usize,
        /// PIM units executing per command.
        units: usize,
        /// Whether the buffer-die data I/O is clock-gated in PIM mode.
        buffer_io_gated: bool,
    },
}

/// Watts per component — one bar of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryEnergyBreakdown {
    /// Cell array.
    pub cell: f64,
    /// IOSA + decoders.
    pub iosa_decoder: f64,
    /// Internal global I/O bus.
    pub global_io: f64,
    /// I/O PHY.
    pub io_phy: f64,
    /// Buffer-die data I/O.
    pub buffer_die_io: f64,
    /// PIM execution units.
    pub pim_unit: f64,
}

impl MemoryEnergyBreakdown {
    /// Total watts.
    pub fn total(&self) -> f64 {
        self.cell
            + self.iosa_decoder
            + self.global_io
            + self.io_phy
            + self.buffer_die_io
            + self.pim_unit
    }

    /// Component accessor by enum, for table printers.
    pub fn get(&self, c: PowerComponent) -> f64 {
        match c {
            PowerComponent::Cell => self.cell,
            PowerComponent::IosaDecoder => self.iosa_decoder,
            PowerComponent::GlobalIo => self.global_io,
            PowerComponent::IoPhy => self.io_phy,
            PowerComponent::BufferDieIo => self.buffer_die_io,
            PowerComponent::PimUnit => self.pim_unit,
        }
    }
}

/// The paper's AB-PIM operating point: 8 operating banks, 8 units,
/// buffer-die I/O not gated (Section VII-C).
pub fn paper_abpim_mode() -> StreamMode {
    StreamMode::AbPim { operating_banks: 8, units: 8, buffer_io_gated: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUS_MHZ: u64 = 1200;

    #[test]
    fn fig11_power_within_a_few_percent_at_4x_bandwidth() {
        let p = EnergyParams::hbm2();
        let sb = p.stream_power_w(StreamMode::SingleBank, 2, BUS_MHZ); // tCCD_S
        let ab = p.stream_power_w(paper_abpim_mode(), 4, BUS_MHZ); // tCCD_L
        let ratio = ab.total() / sb.total();
        // Paper: "PIM-HBM consume only 5.4% higher power even with 4×
        // higher (on-chip) bandwidth".
        assert!((1.0..1.10).contains(&ratio), "power ratio {ratio}");
        // And the bandwidth really is 4×: 8 banks per 4 cycles vs 1 per 2.
        let bw_ratio = (8.0 / 4.0) / (1.0 / 2.0);
        assert_eq!(bw_ratio, 4.0);
    }

    #[test]
    fn fig11_transport_power_collapses_in_pim_mode() {
        let p = EnergyParams::hbm2();
        let sb = p.stream_power_w(StreamMode::SingleBank, 2, BUS_MHZ);
        let ab = p.stream_power_w(paper_abpim_mode(), 4, BUS_MHZ);
        assert_eq!(ab.global_io, 0.0);
        assert_eq!(ab.io_phy, 0.0);
        // Array-side components grow ~4× (8 banks at half the rate).
        assert!((ab.cell / sb.cell - 4.0).abs() < 1e-9);
        assert!(ab.pim_unit > 0.0);
    }

    #[test]
    fn gating_buffer_io_saves_about_10_percent() {
        let p = EnergyParams::hbm2();
        let sb = p.stream_power_w(StreamMode::SingleBank, 2, BUS_MHZ);
        let ab = p.stream_power_w(paper_abpim_mode(), 4, BUS_MHZ);
        let gated = p.stream_power_w(
            StreamMode::AbPim { operating_banks: 8, units: 8, buffer_io_gated: true },
            4,
            BUS_MHZ,
        );
        let saving = (ab.total() - gated.total()) / sb.total();
        // Paper: "we could have made the power consumption of PIM-HBM ~10%
        // lower than that of the HBM".
        assert!((0.07..0.13).contains(&saving), "saving {saving}");
    }

    #[test]
    fn energy_per_bit_improves_about_3_5x() {
        let p = EnergyParams::hbm2();
        let sb = p.energy_per_bit_pj(StreamMode::SingleBank);
        let ab = p.energy_per_bit_pj(paper_abpim_mode());
        let ratio = sb / ab;
        // Paper: "PIM also reduces the energy per bit transfer by 3.5×".
        assert!((3.0..4.0).contains(&ratio), "energy/bit ratio {ratio}");
    }

    #[test]
    fn sb_energy_per_bit_is_hbm2_class() {
        // ~4 pJ/bit including activation — the accepted HBM2 ballpark.
        let p = EnergyParams::hbm2();
        let e = p.energy_per_bit_pj(StreamMode::SingleBank);
        assert!((3.0..5.0).contains(&e), "{e} pJ/bit");
    }

    #[test]
    fn breakdown_accessors_cover_all_components() {
        let p = EnergyParams::hbm2();
        let b = p.stream_power_w(StreamMode::SingleBank, 2, BUS_MHZ);
        let sum: f64 = PowerComponent::ALL.iter().map(|&c| b.get(c)).sum();
        assert!((sum - b.total()).abs() < 1e-12);
        assert!(!PowerComponent::Cell.label().is_empty());
    }
}
