//! Power and energy model for HBM and PIM-HBM (Section VII-C).
//!
//! The paper measures silicon; we compose the same component-level story
//! analytically and drive it with the simulator's command statistics:
//!
//! * [`mac`] — Table I's MAC-unit area/energy across number formats.
//! * [`components`] — per-command, per-component DRAM energies (cell,
//!   IOSA/decoders, internal global I/O bus, I/O PHY, buffer-die I/O, PIM
//!   units). AB-PIM mode multiplies the array-side components by the
//!   number of operating banks but **skips the global bus and PHY** — "the
//!   AB-PIM mode does not consume power for transferring data from the
//!   bank I/O all the way to the I/O circuits that interface with the host
//!   processor" — which is why PIM-HBM burns only ~5% more power at 4× the
//!   bandwidth (Fig. 11).
//! * [`system`] — host + memory system power states and energy
//!   integration for Fig. 12 (relative power/energy of PROC-HBM, PIM-HBM,
//!   PROC-HBM×4) and Fig. 13 (power over time).
//!
//! Every constant is documented with its calibration rationale; the
//! headline checks (±5.4% power at 4× bandwidth, ~3.5× lower energy/bit,
//! ~10% saving if the buffer-die I/O gated) are locked in by unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod kernel_energy;
pub mod mac;
pub mod system;
pub mod trace;

pub use components::{EnergyParams, MemoryEnergyBreakdown, PowerComponent};
pub use kernel_energy::{KernelActivity, KernelEnergy};
pub use mac::{table1, MacUnitModel};
pub use system::{HostPowerState, SystemPowerModel};
pub use trace::{PowerPhase, PowerTrace};
