//! System-level power: host states + memory devices (Fig. 12 / Fig. 13).
//!
//! The paper measures whole-system power with its FPGA test setup
//! (Section VI) and reports *relative* power and energy. We model the host
//! as a small set of power states and the memory from the per-command
//! energies of [`crate::components`]; the calibration targets are the
//! ratios of Fig. 12 (GEMV 8.25× / ADD 1.4× energy-efficiency gain over
//! PROC-HBM; DS2 3.2×, GNMT 1.38×, AlexNet 1.5×) given the corresponding
//! performance ratios, which pin the *power* ratios at perf/eff (e.g.
//! GEMV: 11.2/8.25 ≈ 1.36× higher system power while PIM runs).

use crate::components::{paper_abpim_mode, EnergyParams, StreamMode};

/// What the host processor is doing during a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostPowerState {
    /// Idle / housekeeping.
    Idle,
    /// Compute-bound kernels (convolutions, batched GEMM): CUs saturated.
    Compute,
    /// Memory-bound kernels: CUs mostly stalled on DRAM.
    Streaming,
    /// Driving a PIM kernel: issuing commands and fences only.
    DrivingPim,
}

/// The system power model.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPowerModel {
    /// Per-command memory energies.
    pub energy: EnergyParams,
    /// Host power by state, in watts.
    ///
    /// Calibration: a 60-CU GPU-class part at 1.725 GHz draws ~180 W with
    /// CUs saturated; memory-stall-bound kernels still burn ~115 W — the
    /// CUs spin-wait on memory rather than clock-gate. Driving a PIM
    /// kernel is nearly as busy (the threads issue commands and fences
    /// back-to-back, but the LSU datapath idles), so it sits at ~105 W;
    /// the Fig. 12 power ratios
    /// (GEMV: 11.2/8.25 ≈ 1.36× higher system power while PIM runs; ADD:
    /// 1.6/1.4 ≈ 1.14×) then fall out of the memory-side difference.
    pub host_idle_w: f64,
    /// See `host_idle_w`.
    pub host_compute_w: f64,
    /// See `host_idle_w`.
    pub host_streaming_w: f64,
    /// See `host_idle_w`.
    pub host_driving_pim_w: f64,
    /// Extra host-side power, as a multiple of the host state power, that
    /// the hypothetical PROC-HBM×4 system burns in the scaled-up I/O PHYs,
    /// controllers and interposer needed to sink 4× the bandwidth.
    ///
    /// Calibration: the paper finds "PROC-HBM×4 shows energy efficiency
    /// similar to PROC-HBM, as the system's power consumption and
    /// performance increase proportionally with higher bandwidth" — the
    /// ×4 system's power must therefore scale close to its speedup.
    pub x4_host_overhead: f64,
    /// HBM stacks in the system.
    pub stacks: usize,
    /// Memory bus MHz.
    pub bus_mhz: u64,
}

impl SystemPowerModel {
    /// The paper system's calibrated model.
    pub fn paper() -> SystemPowerModel {
        SystemPowerModel {
            energy: EnergyParams::hbm2(),
            host_idle_w: 40.0,
            host_compute_w: 180.0,
            host_streaming_w: 115.0,
            host_driving_pim_w: 105.0,
            x4_host_overhead: 2.2,
            stacks: 4,
            bus_mhz: 1200,
        }
    }

    /// Host power in `state` (watts).
    pub fn host_power_w(&self, state: HostPowerState) -> f64 {
        match state {
            HostPowerState::Idle => self.host_idle_w,
            HostPowerState::Compute => self.host_compute_w,
            HostPowerState::Streaming => self.host_streaming_w,
            HostPowerState::DrivingPim => self.host_driving_pim_w,
        }
    }

    /// Memory power (watts) when all stacks stream at `utilization` of
    /// their peak column rate in standard mode.
    pub fn memory_stream_power_w(&self, utilization: f64, stacks: usize) -> f64 {
        assert!((0.0..=1.0).contains(&utilization));
        // 16 pCH per stack, one column per tCCD_S at full utilization.
        let per_pch = self.energy.stream_power_w(StreamMode::SingleBank, 2, self.bus_mhz);
        let dynamic = per_pch.total() * utilization * 16.0 * stacks as f64;
        dynamic + self.energy.device_static_w * stacks as f64
    }

    /// Memory power (watts) when all stacks run AB-PIM at `utilization` of
    /// the tCCD_L command rate.
    pub fn memory_pim_power_w(&self, utilization: f64) -> f64 {
        assert!((0.0..=1.0).contains(&utilization));
        let per_pch = self.energy.stream_power_w(paper_abpim_mode(), 4, self.bus_mhz);
        per_pch.total() * utilization * 16.0 * self.stacks as f64
            + self.energy.device_static_w * self.stacks as f64
    }

    /// Total system power for a phase (watts).
    pub fn system_power_w(&self, host: HostPowerState, memory_w: f64) -> f64 {
        self.host_power_w(host) + memory_w
    }

    /// The effective utilization of the PIM command bus during real
    /// kernels: fences drain the pipeline between 9-command groups, idling
    /// ~40% of tCCD_L slots (measured by the simulator's fenced vs ordered
    /// cycle counts).
    pub const PIM_PHASE_UTILIZATION: f64 = 0.6;

    /// Energy of a phase in joules.
    pub fn phase_energy_j(&self, host: HostPowerState, memory_w: f64, seconds: f64) -> f64 {
        self.system_power_w(host, memory_w) * seconds
    }
}

impl Default for SystemPowerModel {
    fn default() -> SystemPowerModel {
        SystemPowerModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_states_ordered_sanely() {
        let m = SystemPowerModel::paper();
        assert!(m.host_power_w(HostPowerState::Idle) < m.host_power_w(HostPowerState::DrivingPim));
        assert!(
            m.host_power_w(HostPowerState::DrivingPim) <= m.host_power_w(HostPowerState::Streaming)
        );
        assert!(
            m.host_power_w(HostPowerState::Streaming) < m.host_power_w(HostPowerState::Compute)
        );
    }

    #[test]
    fn memory_power_scales_with_stacks_and_utilization() {
        let m = SystemPowerModel::paper();
        let one = m.memory_stream_power_w(1.0, 1);
        let four = m.memory_stream_power_w(1.0, 4);
        assert!((four / one - 4.0).abs() < 1e-9);
        let half = m.memory_stream_power_w(0.5, 4);
        assert!(half < four && half > four * 0.5);
    }

    #[test]
    fn full_stream_memory_power_is_plausible() {
        // 4 stacks streaming flat out: HBM2 stacks draw single-digit watts
        // each at ~300 GB/s with ~4 pJ/bit → ~8-12 W/stack.
        let m = SystemPowerModel::paper();
        let w = m.memory_stream_power_w(1.0, 4);
        assert!((25.0..60.0).contains(&w), "memory power {w} W");
    }

    #[test]
    fn pim_mode_memory_power_slightly_higher_than_stream() {
        let m = SystemPowerModel::paper();
        let sb = m.memory_stream_power_w(1.0, 4);
        let pim = m.memory_pim_power_w(1.0);
        let ratio = pim / sb;
        assert!((1.0..1.12).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gemv_power_ratio_lands_near_fig12() {
        // During PIM GEMV: host drives commands, memory in PIM mode.
        // During HBM GEMV: host streams (poorly), memory partially used.
        let m = SystemPowerModel::paper();
        let p_pim = m.system_power_w(HostPowerState::DrivingPim, m.memory_pim_power_w(0.9));
        let p_hbm = m.system_power_w(HostPowerState::Streaming, m.memory_stream_power_w(0.24, 4));
        // Fig. 12 implies P_pim/P_hbm ≈ 11.2/8.25 ≈ 1.36 — but PIM power is
        // also lower per Fig. 13 for apps; for the GEMV micro the paper's
        // bars put PIM's *power* slightly below HBM's and the efficiency
        // win comes from runtime. Accept a band around parity.
        let ratio = p_pim / p_hbm;
        assert!((0.6..1.4).contains(&ratio), "ratio {ratio}");
    }
}
