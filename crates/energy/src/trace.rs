//! Power-over-time traces (Fig. 13: "Average system power of DS2 over
//! time").

use crate::system::{HostPowerState, SystemPowerModel};

/// One execution phase of an application run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPhase {
    /// Human-readable label (layer / kernel name).
    pub label: String,
    /// Duration in seconds.
    pub seconds: f64,
    /// Host activity during the phase.
    pub host: HostPowerState,
    /// Memory power during the phase, in watts.
    pub memory_w: f64,
}

/// A sequence of phases with sampling into a uniform time series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTrace {
    phases: Vec<PowerPhase>,
}

impl PowerTrace {
    /// An empty trace.
    pub fn new() -> PowerTrace {
        PowerTrace::default()
    }

    /// Appends a phase.
    pub fn push(
        &mut self,
        label: impl Into<String>,
        seconds: f64,
        host: HostPowerState,
        memory_w: f64,
    ) {
        assert!(seconds >= 0.0, "negative phase duration");
        self.phases.push(PowerPhase { label: label.into(), seconds, host, memory_w });
    }

    /// The phases.
    pub fn phases(&self) -> &[PowerPhase] {
        &self.phases
    }

    /// Total duration in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Total energy in joules under `model`.
    pub fn total_energy_j(&self, model: &SystemPowerModel) -> f64 {
        self.phases.iter().map(|p| model.phase_energy_j(p.host, p.memory_w, p.seconds)).sum()
    }

    /// Time-averaged system power in watts.
    pub fn average_power_w(&self, model: &SystemPowerModel) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j(model) / t
        }
    }

    /// Samples the instantaneous system power at `samples` uniform points —
    /// the Fig. 13 time series.
    pub fn sample(&self, model: &SystemPowerModel, samples: usize) -> Vec<(f64, f64)> {
        assert!(samples > 0);
        let total = self.total_seconds();
        if total == 0.0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(samples);
        for s in 0..samples {
            let t = total * (s as f64 + 0.5) / samples as f64;
            let mut acc = 0.0;
            let mut w = model.host_power_w(HostPowerState::Idle);
            for p in &self.phases {
                if t < acc + p.seconds {
                    w = model.system_power_w(p.host, p.memory_w);
                    break;
                }
                acc += p.seconds;
            }
            out.push((t, w));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_integrates_phases() {
        let m = SystemPowerModel::paper();
        let mut tr = PowerTrace::new();
        tr.push("compute", 1.0, HostPowerState::Compute, 10.0);
        tr.push("idle", 1.0, HostPowerState::Idle, 5.0);
        let e = tr.total_energy_j(&m);
        let want = (m.host_compute_w + 10.0) + (m.host_idle_w + 5.0);
        assert!((e - want).abs() < 1e-9);
        assert_eq!(tr.total_seconds(), 2.0);
        assert!((tr.average_power_w(&m) - want / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_tracks_phase_boundaries() {
        let m = SystemPowerModel::paper();
        let mut tr = PowerTrace::new();
        tr.push("a", 1.0, HostPowerState::Compute, 0.0);
        tr.push("b", 1.0, HostPowerState::Idle, 0.0);
        let s = tr.sample(&m, 4);
        assert_eq!(s.len(), 4);
        assert!(s[0].1 > s[3].1, "compute phase first, idle later");
    }

    #[test]
    fn empty_trace_is_benign() {
        let m = SystemPowerModel::paper();
        let tr = PowerTrace::new();
        assert_eq!(tr.average_power_w(&m), 0.0);
        assert!(tr.sample(&m, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_rejected() {
        PowerTrace::new().push("x", -1.0, HostPowerState::Idle, 0.0);
    }
}
