//! Per-kernel energy accounting from **simulated command counts** — the
//! bridge between the cycle-level simulator and the component energy
//! model. Where [`crate::components`] answers "what does a steady-state
//! stream burn", this module answers "what did *this kernel run* cost",
//! from the very `PimChannelStats` / `ChannelStats` the device recorded.

use crate::components::EnergyParams;

/// The command counts of one kernel run on one channel (extracted from
/// `pim_core::PimChannelStats` + `pim_dram::ChannelStats`; kept as a plain
/// struct so `pim-energy` stays independent of the device crates).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelActivity {
    /// Single-bank ACT commands (one bank each).
    pub sb_acts: u64,
    /// Single-bank column commands (full transport path).
    pub sb_columns: u64,
    /// All-bank ACT commands (16 banks each).
    pub ab_acts: u64,
    /// AB/AB-PIM column commands.
    pub ab_columns: u64,
    /// Bank blocks actually consumed or produced by PIM units (operand
    /// reads + result writes).
    pub pim_bank_accesses: u64,
    /// PIM instructions executed (triggers delivered).
    pub pim_triggers: u64,
    /// Duration of the run in seconds (for static energy).
    pub seconds: f64,
}

/// Energy of one kernel run, by origin, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelEnergy {
    /// Row activations (SB + all-bank).
    pub activation_j: f64,
    /// Array-side column energy (cell + IOSA) for the banks actually used.
    pub array_j: f64,
    /// Transport energy (global bus + PHY + buffer I/O) — SB columns pay
    /// all of it, AB-PIM columns only the buffer-die share.
    pub transport_j: f64,
    /// PIM execution units.
    pub pim_units_j: f64,
    /// Static/background energy over the run.
    pub static_j: f64,
}

impl KernelEnergy {
    /// Computes the energy of a run from its activity counts.
    pub fn from_activity(p: &EnergyParams, a: &KernelActivity) -> KernelEnergy {
        let pj = 1e-12;
        let activation = (a.sb_acts as f64 + a.ab_acts as f64 * 16.0) * p.act_bank_pj * pj;
        // SB columns touch one bank; AB-PIM columns touch however many
        // banks the units actually consumed (recorded, not assumed).
        let array_accesses = a.sb_columns + a.pim_bank_accesses;
        let array = array_accesses as f64 * (p.col_cell_pj + p.col_iosa_pj) * pj;
        let transport =
            a.sb_columns as f64 * (p.col_global_io_pj + p.col_io_phy_pj + p.col_buffer_io_pj) * pj
                + a.ab_columns as f64 * p.col_buffer_io_pj * pj;
        let pim_units = a.pim_triggers as f64 * p.pim_instr_pj * pj;
        // One channel's share of the device's static draw (16 pCH/device).
        let static_j = p.device_static_w / 16.0 * a.seconds;
        KernelEnergy {
            activation_j: activation,
            array_j: array,
            transport_j: transport,
            pim_units_j: pim_units,
            static_j,
        }
    }

    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.activation_j + self.array_j + self.transport_j + self.pim_units_j + self.static_j
    }

    /// Picojoules per element for a kernel that produced `elements`.
    ///
    /// # Panics
    ///
    /// Panics if `elements == 0`.
    pub fn pj_per_element(&self, elements: u64) -> f64 {
        assert!(elements > 0, "no elements produced");
        self.total_j() * 1e12 / elements as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EnergyParams {
        EnergyParams::hbm2()
    }

    #[test]
    fn sb_stream_pays_full_transport() {
        let a = KernelActivity { sb_columns: 1000, seconds: 1e-6, ..Default::default() };
        let e = KernelEnergy::from_activity(&params(), &a);
        assert!(e.transport_j > e.array_j * 2.0, "transport dominates SB streaming");
        assert_eq!(e.pim_units_j, 0.0);
    }

    #[test]
    fn abpim_stream_skips_bus_and_phy() {
        // 1000 AB columns, 8 banks consumed each, 8 triggers each.
        let a = KernelActivity {
            ab_columns: 1000,
            pim_bank_accesses: 8000,
            pim_triggers: 8000,
            seconds: 1e-6,
            ..Default::default()
        };
        let e = KernelEnergy::from_activity(&params(), &a);
        // Transport is only the buffer-die share.
        let p = params();
        let expected_transport = 1000.0 * p.col_buffer_io_pj * 1e-12;
        assert!((e.transport_j - expected_transport).abs() < 1e-18);
        assert!(e.array_j > e.transport_j, "array work dominates in PIM mode");
        assert!(e.pim_units_j > 0.0);
    }

    #[test]
    fn energy_per_useful_byte_favors_pim() {
        // Same bytes moved: SB moves 1000 blocks through the transport;
        // AB-PIM consumes 1000 blocks at the banks (125 commands × 8).
        let p = params();
        let sb = KernelEnergy::from_activity(
            &p,
            &KernelActivity { sb_columns: 1000, seconds: 0.0, ..Default::default() },
        );
        let ab = KernelEnergy::from_activity(
            &p,
            &KernelActivity {
                ab_columns: 125,
                pim_bank_accesses: 1000,
                pim_triggers: 1000,
                seconds: 0.0,
                ..Default::default()
            },
        );
        let ratio = sb.total_j() / ab.total_j();
        // Matches the Fig. 11 energy/bit story (ACT excluded here): ~3-4×.
        assert!((2.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_bank_acts_cost_16_banks() {
        let p = params();
        let one_sb =
            KernelEnergy::from_activity(&p, &KernelActivity { sb_acts: 16, ..Default::default() });
        let one_ab =
            KernelEnergy::from_activity(&p, &KernelActivity { ab_acts: 1, ..Default::default() });
        assert!((one_sb.activation_j - one_ab.activation_j).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "no elements")]
    fn per_element_requires_elements() {
        KernelEnergy::default().pj_per_element(0);
    }
}
