//! Table I: relative area and energy/op of MAC units in the 20nm DRAM
//! logic process, normalized to the INT16 MAC with a 48-bit accumulator.

use pim_fp16::NumberFormat;

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacUnitModel {
    /// The number format.
    pub format: NumberFormat,
    /// Area relative to the INT16/48-bit-accumulator MAC.
    pub rel_area: f64,
    /// Energy per operation, same normalization.
    pub rel_energy: f64,
}

impl MacUnitModel {
    /// Absolute area in mm² given the paper's FP16 anchor: a full PIM
    /// execution unit (16 FP16 MAC lanes + registers + control) occupies
    /// 0.712 mm² (Table IV); the datapath's MAC share is roughly half, so
    /// one FP16 MAC lane ≈ 0.022 mm² and the Table I ratios scale from
    /// there. Used for the DSE area arithmetic only — relative numbers are
    /// what the paper reports.
    pub fn area_mm2(&self) -> f64 {
        const FP16_LANE_MM2: f64 = 0.022;
        const FP16_REL: f64 = 1.32;
        FP16_LANE_MM2 * self.rel_area / FP16_REL
    }
}

/// The complete Table I, in the paper's row order. Values are copied
/// verbatim from the paper.
pub fn table1() -> Vec<MacUnitModel> {
    vec![
        MacUnitModel { format: NumberFormat::Int16Acc48, rel_area: 1.0, rel_energy: 1.0 },
        MacUnitModel { format: NumberFormat::Int8Acc48, rel_area: 0.45, rel_energy: 0.81 },
        MacUnitModel { format: NumberFormat::Int8Acc32, rel_area: 0.35, rel_energy: 0.77 },
        MacUnitModel { format: NumberFormat::Fp16, rel_area: 1.32, rel_energy: 1.21 },
        MacUnitModel { format: NumberFormat::Bfloat16, rel_area: 1.15, rel_energy: 1.04 },
        MacUnitModel { format: NumberFormat::Fp32, rel_area: 3.96, rel_energy: 1.34 },
    ]
}

/// Looks up a format's row.
pub fn for_format(format: NumberFormat) -> MacUnitModel {
    table1().into_iter().find(|m| m.format == format).expect("every format has a Table I row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_formats_in_order() {
        let t = table1();
        assert_eq!(t.len(), 6);
        for (row, fmt) in t.iter().zip(NumberFormat::ALL.iter()) {
            assert_eq!(row.format, *fmt);
        }
    }

    #[test]
    fn paper_design_choices_hold() {
        // Section III-C's reasoning, checked against the data:
        let fp32 = for_format(NumberFormat::Fp32);
        let fp16 = for_format(NumberFormat::Fp16);
        let bf16 = for_format(NumberFormat::Bfloat16);
        // "the area and energy/op of FP32 MAC units are too large" — 3×
        // the FP16 area.
        assert!(fp32.rel_area / fp16.rel_area > 2.9);
        // "the BFLOAT16 MAC unit is slightly smaller and more energy-
        // efficient than the FP16 MAC unit".
        assert!(bf16.rel_area < fp16.rel_area);
        assert!(bf16.rel_energy < fp16.rel_energy);
        // FP16/BF16 are "comparable to INT16": within ~35%.
        assert!(fp16.rel_area <= 1.35 && bf16.rel_area <= 1.35);
    }

    #[test]
    fn absolute_area_anchor() {
        // 16 FP16 lanes ≈ 0.35 mm², about half the 0.712 mm² unit.
        let fp16 = for_format(NumberFormat::Fp16);
        let lanes16 = fp16.area_mm2() * 16.0;
        assert!((0.3..0.4).contains(&lanes16), "got {lanes16}");
    }
}
