//! Property tests for the static analysis passes: valid kernels stay
//! clean through the program/image round-trip, arbitrary single-word
//! image mutations are either still valid or rejected with an
//! attributable diagnostic, random command streams never panic the
//! protocol linter, and the fence pass flags exactly the unfenced
//! store-then-read shape.

use proptest::collection;
use proptest::prelude::*;

use pim_core::conf;
use pim_core::isa::{Instruction, Operand};
use pim_core::{PimConfig, PimVariant};
use pim_dram::{BankAddr, Command, DataBlock};
use pim_verify::{
    check_fences, lint_stream, strip_fences, verify_image, verify_program, PvCode, StreamEvent,
};

/// The GEMV inner loop shape (`docs/ISA.md` worked example), parameterized.
fn gemv_like(groups: u32, srf: u8, grf: u8) -> Vec<Instruction> {
    vec![
        Instruction::Fill { dst: Operand::srf_m(srf), src: Operand::wdata(), aam: false },
        Instruction::Mac {
            dst: Operand::grf_b(grf),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(srf),
            aam: true,
        },
        Instruction::Jump { target: 1, count: 8 },
        Instruction::Jump { target: 0, count: groups },
        Instruction::Exit,
    ]
}

/// The SLS gather shape, parameterized by lookup count.
fn sls_like(lookups: u32, grf: u8) -> Vec<Instruction> {
    let mut prog =
        vec![Instruction::Fill { dst: Operand::grf_a(grf), src: Operand::even_bank(), aam: false }];
    if lookups > 1 {
        prog.push(Instruction::Add {
            dst: Operand::grf_a(grf),
            src0: Operand::grf_a(grf),
            src1: Operand::even_bank(),
            aam: false,
        });
        prog.push(Instruction::Jump { target: 1, count: lookups - 1 });
    }
    prog.push(Instruction::Exit);
    prog
}

/// Encodes a program into a full 32-word CRF image, EXIT-padded the way
/// the executor pads partial chunks.
fn image_of(program: &[Instruction]) -> Vec<u32> {
    let mut words: Vec<u32> = program.iter().map(Instruction::encode).collect();
    words.resize(32, Instruction::Exit.encode());
    words
}

/// A strategy over valid kernels: the documented GEMV and SLS shapes with
/// randomized loop bounds, register indices and trailing NOP padding.
fn valid_kernel() -> impl Strategy<Value = Vec<Instruction>> {
    prop_oneof![
        (1u32..2048, 0u8..8, 0u8..8).prop_map(|(g, s, r)| gemv_like(g, s, r)),
        (1u32..64, 0u8..8).prop_map(|(l, r)| sls_like(l, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Valid kernels verify clean, and stay clean through the
    /// encode-to-CRF-image round trip on every hardware variant.
    #[test]
    fn valid_kernels_survive_the_image_round_trip(prog in valid_kernel()) {
        for variant in PimVariant::ALL {
            let cfg = PimConfig::with_variant(variant);
            let direct = verify_program(&cfg, &prog);
            prop_assert!(direct.is_clean(), "{variant:?} direct:\n{direct}");
            let image = verify_image(&cfg, &image_of(&prog));
            prop_assert!(image.is_clean(), "{variant:?} image:\n{image}");
        }
    }

    /// Mutating one word of a valid CRF image never panics the verifier,
    /// is deterministic, and any undecodable word is pinned as PV011 at
    /// the mutated position.
    #[test]
    fn single_word_mutations_are_attributed(
        prog in valid_kernel(),
        pos in 0usize..32,
        word in any::<u32>(),
    ) {
        let cfg = PimConfig::paper();
        let mut words = image_of(&prog);
        prop_assume!(words[pos] != word);
        words[pos] = word;
        let report = verify_image(&cfg, &words);
        prop_assert_eq!(&report, &verify_image(&cfg, &words), "non-deterministic");
        if Instruction::decode(word).is_err() {
            prop_assert!(report.has_code(PvCode::Pv011UndecodableWord), "{report}");
        } else {
            // Still decodable: the verifier must reach a verdict (clean or
            // coded diagnostics) and render it without panicking.
            let _ = report.render("mutated");
        }
    }

    /// The protocol linter is total and deterministic over arbitrary
    /// command streams.
    #[test]
    fn protocol_linter_never_panics(cmds in collection::vec(arb_command(), 0..40)) {
        let events: Vec<StreamEvent> =
            cmds.into_iter().enumerate().map(|(i, c)| StreamEvent::cmd(i, c)).collect();
        let a = lint_stream(&events);
        let b = lint_stream(&events);
        prop_assert_eq!(a, b);
    }

    /// The fence-race detector flags the unfenced store-then-read at any
    /// address, and a single fence between the trigger and the readback
    /// always clears it.
    #[test]
    fn fence_detector_is_exact_for_store_then_read(
        row in 0u32..4096,
        col in 0u32..32,
        fenced in any::<bool>(),
    ) {
        let cfg = PimConfig::paper();
        let events = store_then_read(row, col, fenced);
        let report = check_fences(&cfg, &events);
        if fenced {
            prop_assert!(report.is_clean(), "fenced:\n{report}");
            let stripped = check_fences(&cfg, &strip_fences(&events));
            prop_assert!(stripped.has_code(PvCode::Pv201UnfencedHostRead), "{stripped}");
        } else {
            prop_assert!(report.has_code(PvCode::Pv201UnfencedHostRead), "{report}");
        }
    }
}

/// Strategy over single DRAM commands (bank addresses in range, rows
/// spanning both data and configuration space).
fn arb_command() -> impl Strategy<Value = Command> {
    let bank = (0u8..4, 0u8..4).prop_map(|(bg, ba)| BankAddr::new(bg, ba));
    let row = prop_oneof![0u32..64, conf::PIM_CONF_FIRST_ROW..conf::PIM_CONF_FIRST_ROW + 6];
    prop_oneof![
        (bank.clone(), row).prop_map(|(bank, row)| Command::Act { bank, row }),
        bank.clone().prop_map(|bank| Command::Pre { bank }),
        Just(Command::PreAll),
        Just(Command::Ref),
        (bank.clone(), 0u32..32).prop_map(|(bank, col)| Command::Rd { bank, col }),
        (bank, 0u32..32, any::<u8>()).prop_map(|(bank, col, b)| {
            let data: DataBlock = [b; 32];
            Command::Wr { bank, col, data }
        }),
    ]
}

/// The full store-then-read choreography: program a bank-storing kernel,
/// fire one write trigger at (`row`, `col`), optionally fence, then read
/// the same address back from plain all-bank mode.
fn store_then_read(row: u32, col: u32, fenced: bool) -> Vec<StreamEvent> {
    let bank = BankAddr::new(0, 0);
    let program = [
        Instruction::Mov {
            dst: Operand::even_bank(),
            src: Operand::wdata(),
            relu: false,
            aam: false,
        },
        Instruction::Exit,
    ];
    let mut crf: DataBlock = [0u8; 32];
    for (i, inst) in program.iter().enumerate() {
        crf[i * 4..i * 4 + 4].copy_from_slice(&inst.encode().to_le_bytes());
    }

    let mut cmds = conf::enter_ab_sequence();
    cmds.push(Command::Act { bank, row: conf::CRF_ROW });
    cmds.push(Command::Wr { bank, col: 0, data: crf });
    cmds.push(Command::Pre { bank });
    cmds.extend(conf::set_pim_op_mode_sequence(true));
    cmds.push(Command::Act { bank, row });
    cmds.push(Command::Wr { bank, col, data: [0x3C; 32] });
    cmds.push(Command::Pre { bank });
    cmds.extend(conf::set_pim_op_mode_sequence(false));

    let mut events: Vec<StreamEvent> =
        cmds.into_iter().enumerate().map(|(i, c)| StreamEvent::cmd(i, c)).collect();
    if fenced {
        events.push(StreamEvent::fence(events.len()));
    }
    let n = events.len();
    for (i, c) in [Command::Act { bank, row }, Command::Rd { bank, col }, Command::Pre { bank }]
        .into_iter()
        .enumerate()
    {
        events.push(StreamEvent::cmd(n + i, c));
    }
    events
}

/// The worked example in `docs/ISA.md` ("Worked example: the GEMV inner
/// loop") assembles and passes the kernel verifier on every variant.
#[test]
fn documented_worked_example_verifies() {
    let doc = include_str!("../../../docs/ISA.md");
    let marker = "## Worked example";
    let start = doc.find(marker).expect("ISA.md lost its worked example");
    let block = &doc[start..];
    let open = block.find("```text").expect("worked example lost its code block") + 7;
    let close = block[open..].find("```").expect("unterminated code block") + open;
    let source = &block[open..close];
    let prog = pim_core::asm::assemble(source)
        .unwrap_or_else(|e| panic!("ISA.md worked example no longer assembles: {e}"));
    for variant in PimVariant::ALL {
        let report = verify_program(&PimConfig::with_variant(variant), &prog);
        assert!(report.is_clean(), "{variant:?}:\n{report}");
    }
}
