//! The fence-race detector: a happens-before pass over a command stream
//! that finds host reads of PIM-written state with no intervening fence.
//!
//! The paper's software stack inserts "a barrier for every 8 DRAM
//! commands" (Section VII-D) because the memory controller may reorder
//! commands between barriers; a host read that consumes a PIM result
//! before the producing trigger is guaranteed drained is a race. The
//! detector replays the stream through the [`crate::ModeTracker`] and a
//! *shadow PIM unit* (a real [`pim_core::PimUnit`] fed zero bank data), so
//! it knows — instruction-accurately — which bank addresses and which GRF
//! entries each trigger dirties. A fence clears the dirty sets; a host
//! read of a still-dirty location reports `PV201` (bank data) or `PV202`
//! (memory-mapped GRF readback).

use crate::diag::{PvCode, Report};
use crate::protocol::{Effect, ModeTracker};
use crate::stream::{StreamEvent, StreamItem};
use pim_core::isa::{Instruction, OperandKind};
use pim_core::{LaneVec, PimConfig, PimMode, PimUnit, Trigger, TriggerKind};
use std::collections::HashSet;

/// `(file, index)` GRF coordinates: file 0 = GRF_A, 1 = GRF_B.
type GrfSlot = (u8, usize);

fn grf_dst(instr: &Instruction, col: u32) -> Option<GrfSlot> {
    let (dst, aam) = match instr {
        Instruction::Mov { dst, aam, .. }
        | Instruction::Fill { dst, aam, .. }
        | Instruction::Add { dst, aam, .. }
        | Instruction::Mul { dst, aam, .. }
        | Instruction::Mac { dst, aam, .. }
        | Instruction::Mad { dst, aam, .. } => (dst, *aam),
        _ => return None,
    };
    let file = match dst.kind {
        OperandKind::GrfA => 0,
        OperandKind::GrfB => 1,
        _ => return None,
    };
    let idx = if aam { (col & 7) as usize } else { dst.idx as usize };
    Some((file, idx))
}

fn grf_slot_of_col(col: u32) -> GrfSlot {
    let c = (col % 16) as usize;
    if c < 8 {
        (0, c)
    } else {
        (1, c - 8)
    }
}

/// Runs the fence-race pass over a stream.
///
/// `config` selects the variant whose semantics the shadow unit follows
/// (it only affects which instructions are legal — the data path is
/// variant-independent at this level).
pub fn check_fences(config: &PimConfig, events: &[StreamEvent]) -> Report {
    let _ = config;
    let mut report = Report::new();
    let mut tracker = ModeTracker::new();
    // Protocol diagnostics are the other pass's job; discard them here.
    let mut scratch = Report::new();
    let mut unit = PimUnit::new();
    let zero = LaneVec::from_block(&[0u8; 32]);
    let mut dirty_bank: HashSet<(u32, u32)> = HashSet::new();
    let mut dirty_grf: HashSet<GrfSlot> = HashSet::new();
    for ev in events {
        let cmd = match &ev.item {
            StreamItem::Fence => {
                dirty_bank.clear();
                dirty_grf.clear();
                continue;
            }
            StreamItem::Cmd(c) => c,
        };
        match tracker.apply(cmd, &ev.site, &mut scratch) {
            Effect::CrfLoad { col, data } => {
                let base = (col as usize % 4) * 8;
                for i in 0..8 {
                    let b = i * 4;
                    let w = u32::from_le_bytes([data[b], data[b + 1], data[b + 2], data[b + 3]]);
                    unit.crf_mut().write_word(base + i, w);
                }
            }
            Effect::ModeChange { to: PimMode::AllBankPim } => unit.reset_sequencer(),
            Effect::ModeChange { .. } => {}
            Effect::Trigger { write_data, row, col } => {
                let kind = match write_data {
                    Some(d) => TriggerKind::Write(LaneVec::from_block(&d)),
                    None => TriggerKind::Read,
                };
                let out =
                    unit.execute(&Trigger { kind, row, col, even_data: zero, odd_data: zero });
                if out.bank_write.is_some() {
                    dirty_bank.insert((row, col));
                }
                if let Some(slot) = out.executed.as_ref().and_then(|i| grf_dst(i, col)) {
                    dirty_grf.insert(slot);
                }
            }
            Effect::DataRead { row, col } => {
                if dirty_bank.contains(&(row, col)) {
                    report.error(
                        PvCode::Pv201UnfencedHostRead,
                        ev.site.clone(),
                        format!(
                            "host read of (row {row}, col {col}) written by a PIM \
                             trigger with no intervening fence"
                        ),
                    );
                }
            }
            Effect::GrfRead { col } => {
                let (file, idx) = grf_slot_of_col(col);
                if dirty_grf.contains(&(file, idx)) {
                    let name = if file == 0 { "GRF_A" } else { "GRF_B" };
                    report.error(
                        PvCode::Pv202UnfencedGrfReadback,
                        ev.site.clone(),
                        format!(
                            "readback of {name}[{idx}] written by a PIM trigger \
                             with no intervening fence"
                        ),
                    );
                }
            }
            Effect::DataWrite { .. } | Effect::None => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{strip_fences, StreamItem};
    use pim_core::conf;
    use pim_core::isa::{Instruction, Operand};
    use pim_dram::{BankAddr, Command, DataBlock};

    fn bank() -> BankAddr {
        BankAddr::new(0, 0)
    }

    fn crf_block(program: &[Instruction]) -> DataBlock {
        let mut data: DataBlock = [0u8; 32];
        for i in 0..8 {
            let word = program.get(i).unwrap_or(&Instruction::Exit).encode();
            data[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        data
    }

    /// A kernel that stores results to the even bank, followed by a host
    /// read of the same address.
    fn store_then_read(fence_between: bool) -> Vec<StreamEvent> {
        let program = vec![
            Instruction::Mov {
                dst: Operand::even_bank(),
                src: Operand::grf_a(0),
                relu: false,
                aam: false,
            },
            Instruction::Exit,
        ];
        let mut cmds = conf::enter_ab_sequence();
        cmds.push(Command::Act { bank: bank(), row: conf::CRF_ROW });
        cmds.push(Command::Wr { bank: bank(), col: 0, data: crf_block(&program) });
        cmds.push(Command::Pre { bank: bank() });
        cmds.extend(conf::set_pim_op_mode_sequence(true));
        cmds.push(Command::Act { bank: bank(), row: 3 });
        cmds.push(Command::Rd { bank: bank(), col: 5 });
        cmds.push(Command::Pre { bank: bank() });
        cmds.extend(conf::set_pim_op_mode_sequence(false));
        cmds.extend(conf::exit_ab_sequence());
        let mut events: Vec<StreamEvent> =
            cmds.into_iter().enumerate().map(|(i, c)| StreamEvent::cmd(i, c)).collect();
        if fence_between {
            events.push(StreamEvent {
                item: StreamItem::Fence,
                site: crate::Site::Command { index: events.len(), desc: "fence".into() },
            });
        }
        // Host readback of the address the MOV stored to.
        let n = events.len();
        for (i, c) in [
            Command::Act { bank: bank(), row: 3 },
            Command::Rd { bank: bank(), col: 5 },
            Command::Pre { bank: bank() },
        ]
        .into_iter()
        .enumerate()
        {
            events.push(StreamEvent::cmd(n + i, c));
        }
        events
    }

    #[test]
    fn unfenced_bank_read_is_pv201() {
        let r = check_fences(&PimConfig::paper(), &store_then_read(false));
        assert!(r.has_code(PvCode::Pv201UnfencedHostRead), "expected PV201:\n{r}");
    }

    #[test]
    fn fenced_bank_read_is_clean() {
        let r = check_fences(&PimConfig::paper(), &store_then_read(true));
        assert!(r.is_clean(), "unexpected diagnostics:\n{r}");
    }

    #[test]
    fn stripping_fences_reintroduces_the_race() {
        let fenced = store_then_read(true);
        let r = check_fences(&PimConfig::paper(), &strip_fences(&fenced));
        assert!(r.has_code(PvCode::Pv201UnfencedHostRead));
    }

    /// A kernel accumulating into GRF_A[0], then a memory-mapped GRF
    /// readback of that entry.
    fn accumulate_then_readback(fence_between: bool) -> Vec<StreamEvent> {
        let program = vec![
            Instruction::Fill { dst: Operand::grf_a(0), src: Operand::even_bank(), aam: false },
            Instruction::Exit,
        ];
        let mut cmds = conf::enter_ab_sequence();
        cmds.push(Command::Act { bank: bank(), row: conf::CRF_ROW });
        cmds.push(Command::Wr { bank: bank(), col: 0, data: crf_block(&program) });
        cmds.push(Command::Pre { bank: bank() });
        cmds.extend(conf::set_pim_op_mode_sequence(true));
        cmds.push(Command::Act { bank: bank(), row: 3 });
        cmds.push(Command::Rd { bank: bank(), col: 0 });
        cmds.push(Command::Pre { bank: bank() });
        cmds.extend(conf::set_pim_op_mode_sequence(false));
        cmds.extend(conf::exit_ab_sequence());
        let mut events: Vec<StreamEvent> =
            cmds.into_iter().enumerate().map(|(i, c)| StreamEvent::cmd(i, c)).collect();
        if fence_between {
            events.push(StreamEvent {
                item: StreamItem::Fence,
                site: crate::Site::Command { index: events.len(), desc: "fence".into() },
            });
        }
        let n = events.len();
        for (i, c) in [
            Command::Act { bank: bank(), row: conf::GRF_ROW },
            Command::Rd { bank: bank(), col: 0 },
            Command::Pre { bank: bank() },
        ]
        .into_iter()
        .enumerate()
        {
            events.push(StreamEvent::cmd(n + i, c));
        }
        events
    }

    #[test]
    fn unfenced_grf_readback_is_pv202() {
        let r = check_fences(&PimConfig::paper(), &accumulate_then_readback(false));
        assert!(r.has_code(PvCode::Pv202UnfencedGrfReadback), "expected PV202:\n{r}");
    }

    #[test]
    fn fenced_grf_readback_is_clean() {
        let r = check_fences(&PimConfig::paper(), &accumulate_then_readback(true));
        assert!(r.is_clean(), "unexpected diagnostics:\n{r}");
    }

    #[test]
    fn reading_a_different_grf_entry_is_clean() {
        // The kernel writes GRF_A[0]; reading GRF_B[3] (column 11) races
        // with nothing. The readback RD is the last RD in the stream.
        let mut events = accumulate_then_readback(false);
        if let Some(ev) =
            events.iter_mut().rev().find(|e| matches!(e.item, StreamItem::Cmd(Command::Rd { .. })))
        {
            if let StreamItem::Cmd(Command::Rd { col, .. }) = &mut ev.item {
                *col = 11;
            }
        }
        let r = check_fences(&PimConfig::paper(), &events);
        assert!(r.is_clean(), "unexpected diagnostics:\n{r}");
    }
}
