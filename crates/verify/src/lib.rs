//! `pim-verify` — static analysis for the PIM software stack.
//!
//! Three passes, all running *before* (or instead of) simulation:
//!
//! 1. **Kernel verifier** ([`verify_program`], [`verify_image`]): checks a
//!    microkernel — per-instruction legality on the configured variant,
//!    register-index bounds, control flow (backward-only JUMPs, guaranteed
//!    EXIT, dead code), data flow (read-before-write, dead writes, mixed
//!    AAM addressing), and the 5-stage pipeline's bank read-after-write
//!    hazard window (Section IV-B).
//! 2. **Protocol linter** ([`lint_stream`], [`ModeTracker`]): replays a
//!    standard-DRAM command stream through a mirror of the SB / AB /
//!    AB-PIM mode machine (Section III-B, Fig. 3) and flags sequences the
//!    device would reject, silently ignore, or execute with surprising
//!    results.
//! 3. **Fence-race detector** ([`check_fences`]): a happens-before pass
//!    that finds host reads of PIM-written bank addresses or GRF entries
//!    with no intervening fence (the Section VII-D barrier contract).
//!
//! Every diagnostic carries a stable `PV###` code ([`PvCode`]) documented
//! in `docs/LINTING.md`; [`Report::render`] produces `rustc`-style output.
//! The `pimlint` binary (in `pim-bench`) drives all three passes from the
//! command line; `pim-runtime`'s strict mode runs the kernel verifier at
//! launch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod fence;
mod kernel;
mod protocol;
mod stream;

pub use diag::{Diagnostic, PvCode, Report, Severity, Site};
pub use fence::check_fences;
pub use kernel::{code_of_violation, verify_image, verify_program};
pub use protocol::{lint_stream, Effect, ModeTracker};
pub use stream::{
    events_from_batches, events_from_trace_entries, parse_trace, strip_fences, StreamEvent,
    StreamItem,
};
