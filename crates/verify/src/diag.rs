//! Diagnostics: stable `PV###` codes, severities, sites, and the
//! rustc-style report rendering shared by every pass and by `pimlint`.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong — the program may still be what
    /// the author intended (e.g. dead code, a trigger with no program).
    Warning,
    /// A violated invariant: the program or stream cannot behave as the
    /// architecture specifies.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. `PV0xx` come from the kernel verifier (and the
/// assembler/trace front ends), `PV1xx` from the command-stream protocol
/// linter, `PV2xx` from the fence-race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PvCode {
    /// Operand kind cannot be a destination (Table III routing).
    Pv001BadDestination,
    /// More than one bank operand per instruction.
    Pv002MultipleBankOperands,
    /// More than one scalar (SRF) operand per instruction.
    Pv003MultipleScalarOperands,
    /// Accumulating op reads the same GRF file twice.
    Pv004SameGrfFileTwice,
    /// Arithmetic destination is not a GRF.
    Pv005NonGrfDestination,
    /// Scalar operand in a position the datapath cannot route.
    Pv006ScalarMisplaced,
    /// JUMP target beyond the CRF (or beyond the program).
    Pv007JumpTargetOutOfRange,
    /// JUMP with a zero iteration count.
    Pv008JumpZeroCount,
    /// Program longer than the CRF.
    Pv009ProgramTooLong,
    /// Empty program (the sequencer would run off uninitialized CRF words).
    Pv010EmptyProgram,
    /// CRF image word that does not decode to any instruction.
    Pv011UndecodableWord,
    /// JUMP that is not a backward loop (target at or past the JUMP).
    Pv012NonBackwardJump,
    /// Execution can fall off the program without reaching an EXIT.
    Pv013NoExit,
    /// Instruction after the terminating EXIT can never execute.
    Pv014DeadCode,
    /// GRF entry read before any instruction writes it.
    Pv015ReadBeforeWrite,
    /// GRF entry overwritten before anything reads it (dead write).
    Pv016DeadWrite,
    /// Same GRF file accessed both with and without AAM.
    Pv017MixedAam,
    /// Bank read inside the 5-stage write-back window of a bank write.
    Pv018BankHazard,
    /// Register index beyond the configured file size.
    Pv019IndexOutOfBounds,
    /// Assembly syntax error (from `pim_core::asm`).
    Pv030AsmSyntax,
    /// Trace syntax error (from the `.trace` parser).
    Pv031TraceSyntax,
    /// Column or precharge command with no open row.
    Pv101NoOpenRow,
    /// ACT while a row is already open (single open row per bank / AB set).
    Pv102ActWhileOpen,
    /// PIM_OP_MODE write outside all-bank mode (silently ignored by hw).
    Pv103PimOpModeOutsideAb,
    /// CRF load while AB-PIM is armed.
    Pv104CrfLoadWhileArmed,
    /// Data-row column access in plain AB mode (broadcast/lock-step).
    Pv105DataAccessInPlainAb,
    /// Armed mode transition cancelled by an intervening command.
    Pv106TransitionCancelled,
    /// Entering AB mode with a bank row still open.
    Pv107EnterAbWithOpenBank,
    /// Exit straight from AB-PIM to SB without disabling PIM_OP_MODE.
    Pv108ExitFromAbPim,
    /// Refresh issued while a row is open.
    Pv109RefreshWithOpenRow,
    /// Trigger issued with no CRF program loaded.
    Pv110TriggerWithoutProgram,
    /// Stream ends outside single-bank mode.
    Pv111EndsOutsideSb,
    /// Host read of a PIM-written address with no intervening fence.
    Pv201UnfencedHostRead,
    /// GRF readback of a PIM-written entry with no intervening fence.
    Pv202UnfencedGrfReadback,
}

impl PvCode {
    /// The `PV###` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            PvCode::Pv001BadDestination => "PV001",
            PvCode::Pv002MultipleBankOperands => "PV002",
            PvCode::Pv003MultipleScalarOperands => "PV003",
            PvCode::Pv004SameGrfFileTwice => "PV004",
            PvCode::Pv005NonGrfDestination => "PV005",
            PvCode::Pv006ScalarMisplaced => "PV006",
            PvCode::Pv007JumpTargetOutOfRange => "PV007",
            PvCode::Pv008JumpZeroCount => "PV008",
            PvCode::Pv009ProgramTooLong => "PV009",
            PvCode::Pv010EmptyProgram => "PV010",
            PvCode::Pv011UndecodableWord => "PV011",
            PvCode::Pv012NonBackwardJump => "PV012",
            PvCode::Pv013NoExit => "PV013",
            PvCode::Pv014DeadCode => "PV014",
            PvCode::Pv015ReadBeforeWrite => "PV015",
            PvCode::Pv016DeadWrite => "PV016",
            PvCode::Pv017MixedAam => "PV017",
            PvCode::Pv018BankHazard => "PV018",
            PvCode::Pv019IndexOutOfBounds => "PV019",
            PvCode::Pv030AsmSyntax => "PV030",
            PvCode::Pv031TraceSyntax => "PV031",
            PvCode::Pv101NoOpenRow => "PV101",
            PvCode::Pv102ActWhileOpen => "PV102",
            PvCode::Pv103PimOpModeOutsideAb => "PV103",
            PvCode::Pv104CrfLoadWhileArmed => "PV104",
            PvCode::Pv105DataAccessInPlainAb => "PV105",
            PvCode::Pv106TransitionCancelled => "PV106",
            PvCode::Pv107EnterAbWithOpenBank => "PV107",
            PvCode::Pv108ExitFromAbPim => "PV108",
            PvCode::Pv109RefreshWithOpenRow => "PV109",
            PvCode::Pv110TriggerWithoutProgram => "PV110",
            PvCode::Pv111EndsOutsideSb => "PV111",
            PvCode::Pv201UnfencedHostRead => "PV201",
            PvCode::Pv202UnfencedGrfReadback => "PV202",
        }
    }

    /// One-line summary of what the code means (the `docs/LINTING.md`
    /// table is generated from the same text).
    pub fn summary(self) -> &'static str {
        match self {
            PvCode::Pv001BadDestination => "operand kind cannot be a destination",
            PvCode::Pv002MultipleBankOperands => "more than one bank operand per instruction",
            PvCode::Pv003MultipleScalarOperands => "more than one scalar (SRF) operand",
            PvCode::Pv004SameGrfFileTwice => "accumulating op reads the same GRF file twice",
            PvCode::Pv005NonGrfDestination => "arithmetic destination is not a GRF",
            PvCode::Pv006ScalarMisplaced => "scalar operand in an unroutable position",
            PvCode::Pv007JumpTargetOutOfRange => "JUMP target outside the CRF/program",
            PvCode::Pv008JumpZeroCount => "JUMP with zero iterations",
            PvCode::Pv009ProgramTooLong => "program longer than the 32-entry CRF",
            PvCode::Pv010EmptyProgram => "empty program",
            PvCode::Pv011UndecodableWord => "CRF word does not decode to an instruction",
            PvCode::Pv012NonBackwardJump => "JUMP is not a backward loop",
            PvCode::Pv013NoExit => "execution can fall off the program without EXIT",
            PvCode::Pv014DeadCode => "instruction after EXIT can never execute",
            PvCode::Pv015ReadBeforeWrite => "GRF entry read before it is written",
            PvCode::Pv016DeadWrite => "GRF write overwritten before any read",
            PvCode::Pv017MixedAam => "GRF file accessed both with and without AAM",
            PvCode::Pv018BankHazard => "bank read inside the write-back window of a bank write",
            PvCode::Pv019IndexOutOfBounds => "register index beyond the configured file size",
            PvCode::Pv030AsmSyntax => "assembly syntax error",
            PvCode::Pv031TraceSyntax => "trace syntax error",
            PvCode::Pv101NoOpenRow => "column/precharge command with no open row",
            PvCode::Pv102ActWhileOpen => "ACT while a row is already open",
            PvCode::Pv103PimOpModeOutsideAb => "PIM_OP_MODE write outside AB mode is ignored",
            PvCode::Pv104CrfLoadWhileArmed => "CRF load while AB-PIM is armed",
            PvCode::Pv105DataAccessInPlainAb => "data-row column access in plain AB mode",
            PvCode::Pv106TransitionCancelled => "armed mode transition cancelled mid-sequence",
            PvCode::Pv107EnterAbWithOpenBank => "entering AB mode with a bank row open",
            PvCode::Pv108ExitFromAbPim => "exit from AB-PIM to SB without disabling PIM_OP_MODE",
            PvCode::Pv109RefreshWithOpenRow => "refresh with a row open",
            PvCode::Pv110TriggerWithoutProgram => "trigger with no CRF program loaded",
            PvCode::Pv111EndsOutsideSb => "stream ends outside single-bank mode",
            PvCode::Pv201UnfencedHostRead => "host read of PIM-written address without a fence",
            PvCode::Pv202UnfencedGrfReadback => "GRF readback of a dirty entry without a fence",
        }
    }

    /// Every code, in numeric order (drives `pimlint --codes` and the
    /// documentation table).
    pub const ALL: [PvCode; 34] = [
        PvCode::Pv001BadDestination,
        PvCode::Pv002MultipleBankOperands,
        PvCode::Pv003MultipleScalarOperands,
        PvCode::Pv004SameGrfFileTwice,
        PvCode::Pv005NonGrfDestination,
        PvCode::Pv006ScalarMisplaced,
        PvCode::Pv007JumpTargetOutOfRange,
        PvCode::Pv008JumpZeroCount,
        PvCode::Pv009ProgramTooLong,
        PvCode::Pv010EmptyProgram,
        PvCode::Pv011UndecodableWord,
        PvCode::Pv012NonBackwardJump,
        PvCode::Pv013NoExit,
        PvCode::Pv014DeadCode,
        PvCode::Pv015ReadBeforeWrite,
        PvCode::Pv016DeadWrite,
        PvCode::Pv017MixedAam,
        PvCode::Pv018BankHazard,
        PvCode::Pv019IndexOutOfBounds,
        PvCode::Pv030AsmSyntax,
        PvCode::Pv031TraceSyntax,
        PvCode::Pv101NoOpenRow,
        PvCode::Pv102ActWhileOpen,
        PvCode::Pv103PimOpModeOutsideAb,
        PvCode::Pv104CrfLoadWhileArmed,
        PvCode::Pv105DataAccessInPlainAb,
        PvCode::Pv106TransitionCancelled,
        PvCode::Pv107EnterAbWithOpenBank,
        PvCode::Pv108ExitFromAbPim,
        PvCode::Pv109RefreshWithOpenRow,
        PvCode::Pv110TriggerWithoutProgram,
        PvCode::Pv111EndsOutsideSb,
        PvCode::Pv201UnfencedHostRead,
        PvCode::Pv202UnfencedGrfReadback,
    ];
}

impl fmt::Display for PvCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Site {
    /// An instruction index within a program.
    Instruction(usize),
    /// A word index within a CRF image.
    Word(usize),
    /// A line/column in a text source (`.pim` or `.trace`).
    Line {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
    },
    /// A command within a flat stream (0-based), with its display form.
    Command {
        /// Index in the stream.
        index: usize,
        /// Rendered command, e.g. `ACT BG0/BA0 row=31`.
        desc: String,
    },
    /// A command within a [`pim_host::Batch`] list.
    Batch {
        /// Batch index.
        batch: usize,
        /// Command index within the batch.
        command: usize,
        /// The batch's label, if any.
        label: Option<String>,
    },
    /// The stream or program as a whole (e.g. "ends outside SB").
    Whole,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Instruction(i) => write!(f, "instruction {i}"),
            Site::Word(i) => write!(f, "word {i}"),
            Site::Line { line, col } => write!(f, "{line}:{col}"),
            Site::Command { index, desc } => write!(f, "command {index} ({desc})"),
            Site::Batch { batch, command, label: Some(l) } => {
                write!(f, "batch {batch} `{l}` command {command}")
            }
            Site::Batch { batch, command, label: None } => {
                write!(f, "batch {batch} command {command}")
            }
            Site::Whole => f.write_str("end of input"),
        }
    }
}

/// One finding of a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: PvCode,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description of this specific occurrence.
    pub message: String,
    /// What the diagnostic points at.
    pub site: Site,
}

impl Diagnostic {
    /// Renders one diagnostic rustc-style; `origin` names the source
    /// (file, kernel, ...) in the `-->` location line.
    pub fn render(&self, origin: &str) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}\n",
            self.severity, self.code, self.message, origin, self.site
        )
    }
}

/// The outcome of running one or more passes over one subject.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Findings in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Records an error.
    pub fn error(&mut self, code: PvCode, site: Site, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            site,
        });
    }

    /// Records a warning.
    pub fn warn(&mut self, code: PvCode, site: Site, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            site,
        });
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` if any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// `true` if nothing at all was recorded (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` if any diagnostic carries `code`.
    pub fn has_code(&self, code: PvCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders all diagnostics rustc-style, with a trailing summary line;
    /// `origin` names the subject (file name, kernel name, ...).
    pub fn render(&self, origin: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(origin));
        }
        if !self.diagnostics.is_empty() {
            out.push_str(&format!(
                "{origin}: {} error(s), {} warning(s)\n",
                self.error_count(),
                self.warning_count()
            ));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        f.write_str(self.render("input").trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        let strs: Vec<&str> = PvCode::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), PvCode::ALL.len(), "duplicate PV codes");
        assert_eq!(strs, sorted, "ALL must be in numeric order");
        for c in PvCode::ALL {
            assert!(c.as_str().starts_with("PV"));
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.error(PvCode::Pv007JumpTargetOutOfRange, Site::Instruction(3), "JUMP target 40");
        r.warn(PvCode::Pv014DeadCode, Site::Instruction(5), "unreachable");
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(r.has_code(PvCode::Pv014DeadCode));
        let text = r.render("k.pim");
        assert!(text.contains("error[PV007]"), "{text}");
        assert!(text.contains("warning[PV014]"), "{text}");
        assert!(text.contains("--> k.pim:instruction 3"), "{text}");
        assert!(text.contains("1 error(s), 1 warning(s)"), "{text}");
    }
}
