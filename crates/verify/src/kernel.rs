//! The static kernel verifier: whole-program checks over a microkernel
//! that [`pim_core::isa::Instruction::validate`] cannot see in isolation.
//!
//! The pass is deliberately conservative about *warnings* (a clean bill
//! from the verifier should mean "this program is shaped like the paper's
//! kernels"), but *errors* are reserved for programs that provably cannot
//! execute as written on the Section IV microarchitecture:
//!
//! * structural operand rules per instruction (PV001–PV008, via
//!   [`pim_core::PimConfig::instruction_legal`], so the 2-bank-access
//!   variant legalizes its merged loads);
//! * program shape — size, emptiness, JUMP topology, guaranteed EXIT
//!   (PV007, PV009, PV010, PV012, PV013);
//! * data flow — read-before-write, dead writes, AAM consistency
//!   (PV014–PV017), with the host-preload conventions of the software
//!   stack baked in (SRF entries and MAC accumulators are seeded by the
//!   executor's `srf`/`clear_grf_b` phases, so they are exempt);
//! * the 5-stage pipeline's bank write→read window (PV018), modeling the
//!   write-back latency of [`pim_core::PimUnit::PIPELINE_STAGES`].

use crate::diag::{PvCode, Report, Site};
use pim_core::isa::{Instruction, Operand, OperandKind, ValidateError};
use pim_core::{PimConfig, PimUnit};

/// Maps a structural [`ValidateError`] to its stable code.
pub fn code_of_violation(v: &ValidateError) -> PvCode {
    match v {
        ValidateError::BadDestination(_) => PvCode::Pv001BadDestination,
        ValidateError::MultipleBankOperands => PvCode::Pv002MultipleBankOperands,
        ValidateError::MultipleScalarOperands => PvCode::Pv003MultipleScalarOperands,
        ValidateError::SameGrfFileTwice => PvCode::Pv004SameGrfFileTwice,
        ValidateError::NonGrfDestination(_) => PvCode::Pv005NonGrfDestination,
        ValidateError::ScalarOperandMisplaced(_) => PvCode::Pv006ScalarMisplaced,
        ValidateError::JumpTargetOutOfRange(_) => PvCode::Pv007JumpTargetOutOfRange,
        ValidateError::JumpZeroCount => PvCode::Pv008JumpZeroCount,
    }
}

/// The destination operand, if the instruction writes a register or bank.
fn dst_of(i: &Instruction) -> Option<Operand> {
    match *i {
        Instruction::Mov { dst, .. }
        | Instruction::Fill { dst, .. }
        | Instruction::Add { dst, .. }
        | Instruction::Mul { dst, .. }
        | Instruction::Mac { dst, .. }
        | Instruction::Mad { dst, .. } => Some(dst),
        _ => None,
    }
}

/// The explicit source operands.
fn srcs_of(i: &Instruction) -> Vec<Operand> {
    match *i {
        Instruction::Mov { src, .. } | Instruction::Fill { src, .. } => vec![src],
        Instruction::Add { src0, src1, .. }
        | Instruction::Mul { src0, src1, .. }
        | Instruction::Mac { src0, src1, .. }
        | Instruction::Mad { src0, src1, .. } => vec![src0, src1],
        _ => Vec::new(),
    }
}

/// GRF file selector: 0 = GRF_A, 1 = GRF_B (None for non-GRF kinds).
fn grf_file(kind: OperandKind) -> Option<usize> {
    match kind {
        OperandKind::GrfA => Some(0),
        OperandKind::GrfB => Some(1),
        _ => None,
    }
}

/// Per-file write-tracking state for the data-flow warnings.
#[derive(Default)]
struct GrfState {
    /// Entry has been written at least once.
    written: [[bool; 8]; 2],
    /// PV015 already reported for this entry (report each once).
    reported_rbw: [[bool; 8]; 2],
    /// Instruction index of the last unread non-AAM write, per entry.
    unread_write: [[Option<usize>; 8]; 2],
    /// File accessed with AAM / without AAM anywhere in the program.
    aam_access: [bool; 2],
    plain_access: [bool; 2],
}

/// Verifies a decoded program against `config`.
///
/// Returns every finding; [`Report::has_errors`] distinguishes programs
/// that must be rejected from ones that merely look suspicious.
pub fn verify_program(config: &PimConfig, program: &[Instruction]) -> Report {
    let mut r = Report::new();
    if program.is_empty() {
        r.error(
            PvCode::Pv010EmptyProgram,
            Site::Whole,
            "empty program: the sequencer would execute whatever the CRF last held",
        );
        return r;
    }
    if program.len() > config.crf_entries {
        r.error(
            PvCode::Pv009ProgramTooLong,
            Site::Whole,
            format!(
                "program has {} instructions; the CRF holds {}",
                program.len(),
                config.crf_entries
            ),
        );
        return r;
    }

    // Per-instruction structural rules and register-index bounds.
    for (idx, i) in program.iter().enumerate() {
        if let Err(v) = config.instruction_legal(i) {
            r.error(code_of_violation(&v), Site::Instruction(idx), format!("`{i}`: {v}"));
        }
        for op in dst_of(i).into_iter().chain(srcs_of(i)) {
            let limit = match op.kind {
                OperandKind::GrfA | OperandKind::GrfB => config.grf_entries_per_file,
                OperandKind::SrfM | OperandKind::SrfA => 8,
                _ => continue,
            };
            if (op.idx as usize) >= limit {
                r.error(
                    PvCode::Pv019IndexOutOfBounds,
                    Site::Instruction(idx),
                    format!("`{i}`: {op} indexes past the {limit}-entry file"),
                );
            }
        }
    }

    // Control-flow topology. The sequencer only supports backward loops
    // (JUMP body executes `count` times, then falls through), so straight-
    // line order is first-iteration execution order and EXIT reachability
    // reduces to "an EXIT exists on the straight-line path".
    let mut first_exit: Option<usize> = None;
    for (idx, i) in program.iter().enumerate() {
        match *i {
            Instruction::Jump { target, count } => {
                if count == 0 || target >= 32 {
                    continue; // already PV007/PV008 above
                }
                if target as usize >= idx {
                    r.error(
                        PvCode::Pv012NonBackwardJump,
                        Site::Instruction(idx),
                        format!(
                            "`{i}`: target {target} is not before the JUMP \
                             (the sequencer only loops backward)"
                        ),
                    );
                }
            }
            Instruction::Exit if first_exit.is_none() => first_exit = Some(idx),
            _ => {}
        }
    }
    match first_exit {
        None => r.error(
            PvCode::Pv013NoExit,
            Site::Whole,
            "no reachable EXIT: execution falls off the program into stale CRF words",
        ),
        Some(e) => {
            for (idx, i) in program.iter().enumerate().skip(e + 1) {
                // EXIT/NOP padding after the terminator is normal for CRF
                // images (the executor pads partial 8-word blocks).
                if !matches!(i, Instruction::Exit | Instruction::Nop { .. }) {
                    r.warn(
                        PvCode::Pv014DeadCode,
                        Site::Instruction(idx),
                        format!("`{i}` follows the terminating EXIT at {e} and never executes"),
                    );
                }
            }
        }
    }

    // Data-flow warnings + the pipeline bank-hazard error, in straight-line
    // order over the live region. The software stack's conventions are
    // baked in: SRF entries are preloaded by the executor's `srf` phase and
    // MAC accumulators are seeded by `clear_grf_b`, so neither trips PV015.
    let live_end = first_exit.unwrap_or(program.len().saturating_sub(1));
    let mut g = GrfState::default();
    let window = (PimUnit::PIPELINE_STAGES - 2) as usize;
    let mut trigger_idx = 0usize;
    let mut last_bank_write: Option<usize> = None;
    for (idx, i) in program.iter().enumerate().take(live_end + 1) {
        if i.is_control() {
            // A control instruction breaks the straight-line trigger run:
            // loop back-edges re-activate rows / switch columns, so the
            // static window ends here.
            last_bank_write = None;
            continue;
        }
        let aam = i.aam();
        let dst = dst_of(i);
        let mut reads = srcs_of(i);
        // MAC reads its destination as the accumulator.
        let accumulates = matches!(i, Instruction::Mac { .. });
        if accumulates {
            // Seeded by the host (`clear_grf_b`); tracked as an access for
            // AAM consistency but exempt from read-before-write.
            if let Some(d) = dst {
                if let Some(f) = grf_file(d.kind) {
                    if aam {
                        g.aam_access[f] = true;
                    } else {
                        g.plain_access[f] = true;
                    }
                }
            }
        }

        // Bank hazard window (PV018): a bank read issued while an earlier
        // bank write is still in the pipeline's write-back stages.
        if reads.iter().any(|o| o.kind.is_bank()) {
            if let Some(w) = last_bank_write {
                let dist = trigger_idx - w;
                if dist <= window {
                    r.error(
                        PvCode::Pv018BankHazard,
                        Site::Instruction(idx),
                        format!(
                            "`{i}`: bank read {dist} trigger(s) after a bank write — \
                             inside the {}-stage pipeline's write-back window",
                            PimUnit::PIPELINE_STAGES
                        ),
                    );
                }
            }
        }

        // GRF reads (PV015) and read-tracking for PV016.
        for op in reads.drain(..) {
            let Some(f) = grf_file(op.kind) else { continue };
            if aam {
                g.aam_access[f] = true;
            } else {
                g.plain_access[f] = true;
            }
            let indices: Vec<usize> = if aam { (0..8).collect() } else { vec![op.idx as usize] };
            for ix in indices {
                g.unread_write[f][ix] = None;
                if !g.written[f][ix] && !g.reported_rbw[f][ix] {
                    g.reported_rbw[f][ix] = true;
                    r.warn(
                        PvCode::Pv015ReadBeforeWrite,
                        Site::Instruction(idx),
                        format!("`{i}`: reads {op} before any instruction writes it"),
                    );
                }
            }
        }

        // Writes: GRF tracking (PV016) and the bank-write marker (PV018).
        if let Some(d) = dst {
            if let Some(f) = grf_file(d.kind) {
                if aam {
                    g.aam_access[f] = true;
                    for ix in 0..8 {
                        g.written[f][ix] = true;
                        g.unread_write[f][ix] = None;
                    }
                } else {
                    g.plain_access[f] = true;
                    let ix = d.idx as usize;
                    if let Some(prev) = g.unread_write[f][ix] {
                        r.warn(
                            PvCode::Pv016DeadWrite,
                            Site::Instruction(idx),
                            format!(
                                "`{i}`: overwrites {d} written at instruction {prev} \
                                 before anything reads it"
                            ),
                        );
                    }
                    g.written[f][ix] = true;
                    g.unread_write[f][ix] = Some(idx);
                }
            }
            if d.kind.is_bank() {
                last_bank_write = Some(trigger_idx);
            }
        }
        trigger_idx += 1;
    }

    // AAM consistency (PV017): mixing address-aligned and register-indexed
    // access to the same GRF file usually means the author misjudged which
    // entry a loop touches.
    for (f, name) in [(0usize, "GRF_A"), (1, "GRF_B")] {
        if g.aam_access[f] && g.plain_access[f] {
            r.warn(
                PvCode::Pv017MixedAam,
                Site::Whole,
                format!("{name} is accessed both with and without AAM"),
            );
        }
    }

    r
}

/// Verifies a raw CRF image (e.g. captured from `CRF` row writes in a
/// command trace): decodes every word, then runs [`verify_program`] on the
/// result. Undecodable words are PV011 errors and stop further analysis.
pub fn verify_image(config: &PimConfig, words: &[u32]) -> Report {
    let mut r = Report::new();
    let mut program = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        match Instruction::decode(*w) {
            Ok(instr) => program.push(instr),
            Err(e) => r.error(
                PvCode::Pv011UndecodableWord,
                Site::Word(i),
                format!("{w:#010x} does not decode: {e}"),
            ),
        }
    }
    if r.has_errors() {
        return r;
    }
    r.merge(verify_program(config, &program));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::asm::assemble;

    fn verify_src(src: &str) -> Report {
        let prog = assemble(src).unwrap();
        verify_program(&PimConfig::paper(), &prog)
    }

    #[test]
    fn paper_gemv_kernel_is_clean() {
        let r = verify_src(
            "FILL SRF_M[0], WDATA\n\
             MAC GRF_B[0], EVEN_BANK, SRF_M[0] (AAM)\n\
             JUMP 1, #8\n\
             JUMP 0, #16\n\
             EXIT",
        );
        assert!(r.is_clean(), "{}", r.render("gemv"));
    }

    #[test]
    fn empty_program_is_pv010() {
        let r = verify_program(&PimConfig::paper(), &[]);
        assert!(r.has_code(PvCode::Pv010EmptyProgram));
        assert!(r.has_errors());
    }

    #[test]
    fn missing_exit_is_pv013() {
        let r = verify_src("FILL GRF_A[0], EVEN_BANK (AAM)\nJUMP 0, #4");
        assert!(r.has_code(PvCode::Pv013NoExit), "{}", r.render("k"));
    }

    #[test]
    fn forward_jump_is_pv012() {
        let prog = vec![
            Instruction::Nop { cycles: 1 },
            Instruction::Jump { target: 3, count: 2 },
            Instruction::Nop { cycles: 1 },
            Instruction::Exit,
        ];
        let r = verify_program(&PimConfig::paper(), &prog);
        assert!(r.has_code(PvCode::Pv012NonBackwardJump), "{}", r.render("k"));
    }

    #[test]
    fn code_after_exit_is_pv014_warning_only() {
        let r = verify_src("EXIT\nFILL GRF_A[0], EVEN_BANK (AAM)");
        assert!(r.has_code(PvCode::Pv014DeadCode));
        assert!(!r.has_errors(), "dead code is a warning");
        // EXIT padding after EXIT stays silent (CRF images pad with EXIT).
        let r = verify_src("EXIT\nEXIT\nNOP 1");
        assert!(r.is_clean(), "{}", r.render("k"));
    }

    #[test]
    fn read_before_write_is_pv015() {
        let r = verify_src("MOV EVEN_BANK, GRF_A[3]\nEXIT");
        assert!(r.has_code(PvCode::Pv015ReadBeforeWrite), "{}", r.render("k"));
    }

    #[test]
    fn mac_accumulator_is_exempt_from_pv015() {
        let r = verify_src("MAC GRF_B[0], EVEN_BANK, SRF_M[0] (AAM)\nEXIT");
        assert!(!r.has_code(PvCode::Pv015ReadBeforeWrite), "{}", r.render("k"));
    }

    #[test]
    fn dead_write_is_pv016() {
        let r = verify_src(
            "FILL GRF_A[2], EVEN_BANK\n\
             FILL GRF_A[2], ODD_BANK\n\
             MOV EVEN_BANK, GRF_A[2]\n\
             EXIT",
        );
        assert!(r.has_code(PvCode::Pv016DeadWrite), "{}", r.render("k"));
    }

    #[test]
    fn mixed_aam_is_pv017() {
        let r = verify_src(
            "FILL GRF_A[0], EVEN_BANK (AAM)\n\
             MOV ODD_BANK, GRF_A[0]\n\
             EXIT",
        );
        assert!(r.has_code(PvCode::Pv017MixedAam), "{}", r.render("k"));
    }

    #[test]
    fn bank_write_then_read_is_pv018() {
        let r = verify_src(
            "FILL GRF_A[0], EVEN_BANK\n\
             MOV EVEN_BANK, GRF_A[0]\n\
             FILL GRF_B[0], EVEN_BANK\n\
             EXIT",
        );
        assert!(r.has_code(PvCode::Pv018BankHazard), "{}", r.render("k"));
        assert!(r.has_errors());
    }

    #[test]
    fn control_break_clears_the_hazard_window() {
        // The shipped stream kernels: bank write, then a loop back-edge
        // before the next group's bank read — no hazard.
        let r = verify_src(
            "FILL GRF_A[0], EVEN_BANK (AAM)\n\
             JUMP 0, #8\n\
             MOV EVEN_BANK, GRF_A[0] (AAM)\n\
             JUMP 2, #8\n\
             JUMP 0, #4\n\
             EXIT",
        );
        assert!(!r.has_code(PvCode::Pv018BankHazard), "{}", r.render("k"));
    }

    #[test]
    fn oversize_program_is_pv009() {
        let prog = vec![Instruction::Nop { cycles: 1 }; 33];
        let r = verify_program(&PimConfig::paper(), &prog);
        assert!(r.has_code(PvCode::Pv009ProgramTooLong));
    }

    #[test]
    fn two_bank_variant_legalizes_merged_loads() {
        use pim_core::PimVariant;
        let i = assemble("ADD GRF_A[0], EVEN_BANK, ODD_BANK\nEXIT");
        // Base config rejects (PV002), 2BA accepts.
        let prog = match i {
            Err(_) => {
                // assemble() itself enforces the base rule; build directly.
                use pim_core::isa::Operand;
                vec![
                    Instruction::Add {
                        dst: Operand::grf_a(0),
                        src0: Operand::even_bank(),
                        src1: Operand::odd_bank(),
                        aam: true,
                    },
                    Instruction::Exit,
                ]
            }
            Ok(p) => p,
        };
        let base = verify_program(&PimConfig::paper(), &prog);
        assert!(base.has_code(PvCode::Pv002MultipleBankOperands));
        let tba = PimConfig::with_variant(PimVariant::TwoBankAccess);
        let r = verify_program(&tba, &prog);
        assert!(!r.has_code(PvCode::Pv002MultipleBankOperands), "{}", r.render("k"));
    }

    #[test]
    fn image_roundtrip_and_undecodable_word() {
        let prog = assemble("FILL GRF_A[0], EVEN_BANK (AAM)\nJUMP 0, #8\nEXIT").unwrap();
        let mut words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
        // Pad to a full CRF image with EXIT, as the executor does.
        words.resize(32, Instruction::Exit.encode());
        let r = verify_image(&PimConfig::paper(), &words);
        assert!(r.is_clean(), "{}", r.render("image"));
        words[1] = 0xF000_0000;
        let r = verify_image(&PimConfig::paper(), &words);
        assert!(r.has_code(PvCode::Pv011UndecodableWord));
    }
}
