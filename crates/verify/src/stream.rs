//! Command-stream input: the shared event type over which the protocol
//! linter and the fence-race detector run, plus a small text format for
//! committed `.trace` fixtures.
//!
//! A stream is a flat sequence of standard DRAM commands with optional
//! `fence` markers (the per-batch barrier of Section IV-C). Streams come
//! from three places: parsed `.trace` files, flattened
//! [`pim_host::Batch`] lists ([`events_from_batches`]), and recorded
//! [`pim_dram::TraceEntry`] logs ([`events_from_trace_entries`]).
//!
//! # Trace text format
//!
//! One command per line; `;` and `#` start comments; numbers are decimal
//! or `0x` hex; mnemonics are case-insensitive:
//!
//! ```text
//! act  <bg> <ba> <row>          ; activate
//! pre  <bg> <ba>                ; precharge one bank
//! prea                          ; precharge all
//! rd   <bg> <ba> <col>          ; column read
//! wr   <bg> <ba> <col> [w0..w7] ; column write, eight 32-bit data words
//! ref                           ; all-bank refresh
//! fence                         ; host barrier
//! ```

use crate::diag::{PvCode, Report, Site};
use pim_dram::{BankAddr, Command, DataBlock};
use pim_host::Batch;

/// One element of a command stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// A standard DRAM command.
    Cmd(Command),
    /// A host barrier (the `fence_after` of a batch).
    Fence,
}

/// A stream element with the location it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEvent {
    /// The command or fence.
    pub item: StreamItem,
    /// Where it sits in its source (trace line, batch/command index, ...).
    pub site: Site,
}

impl StreamEvent {
    /// Wraps a command with a flat-stream site.
    pub fn cmd(index: usize, c: Command) -> StreamEvent {
        let desc = c.to_string();
        StreamEvent { item: StreamItem::Cmd(c), site: Site::Command { index, desc } }
    }

    /// A fence with a flat-stream site.
    pub fn fence(index: usize) -> StreamEvent {
        StreamEvent { item: StreamItem::Fence, site: Site::Command { index, desc: "fence".into() } }
    }
}

/// Flattens a batch list into a stream: each command in order, with a
/// [`StreamItem::Fence`] after every batch whose `fence_after` is set.
pub fn events_from_batches(batches: &[Batch]) -> Vec<StreamEvent> {
    let mut out = Vec::new();
    for (bi, b) in batches.iter().enumerate() {
        for (ci, c) in b.commands.iter().enumerate() {
            out.push(StreamEvent {
                item: StreamItem::Cmd(c.clone()),
                site: Site::Batch { batch: bi, command: ci, label: b.label.map(str::to_string) },
            });
        }
        if b.fence_after {
            out.push(StreamEvent {
                item: StreamItem::Fence,
                site: Site::Batch {
                    batch: bi,
                    command: b.commands.len(),
                    label: b.label.map(str::to_string),
                },
            });
        }
    }
    out
}

/// Converts a recorded [`pim_dram::TraceEntry`] log (accepted commands
/// only) into a stream. Fences are not visible at the command level, so a
/// recorded trace checks the protocol pass but not the fence pass.
pub fn events_from_trace_entries<'a>(
    entries: impl IntoIterator<Item = &'a pim_dram::TraceEntry>,
) -> Vec<StreamEvent> {
    entries
        .into_iter()
        .filter(|e| e.accepted)
        .enumerate()
        .map(|(i, e)| StreamEvent::cmd(i, e.command.clone()))
        .collect()
}

/// Removes every fence from a stream — the "what if the host skipped the
/// barriers" transformation used by the race-detector tests.
pub fn strip_fences(events: &[StreamEvent]) -> Vec<StreamEvent> {
    events.iter().filter(|e| !matches!(e.item, StreamItem::Fence)).cloned().collect()
}

fn parse_num(tok: &str) -> Option<u32> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

/// Parses the `.trace` text format (see module docs).
///
/// # Errors
///
/// Returns a [`Report`] of `PV031` syntax errors (one per bad line) if any
/// line fails to parse.
pub fn parse_trace(source: &str) -> Result<Vec<StreamEvent>, Report> {
    let mut events = Vec::new();
    let mut report = Report::new();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut bad = |msg: String| {
            report.error(PvCode::Pv031TraceSyntax, Site::Line { line, col: 1 }, msg);
        };
        let toks: Vec<&str> = text.split_whitespace().collect();
        let nums: Option<Vec<u32>> = toks[1..].iter().map(|t| parse_num(t)).collect();
        let Some(nums) = nums else {
            bad(format!("unparseable number in `{text}`"));
            continue;
        };
        let site = Site::Line { line, col: 1 };
        let bank = |nums: &[u32]| -> Option<BankAddr> {
            if nums[0] < 4 && nums[1] < 4 {
                Some(BankAddr::new(nums[0] as u8, nums[1] as u8))
            } else {
                None
            }
        };
        let item = match (toks[0].to_ascii_lowercase().as_str(), nums.len()) {
            ("act", 3) => match bank(&nums) {
                Some(b) => StreamItem::Cmd(Command::Act { bank: b, row: nums[2] }),
                None => {
                    bad(format!("bank out of range in `{text}`"));
                    continue;
                }
            },
            ("pre", 2) => match bank(&nums) {
                Some(b) => StreamItem::Cmd(Command::Pre { bank: b }),
                None => {
                    bad(format!("bank out of range in `{text}`"));
                    continue;
                }
            },
            ("prea", 0) => StreamItem::Cmd(Command::PreAll),
            ("rd", 3) => match bank(&nums) {
                Some(b) => StreamItem::Cmd(Command::Rd { bank: b, col: nums[2] }),
                None => {
                    bad(format!("bank out of range in `{text}`"));
                    continue;
                }
            },
            ("wr", n) if (3..=11).contains(&n) => match bank(&nums) {
                Some(b) => {
                    let mut data: DataBlock = [0; 32];
                    for (wi, w) in nums[3..].iter().enumerate() {
                        data[wi * 4..wi * 4 + 4].copy_from_slice(&w.to_le_bytes());
                    }
                    StreamItem::Cmd(Command::Wr { bank: b, col: nums[2], data })
                }
                None => {
                    bad(format!("bank out of range in `{text}`"));
                    continue;
                }
            },
            ("ref", 0) => StreamItem::Cmd(Command::Ref),
            ("fence", 0) => StreamItem::Fence,
            (m, _) => {
                bad(format!("unknown or malformed command `{m}` in `{text}`"));
                continue;
            }
        };
        events.push(StreamEvent { item, site });
    }
    if report.has_errors() {
        Err(report)
    } else {
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_mnemonic() {
        let ev = parse_trace(
            "; header comment\n\
             act 0 0 0x1FFF\n\
             pre 0 0\n\
             prea\n\
             rd 1 2 5\n\
             wr 0 0 0 0x1 0x2  # data words\n\
             ref\n\
             fence\n",
        )
        .unwrap();
        assert_eq!(ev.len(), 7);
        assert!(matches!(ev[0].item, StreamItem::Cmd(Command::Act { row: 0x1FFF, .. })));
        assert!(matches!(ev.last().unwrap().item, StreamItem::Fence));
        if let StreamItem::Cmd(Command::Wr { data, .. }) = &ev[4].item {
            assert_eq!(data[0], 1);
            assert_eq!(data[4], 2);
        } else {
            panic!("expected WR");
        }
    }

    #[test]
    fn syntax_errors_are_pv031_with_line() {
        let e = parse_trace("act 0 0 1\nbogus 1 2\n").unwrap_err();
        assert!(e.has_code(PvCode::Pv031TraceSyntax));
        assert_eq!(e.diagnostics[0].site, Site::Line { line: 2, col: 1 });
        let e = parse_trace("act 9 9 1\n").unwrap_err();
        assert!(e.has_code(PvCode::Pv031TraceSyntax));
        let e = parse_trace("rd 0 0 zz\n").unwrap_err();
        assert!(e.has_code(PvCode::Pv031TraceSyntax));
    }

    #[test]
    fn strip_fences_drops_only_fences() {
        let ev = parse_trace("act 0 0 1\nfence\npre 0 0\nfence\n").unwrap();
        let stripped = strip_fences(&ev);
        assert_eq!(stripped.len(), 2);
        assert!(stripped.iter().all(|e| matches!(e.item, StreamItem::Cmd(_))));
    }
}
