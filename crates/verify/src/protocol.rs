//! The command-stream protocol linter: a side-effect-free mirror of the
//! [`pim_core::PimChannel`] mode machine (Section III-B, Fig. 3) that
//! walks a stream and reports protocol violations instead of simulating
//! them.
//!
//! The tracker reproduces the device's observable state exactly — mode,
//! armed transition, open rows — and classifies each command's effect so
//! the fence-race pass ([`crate::fence`]) can reuse the walk. Where the
//! device is *permissive* (it executes whatever arrives), the linter is
//! *strict*: sequences the device would silently ignore or that deviate
//! from the paper's published transition protocol get a diagnostic.

use crate::diag::{PvCode, Report, Site};
use crate::stream::{StreamEvent, StreamItem};
use pim_core::conf::{ABMR_ROW, CRF_ROW, GRF_ROW, PIM_CONF_FIRST_ROW, PIM_OP_MODE_ROW, SBMR_ROW};
use pim_core::PimMode;
use pim_dram::{BankAddr, Command, DataBlock};

/// An armed mode transition (the ACT half of an ACT+PRE pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// ACT on `ABMR` seen in SB mode; the matching PRE enters AB mode.
    ToAllBank(BankAddr),
    /// ACT on `SBMR` seen in an AB mode; the next PRE exits to SB mode.
    ToSingleBank,
}

/// What a command *does*, as classified by the tracker — the protocol
/// pass reports on these, and the fence pass replays them against a
/// shadow PIM unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// No data-visible effect (row management, ignored writes, ...).
    None,
    /// The device changed mode after this command.
    ModeChange {
        /// The mode now in force.
        to: PimMode,
    },
    /// A memory-mapped CRF write: 8 instruction words land at
    /// `(col % 4) * 8`.
    CrfLoad {
        /// The command's column address.
        col: u32,
        /// The 32-byte block carrying 8 little-endian instruction words.
        data: DataBlock,
    },
    /// An AB-PIM column command that triggers PIM execution.
    Trigger {
        /// `Some(block)` for a WR trigger (the `WDATA` operand), `None`
        /// for a RD trigger.
        write_data: Option<DataBlock>,
        /// The open row the trigger addresses.
        row: u32,
        /// The trigger's column (also the AAM index source).
        col: u32,
    },
    /// A host-visible read of a data row (SB mode, or lock-step plain-AB).
    DataRead {
        /// Open row.
        row: u32,
        /// Column.
        col: u32,
    },
    /// A host write of a data row outside AB-PIM mode.
    DataWrite {
        /// Open row.
        row: u32,
        /// Column.
        col: u32,
    },
    /// A host read of the memory-mapped GRF row (result readback).
    GrfRead {
        /// Column 0–7 → GRF_A, 8–15 → GRF_B.
        col: u32,
    },
}

/// The linter's replica of the device mode machine.
#[derive(Debug, Clone)]
pub struct ModeTracker {
    mode: PimMode,
    pending: Option<Pending>,
    /// Per-bank open row in SB mode (flat index, 16 banks).
    sb_open: [Option<u32>; 16],
    /// The all-bank open row in AB modes.
    ab_open: Option<u32>,
    /// Whether any CRF load has been observed (PV110).
    crf_loaded: bool,
}

impl Default for ModeTracker {
    fn default() -> ModeTracker {
        ModeTracker::new()
    }
}

impl ModeTracker {
    /// A tracker in the power-on state: SB mode, all banks closed.
    pub fn new() -> ModeTracker {
        ModeTracker {
            mode: PimMode::SingleBank,
            pending: None,
            sb_open: [None; 16],
            ab_open: None,
            crf_loaded: false,
        }
    }

    /// The mode after the commands applied so far.
    pub fn mode(&self) -> PimMode {
        self.mode
    }

    /// Reports a PV106 if a transition was armed, and disarms it.
    fn cancel_pending(&mut self, what: &str, site: &Site, report: &mut Report) {
        if let Some(p) = self.pending.take() {
            let dir = match p {
                Pending::ToAllBank(_) => "SB→AB",
                Pending::ToSingleBank => "AB→SB",
            };
            report.error(
                PvCode::Pv106TransitionCancelled,
                site.clone(),
                format!("{what} cancels the armed {dir} transition before its PRE"),
            );
        }
    }

    /// Applies one command: updates the mirrored state, appends any
    /// protocol diagnostics to `report`, and returns the command's
    /// classified [`Effect`].
    pub fn apply(&mut self, cmd: &Command, site: &Site, report: &mut Report) -> Effect {
        match self.mode {
            PimMode::SingleBank => self.apply_sb(cmd, site, report),
            PimMode::AllBank | PimMode::AllBankPim => self.apply_ab(cmd, site, report),
        }
    }

    fn apply_sb(&mut self, cmd: &Command, site: &Site, report: &mut Report) -> Effect {
        match cmd {
            Command::Act { bank, row } => {
                let b = bank.flat_index();
                if let Some(open) = self.sb_open[b] {
                    report.error(
                        PvCode::Pv102ActWhileOpen,
                        site.clone(),
                        format!("ACT {bank} row={row}: row {open} is already open"),
                    );
                }
                self.sb_open[b] = Some(*row);
                if *row == ABMR_ROW {
                    // Arming (or re-arming) the SB→AB transition.
                    self.pending = Some(Pending::ToAllBank(*bank));
                } else {
                    self.cancel_pending("ACT of a non-ABMR row", site, report);
                }
                Effect::None
            }
            Command::Pre { bank } => {
                let b = bank.flat_index();
                if self.pending == Some(Pending::ToAllBank(*bank)) {
                    self.pending = None;
                    self.sb_open[b] = None;
                    let still_open = self.sb_open.iter().filter(|r| r.is_some()).count();
                    if still_open > 0 {
                        report.error(
                            PvCode::Pv107EnterAbWithOpenBank,
                            site.clone(),
                            format!(
                                "entering AB mode with {still_open} bank row(s) still open \
                                 (the host must precharge all banks first)"
                            ),
                        );
                    }
                    self.mode = PimMode::AllBank;
                    self.sb_open = [None; 16];
                    self.ab_open = None;
                    return Effect::ModeChange { to: PimMode::AllBank };
                }
                if self.sb_open[b].is_none() {
                    report.error(
                        PvCode::Pv101NoOpenRow,
                        site.clone(),
                        format!("PRE {bank} with no open row"),
                    );
                }
                self.sb_open[b] = None;
                Effect::None
            }
            Command::PreAll => {
                // The device leaves an armed transition untouched on PREA.
                self.sb_open = [None; 16];
                Effect::None
            }
            Command::Rd { bank, col } => {
                self.cancel_pending("a column RD", site, report);
                let b = bank.flat_index();
                match self.sb_open[b] {
                    None => {
                        report.error(
                            PvCode::Pv101NoOpenRow,
                            site.clone(),
                            format!("RD {bank} col={col} with no open row"),
                        );
                        Effect::None
                    }
                    Some(row) if row == GRF_ROW => Effect::GrfRead { col: *col },
                    Some(row) if row >= PIM_CONF_FIRST_ROW => Effect::None,
                    Some(row) => Effect::DataRead { row, col: *col },
                }
            }
            Command::Wr { bank, col, data } => {
                self.cancel_pending("a column WR", site, report);
                let b = bank.flat_index();
                match self.sb_open[b] {
                    None => {
                        report.error(
                            PvCode::Pv101NoOpenRow,
                            site.clone(),
                            format!("WR {bank} col={col} with no open row"),
                        );
                        Effect::None
                    }
                    Some(PIM_OP_MODE_ROW) => {
                        report.error(
                            PvCode::Pv103PimOpModeOutsideAb,
                            site.clone(),
                            "PIM_OP_MODE write in SB mode is ignored by the device \
                             (AB-PIM must be entered from AB mode)"
                                .to_string(),
                        );
                        Effect::None
                    }
                    Some(CRF_ROW) => {
                        self.crf_loaded = true;
                        Effect::CrfLoad { col: *col, data: *data }
                    }
                    Some(row) if row >= PIM_CONF_FIRST_ROW => Effect::None,
                    Some(row) => Effect::DataWrite { row, col: *col },
                }
            }
            Command::Ref => {
                if self.sb_open.iter().any(Option::is_some) {
                    report.error(
                        PvCode::Pv109RefreshWithOpenRow,
                        site.clone(),
                        "REF issued while bank rows are open".to_string(),
                    );
                }
                Effect::None
            }
        }
    }

    fn apply_ab(&mut self, cmd: &Command, site: &Site, report: &mut Report) -> Effect {
        match cmd {
            Command::Act { row, .. } => {
                if let Some(open) = self.ab_open {
                    report.error(
                        PvCode::Pv102ActWhileOpen,
                        site.clone(),
                        format!("all-bank ACT row={row}: row {open} is already open"),
                    );
                }
                self.ab_open = Some(*row);
                if *row == SBMR_ROW {
                    self.pending = Some(Pending::ToSingleBank);
                } else {
                    self.cancel_pending("ACT of a non-SBMR row", site, report);
                }
                Effect::None
            }
            Command::Pre { .. } | Command::PreAll => {
                if self.ab_open.is_none() {
                    report.error(
                        PvCode::Pv101NoOpenRow,
                        site.clone(),
                        "all-bank PRE with no open row".to_string(),
                    );
                    return Effect::None;
                }
                self.ab_open = None;
                if self.pending == Some(Pending::ToSingleBank) {
                    self.pending = None;
                    if self.mode == PimMode::AllBankPim {
                        report.error(
                            PvCode::Pv108ExitFromAbPim,
                            site.clone(),
                            "exit to SB mode directly from AB-PIM: PIM_OP_MODE must be \
                             cleared first (Fig. 3 transitions through AB mode)"
                                .to_string(),
                        );
                    }
                    self.mode = PimMode::SingleBank;
                    self.sb_open = [None; 16];
                    return Effect::ModeChange { to: PimMode::SingleBank };
                }
                Effect::None
            }
            Command::Rd { col, .. } => {
                let Some(row) = self.ab_open else {
                    report.error(
                        PvCode::Pv101NoOpenRow,
                        site.clone(),
                        format!("all-bank RD col={col} with no open row"),
                    );
                    return Effect::None;
                };
                if row == GRF_ROW {
                    return Effect::GrfRead { col: *col };
                }
                if row >= PIM_CONF_FIRST_ROW {
                    return Effect::None;
                }
                match self.mode {
                    PimMode::AllBank => {
                        report.warn(
                            PvCode::Pv105DataAccessInPlainAb,
                            site.clone(),
                            format!(
                                "lock-step RD of data row {row} in plain AB mode \
                                 (the host observes bank (0,0) only)"
                            ),
                        );
                        Effect::DataRead { row, col: *col }
                    }
                    PimMode::AllBankPim => {
                        self.warn_unprogrammed(site, report);
                        Effect::Trigger { write_data: None, row, col: *col }
                    }
                    PimMode::SingleBank => unreachable!("apply_ab in SB mode"),
                }
            }
            Command::Wr { col, data, .. } => {
                let Some(row) = self.ab_open else {
                    report.error(
                        PvCode::Pv101NoOpenRow,
                        site.clone(),
                        format!("all-bank WR col={col} with no open row"),
                    );
                    return Effect::None;
                };
                if row == CRF_ROW {
                    if self.mode == PimMode::AllBankPim {
                        report.error(
                            PvCode::Pv104CrfLoadWhileArmed,
                            site.clone(),
                            "CRF load while PIM_OP_MODE is enabled: the running \
                             microkernel is being overwritten"
                                .to_string(),
                        );
                    }
                    self.crf_loaded = true;
                    return Effect::CrfLoad { col: *col, data: *data };
                }
                if row == PIM_OP_MODE_ROW {
                    let enable = data[0] & 1 == 1;
                    return match (self.mode, enable) {
                        (PimMode::AllBank, true) => {
                            self.mode = PimMode::AllBankPim;
                            Effect::ModeChange { to: PimMode::AllBankPim }
                        }
                        (PimMode::AllBankPim, false) => {
                            self.mode = PimMode::AllBank;
                            Effect::ModeChange { to: PimMode::AllBank }
                        }
                        _ => Effect::None,
                    };
                }
                if row >= PIM_CONF_FIRST_ROW {
                    return Effect::None;
                }
                match self.mode {
                    PimMode::AllBank => {
                        // Broadcast write — a documented operand-replication
                        // feature, so worth a note but not an error.
                        report.warn(
                            PvCode::Pv105DataAccessInPlainAb,
                            site.clone(),
                            format!("broadcast WR of data row {row} in plain AB mode"),
                        );
                        Effect::DataWrite { row, col: *col }
                    }
                    PimMode::AllBankPim => {
                        self.warn_unprogrammed(site, report);
                        Effect::Trigger { write_data: Some(*data), row, col: *col }
                    }
                    PimMode::SingleBank => unreachable!("apply_ab in SB mode"),
                }
            }
            Command::Ref => {
                if self.ab_open.is_some() {
                    report.error(
                        PvCode::Pv109RefreshWithOpenRow,
                        site.clone(),
                        "REF issued while the all-bank row is open".to_string(),
                    );
                }
                Effect::None
            }
        }
    }

    fn warn_unprogrammed(&mut self, site: &Site, report: &mut Report) {
        if !self.crf_loaded {
            report.warn(
                PvCode::Pv110TriggerWithoutProgram,
                site.clone(),
                "PIM trigger with no CRF program loaded in this stream".to_string(),
            );
            // One warning per stream is enough.
            self.crf_loaded = true;
        }
    }

    /// End-of-stream check: the host must hand the channel back in SB mode.
    pub fn finish(&self, report: &mut Report) {
        if self.mode != PimMode::SingleBank {
            report.warn(
                PvCode::Pv111EndsOutsideSb,
                Site::Whole,
                format!("stream ends in {:?} mode (expected SingleBank)", self.mode),
            );
        }
    }
}

/// Lints a command stream against the mode-transition protocol.
/// Fence markers are ignored by this pass (see [`crate::fence`]).
pub fn lint_stream(events: &[StreamEvent]) -> Report {
    let mut report = Report::new();
    let mut tracker = ModeTracker::new();
    for ev in events {
        if let StreamItem::Cmd(cmd) = &ev.item {
            tracker.apply(cmd, &ev.site, &mut report);
        }
    }
    tracker.finish(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamEvent;
    use pim_core::conf;

    fn ev(cmds: Vec<Command>) -> Vec<StreamEvent> {
        cmds.into_iter().enumerate().map(|(i, c)| StreamEvent::cmd(i, c)).collect()
    }

    fn bank() -> BankAddr {
        BankAddr::new(0, 0)
    }

    fn enable_block(on: bool) -> DataBlock {
        let mut d = [0u8; 32];
        d[0] = on as u8;
        d
    }

    /// The executor's canonical choreography must lint clean.
    #[test]
    fn canonical_choreography_is_clean() {
        let mut cmds = conf::enter_ab_sequence();
        // Program the CRF (one block of 8 instructions).
        cmds.push(Command::Act { bank: bank(), row: conf::CRF_ROW });
        cmds.push(Command::Wr { bank: bank(), col: 0, data: [0u8; 32] });
        cmds.push(Command::Pre { bank: bank() });
        cmds.extend(conf::set_pim_op_mode_sequence(true));
        // Data phase: open a row, trigger, close.
        cmds.push(Command::Act { bank: bank(), row: 7 });
        cmds.push(Command::Rd { bank: bank(), col: 0 });
        cmds.push(Command::Pre { bank: bank() });
        cmds.extend(conf::set_pim_op_mode_sequence(false));
        cmds.extend(conf::exit_ab_sequence());
        let r = lint_stream(&ev(cmds));
        assert!(r.is_clean(), "unexpected diagnostics:\n{r}");
    }

    #[test]
    fn column_without_act_is_pv101() {
        let r = lint_stream(&ev(vec![Command::Rd { bank: bank(), col: 0 }]));
        assert!(r.has_code(PvCode::Pv101NoOpenRow));
    }

    #[test]
    fn double_act_is_pv102() {
        let r = lint_stream(&ev(vec![
            Command::Act { bank: bank(), row: 1 },
            Command::Act { bank: bank(), row: 2 },
        ]));
        assert!(r.has_code(PvCode::Pv102ActWhileOpen));
    }

    #[test]
    fn sb_pim_op_mode_write_is_pv103() {
        let r = lint_stream(&ev(vec![
            Command::Act { bank: bank(), row: conf::PIM_OP_MODE_ROW },
            Command::Wr { bank: bank(), col: 0, data: enable_block(true) },
            Command::Pre { bank: bank() },
        ]));
        assert!(r.has_code(PvCode::Pv103PimOpModeOutsideAb));
    }

    #[test]
    fn crf_load_in_ab_pim_is_pv104() {
        let mut cmds = conf::enter_ab_sequence();
        cmds.extend(conf::set_pim_op_mode_sequence(true));
        cmds.push(Command::Act { bank: bank(), row: conf::CRF_ROW });
        cmds.push(Command::Wr { bank: bank(), col: 0, data: [0u8; 32] });
        cmds.push(Command::Pre { bank: bank() });
        let r = lint_stream(&ev(cmds));
        assert!(r.has_code(PvCode::Pv104CrfLoadWhileArmed));
    }

    #[test]
    fn interrupted_transition_is_pv106() {
        let r = lint_stream(&ev(vec![
            Command::Act { bank: bank(), row: conf::ABMR_ROW },
            Command::Rd { bank: bank(), col: 0 },
            Command::Pre { bank: bank() },
        ]));
        assert!(r.has_code(PvCode::Pv106TransitionCancelled));
        // The cancelled transition means the stream stays in SB: no PV111.
        assert!(!r.has_code(PvCode::Pv111EndsOutsideSb));
    }

    #[test]
    fn entering_ab_with_open_bank_is_pv107() {
        let other = BankAddr::new(1, 0);
        let mut cmds = vec![Command::Act { bank: other, row: 5 }];
        cmds.extend(conf::enter_ab_sequence());
        cmds.extend(conf::exit_ab_sequence());
        let r = lint_stream(&ev(cmds));
        assert!(r.has_code(PvCode::Pv107EnterAbWithOpenBank));
    }

    #[test]
    fn exiting_from_ab_pim_is_pv108() {
        let mut cmds = conf::enter_ab_sequence();
        cmds.extend(conf::set_pim_op_mode_sequence(true));
        cmds.extend(conf::exit_ab_sequence());
        let r = lint_stream(&ev(cmds));
        assert!(r.has_code(PvCode::Pv108ExitFromAbPim));
    }

    #[test]
    fn refresh_with_open_row_is_pv109() {
        let r = lint_stream(&ev(vec![Command::Act { bank: bank(), row: 1 }, Command::Ref]));
        assert!(r.has_code(PvCode::Pv109RefreshWithOpenRow));
    }

    #[test]
    fn trigger_without_program_is_pv110_once() {
        let mut cmds = conf::enter_ab_sequence();
        cmds.extend(conf::set_pim_op_mode_sequence(true));
        cmds.push(Command::Act { bank: bank(), row: 3 });
        cmds.push(Command::Rd { bank: bank(), col: 0 });
        cmds.push(Command::Rd { bank: bank(), col: 1 });
        let r = lint_stream(&ev(cmds));
        assert_eq!(
            r.diagnostics.iter().filter(|d| d.code == PvCode::Pv110TriggerWithoutProgram).count(),
            1
        );
    }

    #[test]
    fn ending_in_ab_mode_is_pv111() {
        let r = lint_stream(&ev(conf::enter_ab_sequence()));
        assert!(r.has_code(PvCode::Pv111EndsOutsideSb));
    }

    #[test]
    fn plain_ab_data_write_is_pv105_warning_only() {
        let mut cmds = conf::enter_ab_sequence();
        cmds.push(Command::Act { bank: bank(), row: 9 });
        cmds.push(Command::Wr { bank: bank(), col: 0, data: [1u8; 32] });
        cmds.push(Command::Pre { bank: bank() });
        cmds.extend(conf::exit_ab_sequence());
        let r = lint_stream(&ev(cmds));
        assert!(r.has_code(PvCode::Pv105DataAccessInPlainAb));
        assert_eq!(r.error_count(), 0);
    }
}
