//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! crate vendors the subset of proptest's API that the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_filter`, range and
//! tuple strategies, [`any`], [`Just`], `prop_oneof!`, `collection::vec`,
//! `array::uniform16`, the `proptest!`/`prop_assert*`/`prop_assume!` macros,
//! and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim.
//! * **Deterministic seeding.** Each test derives its RNG seed from the test
//!   name, so runs are reproducible without a persistence file.
//! * Filters resample locally (bounded retries) instead of global rejection
//!   bookkeeping; `prop_assume!` discards the whole case.

#![forbid(unsafe_code)]

use core::fmt;
use core::marker::PhantomData;
use core::ops::Range;

/// Deterministic PRNG used to drive generation (xoshiro256** core).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Creates an RNG whose seed is derived from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not produce a pass/fail verdict, or failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); it is retried with
    /// fresh inputs and does not count towards the case budget.
    Reject(String),
    /// An assertion failed; the harness panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure from any message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// Constructs a rejection from any message.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Result type produced by a `proptest!` case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (everything else default).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: `generate` returns a value
/// directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `pred` holds, resampling otherwise.
    ///
    /// `whence` labels the filter in the panic raised if the predicate
    /// rejects too many consecutive samples.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive samples", self.whence);
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + (hi - lo) * rng.next_f64()) as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Creates a union over `arms`; each generation picks one uniformly.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

pub mod collection {
    //! Strategies for collections (subset: `vec`).

    use super::{fmt, Range, Strategy, TestRng};

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Strategies for fixed-size arrays (subset: `uniform16`).

    use super::{Strategy, TestRng};

    /// Strategy returned by [`uniform16`].
    #[derive(Debug, Clone)]
    pub struct Uniform16<S>(S);

    /// Generates `[T; 16]` arrays with each element drawn from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 16] {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

pub mod runner {
    //! The case-execution loop behind the `proptest!` macro.

    use super::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

    /// Runs `case` until `config.cases` cases pass, panicking on the first
    /// failure. Rejected cases (`prop_assume!`) are retried with fresh
    /// inputs, up to a bounded number of consecutive discards.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, TestCaseResult),
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let reject_limit = 256 * config.cases.max(1) as u64;
        while passed < config.cases {
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > reject_limit {
                        panic!(
                            "proptest {name}: too many rejected cases \
                             ({rejected}, last: {why})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: case failed after {passed} passes\n\
                         \tinputs: {inputs}\n\t{msg}"
                    );
                }
            }
        }
    }
}

/// Runs property-test functions over generated inputs.
///
/// Supported form (a subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in collection::vec(any::<u8>(), 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::runner::run(&config, stringify!($name), |rng| {
                let generated = $crate::Strategy::generate(&($($strat,)+), rng);
                let inputs = format!("{:?}", generated);
                let ($($arg,)+) = generated;
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                (inputs, outcome)
            });
        }
    )*};
}

/// Fails the current case with a formatted message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case if `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?} ({})", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case (retried with fresh inputs) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: Vec<Box<dyn $crate::Strategy<Value = _>>> = vec![$(Box::new($arm)),+];
        $crate::Union::new(arms)
    }};
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u32..17, y in -3i32..4, f in -2.0f32..2.0) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((-3..4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn map_and_filter_compose(v in (0u8..100).prop_map(|x| x * 2).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 200);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 3..9), exact in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!(v.len() >= 3 && v.len() < 9);
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn oneof_hits_all_arms(picks in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8), Just(3u8)], 64)) {
            for p in &picks {
                prop_assert!((1..=3).contains(p));
            }
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn config_with_cases_is_respected() {
        let mut runs = 0u32;
        super::runner::run(&ProptestConfig::with_cases(13), "count", |_| {
            runs += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(runs, 13);
    }

    #[test]
    fn uniform16_generates_full_arrays() {
        let mut rng = super::TestRng::from_name("u16arr");
        let arr = Strategy::generate(&super::array::uniform16(-1.0f32..1.0), &mut rng);
        assert_eq!(arr.len(), 16);
        assert!(arr.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    #[should_panic(expected = "rejected 1000 consecutive")]
    fn filter_exhaustion_panics() {
        let mut rng = super::TestRng::from_name("exhaust");
        let s = (0u8..10).prop_filter("impossible", |_| false);
        let _ = Strategy::generate(&s, &mut rng);
    }
}
