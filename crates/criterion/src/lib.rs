//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! crate vendors the subset of criterion's API the workspace's benches use:
//! [`Criterion`], benchmark groups, `bench_function`, `iter`/`iter_batched`,
//! [`Throughput`], [`BatchSize`], and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a short warm-up, then a fixed
//! time-boxed loop reporting mean wall-clock time per iteration (and
//! throughput when configured). There is no statistical analysis, HTML
//! report, or baseline comparison; the point is that `cargo bench` runs and
//! prints honest per-iteration numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (accepted and ignored beyond
/// batching semantics — every stub batch has size 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput associated with one benchmark, used to derive rate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collects timing for one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher { iterations: 0, elapsed: Duration::ZERO, budget }
    }

    /// Times `routine` in a loop until the time budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        std::hint::black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            std::hint::black_box(routine());
            self.iterations += 1;
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iterations += 1;
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub is
    /// time-boxed rather than sample-counted).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement time budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.budget = t;
        self
    }

    /// Associates a throughput with subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its mean per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        let iters = b.iterations.max(1);
        let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / (per_iter * 1e-9))
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / (per_iter * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>14} /iter  ({} iters){}",
            format!("{}/{}", self.name, id),
            format_ns(per_iter),
            b.iterations,
            rate,
        );
        self
    }

    /// Ends the group (no-op; output is printed as benches run).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("crate").bench_function(id, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.iter().sum::<u8>(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_counts_iterations() {
        // Tiny budget so the test is fast.
        let mut c = Criterion { budget: std::time::Duration::from_millis(5) };
        sample_bench(&mut c);
    }

    #[test]
    fn criterion_group_macro_compiles() {
        // Exercise the generated function with the default budget shrunk via
        // measurement_time inside the bench body is not possible here, so we
        // simply check that the symbol exists and is callable.
        let f: fn() = benches;
        let _ = f;
    }
}
