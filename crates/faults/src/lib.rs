//! Deterministic, seeded fault injection for the PIM-HBM simulator.
//!
//! The paper's RAS argument (Section VIII) is that PIM can adopt commodity
//! reliability mechanisms because the execution unit reads and writes at
//! host access granularity. This crate supplies the *fault half* of testing
//! that claim: a [`FaultPlan`] describes a seeded fault environment, and
//! the simulation layers consult small per-site decision objects
//! ([`CellFaults`] per bank, [`DeviceFaults`] per channel) that each layer
//! stores behind an `Option` — with no plan installed every hook costs one
//! pointer test and the simulation is bit-identical to a build without this
//! crate (the zero-observer-effect contract the perf gate enforces).
//!
//! # Determinism
//!
//! Every fault decision is a pure hash of `(seed, site identity)` or
//! `(seed, channel, per-channel event counter)` — never of global
//! simulation order. Channels are simulated independently and each
//! channel's command stream is identical under the sequential and threaded
//! execution backends, so an identical plan produces identical faults on
//! every backend and every run.
//!
//! # Fault classes
//!
//! | class | layer | persistence |
//! |---|---|---|
//! | cell write flip | `pim-dram` bank | transient (one write) |
//! | stuck-at cell (1 bit) | `pim-dram` bank | persistent, ECC-correctable |
//! | stuck-at pair (2 bits) | `pim-dram` bank | persistent, ECC-uncorrectable |
//! | dropped column command | `pim-core` device | transient |
//! | corrupted write data | `pim-core` device | transient |
//! | mode-machine glitch | `pim-core` device | transient (sequencer reset) |
//! | channel stall | `pim-core` device | persistent (timing only) |
//! | channel hard failure | `pim-core` device | persistent |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SplitMix64 finalizer — the mixing core of every fault decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a fault site: `seed`, a per-class domain tag, and up to three
/// site coordinates. Pure — the same site always hashes the same way.
fn site_hash(seed: u64, domain: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(mix(seed ^ domain) ^ a) ^ b) ^ c)
}

/// True with probability `rate` for this hash (top 53 bits as a uniform
/// fraction).
fn happens(hash: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    ((hash >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// Domain tags keep the per-class hash streams independent.
mod domain {
    pub const CELL_FLIP: u64 = 0x01;
    pub const CELL_STUCK: u64 = 0x02;
    pub const CELL_STUCK_PAIR: u64 = 0x03;
    pub const CMD_DROP: u64 = 0x10;
    pub const CMD_CORRUPT: u64 = 0x11;
    pub const GLITCH: u64 = 0x12;
    pub const CHAN_FAIL: u64 = 0x20;
    pub const CHAN_STALL: u64 = 0x21;
}

/// A seeded description of the fault environment for one simulation.
///
/// All rates are probabilities in `[0, 1]`. The default plan
/// ([`FaultPlan::quiet`]) injects nothing; campaign runners scale the rates
/// up from there.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every fault decision derives.
    pub seed: u64,
    /// Probability that one bit of a written block flips in transit
    /// (transient; per block write).
    pub cell_flip_rate: f64,
    /// Probability that a 32-byte block site contains one stuck-at cell
    /// (persistent; forced on every read; single-bit, so ECC-correctable).
    pub stuck_cell_rate: f64,
    /// Probability that a block site contains a stuck-at *pair* in one
    /// 64-bit codeword (persistent; ECC detects but cannot correct).
    pub stuck_pair_rate: f64,
    /// Probability that an all-bank-mode data column command is silently
    /// lost (per command).
    pub cmd_drop_rate: f64,
    /// Probability that an all-bank-mode data write's payload suffers a
    /// single-bit corruption (per command).
    pub cmd_corrupt_rate: f64,
    /// Probability of a spurious mode-machine glitch on an all-bank data
    /// column command: the units' sequencers reset as if `PIM_OP_MODE` had
    /// been rewritten (per command).
    pub glitch_rate: f64,
    /// Probability that a channel is hard-failed for the whole run: its
    /// PIM units never execute, so its results are garbage.
    pub chan_fail_rate: f64,
    /// Probability that a channel is degraded: every command it accepts
    /// costs [`FaultPlan::stall_penalty`] extra cycles.
    pub chan_stall_rate: f64,
    /// Extra cycles per command on a stalled channel.
    pub stall_penalty: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            cell_flip_rate: 0.0,
            stuck_cell_rate: 0.0,
            stuck_pair_rate: 0.0,
            cmd_drop_rate: 0.0,
            cmd_corrupt_rate: 0.0,
            glitch_rate: 0.0,
            chan_fail_rate: 0.0,
            chan_stall_rate: 0.0,
            stall_penalty: 0,
        }
    }

    /// True if the plan can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.cell_flip_rate <= 0.0
            && self.stuck_cell_rate <= 0.0
            && self.stuck_pair_rate <= 0.0
            && self.cmd_drop_rate <= 0.0
            && self.cmd_corrupt_rate <= 0.0
            && self.glitch_rate <= 0.0
            && self.chan_fail_rate <= 0.0
            && self.chan_stall_rate <= 0.0
    }

    /// Whether channel `ch` is hard-failed under this plan.
    pub fn channel_failed(&self, ch: usize) -> bool {
        happens(site_hash(self.seed, domain::CHAN_FAIL, ch as u64, 0, 0), self.chan_fail_rate)
    }

    /// Whether channel `ch` is stall-degraded under this plan.
    pub fn channel_stalled(&self, ch: usize) -> bool {
        happens(site_hash(self.seed, domain::CHAN_STALL, ch as u64, 0, 0), self.chan_stall_rate)
    }
}

/// A persistent cell defect at one 32-byte block site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckFault {
    /// One bit (index in `0..256`) is stuck at the given level.
    Bit {
        /// Bit index within the 256-bit block.
        bit: u16,
        /// The level the cell is stuck at.
        level: bool,
    },
    /// Two bits of the same 64-bit codeword are stuck — an uncorrectable
    /// pattern for the SECDED code.
    Pair {
        /// First stuck bit index within the block.
        bit_a: u16,
        /// Second stuck bit index, same 64-bit word as `bit_a`.
        bit_b: u16,
        /// The level both cells are stuck at.
        level: bool,
    },
}

/// Flips one bit (index in `0..256`) of a 32-byte block. Public so device
/// models can apply a [`ColumnFault::CorruptBit`] decision to in-flight
/// data.
pub fn flip_bit(data: &mut [u8; 32], bit: u16) {
    data[(bit / 8) as usize] ^= 1 << (bit % 8);
}

fn force_bit(data: &mut [u8; 32], bit: u16, level: bool) {
    let byte = (bit / 8) as usize;
    let mask = 1u8 << (bit % 8);
    if level {
        data[byte] |= mask;
    } else {
        data[byte] &= !mask;
    }
}

/// Per-bank cell-fault state, installed by
/// `PimSystem::install_faults` and consulted by the bank's read/write
/// paths. `salt` encodes the bank's system-wide identity so every bank
/// sees an independent fault pattern from one seed.
#[derive(Debug, Clone)]
pub struct CellFaults {
    seed: u64,
    salt: u64,
    flip_rate: f64,
    stuck_rate: f64,
    pair_rate: f64,
    /// Per-bank write counter — transient flips key off it, so a rewrite
    /// of the same site rolls fresh dice (and a scrub repair can stick).
    writes: u64,
}

impl CellFaults {
    /// Builds the per-bank state for `plan`, or `None` when the plan has no
    /// cell-level fault classes (keeping the zero-cost hook dormant).
    pub fn new(plan: &FaultPlan, salt: u64) -> Option<CellFaults> {
        if plan.cell_flip_rate <= 0.0 && plan.stuck_cell_rate <= 0.0 && plan.stuck_pair_rate <= 0.0
        {
            return None;
        }
        Some(CellFaults {
            seed: plan.seed,
            salt,
            flip_rate: plan.cell_flip_rate,
            stuck_rate: plan.stuck_cell_rate,
            pair_rate: plan.stuck_pair_rate,
            writes: 0,
        })
    }

    /// The persistent defect at block site (`row`, `col`), if any.
    pub fn stuck_at(&self, row: u32, col: u32) -> Option<StuckFault> {
        let pair = site_hash(self.seed, domain::CELL_STUCK_PAIR, self.salt, row as u64, col as u64);
        if happens(pair, self.pair_rate) {
            let bit_a = (pair % 256) as u16;
            let word = bit_a / 64;
            // A second, distinct bit within the same 64-bit codeword.
            let off = (bit_a % 64 + 1 + ((pair >> 10) % 63) as u16) % 64;
            let bit_b = word * 64 + off;
            return Some(StuckFault::Pair { bit_a, bit_b, level: (pair >> 9) & 1 == 1 });
        }
        let h = site_hash(self.seed, domain::CELL_STUCK, self.salt, row as u64, col as u64);
        if happens(h, self.stuck_rate) {
            return Some(StuckFault::Bit { bit: (h % 256) as u16, level: (h >> 9) & 1 == 1 });
        }
        None
    }

    /// Applies persistent defects to a block being read from (`row`,
    /// `col`). Called on every array read; pure, so read order never
    /// changes the outcome.
    pub fn corrupt_read(&self, row: u32, col: u32, data: &mut [u8; 32]) {
        match self.stuck_at(row, col) {
            Some(StuckFault::Bit { bit, level }) => force_bit(data, bit, level),
            Some(StuckFault::Pair { bit_a, bit_b, level }) => {
                force_bit(data, bit_a, level);
                force_bit(data, bit_b, level);
            }
            None => {}
        }
    }

    /// Applies a transient in-transit flip to a block being written to
    /// (`row`, `col`), advancing the bank's write counter.
    pub fn corrupt_write(&mut self, row: u32, col: u32, data: &mut [u8; 32]) {
        self.writes += 1;
        let h = site_hash(
            self.seed,
            domain::CELL_FLIP,
            self.salt,
            (row as u64) << 32 | col as u64,
            self.writes,
        );
        if happens(h, self.flip_rate) {
            let bit = (h % 256) as u16;
            data[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
}

/// What the device-level injector decided for one all-bank data column
/// command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnFault {
    /// Deliver the command normally.
    None,
    /// The command is silently lost (no triggers, no data movement).
    Drop,
    /// A write's payload has the given bit flipped in transit.
    CorruptBit(u16),
    /// A spurious mode-machine glitch: unit sequencers reset as if
    /// `PIM_OP_MODE` had been rewritten.
    Glitch,
}

/// Per-channel device-fault state, installed into `pim-core`'s channel
/// model. Decisions hash `(seed, channel, command counter)`, so they are
/// identical under every execution backend.
#[derive(Debug, Clone)]
pub struct DeviceFaults {
    seed: u64,
    channel: u64,
    drop_rate: f64,
    corrupt_rate: f64,
    glitch_rate: f64,
    hard_failed: bool,
    stall_penalty: u64,
    cmds: u64,
}

impl DeviceFaults {
    /// Builds the per-channel state for `plan`, or `None` when the plan has
    /// no device-level fault classes for this channel.
    pub fn new(plan: &FaultPlan, channel: u64) -> Option<DeviceFaults> {
        let hard_failed = plan.channel_failed(channel as usize);
        let stall_penalty =
            if plan.channel_stalled(channel as usize) { plan.stall_penalty } else { 0 };
        if plan.cmd_drop_rate <= 0.0
            && plan.cmd_corrupt_rate <= 0.0
            && plan.glitch_rate <= 0.0
            && !hard_failed
            && stall_penalty == 0
        {
            return None;
        }
        Some(DeviceFaults {
            seed: plan.seed,
            channel,
            drop_rate: plan.cmd_drop_rate,
            corrupt_rate: plan.cmd_corrupt_rate,
            glitch_rate: plan.glitch_rate,
            hard_failed,
            stall_penalty,
            cmds: 0,
        })
    }

    /// True if this channel never executes PIM work.
    pub fn hard_failed(&self) -> bool {
        self.hard_failed
    }

    /// Extra cycles every accepted command costs on this channel.
    pub fn stall_penalty(&self) -> u64 {
        self.stall_penalty
    }

    /// Rolls the fault decision for the next all-bank data column command.
    /// At most one fault class fires per command (drop > corrupt > glitch).
    pub fn next_column(&mut self) -> ColumnFault {
        self.cmds += 1;
        let n = self.cmds;
        let drop = site_hash(self.seed, domain::CMD_DROP, self.channel, n, 0);
        if happens(drop, self.drop_rate) {
            return ColumnFault::Drop;
        }
        let corrupt = site_hash(self.seed, domain::CMD_CORRUPT, self.channel, n, 0);
        if happens(corrupt, self.corrupt_rate) {
            return ColumnFault::CorruptBit((corrupt % 256) as u16);
        }
        let glitch = site_hash(self.seed, domain::GLITCH, self.channel, n, 0);
        if happens(glitch, self.glitch_rate) {
            return ColumnFault::Glitch;
        }
        ColumnFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            cell_flip_rate: 0.3,
            stuck_cell_rate: 0.2,
            stuck_pair_rate: 0.1,
            cmd_drop_rate: 0.1,
            cmd_corrupt_rate: 0.1,
            glitch_rate: 0.1,
            chan_fail_rate: 0.1,
            chan_stall_rate: 0.1,
            stall_penalty: 16,
        }
    }

    #[test]
    fn quiet_plan_installs_nothing() {
        let p = FaultPlan::quiet(7);
        assert!(p.is_quiet());
        assert!(CellFaults::new(&p, 0).is_none());
        assert!(DeviceFaults::new(&p, 0).is_none());
        assert!(!p.channel_failed(3));
        assert!(!p.channel_stalled(3));
    }

    #[test]
    fn decisions_are_deterministic() {
        let p = busy_plan(42);
        let a = CellFaults::new(&p, 5).unwrap();
        let b = CellFaults::new(&p, 5).unwrap();
        for row in 0..64 {
            for col in 0..32 {
                assert_eq!(a.stuck_at(row, col), b.stuck_at(row, col));
            }
        }
        let mut da = DeviceFaults::new(&p, 2).unwrap();
        let mut db = DeviceFaults::new(&p, 2).unwrap();
        for _ in 0..1000 {
            assert_eq!(da.next_column(), db.next_column());
        }
    }

    #[test]
    fn seeds_and_salts_decorrelate_sites() {
        let p1 = busy_plan(1);
        let p2 = busy_plan(2);
        let count = |f: &CellFaults| {
            (0..256u32)
                .flat_map(|r| (0..32u32).map(move |c| (r, c)))
                .filter(|&(r, c)| f.stuck_at(r, c).is_some())
                .count()
        };
        let a = count(&CellFaults::new(&p1, 0).unwrap());
        let b = count(&CellFaults::new(&p2, 0).unwrap());
        let c = count(&CellFaults::new(&p1, 9).unwrap());
        // ~28% of 8192 sites each; identical counts across seeds/salts
        // would mean the hash ignores them.
        assert!(a > 1500 && b > 1500 && c > 1500);
        let different = |x: usize, y: usize| x != y;
        assert!(different(a, b) || different(a, c));
    }

    #[test]
    fn stuck_pair_stays_within_one_codeword() {
        let mut p = busy_plan(3);
        p.stuck_pair_rate = 1.0;
        let f = CellFaults::new(&p, 0).unwrap();
        for row in 0..32 {
            for col in 0..32 {
                match f.stuck_at(row, col) {
                    Some(StuckFault::Pair { bit_a, bit_b, .. }) => {
                        assert_ne!(bit_a, bit_b, "({row},{col})");
                        assert_eq!(bit_a / 64, bit_b / 64, "({row},{col})");
                    }
                    other => panic!("expected a pair at ({row},{col}), got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn transient_flip_keys_off_write_counter() {
        let mut p = FaultPlan::quiet(11);
        p.cell_flip_rate = 0.5;
        let mut f = CellFaults::new(&p, 1).unwrap();
        let clean = [0u8; 32];
        let mut flipped = 0;
        for _ in 0..200 {
            let mut d = clean;
            f.corrupt_write(10, 3, &mut d);
            if d != clean {
                flipped += 1;
                assert_eq!(d.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
            }
        }
        assert!(flipped > 50 && flipped < 150, "{flipped}/200 writes flipped");
    }

    #[test]
    fn rate_extremes_clamp() {
        assert!(!happens(u64::MAX, 0.0));
        assert!(happens(0, 1.0));
        assert!(happens(u64::MAX, 1.5));
        assert!(!happens(0, -1.0));
    }

    #[test]
    fn failed_and_stalled_channels_come_from_the_plan() {
        let mut p = FaultPlan::quiet(9);
        p.chan_fail_rate = 1.0;
        p.chan_stall_rate = 1.0;
        p.stall_penalty = 8;
        let d = DeviceFaults::new(&p, 4).unwrap();
        assert!(d.hard_failed());
        assert_eq!(d.stall_penalty(), 8);
    }
}
