//! Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
//!
//! Emits the ["JSON Object Format"]: a top-level object with a
//! `traceEvents` array of duration (`B`/`E`) and instant (`i`) events.
//! Cycle timestamps are written as microseconds 1:1 — Perfetto's absolute
//! numbers then read directly as cycles.
//!
//! ["JSON Object Format"]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{Event, EventKind, Scope};
use crate::names;
use std::collections::BTreeSet;

/// Escapes a string for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Maps a scope to Chrome's (pid, tid) plane.
///
/// Channel becomes the process; unit or bank becomes the thread (units and
/// banks are disjoint name spaces, so banks are offset by 1000 to keep the
/// tracks apart). Global events live on pid 0 / tid 0.
fn pid_tid(scope: &Scope) -> (u64, u64) {
    let pid = scope.channel.map(|c| c as u64 + 1).unwrap_or(0);
    let tid = match (scope.unit, scope.bank) {
        (Some(u), _) => u as u64 + 1,
        (None, Some(b)) => b as u64 + 1001,
        (None, None) => 0,
    };
    (pid, tid)
}

fn push_event(out: &mut String, e: &Event) {
    let ph = match e.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
    };
    let (pid, tid) = pid_tid(&e.scope);
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        escape_json(&e.name),
        escape_json(e.cat),
        ph,
        e.ts,
        pid,
        tid
    ));
    if e.kind == EventKind::Instant {
        // Thread-scoped instants render as small arrows on their track.
        out.push_str(",\"s\":\"t\"");
    }
    let mut args: Vec<String> = Vec::new();
    if let Some((k, v)) = e.arg {
        args.push(format!("\"{}\":{}", escape_json(k), v));
    }
    if let Some(ctx) = e.trace {
        args.push(format!("\"trace\":\"{:016x}\"", ctx.trace.0));
        args.push(format!("\"span\":\"{:016x}\"", ctx.span.0));
        args.push(format!("\"tenant\":{}", ctx.tenant));
    }
    if !args.is_empty() {
        out.push_str(&format!(",\"args\":{{{}}}", args.join(",")));
    }
    out.push('}');
}

/// Names the process/thread tracks: pid 0 is the host/global track,
/// pid `c + 1` is channel `c`; within a process, tid 0 is the control
/// track, `u + 1` a PIM unit, `b + 1001` a bank.
fn push_track_metadata(out: &mut String, events: &[Event]) {
    let tracks: BTreeSet<(u64, u64)> = events.iter().map(|e| pid_tid(&e.scope)).collect();
    let pids: BTreeSet<u64> = tracks.iter().map(|&(pid, _)| pid).collect();
    for pid in &pids {
        let name = if *pid == 0 { "host".to_string() } else { format!("channel {}", pid - 1) };
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}},"
        ));
    }
    for (pid, tid) in &tracks {
        let name = match tid {
            0 => {
                if *pid == 0 {
                    "global".to_string()
                } else {
                    "ctrl".to_string()
                }
            }
            1..=1000 => format!("unit {}", tid - 1),
            _ => format!("bank {}", tid - 1001),
        };
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}},"
        ));
    }
}

/// Emits flow events (`ph` `s`/`t`/`f`) chaining a request's lifecycle
/// instants (admission → dispatch → launch → completion) and its traced
/// per-channel batch spans into one arrow sequence per trace id.
fn push_flow_event(out: &mut String, e: &Event, seen: &mut BTreeSet<u64>) {
    let Some(ctx) = e.trace else { return };
    let linkable =
        e.cat == names::CAT_REQUEST || (e.cat == names::CAT_BATCH && e.kind == EventKind::Begin);
    if !linkable {
        return;
    }
    let ph = if seen.insert(ctx.trace.0) {
        "s"
    } else if e.cat == names::CAT_REQUEST && e.name == names::REQ_DONE {
        "f"
    } else {
        "t"
    };
    let (pid, tid) = pid_tid(&e.scope);
    out.push_str(&format!(
        ",{{\"name\":\"request\",\"cat\":\"flow\",\"ph\":\"{ph}\",\"id\":{},\
         \"ts\":{},\"pid\":{pid},\"tid\":{tid}{}}}",
        ctx.trace.0,
        e.ts,
        if ph == "f" { ",\"bp\":\"e\"" } else { "" }
    ));
}

/// Renders events as a complete Chrome trace-event JSON document:
/// track-naming metadata first, then every event (traced events carry
/// `trace`/`span`/`tenant` args) interleaved with request flow arrows.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    push_track_metadata(&mut out, events);
    let mut seen_traces = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, e);
        push_flow_event(&mut out, e, &mut seen_traces);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scope;

    #[test]
    fn escaping_covers_specials_and_controls() {
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn document_shape_and_scope_mapping() {
        let events = vec![
            Event::begin(5, "gemv", "op", Scope::GLOBAL),
            Event::instant(6, "RD", "command", Scope::bank(2, 3)).with_arg("col", 7),
            Event::end(9, "gemv", "op", Scope::GLOBAL),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        // Bank 3 of channel 2: pid 3, tid 1004.
        assert!(json.contains("\"ph\":\"i\",\"ts\":6,\"pid\":3,\"tid\":1004"), "{json}");
        assert!(json.contains("\"args\":{\"col\":7}"));
    }

    #[test]
    fn names_are_escaped_in_output() {
        let events = vec![Event::instant(1, "we\"ird\n", "op", Scope::GLOBAL)];
        let json = chrome_trace_json(&events);
        assert!(json.contains(r#"we\"ird\n"#), "{json}");
    }

    /// Negative escaping tests: adversarial event names and arg keys must
    /// never produce an unbalanced quote or a raw control byte.
    #[test]
    fn adversarial_names_never_break_the_document() {
        for name in [
            "\"",
            "\\",
            "\\\"",
            "a\"b\\c",
            "\u{0}\u{1f}\u{7f}",
            "end\"}],\"evil\":[{\"",
            "back\\\\slash",
        ] {
            let events = vec![
                Event::begin(0, name.to_string(), "batch", Scope::channel(1)),
                Event::instant(1, name.to_string(), "command", Scope::bank(1, 0)).with_arg("k", 3),
                Event::end(2, name.to_string(), "batch", Scope::channel(1)),
            ];
            let json = chrome_trace_json(&events);
            // Outside escape sequences every quote must be structural: a
            // raw unescaped quote from the name would leave an odd count
            // of unescaped quotes impossible here.
            let mut escaped = false;
            let mut quotes = 0usize;
            for c in json.chars() {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => quotes += 1,
                    _ => {}
                }
                assert!(c >= ' ', "raw control char in output for name {name:?}");
            }
            assert_eq!(quotes % 2, 0, "unbalanced quotes for name {name:?}: {json}");
        }
    }

    #[test]
    fn every_channel_gets_a_named_track() {
        let events = vec![
            Event::begin(0, "b", "batch", Scope::channel(0)),
            Event::end(1, "b", "batch", Scope::channel(0)),
            Event::instant(2, "RD", "command", Scope::bank(5, 3)),
            Event::instant(3, "t", "mode", Scope::unit(5, 2)),
        ];
        let json = chrome_trace_json(&events);
        for needle in [
            "\"args\":{\"name\":\"channel 0\"}",
            "\"args\":{\"name\":\"channel 5\"}",
            "\"args\":{\"name\":\"ctrl\"}",
            "\"args\":{\"name\":\"bank 3\"}",
            "\"args\":{\"name\":\"unit 2\"}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn traced_request_events_chain_into_flows() {
        use crate::trace::TraceCtx;
        let ctx = TraceCtx::root(0x5E17, 0, 1);
        let events = vec![
            Event::instant(0, crate::names::REQ_ADMIT, "request", Scope::GLOBAL).with_trace(ctx),
            Event::instant(5, crate::names::REQ_DISPATCH, "request", Scope::GLOBAL)
                .with_trace(ctx.child(1)),
            Event::begin(6, "pim_on", "batch", Scope::channel(2)).with_trace(ctx.child(1)),
            Event::end(9, "pim_on", "batch", Scope::channel(2)).with_trace(ctx.child(1)),
            Event::instant(10, crate::names::REQ_DONE, "request", Scope::GLOBAL).with_trace(ctx),
        ];
        let json = chrome_trace_json(&events);
        let count = |needle: &str| json.matches(needle).count();
        assert_eq!(count("\"cat\":\"flow\",\"ph\":\"s\""), 1, "{json}");
        assert_eq!(count("\"cat\":\"flow\",\"ph\":\"t\""), 2, "{json}");
        assert_eq!(count("\"cat\":\"flow\",\"ph\":\"f\""), 1, "{json}");
        // The flow steps land on the channel track the batch ran on.
        assert!(json.contains("\"ph\":\"t\",\"id\":"), "{json}");
        assert!(json.contains(&format!("\"id\":{}", ctx.trace.0)));
        assert!(json.contains(&format!("\"trace\":\"{:016x}\"", ctx.trace.0)));
        assert!(json.contains("\"tenant\":1"));
    }
}
