//! Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
//!
//! Emits the ["JSON Object Format"]: a top-level object with a
//! `traceEvents` array of duration (`B`/`E`) and instant (`i`) events.
//! Cycle timestamps are written as microseconds 1:1 — Perfetto's absolute
//! numbers then read directly as cycles.
//!
//! ["JSON Object Format"]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{Event, EventKind, Scope};

/// Escapes a string for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Maps a scope to Chrome's (pid, tid) plane.
///
/// Channel becomes the process; unit or bank becomes the thread (units and
/// banks are disjoint name spaces, so banks are offset by 1000 to keep the
/// tracks apart). Global events live on pid 0 / tid 0.
fn pid_tid(scope: &Scope) -> (u64, u64) {
    let pid = scope.channel.map(|c| c as u64 + 1).unwrap_or(0);
    let tid = match (scope.unit, scope.bank) {
        (Some(u), _) => u as u64 + 1,
        (None, Some(b)) => b as u64 + 1001,
        (None, None) => 0,
    };
    (pid, tid)
}

fn push_event(out: &mut String, e: &Event) {
    let ph = match e.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
    };
    let (pid, tid) = pid_tid(&e.scope);
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        escape_json(&e.name),
        escape_json(e.cat),
        ph,
        e.ts,
        pid,
        tid
    ));
    if e.kind == EventKind::Instant {
        // Thread-scoped instants render as small arrows on their track.
        out.push_str(",\"s\":\"t\"");
    }
    if let Some((k, v)) = e.arg {
        out.push_str(&format!(",\"args\":{{\"{}\":{}}}", escape_json(k), v));
    }
    out.push('}');
}

/// Renders events as a complete Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scope;

    #[test]
    fn escaping_covers_specials_and_controls() {
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn document_shape_and_scope_mapping() {
        let events = vec![
            Event::begin(5, "gemv", "op", Scope::GLOBAL),
            Event::instant(6, "RD", "command", Scope::bank(2, 3)).with_arg("col", 7),
            Event::end(9, "gemv", "op", Scope::GLOBAL),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        // Bank 3 of channel 2: pid 3, tid 1004.
        assert!(json.contains("\"ph\":\"i\",\"ts\":6,\"pid\":3,\"tid\":1004"), "{json}");
        assert!(json.contains("\"args\":{\"col\":7}"));
    }

    #[test]
    fn names_are_escaped_in_output() {
        let events = vec![Event::instant(1, "we\"ird\n", "op", Scope::GLOBAL)];
        let json = chrome_trace_json(&events);
        assert!(json.contains(r#"we\"ird\n"#), "{json}");
    }
}
