//! Deterministic request-scoped trace context.
//!
//! A [`TraceCtx`] is minted once per serving-layer request — derived with
//! splitmix64 over the server seed and the request admission index, never
//! from a wall clock — and travels with the request through EDF dispatch,
//! the resilience ladder, kernel launches, and per-channel execution. Any
//! [`crate::Event`] can carry an optional context so the merged event
//! stream can be joined back to the owning request and tenant, and the
//! Chrome exporter can link admission → dispatch → launch → completion
//! with flow events.
//!
//! Determinism contract: the same seed and request index always yield the
//! same ids, under every execution backend, so traced artifacts stay
//! byte-identical across `Sequential` and `Threads(n)` runs.

/// The splitmix64 finalizer — the same bijective mixer the rest of the
/// workspace uses for deterministic tie-breaking and jitter.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identifies one request across every layer and every export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one stage (admission, dispatch, a launch attempt, …) within
/// a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Derives the trace id for the `request_index`-th admitted request of
    /// a server seeded with `seed`. Pure function of its inputs.
    #[must_use]
    pub fn mint(seed: u64, request_index: u64) -> TraceId {
        TraceId(mix(seed ^ mix(request_index ^ 0x7ACE_1D00)))
    }
}

/// The full context stamped onto events: which request, which stage of its
/// lifecycle, and which tenant submitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The owning request's trace id.
    pub trace: TraceId,
    /// The current lifecycle stage's span id.
    pub span: SpanId,
    /// The tenant that submitted the request.
    pub tenant: u32,
}

impl TraceCtx {
    /// Mints the root context for a request: trace id from
    /// [`TraceId::mint`], root span derived from the trace id.
    #[must_use]
    pub fn root(seed: u64, request_index: u64, tenant: u32) -> TraceCtx {
        let trace = TraceId::mint(seed, request_index);
        TraceCtx { trace, span: SpanId(mix(trace.0)), tenant }
    }

    /// Derives a child context for lifecycle stage `stage` (e.g. launch
    /// attempt number). Same trace and tenant, new span id.
    #[must_use]
    pub fn child(&self, stage: u64) -> TraceCtx {
        TraceCtx { span: SpanId(mix(self.trace.0 ^ self.span.0 ^ stage)), ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minting_is_deterministic_and_seed_sensitive() {
        assert_eq!(TraceId::mint(7, 0), TraceId::mint(7, 0));
        assert_ne!(TraceId::mint(7, 0), TraceId::mint(7, 1));
        assert_ne!(TraceId::mint(7, 0), TraceId::mint(8, 0));
    }

    #[test]
    fn root_and_children_share_trace_but_not_spans() {
        let root = TraceCtx::root(0x5E17, 3, 1);
        let a = root.child(1);
        let b = root.child(2);
        assert_eq!(root.trace, a.trace);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.tenant, 1);
        assert_ne!(root.span, a.span);
        assert_ne!(a.span, b.span);
        // Re-deriving the same stage yields the same span id.
        assert_eq!(root.child(1), a);
    }

    #[test]
    fn mix_matches_splitmix64_reference() {
        // splitmix64(0) first output, as published by Vigna.
        assert_eq!(mix(0), 0xE220_A839_7B1D_CDAF);
    }
}
