//! CSV export of a metrics registry.

use crate::metrics::MetricsRegistry;

/// Quotes a CSV field if it contains a comma, quote, or newline.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders the registry as CSV with header `kind,name,value`.
///
/// Counters and gauges get one row each; every histogram gets one row per
/// bucket (`histogram,<name>[<=bound],count`) plus `_count`, `_sum`,
/// `_min`, `_max`, and `_mean` summary rows.
pub fn metrics_csv(registry: &MetricsRegistry) -> String {
    let mut out = String::from("kind,name,value\n");
    for (name, value) in registry.counters() {
        out.push_str(&format!("counter,{},{}\n", field(name), value));
    }
    for (name, value) in registry.gauges() {
        out.push_str(&format!("gauge,{},{}\n", field(name), value));
    }
    for (name, hist) in registry.histograms() {
        for (bucket, count) in hist.buckets() {
            out.push_str(&format!("histogram,{},{}\n", field(&format!("{name}[{bucket}]")), count));
        }
        out.push_str(&format!("histogram,{},{}\n", field(&format!("{name}_count")), hist.count()));
        out.push_str(&format!("histogram,{},{}\n", field(&format!("{name}_sum")), hist.sum()));
        out.push_str(&format!(
            "histogram,{},{}\n",
            field(&format!("{name}_min")),
            hist.min().unwrap_or(0)
        ));
        out.push_str(&format!(
            "histogram,{},{}\n",
            field(&format!("{name}_max")),
            hist.max().unwrap_or(0)
        ));
        out.push_str(&format!("histogram,{},{:.3}\n", field(&format!("{name}_mean")), hist.mean()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rows_cover_all_metric_kinds() {
        let mut m = MetricsRegistry::new();
        m.add("ctrl.row_hit", 10);
        m.set_gauge("row_hit_rate", 0.5);
        m.observe("queue", &[1, 4], 2);
        m.observe("queue", &[1, 4], 9);
        let csv = metrics_csv(&m);
        assert!(csv.starts_with("kind,name,value\n"));
        assert!(csv.contains("counter,ctrl.row_hit,10\n"));
        assert!(csv.contains("gauge,row_hit_rate,0.5\n"));
        assert!(csv.contains("histogram,queue[<=4],1\n"));
        assert!(csv.contains("histogram,queue[>4],1\n"));
        assert!(csv.contains("histogram,queue_count,2\n"));
        assert!(csv.contains("histogram,queue_mean,5.500\n"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let mut m = MetricsRegistry::new();
        m.add("weird,name", 1);
        let csv = metrics_csv(&m);
        assert!(csv.contains("counter,\"weird,name\",1\n"));
    }
}
