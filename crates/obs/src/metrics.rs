//! Named counters, gauges, and fixed-bucket histograms.

use std::collections::BTreeMap;

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by a sorted list of inclusive upper bounds; a final
/// overflow bucket catches everything above the last bound. The histogram
/// also tracks count, sum, min, and max exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean sample value, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Iterates `(label, count)` per bucket, including the overflow bucket.
    ///
    /// Labels are `<=N` for bounded buckets and `>N` for the overflow
    /// bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        self.bounds
            .iter()
            .map(|b| format!("<={b}"))
            .chain(std::iter::once(format!(">{}", self.bounds[self.bounds.len() - 1])))
            .zip(self.counts.iter().copied())
    }

    /// The inclusive bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Raw per-bucket counts: one entry per bound, plus the overflow
    /// bucket last.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts.
    ///
    /// Returns the inclusive upper bound of the bucket containing the
    /// nearest-rank sample — an upper estimate, exact when samples sit on
    /// bucket bounds. The overflow bucket reports the tracked exact
    /// maximum. `None` if the histogram is empty. For exact percentiles
    /// over retained samples use [`Quantiles`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r (1-based) with r >= q * count.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() { self.bounds[i] } else { self.max });
            }
        }
        Some(self.max)
    }
}

/// Exact quantiles over a retained, sorted sample set.
///
/// Complements [`Histogram`] (which trades exactness for bounded memory):
/// where a report must reproduce a percentile exactly — e.g. the serving
/// campaign's committed p50/p99 latencies — keep the samples and use the
/// nearest-rank definition `sorted[(len - 1) * p / 100]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quantiles {
    sorted: Vec<u64>,
}

impl Quantiles {
    /// Builds from an arbitrary-order sample vector.
    pub fn from_samples(mut samples: Vec<u64>) -> Quantiles {
        samples.sort_unstable();
        Quantiles { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The exact nearest-rank `p`-th percentile (`p` in `0..=100`,
    /// clamped), defined as `sorted[(len - 1) * p / 100]`. Returns 0 when
    /// empty, matching the serving campaign's historical convention.
    pub fn percentile(&self, p: usize) -> u64 {
        if self.sorted.is_empty() {
            0
        } else {
            self.sorted[(self.sorted.len() - 1) * p.min(100) / 100]
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.sorted.first().copied()
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.sorted.last().copied()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[u64] {
        &self.sorted
    }
}

/// A registry of named metrics.
///
/// Names are dotted paths (see [`crate::names`]); `BTreeMap` keeps exports
/// deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into the named histogram, creating it with `bounds`
    /// if absent.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, gauges take the
    /// other's value, histogram bucket counts add when bounds match).
    ///
    /// # Panics
    ///
    /// Panics if a histogram of the same name has different bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    assert_eq!(mine.bounds, h.bounds, "histogram {k} bounds mismatch in merge");
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                }
            }
        }
    }

    /// Takes an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { registry: self.clone() }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The copied registry.
    pub registry: MetricsRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[0, 1, 4, 8]);
        // Exactly on each bound lands in that bound's bucket.
        h.record(0);
        h.record(1);
        h.record(4);
        h.record(8);
        // One above a bound lands in the next bucket.
        h.record(2);
        h.record(5);
        // Above the last bound lands in overflow.
        h.record(9);
        h.record(1000);
        let b: Vec<(String, u64)> = h.buckets().collect();
        assert_eq!(
            b,
            vec![
                ("<=0".to_string(), 1),
                ("<=1".to_string(), 1),
                ("<=4".to_string(), 2),
                ("<=8".to_string(), 2),
                (">8".to_string(), 2),
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn histogram_mean_and_empty_behaviour() {
        let mut h = Histogram::new(&[10]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(4);
        h.record(8);
        assert_eq!(h.mean(), 6.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[4, 2]);
    }

    #[test]
    fn histogram_quantile_reports_bucket_upper_bounds() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        assert_eq!(h.quantile(0.5), None);
        for v in [5, 5, 50, 50, 500, 500, 5000, 9000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(10)); // rank 1 → first bucket
        assert_eq!(h.quantile(0.25), Some(10));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(0.75), Some(1000));
        // Overflow bucket reports the exact tracked maximum.
        assert_eq!(h.quantile(1.0), Some(9000));
    }

    #[test]
    fn quantiles_match_nearest_rank_formula() {
        let samples = vec![9, 1, 7, 3, 5];
        let q = Quantiles::from_samples(samples.clone());
        let mut sorted = samples;
        sorted.sort_unstable();
        for p in [0, 10, 25, 50, 75, 90, 99, 100] {
            assert_eq!(q.percentile(p), sorted[(sorted.len() - 1) * p / 100], "p{p}");
        }
        assert_eq!(q.min(), Some(1));
        assert_eq!(q.max(), Some(9));
        assert_eq!(Quantiles::from_samples(vec![]).percentile(50), 0);
        assert!(Quantiles::from_samples(vec![]).is_empty());
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.add("x", 2);
        a.observe("h", &[1, 2], 1);
        let mut b = MetricsRegistry::new();
        b.add("x", 3);
        b.add("y", 1);
        b.observe("h", &[1, 2], 5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(5));
    }
}
