//! Named counters, gauges, and fixed-bucket histograms.

use std::collections::BTreeMap;

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by a sorted list of inclusive upper bounds; a final
/// overflow bucket catches everything above the last bound. The histogram
/// also tracks count, sum, min, and max exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean sample value, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Iterates `(label, count)` per bucket, including the overflow bucket.
    ///
    /// Labels are `<=N` for bounded buckets and `>N` for the overflow
    /// bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        self.bounds
            .iter()
            .map(|b| format!("<={b}"))
            .chain(std::iter::once(format!(">{}", self.bounds[self.bounds.len() - 1])))
            .zip(self.counts.iter().copied())
    }
}

/// A registry of named metrics.
///
/// Names are dotted paths (see [`crate::names`]); `BTreeMap` keeps exports
/// deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into the named histogram, creating it with `bounds`
    /// if absent.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, gauges take the
    /// other's value, histogram bucket counts add when bounds match).
    ///
    /// # Panics
    ///
    /// Panics if a histogram of the same name has different bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    assert_eq!(mine.bounds, h.bounds, "histogram {k} bounds mismatch in merge");
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                }
            }
        }
    }

    /// Takes an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { registry: self.clone() }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The copied registry.
    pub registry: MetricsRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[0, 1, 4, 8]);
        // Exactly on each bound lands in that bound's bucket.
        h.record(0);
        h.record(1);
        h.record(4);
        h.record(8);
        // One above a bound lands in the next bucket.
        h.record(2);
        h.record(5);
        // Above the last bound lands in overflow.
        h.record(9);
        h.record(1000);
        let b: Vec<(String, u64)> = h.buckets().collect();
        assert_eq!(
            b,
            vec![
                ("<=0".to_string(), 1),
                ("<=1".to_string(), 1),
                ("<=4".to_string(), 2),
                ("<=8".to_string(), 2),
                (">8".to_string(), 2),
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn histogram_mean_and_empty_behaviour() {
        let mut h = Histogram::new(&[10]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(4);
        h.record(8);
        assert_eq!(h.mean(), 6.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[4, 2]);
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.add("x", 2);
        a.observe("h", &[1, 2], 1);
        let mut b = MetricsRegistry::new();
        b.add("x", 3);
        b.add("y", 1);
        b.observe("h", &[1, 2], 5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(5));
    }
}
