//! Observability layer for the PIM-HBM simulator.
//!
//! This crate is the simulator's unified telemetry substrate: a structured
//! event bus ([`event`], [`sink`]), a metrics registry of counters, gauges
//! and fixed-bucket histograms ([`metrics`]), deterministic request-scoped
//! trace contexts ([`trace`]), an exact cycle-attribution profiler
//! ([`attrib`]), exporters to Chrome trace-event JSON, CSV, and the
//! OpenMetrics text format ([`chrome`], [`csv`], [`openmetrics`]), and the
//! cheap, cloneable
//! [`Recorder`] handle the simulation crates carry as an *optional* field —
//! when no recorder is attached, instrumentation reduces to an
//! `Option::None` check, so profiling is strictly opt-in and has zero
//! observer effect on simulated cycle counts.
//!
//! The crate is intentionally dependency-free. The recorder is an
//! `Arc<Mutex<...>>` so instrumented channels can migrate across the host's
//! worker threads (`pim-host`'s parallel execution backend); the lock is
//! uncontended in the common case because the parallel backend gives every
//! channel a private per-channel buffer recorder and merges the buffers in
//! stable channel order at the end-of-kernel barrier
//! ([`Recorder::merge_from`]), which keeps the merged stream byte-identical
//! to a sequential run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod chrome;
pub mod csv;
pub mod event;
pub mod metrics;
pub mod names;
pub mod openmetrics;
pub mod recorder;
pub mod sink;
pub mod trace;

pub use attrib::Attribution;
pub use event::{check_nesting, Cycle, Event, EventKind, Scope};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, Quantiles};
pub use recorder::Recorder;
pub use sink::{CountingSink, EventSink, FileSink, RingSink, Sink, VecSink};
pub use trace::{SpanId, TraceCtx, TraceId};
