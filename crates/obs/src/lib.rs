//! Observability layer for the PIM-HBM simulator.
//!
//! This crate is the simulator's unified telemetry substrate: a structured
//! event bus ([`event`], [`sink`]), a metrics registry of counters, gauges
//! and fixed-bucket histograms ([`metrics`]), exporters to Chrome
//! trace-event JSON and CSV ([`chrome`], [`csv`]), and the cheap, cloneable
//! [`Recorder`] handle the simulation crates carry as an *optional* field —
//! when no recorder is attached, instrumentation reduces to an
//! `Option::None` check, so profiling is strictly opt-in and has zero
//! observer effect on simulated cycle counts.
//!
//! The crate is intentionally dependency-free and single-threaded (the
//! simulator advances channel clocks sequentially), so the recorder is an
//! `Rc<RefCell<...>>`, not a lock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod csv;
pub mod event;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod sink;

pub use event::{check_nesting, Cycle, Event, EventKind, Scope};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use recorder::Recorder;
pub use sink::{CountingSink, EventSink, FileSink, RingSink, Sink, VecSink};
