//! OpenMetrics text-format export of a [`MetricsRegistry`], plus a small
//! strict validator used by tests and CI smoke jobs.
//!
//! The rendered exposition follows the OpenMetrics text format: one
//! `# TYPE` line per metric family, counter samples suffixed `_total`,
//! histogram samples as cumulative `_bucket{le="..."}` series ending in
//! `le="+Inf"` plus `_sum`/`_count`, and a terminal `# EOF` line. Dotted
//! registry names (`srv.completed`) are mapped to the OpenMetrics
//! charset and namespaced (`pim_srv_completed`). Output is byte-stable:
//! the registry's `BTreeMap` ordering fixes the family order.

use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

/// Maps a registry name to a valid OpenMetrics metric name: `pim_` prefix,
/// dots and other non-`[a-zA-Z0-9_]` bytes folded to `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("pim_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Renders the registry as an OpenMetrics text exposition.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m}_total {value}");
    }
    for (name, value) in registry.gauges() {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, h) in registry.histograms() {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
            cumulative += count;
            let _ = writeln!(out, "{m}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{m}_sum {}", h.sum());
        let _ = writeln!(out, "{m}_count {}", h.count());
    }
    out.push_str("# EOF\n");
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `pim_foo_bucket{le="8"} 3` into (family, suffix, le, value).
fn parse_sample(line: &str) -> Result<(String, &'static str, Option<f64>, f64), String> {
    let (name_labels, value) =
        line.rsplit_once(' ').ok_or_else(|| format!("sample line without value: `{line}`"))?;
    let value: f64 = value.parse().map_err(|_| format!("bad sample value in `{line}`"))?;
    let (name, le) = match name_labels.split_once('{') {
        None => (name_labels, None),
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in `{line}`"))?;
            let mut le = None;
            for label in labels.split(',') {
                let (k, v) = label
                    .split_once('=')
                    .ok_or_else(|| format!("malformed label `{label}` in `{line}`"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value in `{line}`"))?;
                if k == "le" {
                    let parsed = if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse().map_err(|_| format!("bad le bound `{v}` in `{line}`"))?
                    };
                    le = Some(parsed);
                }
            }
            (name, le)
        }
    };
    if !valid_name(name) {
        return Err(format!("invalid metric name `{name}`"));
    }
    for (suffix, tag) in
        [("_total", "total"), ("_bucket", "bucket"), ("_sum", "sum"), ("_count", "count")]
    {
        if let Some(family) = name.strip_suffix(suffix) {
            if valid_name(family) {
                return Ok((family.to_string(), tag, le, value));
            }
        }
    }
    Ok((name.to_string(), "bare", le, value))
}

/// Validates an OpenMetrics text exposition; returns the first violation.
///
/// Checks: terminal `# EOF`; every family declared with a `# TYPE` line
/// before its samples and declared only once; counter samples carry
/// `_total`; histogram families expose non-decreasing cumulative
/// `_bucket` series with strictly increasing `le` bounds ending in
/// `+Inf`, and a `_count` equal to the `+Inf` bucket.
pub fn validate(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    if !text.ends_with("# EOF\n") && text != "# EOF" {
        return Err("exposition must end with `# EOF`".to_string());
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // Per histogram family: (last le, last cumulative, saw +Inf, +Inf value)
    let mut hist: BTreeMap<String, (f64, f64, bool, f64)> = BTreeMap::new();
    let mut saw_eof = false;
    for line in text.lines() {
        if saw_eof {
            return Err(format!("content after `# EOF`: `{line}`"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().ok_or("TYPE line without name")?;
                    let kind = parts.next().ok_or("TYPE line without type")?;
                    if !valid_name(name) {
                        return Err(format!("invalid family name `{name}`"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return Err(format!("unsupported metric type `{kind}`"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(format!("duplicate TYPE for `{name}`"));
                    }
                }
                Some("HELP" | "UNIT") => {}
                _ => return Err(format!("unrecognised comment line `{line}`")),
            }
            continue;
        }
        if line.is_empty() {
            return Err("blank lines are not allowed".to_string());
        }
        let (family, suffix, le, value) = parse_sample(line)?;
        let kind = types
            .get(&family)
            .ok_or_else(|| format!("sample for undeclared family `{family}`: `{line}`"))?;
        match (kind.as_str(), suffix) {
            ("counter", "total") | ("gauge", "bare") | ("histogram", "sum" | "count") => {}
            ("histogram", "bucket") => {
                let bound =
                    le.ok_or_else(|| format!("histogram bucket without le label: `{line}`"))?;
                let entry =
                    hist.entry(family.clone()).or_insert((f64::NEG_INFINITY, 0.0, false, 0.0));
                if bound <= entry.0 {
                    return Err(format!("le bounds not increasing for `{family}`"));
                }
                if value < entry.1 {
                    return Err(format!("bucket counts not cumulative for `{family}`"));
                }
                entry.0 = bound;
                entry.1 = value;
                if bound.is_infinite() {
                    entry.2 = true;
                    entry.3 = value;
                }
            }
            _ => return Err(format!("sample `{line}` does not match declared type `{kind}`")),
        }
        if kind == "histogram" && suffix == "count" {
            let entry =
                hist.get(&family).ok_or_else(|| format!("histogram `{family}` has no buckets"))?;
            if !entry.2 {
                return Err(format!("histogram `{family}` missing le=\"+Inf\" bucket"));
            }
            if entry.3 != value {
                return Err(format!("histogram `{family}` count != +Inf bucket"));
            }
        }
    }
    if !saw_eof {
        return Err("missing `# EOF`".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.add(names::SRV_COMPLETED, 3);
        reg.add(names::CTRL_ROW_HIT, 17);
        reg.set_gauge(names::BANK_OPEN_CYCLES, 1536.0);
        reg.observe(names::SRV_QUEUE_WAIT, names::LATENCY_BUCKETS, 900);
        reg.observe(names::SRV_QUEUE_WAIT, names::LATENCY_BUCKETS, 90_000);
        reg.observe(names::SRV_QUEUE_WAIT, names::LATENCY_BUCKETS, 9_000_000);
        reg
    }

    #[test]
    fn rendered_exposition_validates_and_is_stable() {
        let text = render(&sample_registry());
        validate(&text).expect("self-rendered exposition must validate");
        assert_eq!(text, render(&sample_registry()), "render must be deterministic");
        assert!(text.contains("# TYPE pim_srv_completed counter"));
        assert!(text.contains("pim_srv_completed_total 3"));
        assert!(text.contains("pim_srv_queue_wait_cycles_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("pim_srv_queue_wait_cycles_count 3"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for (broken, why) in [
            ("pim_x_total 1\n# EOF\n", "undeclared family"),
            ("# TYPE pim_x counter\npim_x_total 1\n", "missing EOF"),
            ("# TYPE pim_x counter\npim_x 1\n# EOF\n", "counter without _total"),
            ("# TYPE pim_x counter\n# TYPE pim_x counter\n# EOF\n", "duplicate TYPE"),
            ("# TYPE pim_x counter\npim_x_total nan?\n# EOF\n", "bad value"),
            (
                "# TYPE pim_h histogram\npim_h_bucket{le=\"8\"} 2\npim_h_bucket{le=\"4\"} 3\n# EOF\n",
                "le bounds must increase",
            ),
            (
                "# TYPE pim_h histogram\npim_h_bucket{le=\"4\"} 3\npim_h_bucket{le=\"+Inf\"} 2\n# EOF\n",
                "counts must be cumulative",
            ),
            (
                "# TYPE pim_h histogram\npim_h_bucket{le=\"4\"} 1\npim_h_count 1\n# EOF\n",
                "missing +Inf bucket",
            ),
            ("# TYPE pim_x counter\npim_x_total 1\n# EOF\nextra\n", "content after EOF"),
        ] {
            assert!(validate(broken).is_err(), "expected rejection: {why}");
        }
    }

    #[test]
    fn metric_names_are_sanitised() {
        assert_eq!(metric_name("srv.queue_wait_cycles"), "pim_srv_queue_wait_cycles");
        assert_eq!(metric_name("weird name!"), "pim_weird_name_");
    }
}
