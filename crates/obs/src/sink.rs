//! Event sinks: where recorded events go.

use crate::event::Event;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Consumes a stream of [`Event`]s.
///
/// Implementations must be cheap: sinks run inline with the simulation (but
/// only when a recorder is attached, so the un-instrumented path never pays
/// for them). `Send` is a supertrait because recorders (and the controllers
/// holding them) migrate across the parallel backend's worker threads.
pub trait EventSink: fmt::Debug + Send {
    /// Receives one event.
    fn record(&mut self, event: &Event);

    /// Number of events offered to the sink so far (including any it chose
    /// to drop).
    fn offered(&self) -> u64;
}

/// Keeps every event in memory.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl EventSink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn offered(&self) -> u64 {
        self.events.len() as u64
    }
}

/// Keeps the most recent `capacity` events, counting what it dropped.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink { buf: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl EventSink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn offered(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }
}

/// Discards events, keeping only a count — used to measure the observer
/// effect (it must be zero) and for smoke tests.
#[derive(Debug, Default)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Events seen.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl EventSink for CountingSink {
    fn record(&mut self, _event: &Event) {
        self.count += 1;
    }

    fn offered(&self) -> u64 {
        self.count
    }
}

/// Streams events to a file as line-delimited text, one event per line.
///
/// Format: `cycle kind cat name [ch=N] [unit=N] [bank=N] [key=value]
/// [trace=HEX span=HEX tenant=N]`.
/// Buffered; call [`FileSink::flush`] (or drop the recorder) to ensure all
/// lines hit the disk.
pub struct FileSink {
    out: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
    written: u64,
}

impl fmt::Debug for FileSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSink")
            .field("path", &self.path)
            .field("written", &self.written)
            .finish()
    }
}

impl FileSink {
    /// Creates (truncates) `path` and streams events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileSink> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(FileSink { out: std::io::BufWriter::new(file), path, written: 0 })
    }

    /// Flushes buffered lines.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

impl EventSink for FileSink {
    fn record(&mut self, event: &Event) {
        let kind = match event.kind {
            crate::event::EventKind::Begin => "B",
            crate::event::EventKind::End => "E",
            crate::event::EventKind::Instant => "I",
        };
        let mut line = format!("{} {} {} {}", event.ts, kind, event.cat, event.name);
        if let Some(ch) = event.scope.channel {
            line.push_str(&format!(" ch={ch}"));
        }
        if let Some(u) = event.scope.unit {
            line.push_str(&format!(" unit={u}"));
        }
        if let Some(b) = event.scope.bank {
            line.push_str(&format!(" bank={b}"));
        }
        if let Some((k, v)) = event.arg {
            line.push_str(&format!(" {k}={v}"));
        }
        if let Some(ctx) = event.trace {
            line.push_str(&format!(
                " trace={:016x} span={:016x} tenant={}",
                ctx.trace.0, ctx.span.0, ctx.tenant
            ));
        }
        // I/O errors are swallowed: a broken trace file must not alter
        // simulation behaviour.
        let _ = writeln!(self.out, "{line}");
        self.written += 1;
    }

    fn offered(&self) -> u64 {
        self.written
    }
}

/// The sink attached to a [`crate::Recorder`].
///
/// An enum rather than only a boxed trait so that common sinks can be
/// inspected after the run (e.g. [`Sink::events`]); arbitrary
/// implementations still fit through [`Sink::Custom`].
#[derive(Debug)]
pub enum Sink {
    /// Keep everything.
    Vec(VecSink),
    /// Keep the last N.
    Ring(RingSink),
    /// Count only.
    Counting(CountingSink),
    /// Stream to a file.
    File(FileSink),
    /// Any other implementation.
    Custom(Box<dyn EventSink>),
}

impl Sink {
    /// Dispatches to the underlying sink.
    pub fn record(&mut self, event: &Event) {
        match self {
            Sink::Vec(s) => s.record(event),
            Sink::Ring(s) => s.record(event),
            Sink::Counting(s) => s.record(event),
            Sink::File(s) => s.record(event),
            Sink::Custom(s) => s.record(event),
        }
    }

    /// Events offered to the sink so far.
    pub fn offered(&self) -> u64 {
        match self {
            Sink::Vec(s) => s.offered(),
            Sink::Ring(s) => s.offered(),
            Sink::Counting(s) => s.offered(),
            Sink::File(s) => s.offered(),
            Sink::Custom(s) => s.offered(),
        }
    }

    /// The retained events, if this sink retains any (`Vec` and `Ring`).
    pub fn events(&self) -> Option<Vec<Event>> {
        match self {
            Sink::Vec(s) => Some(s.events().to_vec()),
            Sink::Ring(s) => Some(s.events().cloned().collect()),
            _ => None,
        }
    }

    /// Events dropped by a bounded sink (0 for unbounded ones).
    pub fn dropped(&self) -> u64 {
        match self {
            Sink::Ring(s) => s.dropped(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scope;

    fn ev(ts: u64) -> Event {
        Event::instant(ts, "x", "command", Scope::GLOBAL)
    }

    #[test]
    fn ring_sink_keeps_newest_and_counts_drops() {
        let mut s = RingSink::new(3);
        for i in 0..5 {
            s.record(&ev(i));
        }
        let kept: Vec<u64> = s.events().map(|e| e.ts).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.offered(), 5);
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new();
        for i in 0..7 {
            s.record(&ev(i));
        }
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn file_sink_writes_lines() {
        let path = std::env::temp_dir().join("pim_obs_sink_test.txt");
        {
            let mut s = FileSink::create(&path).unwrap();
            s.record(&ev(1).with_arg("col", 3));
            s.record(&Event::begin(2, "gemv", "op", Scope::unit(1, 2)));
            s.record(&ev(3).with_trace(crate::trace::TraceCtx::root(0, 0, 5)));
            s.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("1 I command x col=3"), "{text}");
        assert!(text.contains("2 B op gemv ch=1 unit=2"), "{text}");
        assert!(text.contains("3 I command x trace=") && text.contains(" tenant=5"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
