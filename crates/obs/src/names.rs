//! Canonical metric and category names used by the instrumented crates.
//!
//! Centralised so that producers (dram/core/host/runtime) and consumers
//! (profile report, CSV export, tests) agree on spelling.

/// Category for runtime-level operation spans (one BLAS call).
pub const CAT_OP: &str = "op";
/// Category for kernel-phase spans emitted by the executor/engine.
pub const CAT_KERNEL: &str = "kernel";
/// Category for per-batch spans emitted by the kernel engine.
pub const CAT_BATCH: &str = "batch";
/// Category for individual DRAM command instants.
pub const CAT_COMMAND: &str = "command";
/// Category for device mode-transition instants.
pub const CAT_MODE: &str = "mode";
/// Category for serving-layer request-lifecycle instants (admission,
/// dispatch, launch attempts, completion) and resilience-ladder actions.
pub const CAT_REQUEST: &str = "request";

/// Counter: column command hit an already-open row.
pub const CTRL_ROW_HIT: &str = "ctrl.row_hit";
/// Counter: column command to an idle (closed) bank.
pub const CTRL_ROW_MISS: &str = "ctrl.row_miss";
/// Counter: column command required closing a different open row.
pub const CTRL_ROW_CONFLICT: &str = "ctrl.row_conflict";
/// Counter: requests completed by the controller queue.
pub const CTRL_COMPLETED: &str = "ctrl.completed";
/// Counter: requests issued ahead of an older queued request (FR-FCFS).
pub const CTRL_REORDERED: &str = "ctrl.reordered";
/// Counter: raw (PIM-path) commands issued to the device.
pub const CTRL_RAW_COMMANDS: &str = "ctrl.raw_commands";
/// Histogram: queue depth observed at each enqueue.
pub const CTRL_QUEUE_DEPTH: &str = "ctrl.queue_depth";
/// Counter: cycles all banks spent with a row open (residency).
pub const BANK_OPEN_CYCLES: &str = "bank.open_cycles";
/// Counter: cycles all banks spent precharged/idle (residency).
pub const BANK_CLOSED_CYCLES: &str = "bank.closed_cycles";

/// Counter: operating-mode transitions (SB <-> AB <-> AB-PIM).
pub const DEV_MODE_TRANSITIONS: &str = "dev.mode_transitions";
/// Counter: CRF instruction words programmed.
pub const DEV_CRF_LOADS: &str = "dev.crf_loads";
/// Counter: PIM instructions triggered across units.
pub const DEV_PIM_TRIGGERS: &str = "dev.pim_triggers";
/// Counter: cycles PIM units spent executing triggered instructions.
pub const DEV_UNIT_BUSY_CYCLES: &str = "dev.unit_busy_cycles";
/// Counter: device-level faults injected (dropped/corrupted commands and
/// mode-machine glitches) by an installed fault plan.
pub const DEV_FAULTS_INJECTED: &str = "dev.faults_injected";

/// Counter: ECC scrub passes over resident operand blocks.
pub const RES_SCRUBS: &str = "res.scrubs";
/// Counter: single-bit errors corrected in place by the scrub path.
pub const RES_ECC_CORRECTED: &str = "res.ecc_corrected";
/// Counter: uncorrectable (multi-bit) errors detected by the scrub path.
pub const RES_ECC_DETECTED: &str = "res.ecc_detected";
/// Counter: blocks re-stored from the host-side golden copy.
pub const RES_BLOCKS_RESTORED: &str = "res.blocks_restored";
/// Counter: kernel launches retried after a detected wrong result.
pub const RES_RETRIES: &str = "res.retries";
/// Counter: channels quarantined (removed from the active layout).
pub const RES_QUARANTINED: &str = "res.quarantined_channels";
/// Counter: result blocks computed host-side after PIM recovery failed.
pub const RES_HOST_FALLBACK_BLOCKS: &str = "res.host_fallback_blocks";

/// Counter: requests submitted to the serving layer.
pub const SRV_SUBMITTED: &str = "srv.submitted";
/// Counter: requests admitted into a tenant queue.
pub const SRV_ADMITTED: &str = "srv.admitted";
/// Counter: requests shed because the tenant's bounded queue was full.
pub const SRV_SHED_QUEUE_FULL: &str = "srv.shed_queue_full";
/// Counter: requests shed because the estimated backlog exceeded the
/// admission controller's cycle budget.
pub const SRV_SHED_OVERLOADED: &str = "srv.shed_overloaded";
/// Counter: requests completed on PIM within their deadline.
pub const SRV_COMPLETED: &str = "srv.completed";
/// Counter: requests that missed their deadline (expired in queue, or
/// finished past it).
pub const SRV_DEADLINE_MISSED: &str = "srv.deadline_missed";
/// Counter: kernel launches cancelled by the sim-cycle watchdog.
pub const SRV_WATCHDOG_CANCELS: &str = "srv.watchdog_cancels";
/// Counter: circuit breakers tripped open on a channel group.
pub const SRV_BREAKER_TRIPS: &str = "srv.breaker_trips";
/// Counter: circuit breakers moved from open to half-open after cooldown.
pub const SRV_BREAKER_HALF_OPENS: &str = "srv.breaker_half_opens";
/// Counter: circuit breakers closed again after a successful probe.
pub const SRV_BREAKER_CLOSES: &str = "srv.breaker_closes";
/// Counter: operand re-layouts over a reduced channel-group set.
pub const SRV_RELAYOUTS: &str = "srv.relayouts";
/// Counter: requests computed host-side by the degradation policy.
pub const SRV_HOST_FALLBACKS: &str = "srv.host_fallbacks";
/// Histogram: cycles admitted requests waited in queue before dispatch.
pub const SRV_QUEUE_WAIT: &str = "srv.queue_wait_cycles";
/// Histogram: cycles dispatched requests spent in service (dispatch to
/// completion, on PIM or on the host fallback path).
pub const SRV_SERVICE: &str = "srv.service_cycles";
/// Histogram: cycles of deadline slack remaining at completion (0 for a
/// missed deadline).
pub const SRV_DEADLINE_SLACK: &str = "srv.deadline_slack_cycles";

/// Instant: a request was admitted into its tenant queue.
pub const REQ_ADMIT: &str = "req.admit";
/// Instant: the EDF dispatcher selected a request for execution.
pub const REQ_DISPATCH: &str = "req.dispatch";
/// Instant: a kernel launch attempt started on behalf of a request.
pub const REQ_LAUNCH: &str = "req.launch";
/// Instant: a request reached a terminal disposition (arg: the
/// disposition code, see `pim_runtime::serve`).
pub const REQ_DONE: &str = "req.done";
/// Instant: the resilience ladder retried a kernel launch.
pub const RES_RETRY_EVENT: &str = "res.retry";
/// Instant: the resilience ladder quarantined a channel and re-laid-out
/// operands over the surviving set (arg: quarantined channel count).
pub const RES_QUARANTINE_EVENT: &str = "res.quarantine";
/// Instant: the resilience ladder fell back to the host for result
/// blocks PIM could not produce (arg: block count).
pub const RES_FALLBACK_EVENT: &str = "res.host_fallback";

/// Counter: cycles the host spent draining fences.
pub const ENGINE_FENCE_STALL_CYCLES: &str = "engine.fence_stall_cycles";
/// Counter: fences executed.
pub const ENGINE_FENCES: &str = "engine.fences";
/// Counter: command batches issued.
pub const ENGINE_BATCHES: &str = "engine.batches";
/// Histogram: commands per batch.
pub const ENGINE_BATCH_LEN: &str = "engine.batch_len";

/// Bucket upper bounds for queue-depth style histograms.
pub const QUEUE_DEPTH_BUCKETS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64];
/// Bucket upper bounds for batch-length histograms (fences every 8).
pub const BATCH_LEN_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32];
/// Bucket upper bounds for cycle-latency histograms (queue wait, service
/// time, deadline slack): powers of four from 256 cycles to ~4M.
pub const LATENCY_BUCKETS: &[u64] = &[256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304];
