//! The [`Recorder`]: the cloneable handle simulation crates carry.

use crate::event::{Cycle, Event, Scope};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::sink::{CountingSink, EventSink, RingSink, Sink, VecSink};
use std::borrow::Cow;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug)]
struct Inner {
    sink: Sink,
    metrics: MetricsRegistry,
}

/// A shared handle to one event sink plus one metrics registry.
///
/// Cloning is cheap (`Rc`); every instrumented layer of one simulation run
/// holds a clone of the same recorder, so events from the controller, the
/// device, the engine, and the runtime interleave into a single stream and
/// a single registry. The simulator is single-threaded by construction, so
/// interior mutability is a `RefCell`, not a lock.
///
/// Instrumented code stores an `Option<Recorder>` that defaults to `None`;
/// with no recorder attached the hooks cost one pointer test.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Rc<RefCell<Inner>>,
}

impl Recorder {
    /// Creates a recorder over an arbitrary sink.
    pub fn new(sink: Sink) -> Recorder {
        Recorder { inner: Rc::new(RefCell::new(Inner { sink, metrics: MetricsRegistry::new() })) }
    }

    /// Recorder keeping every event in memory.
    pub fn vec() -> Recorder {
        Recorder::new(Sink::Vec(VecSink::new()))
    }

    /// Recorder keeping the most recent `capacity` events.
    pub fn ring(capacity: usize) -> Recorder {
        Recorder::new(Sink::Ring(RingSink::new(capacity)))
    }

    /// Recorder that only counts events (used by the observer-effect test).
    pub fn counting() -> Recorder {
        Recorder::new(Sink::Counting(CountingSink::new()))
    }

    /// Recorder over a custom sink implementation.
    pub fn custom(sink: Box<dyn EventSink>) -> Recorder {
        Recorder::new(Sink::Custom(sink))
    }

    /// Emits a span-begin event.
    pub fn begin(
        &self,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) {
        self.emit(Event::begin(ts, name, cat, scope));
    }

    /// Emits a span-end event.
    pub fn end(
        &self,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) {
        self.emit(Event::end(ts, name, cat, scope));
    }

    /// Emits an instant event.
    pub fn instant(
        &self,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) {
        self.emit(Event::instant(ts, name, cat, scope));
    }

    /// Emits a pre-built event.
    pub fn emit(&self, event: Event) {
        self.inner.borrow_mut().sink.record(&event);
    }

    /// Adds to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.inner.borrow_mut().metrics.add(name, delta);
    }

    /// Sets a named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.borrow_mut().metrics.set_gauge(name, value);
    }

    /// Records a sample into a named histogram (created with `bounds` on
    /// first use).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        self.inner.borrow_mut().metrics.observe(name, bounds, value);
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.borrow().metrics.snapshot()
    }

    /// The retained events, if the sink retains any.
    pub fn events(&self) -> Option<Vec<Event>> {
        self.inner.borrow().sink.events()
    }

    /// Events offered to the sink so far.
    pub fn events_offered(&self) -> u64 {
        self.inner.borrow().sink.offered()
    }

    /// Events dropped by a bounded sink.
    pub fn events_dropped(&self) -> u64 {
        self.inner.borrow().sink.dropped()
    }

    /// Runs `f` with mutable access to the metrics registry (bulk import).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.inner.borrow_mut().metrics)
    }
}

/// RAII guard emitting a span-end when dropped — convenience for
/// instrumenting scoped regions where the end cycle is read at drop time.
///
/// Most simulator instrumentation calls [`Recorder::begin`]/[`Recorder::end`]
/// directly because the end timestamp comes from the simulated clock, not
/// from guard drop order; the guard exists for callers whose span ends
/// coincide with lexical scope.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: Cow<'static, str>,
    cat: &'static str,
    scope: Scope,
    end_ts: Cycle,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span at `ts`; the end event is emitted on drop at the
    /// timestamp set by [`SpanGuard::set_end`] (defaults to `ts`).
    pub fn enter(
        recorder: &'a Recorder,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) -> SpanGuard<'a> {
        let name = name.into();
        recorder.begin(ts, name.clone(), cat, scope);
        SpanGuard { recorder, name, cat, scope, end_ts: ts }
    }

    /// Sets the cycle at which the span ends.
    pub fn set_end(&mut self, ts: Cycle) {
        self.end_ts = ts;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.end(self.end_ts, self.name.clone(), self.cat, self.scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn clones_share_state() {
        let r = Recorder::vec();
        let r2 = r.clone();
        r.instant(1, "a", "command", Scope::GLOBAL);
        r2.instant(2, "b", "command", Scope::GLOBAL);
        r.add("x", 1);
        r2.add("x", 2);
        assert_eq!(r.events().unwrap().len(), 2);
        assert_eq!(r2.metrics().registry.counter("x"), 3);
    }

    #[test]
    fn span_guard_emits_balanced_events() {
        let r = Recorder::vec();
        {
            let mut g = SpanGuard::enter(&r, 10, "op", "op", Scope::GLOBAL);
            g.set_end(20);
        }
        let events = r.events().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].ts, 20);
        assert_eq!(crate::event::check_nesting(&events), Ok(1));
    }

    #[test]
    fn counting_recorder_reports_offered() {
        let r = Recorder::counting();
        r.instant(1, "a", "command", Scope::GLOBAL);
        r.instant(2, "b", "command", Scope::GLOBAL);
        assert_eq!(r.events_offered(), 2);
        assert!(r.events().is_none());
    }
}
