//! The [`Recorder`]: the cloneable handle simulation crates carry.

use crate::event::{Cycle, Event, Scope};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::sink::{CountingSink, EventSink, RingSink, Sink, VecSink};
use crate::trace::TraceCtx;
use std::borrow::Cow;
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct Inner {
    sink: Sink,
    metrics: MetricsRegistry,
    /// Ambient trace context stamped onto every emitted event that does
    /// not already carry one (see [`Recorder::set_trace`]).
    trace: Option<TraceCtx>,
}

/// A shared handle to one event sink plus one metrics registry.
///
/// Cloning is cheap (`Arc`); every instrumented layer of one simulation run
/// holds a clone of the same recorder, so events from the controller, the
/// device, the engine, and the runtime interleave into a single stream and
/// a single registry. The handle is `Send + Sync` so instrumented channels
/// can migrate across the parallel backend's worker threads; within one
/// channel's simulation the lock is uncontended (the parallel backend swaps
/// in a private per-channel recorder and merges at the barrier, see
/// [`Recorder::merge_from`]).
///
/// Instrumented code stores an `Option<Recorder>` that defaults to `None`;
/// with no recorder attached the hooks cost one pointer test.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<Inner>>,
}

impl Recorder {
    /// Creates a recorder over an arbitrary sink.
    pub fn new(sink: Sink) -> Recorder {
        Recorder {
            inner: Arc::new(Mutex::new(Inner {
                sink,
                metrics: MetricsRegistry::new(),
                trace: None,
            })),
        }
    }

    /// Locks the shared state. A poisoned lock means an instrumented worker
    /// panicked mid-event; the telemetry is still structurally sound (every
    /// record call is atomic under the lock), so recover the guard rather
    /// than cascading the panic into unrelated threads.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Recorder keeping every event in memory.
    pub fn vec() -> Recorder {
        Recorder::new(Sink::Vec(VecSink::new()))
    }

    /// Recorder keeping the most recent `capacity` events.
    pub fn ring(capacity: usize) -> Recorder {
        Recorder::new(Sink::Ring(RingSink::new(capacity)))
    }

    /// Recorder that only counts events (used by the observer-effect test).
    pub fn counting() -> Recorder {
        Recorder::new(Sink::Counting(CountingSink::new()))
    }

    /// Recorder over a custom sink implementation.
    pub fn custom(sink: Box<dyn EventSink>) -> Recorder {
        Recorder::new(Sink::Custom(sink))
    }

    /// Emits a span-begin event.
    pub fn begin(
        &self,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) {
        self.emit(Event::begin(ts, name, cat, scope));
    }

    /// Emits a span-end event.
    pub fn end(
        &self,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) {
        self.emit(Event::end(ts, name, cat, scope));
    }

    /// Emits an instant event.
    pub fn instant(
        &self,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) {
        self.emit(Event::instant(ts, name, cat, scope));
    }

    /// Emits a pre-built event. If an ambient trace context is set
    /// ([`Recorder::set_trace`]) and the event carries none of its own,
    /// the ambient context is stamped onto it.
    pub fn emit(&self, event: Event) {
        let mut inner = self.lock();
        let event = match (event.trace, inner.trace) {
            (None, Some(ctx)) => event.with_trace(ctx),
            _ => event,
        };
        inner.sink.record(&event);
    }

    /// Sets (or clears, with `None`) the ambient trace context. The
    /// serving layer sets this around each request's execution so that
    /// every event the engine, controller, and device emit on the
    /// request's behalf is joined to it — including events recorded
    /// through per-channel buffer recorders, which inherit the ambient
    /// context at detach time (see `pim-host`'s parallel backend).
    pub fn set_trace(&self, trace: Option<TraceCtx>) {
        self.lock().trace = trace;
    }

    /// The current ambient trace context, if any.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.lock().trace
    }

    /// Adds to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.lock().metrics.add(name, delta);
    }

    /// Sets a named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().metrics.set_gauge(name, value);
    }

    /// Records a sample into a named histogram (created with `bounds` on
    /// first use).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        self.lock().metrics.observe(name, bounds, value);
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.lock().metrics.snapshot()
    }

    /// The retained events, if the sink retains any.
    pub fn events(&self) -> Option<Vec<Event>> {
        self.lock().sink.events()
    }

    /// Events offered to the sink so far.
    pub fn events_offered(&self) -> u64 {
        self.lock().sink.offered()
    }

    /// Events dropped by a bounded sink.
    pub fn events_dropped(&self) -> u64 {
        self.lock().sink.dropped()
    }

    /// Runs `f` with mutable access to the metrics registry (bulk import).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.lock().metrics)
    }

    /// Whether `self` and `other` share the same underlying sink/registry.
    pub fn same_handle(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Folds a per-channel buffer recorder into this one: replays the
    /// buffer's retained events into this recorder's sink in their recorded
    /// order, then merges the buffer's metrics registry
    /// ([`MetricsRegistry::merge`]).
    ///
    /// This is the deterministic reduction step of `pim-host`'s parallel
    /// execution backend: each channel records into a private
    /// [`Recorder::vec`] buffer on its worker thread, and the buffers are
    /// merged in stable channel-index order at the end-of-kernel barrier.
    /// A sequential run emits events in exactly that channel-major order,
    /// so the merged stream (and every derived export — Chrome trace, CSV)
    /// is identical to the sequential one.
    ///
    /// Merging a recorder into itself is a no-op. A buffer whose sink
    /// retains no events (e.g. counting) contributes only its metrics.
    pub fn merge_from(&self, buffer: &Recorder) {
        if self.same_handle(buffer) {
            return;
        }
        let (events, metrics) = {
            let b = buffer.lock();
            (b.sink.events(), b.metrics.clone())
        };
        let mut inner = self.lock();
        if let Some(events) = events {
            for e in &events {
                inner.sink.record(e);
            }
        }
        inner.metrics.merge(&metrics);
    }
}

/// RAII guard emitting a span-end when dropped — convenience for
/// instrumenting scoped regions where the end cycle is read at drop time.
///
/// Most simulator instrumentation calls [`Recorder::begin`]/[`Recorder::end`]
/// directly because the end timestamp comes from the simulated clock, not
/// from guard drop order; the guard exists for callers whose span ends
/// coincide with lexical scope.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: Cow<'static, str>,
    cat: &'static str,
    scope: Scope,
    end_ts: Cycle,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span at `ts`; the end event is emitted on drop at the
    /// timestamp set by [`SpanGuard::set_end`] (defaults to `ts`).
    pub fn enter(
        recorder: &'a Recorder,
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) -> SpanGuard<'a> {
        let name = name.into();
        recorder.begin(ts, name.clone(), cat, scope);
        SpanGuard { recorder, name, cat, scope, end_ts: ts }
    }

    /// Sets the cycle at which the span ends.
    pub fn set_end(&mut self, ts: Cycle) {
        self.end_ts = ts;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.end(self.end_ts, self.name.clone(), self.cat, self.scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn clones_share_state() {
        let r = Recorder::vec();
        let r2 = r.clone();
        r.instant(1, "a", "command", Scope::GLOBAL);
        r2.instant(2, "b", "command", Scope::GLOBAL);
        r.add("x", 1);
        r2.add("x", 2);
        assert_eq!(r.events().unwrap().len(), 2);
        assert_eq!(r2.metrics().registry.counter("x"), 3);
    }

    #[test]
    fn span_guard_emits_balanced_events() {
        let r = Recorder::vec();
        {
            let mut g = SpanGuard::enter(&r, 10, "op", "op", Scope::GLOBAL);
            g.set_end(20);
        }
        let events = r.events().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].ts, 20);
        assert_eq!(crate::event::check_nesting(&events), Ok(1));
    }

    #[test]
    fn counting_recorder_reports_offered() {
        let r = Recorder::counting();
        r.instant(1, "a", "command", Scope::GLOBAL);
        r.instant(2, "b", "command", Scope::GLOBAL);
        assert_eq!(r.events_offered(), 2);
        assert!(r.events().is_none());
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }

    #[test]
    fn merge_from_replays_events_and_merges_metrics() {
        let main = Recorder::vec();
        main.instant(1, "before", "command", Scope::GLOBAL);
        main.add("x", 1);
        let buf = Recorder::vec();
        buf.instant(2, "ch0", "command", Scope::channel(0));
        buf.instant(3, "ch0b", "command", Scope::channel(0));
        buf.add("x", 2);
        buf.observe("h", &[4, 8], 5);
        main.merge_from(&buf);
        let events = main.events().unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["before", "ch0", "ch0b"]);
        assert_eq!(main.metrics().registry.counter("x"), 3);
        assert_eq!(main.metrics().registry.histogram("h").unwrap().count(), 1);
        // Self-merge is a no-op, not a deadlock or duplication.
        main.merge_from(&main.clone());
        assert_eq!(main.events().unwrap().len(), 3);
    }

    #[test]
    fn ambient_trace_stamps_events_without_overriding_explicit_ones() {
        use crate::trace::TraceCtx;
        let r = Recorder::vec();
        let ambient = TraceCtx::root(1, 0, 7);
        let explicit = TraceCtx::root(2, 0, 9);
        r.instant(0, "before", "command", Scope::GLOBAL);
        r.set_trace(Some(ambient));
        assert_eq!(r.trace(), Some(ambient));
        r.instant(1, "stamped", "command", Scope::GLOBAL);
        r.emit(Event::instant(2, "kept", "command", Scope::GLOBAL).with_trace(explicit));
        r.set_trace(None);
        r.instant(3, "after", "command", Scope::GLOBAL);
        let events = r.events().unwrap();
        assert_eq!(events[0].trace, None);
        assert_eq!(events[1].trace, Some(ambient));
        assert_eq!(events[2].trace, Some(explicit));
        assert_eq!(events[3].trace, None);
    }

    #[test]
    fn merge_from_preserves_buffer_trace_stamps_verbatim() {
        use crate::trace::TraceCtx;
        let main = Recorder::vec();
        // Ambient trace on the *main* recorder must not restamp merged
        // events: the buffer already resolved its own ambient context.
        main.set_trace(Some(TraceCtx::root(9, 9, 9)));
        let buf = Recorder::vec();
        let ctx = TraceCtx::root(1, 4, 2);
        buf.set_trace(Some(ctx));
        buf.instant(5, "traced", "command", Scope::channel(3));
        main.merge_from(&buf);
        let events = main.events().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace, Some(ctx));
    }

    #[test]
    fn merge_from_counting_buffer_contributes_metrics_only() {
        let main = Recorder::vec();
        let buf = Recorder::counting();
        buf.instant(1, "dropped", "command", Scope::GLOBAL);
        buf.add("y", 7);
        main.merge_from(&buf);
        assert_eq!(main.events().unwrap().len(), 0);
        assert_eq!(main.metrics().registry.counter("y"), 7);
    }
}
