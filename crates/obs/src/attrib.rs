//! Cycle attribution: folds a merged event stream into an exact
//! decomposition of simulated cycles by (channel × kernel phase × command
//! class × tenant), with a conservation invariant.
//!
//! Each channel's timeline `[0, end_cycle]` is partitioned into disjoint
//! intervals by walking that channel's events in stream order with a
//! cursor. Every interval is charged to exactly one bucket, so per-channel
//! bucket totals sum to `end_cycle` *by construction* — no cycle is
//! dropped and none is counted twice ([`Attribution::check_conservation`]
//! re-verifies the invariant after the fold). The gap before each event is
//! charged to the event that terminates it:
//!
//! * a `command` instant (ACT/WR/RD/PRE, …) claims the gap under its own
//!   name — the issue latency of that command class;
//! * a `mode` instant (`SB->AB`, …) claims the gap as mode-switch time;
//! * a span `Begin` charges the gap to `(issue)` inside an open phase, or
//!   `(idle)` outside one, then pushes the phase (batch spans are the
//!   kernel phases: `enter_ab`, `crf`, `pim_on`, data batches, …);
//! * a span `End` charges the gap to `(drain)` — commands issued, waiting
//!   for the channel clock to retire them;
//! * a `fence` instant charges the drain-to-fence gap to `(fence)` under
//!   the phase that just closed;
//! * whatever remains after the last event is `(idle)` up to `end_cycle`.
//!
//! Tenants come from the request trace context stamped on the phase span
//! (inherited by everything inside it); intervals outside any traced span
//! have no tenant. Global-scope events (op/kernel spans, request
//! lifecycle instants) shape no channel time and are ignored here.

use crate::event::{Cycle, Event, EventKind};
use crate::names;
use std::collections::BTreeMap;

/// One attribution bucket's identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketKey {
    /// The channel whose cycles this bucket holds.
    pub channel: u16,
    /// Kernel phase (batch-span name), or `(idle)` outside any phase.
    pub phase: String,
    /// Command class (`ACT`, `RD`, …) or synthetic class (`(issue)`,
    /// `(drain)`, `(fence)`, `(idle)`, `(other)`).
    pub class: String,
    /// Owning tenant, when the interval lies inside a traced span.
    pub tenant: Option<u32>,
}

/// Synthetic class/phase label for un-attributed (idle) time.
pub const IDLE: &str = "(idle)";
/// Synthetic class for time spent issuing inside a phase before its first
/// command retires.
pub const ISSUE: &str = "(issue)";
/// Synthetic class for end-of-phase drain time.
pub const DRAIN: &str = "(drain)";
/// Synthetic class for fence-stall time after a phase closes.
pub const FENCE: &str = "(fence)";
/// Synthetic class for gaps terminated by uncategorised instants.
pub const OTHER: &str = "(other)";

/// An exact decomposition of per-channel simulated cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    end_cycle: Cycle,
    channels: u16,
    buckets: BTreeMap<BucketKey, u64>,
}

impl Attribution {
    /// Folds `events` (a merged, stream-ordered recording of one run over
    /// `channels` channels that ended with all channel clocks aligned at
    /// `end_cycle` — i.e. after a barrier) into an attribution.
    ///
    /// Fails if any channel's events are non-monotone, run past
    /// `end_cycle`, or leave a span open.
    pub fn from_events(
        events: &[Event],
        channels: u16,
        end_cycle: Cycle,
    ) -> Result<Attribution, String> {
        let mut buckets: BTreeMap<BucketKey, u64> = BTreeMap::new();
        for channel in 0..channels {
            fold_channel(events, channel, end_cycle, &mut buckets)?;
        }
        Ok(Attribution { end_cycle, channels, buckets })
    }

    /// The barrier-aligned end cycle every channel's buckets sum to.
    pub fn end_cycle(&self) -> Cycle {
        self.end_cycle
    }

    /// Number of channels attributed.
    pub fn channels(&self) -> u16 {
        self.channels
    }

    /// Iterates buckets in deterministic key order.
    pub fn buckets(&self) -> impl Iterator<Item = (&BucketKey, u64)> {
        self.buckets.iter().map(|(k, &v)| (k, v))
    }

    /// Total cycles attributed to one channel.
    pub fn channel_total(&self, channel: u16) -> u64 {
        self.buckets.iter().filter(|(k, _)| k.channel == channel).map(|(_, &v)| v).sum()
    }

    /// Total cycles across all buckets (= `channels × end_cycle`).
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Re-verifies the conservation invariant: every channel's buckets sum
    /// exactly to `end_cycle`, and the grand total to
    /// `channels × end_cycle`.
    pub fn check_conservation(&self) -> Result<(), String> {
        for channel in 0..self.channels {
            let total = self.channel_total(channel);
            if total != self.end_cycle {
                return Err(format!(
                    "channel {channel}: buckets sum to {total}, end cycle is {}",
                    self.end_cycle
                ));
            }
        }
        let grand = self.total();
        let expect = self.channels as u64 * self.end_cycle;
        if grand != expect {
            return Err(format!("grand total {grand} != channels × end_cycle {expect}"));
        }
        Ok(())
    }

    /// Aggregates across channels into (phase, class, tenant) → cycles,
    /// in deterministic order.
    pub fn by_phase_class(&self) -> BTreeMap<(String, String, Option<u32>), u64> {
        let mut out: BTreeMap<(String, String, Option<u32>), u64> = BTreeMap::new();
        for (k, v) in &self.buckets {
            *out.entry((k.phase.clone(), k.class.clone(), k.tenant)).or_insert(0) += v;
        }
        out
    }

    /// Renders the decomposition as folded stacks
    /// (`channel N;tenant T;phase;class cycles` per line), the input
    /// format flamegraph tools consume. Deterministic: lines follow
    /// bucket key order, zero-cycle buckets are omitted.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.buckets {
            if *v == 0 {
                continue;
            }
            out.push_str(&format!("channel {}", k.channel));
            if let Some(t) = k.tenant {
                out.push_str(&format!(";tenant {t}"));
            }
            out.push_str(&format!(";{};{} {v}\n", k.phase, k.class));
        }
        out
    }
}

fn fold_channel(
    events: &[Event],
    channel: u16,
    end_cycle: Cycle,
    buckets: &mut BTreeMap<BucketKey, u64>,
) -> Result<(), String> {
    let mut cursor: Cycle = 0;
    // Open phase spans on this channel: (name, tenant).
    let mut stack: Vec<(String, Option<u32>)> = Vec::new();
    // The phase that most recently closed — fences bill against it.
    let mut last_phase: Option<(String, Option<u32>)> = None;
    let mut account = |cursor: &mut Cycle,
                       upto: Cycle,
                       phase: &str,
                       class: &str,
                       tenant: Option<u32>| {
        if upto > *cursor {
            let key =
                BucketKey { channel, phase: phase.to_string(), class: class.to_string(), tenant };
            *buckets.entry(key).or_insert(0) += upto - *cursor;
            *cursor = upto;
        }
    };
    for e in events.iter().filter(|e| e.scope.channel == Some(channel)) {
        if e.ts < cursor {
            return Err(format!(
                "channel {channel}: event `{}` at cycle {} behind cursor {cursor}",
                e.name, e.ts
            ));
        }
        if e.ts > end_cycle {
            return Err(format!(
                "channel {channel}: event `{}` at cycle {} past end cycle {end_cycle}",
                e.name, e.ts
            ));
        }
        let (phase, tenant) = match stack.last() {
            Some((p, t)) => (p.as_str(), *t),
            None => (IDLE, None),
        };
        match e.kind {
            EventKind::Begin => {
                let class = if stack.is_empty() { IDLE } else { ISSUE };
                account(&mut cursor, e.ts, phase, class, tenant);
                let t = e.trace.map(|c| c.tenant).or(tenant);
                stack.push((e.name.to_string(), t));
            }
            EventKind::End => {
                account(&mut cursor, e.ts, phase, DRAIN, tenant);
                match stack.pop() {
                    Some(top) => last_phase = Some(top),
                    None => {
                        return Err(format!(
                            "channel {channel}: End `{}` at cycle {} with no open span",
                            e.name, e.ts
                        ));
                    }
                }
            }
            EventKind::Instant => {
                if e.cat == names::CAT_COMMAND || e.cat == names::CAT_MODE {
                    let t = tenant.or(e.trace.map(|c| c.tenant));
                    account(&mut cursor, e.ts, phase, &e.name, t);
                } else if e.cat == names::CAT_BATCH {
                    // Fence instants follow the span they drain.
                    let (p, t) = match (&last_phase, stack.last()) {
                        (_, Some((p, t))) => (p.as_str(), *t),
                        (Some((p, t)), None) => (p.as_str(), *t),
                        (None, None) => (IDLE, None),
                    };
                    account(&mut cursor, e.ts, p, FENCE, t);
                } else {
                    account(&mut cursor, e.ts, phase, OTHER, tenant);
                }
            }
        }
    }
    if let Some((name, _)) = stack.last() {
        return Err(format!("channel {channel}: span `{name}` still open at end of stream"));
    }
    account(&mut cursor, end_cycle, IDLE, IDLE, None);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scope;
    use crate::trace::TraceCtx;

    fn key(channel: u16, phase: &str, class: &str, tenant: Option<u32>) -> BucketKey {
        BucketKey { channel, phase: phase.to_string(), class: class.to_string(), tenant }
    }

    #[test]
    fn partitions_a_channel_timeline_exactly() {
        let ch = Scope::channel(0);
        let bank = Scope::bank(0, 2);
        let ctx = TraceCtx::root(1, 0, 4);
        let events = vec![
            Event::begin(10, "pim_on", names::CAT_BATCH, ch).with_trace(ctx),
            Event::instant(14, "ACT", names::CAT_COMMAND, bank),
            Event::instant(18, "RD", names::CAT_COMMAND, bank),
            Event::end(25, "pim_on", names::CAT_BATCH, ch),
            Event::instant(30, "fence", names::CAT_BATCH, ch).with_arg("stall_cycles", 5),
        ];
        let a = Attribution::from_events(&events, 2, 40).expect("fold");
        a.check_conservation().expect("conservation");
        let buckets: BTreeMap<BucketKey, u64> = a.buckets().map(|(k, v)| (k.clone(), v)).collect();
        assert_eq!(buckets[&key(0, IDLE, IDLE, None)], 10 + 10); // lead-in + tail
        assert_eq!(buckets[&key(0, "pim_on", "ACT", Some(4))], 4);
        assert_eq!(buckets[&key(0, "pim_on", "RD", Some(4))], 4);
        assert_eq!(buckets[&key(0, "pim_on", DRAIN, Some(4))], 7);
        assert_eq!(buckets[&key(0, "pim_on", FENCE, Some(4))], 5);
        // Channel 1 never appears in the stream: wholly idle.
        assert_eq!(buckets[&key(1, IDLE, IDLE, None)], 40);
        assert_eq!(a.total(), 80);
    }

    #[test]
    fn conservation_violations_are_reported() {
        let ch = Scope::channel(0);
        let past_end = vec![Event::instant(50, "RD", names::CAT_COMMAND, ch)];
        assert!(Attribution::from_events(&past_end, 1, 40).is_err());
        let open_span = vec![Event::begin(0, "b", names::CAT_BATCH, ch)];
        assert!(Attribution::from_events(&open_span, 1, 40).is_err());
        let backwards = vec![
            Event::instant(9, "RD", names::CAT_COMMAND, ch),
            Event::instant(3, "RD", names::CAT_COMMAND, ch),
        ];
        assert!(Attribution::from_events(&backwards, 1, 40).is_err());
    }

    #[test]
    fn folded_output_is_deterministic_and_nonzero_only() {
        let ch = Scope::channel(0);
        let events = vec![
            Event::begin(0, "crf", names::CAT_BATCH, ch),
            Event::instant(6, "WR", names::CAT_COMMAND, ch),
            Event::end(6, "crf", names::CAT_BATCH, ch),
        ];
        let a = Attribution::from_events(&events, 1, 8).expect("fold");
        let folded = a.folded();
        assert_eq!(folded, "channel 0;(idle);(idle) 2\nchannel 0;crf;WR 6\n");
        assert_eq!(a.folded(), folded);
    }
}
