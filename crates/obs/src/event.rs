//! The structured event model: spans and instants with cycle timestamps.

use crate::trace::TraceCtx;
use std::borrow::Cow;

/// A simulated-time timestamp, in DRAM controller cycles.
pub type Cycle = u64;

/// Where in the hardware hierarchy an event happened.
///
/// All levels are optional: a runtime-level op span has no channel, a
/// controller command event has a channel and usually a bank, a PIM unit
/// event has a channel and a unit. Exporters map `channel` to the trace
/// "process" and `unit`/`bank` to the trace "thread" so that Perfetto lays
/// the hierarchy out naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Scope {
    /// Pseudo-channel index, if the event is channel-local.
    pub channel: Option<u16>,
    /// PIM unit index within the channel, if unit-local.
    pub unit: Option<u16>,
    /// Flat bank index within the channel, if bank-local.
    pub bank: Option<u16>,
}

impl Scope {
    /// The global (system-level) scope.
    pub const GLOBAL: Scope = Scope { channel: None, unit: None, bank: None };

    /// A channel-level scope.
    pub fn channel(ch: u16) -> Scope {
        Scope { channel: Some(ch), unit: None, bank: None }
    }

    /// A unit-level scope.
    pub fn unit(ch: u16, unit: u16) -> Scope {
        Scope { channel: Some(ch), unit: Some(unit), bank: None }
    }

    /// A bank-level scope.
    pub fn bank(ch: u16, bank: u16) -> Scope {
        Scope { channel: Some(ch), unit: None, bank: Some(bank) }
    }
}

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a span; must be matched by an [`EventKind::End`] with the same
    /// scope, in LIFO order per scope.
    Begin,
    /// Closes the most recently opened span in the same scope.
    End,
    /// A point event with no duration.
    Instant,
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated cycle at which the event occurred.
    pub ts: Cycle,
    /// Span begin/end or instant.
    pub kind: EventKind,
    /// Human-readable name ("gemv", "batch", "RD", ...).
    pub name: Cow<'static, str>,
    /// Category: one of the `names::CAT_*` constants ("op", "kernel",
    /// "batch", "command", "mode").
    pub cat: &'static str,
    /// Hardware location.
    pub scope: Scope,
    /// Optional single numeric argument (e.g. a column index or stall
    /// cycles), carried into exporter output.
    pub arg: Option<(&'static str, u64)>,
    /// Optional request-scoped trace context, joining the event back to
    /// the owning serving-layer request and tenant. `None` for events
    /// outside any request (or when tracing is not in use).
    pub trace: Option<TraceCtx>,
}

impl Event {
    /// Creates a span-begin event.
    pub fn begin(
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) -> Event {
        Event { ts, kind: EventKind::Begin, name: name.into(), cat, scope, arg: None, trace: None }
    }

    /// Creates a span-end event.
    pub fn end(
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) -> Event {
        Event { ts, kind: EventKind::End, name: name.into(), cat, scope, arg: None, trace: None }
    }

    /// Creates an instant event.
    pub fn instant(
        ts: Cycle,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        scope: Scope,
    ) -> Event {
        Event {
            ts,
            kind: EventKind::Instant,
            name: name.into(),
            cat,
            scope,
            arg: None,
            trace: None,
        }
    }

    /// Attaches a numeric argument.
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Event {
        self.arg = Some((key, value));
        self
    }

    /// Attaches a request-scoped trace context.
    pub fn with_trace(mut self, trace: TraceCtx) -> Event {
        self.trace = Some(trace);
        self
    }
}

/// Checks span well-formedness over an event stream and returns the maximum
/// nesting depth observed.
///
/// Spans are tracked per [`Scope`]: within each scope, every `End` must
/// match the name of the most recent unclosed `Begin`, timestamps must be
/// monotone per scope, and no span may remain open at the end of the
/// stream. Instants are ignored. Returns `Err` with a description of the
/// first violation.
pub fn check_nesting(events: &[Event]) -> Result<usize, String> {
    use std::collections::HashMap;
    let mut stacks: HashMap<Scope, Vec<(&str, Cycle)>> = HashMap::new();
    let mut last_ts: HashMap<Scope, Cycle> = HashMap::new();
    // Depth counts the full hierarchy: spans open across *enclosing* scopes
    // (e.g. a global op span over per-channel batch spans) plus the local
    // stack. An enclosing scope is one with strictly fewer fields set.
    let encloses = |outer: &Scope, inner: &Scope| -> bool {
        if outer == inner {
            return false;
        }
        let ch_ok = outer.channel.is_none() || outer.channel == inner.channel;
        let unit_ok = outer.unit.is_none() || outer.unit == inner.unit;
        let bank_ok = outer.bank.is_none() || outer.bank == inner.bank;
        ch_ok && unit_ok && bank_ok
    };
    let mut max_depth = 0usize;
    for (i, e) in events.iter().enumerate() {
        if let Some(&prev) = last_ts.get(&e.scope) {
            if e.ts < prev {
                return Err(format!(
                    "event {i} ({:?} {:?}): timestamp {} goes backwards (prev {prev}) in scope {:?}",
                    e.kind, e.name, e.ts, e.scope
                ));
            }
        }
        last_ts.insert(e.scope, e.ts);
        match e.kind {
            EventKind::Begin => {
                stacks.entry(e.scope).or_default().push((&e.name, e.ts));
                let local = stacks[&e.scope].len();
                let inherited: usize = stacks
                    .iter()
                    .filter(|(s, st)| encloses(s, &e.scope) && !st.is_empty())
                    .map(|(_, st)| st.len())
                    .sum();
                max_depth = max_depth.max(local + inherited);
            }
            EventKind::End => {
                let stack = stacks.entry(e.scope).or_default();
                match stack.pop() {
                    None => {
                        return Err(format!(
                            "event {i}: End {:?} with no open span in scope {:?}",
                            e.name, e.scope
                        ));
                    }
                    Some((open, _)) if open != e.name => {
                        return Err(format!(
                            "event {i}: End {:?} does not match open span {:?} in scope {:?}",
                            e.name, open, e.scope
                        ));
                    }
                    Some(_) => {}
                }
            }
            EventKind::Instant => {}
        }
    }
    for (scope, stack) in &stacks {
        if let Some((name, ts)) = stack.last() {
            return Err(format!(
                "span {name:?} opened at cycle {ts} in scope {scope:?} never closed"
            ));
        }
    }
    Ok(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depth_counts_hierarchy() {
        let ch = Scope::channel(0);
        let events = vec![
            Event::begin(0, "op", "op", Scope::GLOBAL),
            Event::begin(1, "kernel", "kernel", Scope::GLOBAL),
            Event::begin(2, "batch", "batch", ch),
            Event::instant(3, "RD", "command", ch),
            Event::end(4, "batch", "batch", ch),
            Event::end(5, "kernel", "kernel", Scope::GLOBAL),
            Event::end(6, "op", "op", Scope::GLOBAL),
        ];
        assert_eq!(check_nesting(&events), Ok(3));
    }

    #[test]
    fn mismatched_end_is_rejected() {
        let events = vec![
            Event::begin(0, "a", "op", Scope::GLOBAL),
            Event::end(1, "b", "op", Scope::GLOBAL),
        ];
        assert!(check_nesting(&events).is_err());
    }

    #[test]
    fn unclosed_span_is_rejected() {
        let events = vec![Event::begin(0, "a", "op", Scope::GLOBAL)];
        assert!(check_nesting(&events).is_err());
    }

    #[test]
    fn backwards_time_in_scope_is_rejected() {
        let events = vec![
            Event::instant(5, "x", "command", Scope::channel(1)),
            Event::instant(4, "y", "command", Scope::channel(1)),
        ];
        assert!(check_nesting(&events).is_err());
    }

    #[test]
    fn per_scope_clocks_are_independent() {
        // Channel 1 may lag channel 0 — each advances its own clock.
        let events = vec![
            Event::instant(100, "x", "command", Scope::channel(0)),
            Event::instant(5, "y", "command", Scope::channel(1)),
        ];
        assert_eq!(check_nesting(&events), Ok(0));
    }
}
