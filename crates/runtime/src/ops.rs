//! The PIM custom-op layer (Section V-A, Fig. 7): "PIM BLAS functions can
//! also be called directly by TF 'PIM custom ops' [...] We currently
//! support six custom TF operations (ADD, MUL, Relu, LSTM, GEMV, and BN)."
//!
//! [`PimOp`] is the framework-facing descriptor (shape + kind); executing
//! one dispatches straight into [`crate::PimBlas`] — the "PIM-direct
//! execution path" of Fig. 6's yellow arrow. The [`OpKind`] vocabulary is
//! also what the [`crate::Preprocessor`] reasons over for the native path.

use crate::blas::{KernelReport, PimBlas, PimError};
use crate::context::PimContext;

/// The operation kinds the stack understands — the six PIM custom ops plus
/// the host-only kinds the preprocessor must classify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Element-wise addition (residual connections).
    Add,
    /// Element-wise multiplication.
    Mul,
    /// ReLU activation.
    Relu,
    /// Matrix-vector multiplication.
    Gemv,
    /// Batch normalization (inference, folded constants).
    Bn,
    /// One LSTM cell step.
    Lstm,
    /// 2-D convolution — compute-bound, host only.
    Conv2d,
    /// Batched matrix-matrix multiplication — compute-bound, host only.
    Gemm,
    /// Softmax/attention-style reductions — host only in this generation.
    Softmax,
}

impl OpKind {
    /// Approximate arithmetic intensity (FLOPs per DRAM byte) at batch 1.
    ///
    /// Level-1/2 BLAS sit near 0.5–1 FLOP/B (2 FLOPs per 2-byte weight at
    /// best); convolutions reuse each weight across the whole feature map.
    pub fn flops_per_byte(self) -> f64 {
        match self {
            OpKind::Add | OpKind::Mul | OpKind::Relu => 0.33,
            OpKind::Bn => 0.67,
            OpKind::Gemv | OpKind::Lstm => 1.0,
            OpKind::Gemm => 8.0,
            OpKind::Conv2d => 50.0,
            OpKind::Softmax => 1.0,
        }
    }

    /// Whether a PIM microkernel exists for this op.
    pub fn pim_supported(self) -> bool {
        matches!(
            self,
            OpKind::Add | OpKind::Mul | OpKind::Relu | OpKind::Gemv | OpKind::Bn | OpKind::Lstm
        )
    }

    /// Whether batching converts this op's reuse profile toward
    /// compute-bound (GEMV → GEMM); element-wise ops only grow linearly.
    pub fn batch_raises_reuse(self) -> bool {
        matches!(self, OpKind::Gemv | OpKind::Lstm | OpKind::Gemm)
    }
}

/// A framework-level PIM custom op, carrying its operands by value.
#[derive(Debug, Clone)]
pub enum PimOp {
    /// `z = x + y`.
    Add {
        /// Left operand.
        x: Vec<f32>,
        /// Right operand.
        y: Vec<f32>,
    },
    /// `z = x * y`.
    Mul {
        /// Left operand.
        x: Vec<f32>,
        /// Right operand.
        y: Vec<f32>,
    },
    /// `z = relu(x)`.
    Relu {
        /// Input.
        x: Vec<f32>,
    },
    /// `z = scale*x + shift`.
    Bn {
        /// Input.
        x: Vec<f32>,
        /// Folded scale.
        scale: f32,
        /// Folded shift.
        shift: f32,
    },
    /// `out = W·x`.
    Gemv {
        /// Row-major `n × k` weights.
        w: Vec<f32>,
        /// Output dimension.
        n: usize,
        /// Input dimension.
        k: usize,
        /// Input vector.
        x: Vec<f32>,
    },
}

impl PimOp {
    /// The op's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            PimOp::Add { .. } => OpKind::Add,
            PimOp::Mul { .. } => OpKind::Mul,
            PimOp::Relu { .. } => OpKind::Relu,
            PimOp::Bn { .. } => OpKind::Bn,
            PimOp::Gemv { .. } => OpKind::Gemv,
        }
    }

    /// Total operand footprint in bytes (FP16 storage).
    pub fn footprint_bytes(&self) -> u64 {
        let elems = match self {
            PimOp::Add { x, y } | PimOp::Mul { x, y } => x.len() + y.len(),
            PimOp::Relu { x } => x.len(),
            PimOp::Bn { x, .. } => x.len(),
            PimOp::Gemv { w, x, .. } => w.len() + x.len(),
        };
        elems as u64 * 2
    }

    /// Executes the op through PIM-BLAS — the PIM-direct execution path.
    ///
    /// # Errors
    ///
    /// Propagates [`PimError`] from the BLAS layer.
    pub fn execute(&self, ctx: &mut PimContext) -> Result<(Vec<f32>, KernelReport), PimError> {
        match self {
            PimOp::Add { x, y } => PimBlas::add(ctx, x, y),
            PimOp::Mul { x, y } => PimBlas::mul(ctx, x, y),
            PimOp::Relu { x } => PimBlas::relu(ctx, x),
            PimOp::Bn { x, scale, shift } => PimBlas::bn(ctx, x, *scale, *shift),
            PimOp::Gemv { w, n, k, x } => PimBlas::gemv(ctx, w, *n, *k, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kinds_classify() {
        assert!(OpKind::Gemv.pim_supported());
        assert!(!OpKind::Conv2d.pim_supported());
        assert!(OpKind::Gemv.batch_raises_reuse());
        assert!(!OpKind::Add.batch_raises_reuse());
        assert!(OpKind::Conv2d.flops_per_byte() > OpKind::Gemv.flops_per_byte());
    }

    #[test]
    fn custom_op_dispatch() {
        let mut ctx = PimContext::small_system();
        let op = PimOp::Add { x: vec![1.0; 32], y: vec![2.0; 32] };
        assert_eq!(op.kind(), OpKind::Add);
        assert_eq!(op.footprint_bytes(), 128);
        let (z, _) = op.execute(&mut ctx).unwrap();
        assert!(z.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn gemv_op_dispatch() {
        let mut ctx = PimContext::small_system();
        let op = PimOp::Gemv { w: vec![1.0; 16 * 8], n: 16, k: 8, x: vec![1.0; 8] };
        let (out, _) = op.execute(&mut ctx).unwrap();
        assert!(out.iter().all(|&v| (v - 8.0).abs() < 1e-3));
    }
}
