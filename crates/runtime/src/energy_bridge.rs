//! Bridges the simulator's recorded statistics to the energy model:
//! extracts a [`KernelActivity`] from a channel's counters so real kernel
//! runs — not analytic stream models — drive the joule accounting.

use crate::context::PimContext;
use pim_energy::KernelActivity;

/// Snapshot of one channel's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivitySnapshot {
    sb_acts_incl_ab: u64,
    sb_columns: u64,
    ab_acts: u64,
    ab_columns: u64,
    pim_bank_accesses: u64,
    pim_triggers: u64,
}

/// Takes a counter snapshot of channel `ch`.
pub fn snapshot(ctx: &PimContext, ch: usize) -> ActivitySnapshot {
    let sink = ctx.sys.channel(ch).sink();
    let d = sink.dram().stats();
    let p = sink.stats();
    ActivitySnapshot {
        sb_acts_incl_ab: d.acts,
        sb_columns: d.reads + d.writes,
        ab_acts: p.ab_acts,
        ab_columns: p.ab_reads + p.ab_writes,
        pim_bank_accesses: p.bank_operand_reads + p.bank_result_writes,
        pim_triggers: p.pim_triggers,
    }
}

/// The activity between two snapshots of the same channel, over `seconds`.
///
/// All-bank activations are recorded by both layers (the functional bank
/// model counts 16 ACTs per all-bank ACT); the difference isolates the
/// true single-bank activations.
///
/// # Panics
///
/// Panics if `after` precedes `before` (snapshots swapped).
pub fn activity_between(
    before: &ActivitySnapshot,
    after: &ActivitySnapshot,
    seconds: f64,
) -> KernelActivity {
    let d = |a: u64, b: u64| -> u64 {
        assert!(a >= b, "snapshots out of order");
        a - b
    };
    let ab_acts = d(after.ab_acts, before.ab_acts);
    let total_acts = d(after.sb_acts_incl_ab, before.sb_acts_incl_ab);
    KernelActivity {
        sb_acts: total_acts - ab_acts * 16,
        sb_columns: d(after.sb_columns, before.sb_columns),
        ab_acts,
        ab_columns: d(after.ab_columns, before.ab_columns),
        pim_bank_accesses: d(after.pim_bank_accesses, before.pim_bank_accesses),
        pim_triggers: d(after.pim_triggers, before.pim_triggers),
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PimBlas;
    use pim_energy::{EnergyParams, KernelEnergy};

    #[test]
    fn pim_add_activity_is_extracted_from_real_counters() {
        let mut ctx = PimContext::small_system();
        let before = snapshot(&ctx, 0);
        let x = vec![1.0f32; 4096];
        let (_, report) = PimBlas::add(&mut ctx, &x, &x).unwrap();
        let after = snapshot(&ctx, 0);
        let a = activity_between(&before, &after, report.seconds);
        assert!(a.ab_acts > 0, "kernel activated rows in all-bank mode");
        assert!(a.ab_columns > 0);
        assert!(a.pim_triggers > 0);
        assert!(a.pim_bank_accesses > 0);
        // The choreography's config-row accesses show up as SB columns? No:
        // CRF/SRF programming happens in AB mode; only readback would be
        // SB, and ADD has none.
        assert_eq!(a.sb_columns, 0);
        let e = KernelEnergy::from_activity(&EnergyParams::hbm2(), &a);
        assert!(e.total_j() > 0.0);
        assert_eq!(e.transport_j, a.ab_columns as f64 * 200.0 * 1e-12);
    }

    #[test]
    fn energy_per_element_pim_beats_sb_streaming() {
        // PIM ADD measured from its real run...
        let mut ctx = PimContext::small_system();
        let n = 16384;
        let x = vec![0.5f32; n];
        let before = snapshot(&ctx, 0);
        let (_, report) = PimBlas::add(&mut ctx, &x, &x).unwrap();
        let after = snapshot(&ctx, 0);
        let a_pim = activity_between(&before, &after, report.seconds);
        // Per-channel elements: 1/16th of the vector, 3 blocks per 16 elems.
        let per_ch_elems = (n / 16) as u64;
        let e_pim = KernelEnergy::from_activity(&EnergyParams::hbm2(), &a_pim);

        // ...versus the host streaming the same per-channel traffic
        // through the SB interface (3 blocks per 16 elements: x, y, z).
        let blocks = per_ch_elems * 3 / 16;
        let a_sb = KernelActivity {
            sb_acts: a_pim.ab_acts, // same row count
            sb_columns: blocks,
            seconds: report.seconds,
            ..Default::default()
        };
        let e_sb = KernelEnergy::from_activity(&EnergyParams::hbm2(), &a_sb);
        let ratio = e_sb.pj_per_element(per_ch_elems) / e_pim.pj_per_element(per_ch_elems);
        assert!(
            ratio > 1.5,
            "PIM should be at least 1.5x more energy-efficient per element, got {ratio}"
        );
    }
}
