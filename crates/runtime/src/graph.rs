//! The native execution path (Fig. 6, orange arrow): "The native execution
//! path does not require any modification of application source code."
//!
//! An application hands the framework a graph of ordinary tensor ops; at
//! runtime the [`crate::Preprocessor`] "analyzes the source code of
//! applications and finds TF ops suitable for PIM acceleration", maps the
//! suitable ones onto PIM-BLAS and leaves the rest on the host — the
//! application never mentions PIM. [`run_graph`] is that dispatcher: the
//! same op list produces the same numbers whether an op lands on PIM or on
//! the host reference path, with a per-op record of where it ran.

use crate::blas::{KernelReport, PimBlas, PimError};
use crate::context::PimContext;
use crate::ops::{OpKind, PimOp};
use crate::preprocessor::{ExecutionTarget, Preprocessor};
use pim_fp16::F16;

/// A graph node: an operation plus how its inputs bind.
///
/// Inputs refer either to application-provided tensors (captured inside
/// the [`PimOp`]) or to the previous node's output (`chain_input`), which
/// covers the sequential layer graphs the evaluated applications use.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Human-readable name.
    pub name: String,
    /// The operation. For chained nodes the op's primary input is replaced
    /// by the predecessor's output at execution time.
    pub op: PimOp,
    /// Whether this node consumes the previous node's output as its
    /// primary input.
    pub chain_input: bool,
}

/// Where one node executed, with its kernel accounting.
#[derive(Debug, Clone)]
pub struct NodeRecord {
    /// Node name.
    pub name: String,
    /// The preprocessor's decision.
    pub target: ExecutionTarget,
    /// Kernel accounting (zeroed for host-path ops).
    pub report: KernelReport,
}

/// The outcome of a graph run.
#[derive(Debug, Clone)]
pub struct GraphResult {
    /// The final node's output.
    pub output: Vec<f32>,
    /// Per-node placement and accounting.
    pub records: Vec<NodeRecord>,
}

impl GraphResult {
    /// Number of nodes the preprocessor offloaded.
    pub fn offloaded(&self) -> usize {
        self.records.iter().filter(|r| r.target == ExecutionTarget::Pim).count()
    }
}

/// Host reference execution of an op (the blue path of Fig. 6): the same
/// FP16 input rounding as the device, f32 arithmetic.
fn host_execute(op: &PimOp) -> Vec<f32> {
    let f16 = |v: f32| F16::from_f32(v).to_f32();
    match op {
        PimOp::Add { x, y } => x.iter().zip(y).map(|(&a, &b)| f16(a) + f16(b)).collect(),
        PimOp::Mul { x, y } => x.iter().zip(y).map(|(&a, &b)| f16(a) * f16(b)).collect(),
        PimOp::Relu { x } => x.iter().map(|&a| f16(a).max(0.0)).collect(),
        PimOp::Bn { x, scale, shift } => {
            x.iter().map(|&a| f16(a) * f16(*scale) + f16(*shift)).collect()
        }
        PimOp::Gemv { w, n, k, x } => PimBlas::reference_gemv(w, *n, *k, x),
    }
}

/// Rebinds a chained node's primary input to `input`.
fn bind_input(op: &PimOp, input: &[f32]) -> Result<PimOp, PimError> {
    let mut op = op.clone();
    match &mut op {
        PimOp::Add { x, .. } | PimOp::Mul { x, .. } | PimOp::Relu { x } | PimOp::Bn { x, .. } => {
            *x = input.to_vec();
        }
        PimOp::Gemv { k, x, .. } => {
            if input.len() != *k {
                return Err(PimError::SizeMismatch {
                    detail: format!(
                        "chained GEMV expects k = {k} inputs, predecessor produced {}",
                        input.len()
                    ),
                });
            }
            *x = input.to_vec();
        }
    }
    Ok(op)
}

/// Executes a sequential op graph through the native path: per node, the
/// preprocessor decides PIM vs host at `batch`, and the dispatcher runs it
/// there. Returns the final output and the per-node placement record.
///
/// # Errors
///
/// Propagates [`PimError`] from shape mismatches or the BLAS layer.
pub fn run_graph(
    ctx: &mut PimContext,
    nodes: &[GraphNode],
    batch: usize,
) -> Result<GraphResult, PimError> {
    let host_cfg = ctx.sys.host.clone();
    let mut records = Vec::with_capacity(nodes.len());
    let mut carried: Option<Vec<f32>> = None;
    for node in nodes {
        let op = if node.chain_input {
            let input = carried.as_deref().ok_or(PimError::Empty)?;
            bind_input(&node.op, input)?
        } else {
            node.op.clone()
        };
        let target = if op.kind() == OpKind::Gemv || op.kind().pim_supported() {
            Preprocessor::decide(&host_cfg, op.kind(), op.footprint_bytes(), batch)
        } else {
            ExecutionTarget::Host
        };
        let (output, report) = match target {
            ExecutionTarget::Pim => op.execute(ctx)?,
            ExecutionTarget::Host => (host_execute(&op), KernelReport::default()),
        };
        records.push(NodeRecord { name: node.name.clone(), target, report });
        carried = Some(output);
    }
    Ok(GraphResult { output: carried.ok_or(PimError::Empty)?, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-layer MLP head: big GEMV (offloads) → bias-free ReLU chain.
    fn mlp(n: usize, k: usize) -> Vec<GraphNode> {
        let w: Vec<f32> = (0..n * k).map(|i| ((i % 13) as f32 - 6.0) / 64.0).collect();
        let x: Vec<f32> = (0..k).map(|i| ((i % 7) as f32 - 3.0) / 8.0).collect();
        vec![
            GraphNode { name: "fc".into(), op: PimOp::Gemv { w, n, k, x }, chain_input: false },
            GraphNode { name: "relu".into(), op: PimOp::Relu { x: vec![] }, chain_input: true },
        ]
    }

    #[test]
    fn native_path_offloads_memory_bound_nodes_at_batch_1() {
        let mut ctx = PimContext::small_system();
        // Big enough that the weights exceed the LLC: the preprocessor
        // must offload the GEMV. (2048×2048×2 B = 8 MB > LLC/2.)
        let r = run_graph(&mut ctx, &mlp(2048, 2048), 1).unwrap();
        let fc = &r.records[0];
        assert_eq!(fc.target, ExecutionTarget::Pim, "GEMV offloads at batch 1");
        assert!(fc.report.cycles > 0);
        assert_eq!(r.output.len(), 2048);
        assert!(r.output.iter().all(|v| *v >= 0.0), "ReLU applied");
        assert!(r.offloaded() >= 1);
    }

    #[test]
    fn native_path_keeps_everything_on_host_at_batch_4() {
        let mut ctx = PimContext::small_system();
        let r = run_graph(&mut ctx, &mlp(2048, 2048), 4).unwrap();
        assert_eq!(r.records[0].target, ExecutionTarget::Host, "batched GEMM stays on the host");
    }

    #[test]
    fn placement_does_not_change_results() {
        // The whole point of the transparent path: PIM and host produce
        // the same numbers (within FP16 accumulation error for GEMV).
        // The same graph lands on the host at batch 4 and on PIM at
        // batch 1 (8 MB of weights exceed the LLC threshold).
        let nodes = mlp(2048, 2048);
        let mut ctx = PimContext::small_system();
        let host_run = run_graph(&mut ctx, &nodes, 4).unwrap(); // host path
        let mut ctx2 = PimContext::small_system();
        let pim_run = run_graph(&mut ctx2, &nodes, 1).unwrap(); // PIM path
        assert_eq!(host_run.records[0].target, ExecutionTarget::Host);
        assert_eq!(pim_run.records[0].target, ExecutionTarget::Pim);
        for (a, b) in host_run.output.iter().zip(pim_run.output.iter()) {
            assert!((a - b).abs() < 0.02 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn chained_shape_mismatch_is_reported() {
        let mut ctx = PimContext::small_system();
        let mut nodes = mlp(64, 64);
        nodes.push(GraphNode {
            name: "bad".into(),
            op: PimOp::Gemv { w: vec![0.0; 10 * 100], n: 10, k: 100, x: vec![] },
            chain_input: true,
        });
        assert!(matches!(run_graph(&mut ctx, &nodes, 1), Err(PimError::SizeMismatch { .. })));
    }

    #[test]
    fn chain_without_predecessor_is_an_error() {
        let mut ctx = PimContext::small_system();
        let nodes = vec![GraphNode {
            name: "orphan".into(),
            op: PimOp::Relu { x: vec![] },
            chain_input: true,
        }];
        assert!(matches!(run_graph(&mut ctx, &nodes, 1), Err(PimError::Empty)));
    }
}
