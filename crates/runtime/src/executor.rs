//! The PIM executor (Section V-A): "configures and invokes a PIM kernel".
//!
//! The executor assembles the complete standard-command choreography around
//! a kernel's data phase (Fig. 7):
//!
//! 1. enter all-bank mode (ACT+PRE on `ABMR`);
//! 2. program the microkernel into every CRF (memory-mapped writes,
//!    broadcast across units in AB mode);
//! 3. optionally preload the SRF and clear the GRF accumulators;
//! 4. set `PIM_OP_MODE = 1` — every unit's sequencer resets to CRF entry 0;
//! 5. stream the data-phase batches (the only part the microbenchmarks
//!    time at steady state, but we charge the full choreography);
//! 6. set `PIM_OP_MODE = 0`, exit to single-bank mode.
//!
//! Result readback (e.g. GEMV partial sums) happens afterwards in
//! single-bank mode through the memory-mapped GRF row of each unit's even
//! bank.

use crate::blas::PimError;
use crate::context::PimContext;
use crate::preprocessor::Preprocessor;
use pim_core::isa::Instruction;
use pim_core::{conf, LaneVec};
use pim_dram::{BankAddr, Command, CommandSink, DataBlock};
use pim_host::{Batch, ExecutionMode, KernelEngine, KernelResult};
use pim_obs::{names, Scope};

/// The PIM executor: stateless command-choreography builder + runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Builds the CRF-programming batches: one 32-byte write covers 8
    /// instructions.
    fn crf_batches(program: &[Instruction]) -> Vec<Batch> {
        assert!(program.len() <= 32, "microkernel exceeds the CRF");
        let bank = BankAddr::new(0, 0);
        let mut cmds = vec![Command::Act { bank, row: conf::CRF_ROW }];
        for (chunk_idx, chunk) in program.chunks(8).enumerate() {
            let mut data: DataBlock = [0u8; 32];
            for (i, instr) in chunk.iter().enumerate() {
                data[i * 4..i * 4 + 4].copy_from_slice(&instr.encode().to_le_bytes());
            }
            // Pad the rest of the block with EXIT so stale CRF words from a
            // previous kernel cannot run past the program's end.
            for i in chunk.len()..8 {
                data[i * 4..i * 4 + 4].copy_from_slice(&Instruction::Exit.encode().to_le_bytes());
            }
            cmds.push(Command::Wr { bank, col: chunk_idx as u32, data });
        }
        cmds.push(Command::Pre { bank });
        vec![Batch::setup(cmds).with_label("crf")]
    }

    /// Builds the SRF-preload batch (scale scalars in lanes 0–7 → SRF_M,
    /// shift scalars in lanes 8–15 → SRF_A).
    fn srf_batch(values: &LaneVec) -> Batch {
        let bank = BankAddr::new(0, 0);
        Batch::setup(vec![
            Command::Act { bank, row: conf::SRF_ROW },
            Command::Wr { bank, col: 0, data: values.to_block() },
            Command::Pre { bank },
        ])
        .with_label("srf")
    }

    /// Builds the GRF_B-clearing batch (broadcast zeros to columns 8–15 of
    /// the GRF row) — resets GEMV accumulators between passes.
    fn clear_grf_b_batch() -> Batch {
        let bank = BankAddr::new(0, 0);
        let mut cmds = vec![Command::Act { bank, row: conf::GRF_ROW }];
        for c in 8..16 {
            cmds.push(Command::Wr { bank, col: c, data: [0u8; 32] });
        }
        cmds.push(Command::Pre { bank });
        Batch::setup(cmds).with_label("clear_grf_b")
    }

    /// Assembles the full kernel choreography around `data_batches` (which
    /// are identical per channel — lock-step execution over per-channel
    /// data).
    pub fn full_kernel(
        program: &[Instruction],
        srf: Option<&LaneVec>,
        clear_grf_b: bool,
        data_batches: &[Batch],
    ) -> Vec<Batch> {
        let mut batches = Vec::new();
        batches.push(Batch::setup(conf::enter_ab_sequence()).with_label("enter_ab"));
        batches.extend(Self::crf_batches(program));
        if let Some(v) = srf {
            batches.push(Self::srf_batch(v));
        }
        if clear_grf_b {
            batches.push(Self::clear_grf_b_batch());
        }
        batches.push(Batch::setup(conf::set_pim_op_mode_sequence(true)).with_label("pim_on"));
        batches.extend_from_slice(data_batches);
        batches.push(Batch::setup(conf::set_pim_op_mode_sequence(false)).with_label("pim_off"));
        batches.push(Batch::setup(conf::exit_ab_sequence()).with_label("exit_ab"));
        batches
    }

    /// Runs the same kernel choreography on the first `channels` channels
    /// of the system.
    ///
    /// # Panics
    ///
    /// In strict mode ([`PimContext::set_strict`]), panics if the static
    /// verifier rejects `program`; use [`Executor::try_run`] to handle the
    /// report instead.
    pub fn run(
        ctx: &mut PimContext,
        channels: usize,
        program: &[Instruction],
        srf: Option<&LaneVec>,
        clear_grf_b: bool,
        data_batches: &[Batch],
    ) -> KernelResult {
        Self::try_run(ctx, channels, program, srf, clear_grf_b, data_batches)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Executor::run`], but in strict mode a kernel the static verifier
    /// rejects returns [`PimError::InvalidKernel`] (with the full
    /// diagnostic report) instead of being simulated.
    ///
    /// # Errors
    ///
    /// [`PimError::InvalidKernel`] when `ctx.strict` is set and
    /// `pim-verify` reports at least one error for `program` under the
    /// system's configured variant.
    pub fn try_run(
        ctx: &mut PimContext,
        channels: usize,
        program: &[Instruction],
        srf: Option<&LaneVec>,
        clear_grf_b: bool,
        data_batches: &[Batch],
    ) -> Result<KernelResult, PimError> {
        if ctx.strict {
            Preprocessor::verify_kernel(ctx.sys.pim_config(), program)
                .map_err(|report| PimError::InvalidKernel { report })?;
        }
        let batches = Self::full_kernel(program, srf, clear_grf_b, data_batches);
        let per_channel: Vec<Vec<Batch>> = (0..channels).map(|_| batches.clone()).collect();
        if let Some(r) = &ctx.recorder {
            r.begin(ctx.sys.max_now(), "kernel", names::CAT_KERNEL, Scope::GLOBAL);
        }
        let result = KernelEngine::run_system(&mut ctx.sys, &per_channel, ctx.mode);
        if let Some(r) = &ctx.recorder {
            r.end(ctx.sys.max_now(), "kernel", names::CAT_KERNEL, Scope::GLOBAL);
        }
        Ok(result)
    }

    /// Reads GRF_A[0..8] of (`ch`, `unit`) back through the memory-mapped
    /// GRF row in single-bank mode (columns 0-7). Timed.
    ///
    /// # Panics
    ///
    /// If the device rejects a readback command (the channel was left in a
    /// non-single-bank mode); use [`Executor::try_read_grf_a`] to handle
    /// it as a typed error.
    pub fn read_grf_a(ctx: &mut PimContext, ch: usize, unit: usize) -> [LaneVec; 8] {
        Self::try_read_grf_a(ctx, ch, unit).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads GRF_B[0..8] of (`ch`, `unit`) back through the memory-mapped
    /// GRF row in single-bank mode. Timed: the commands advance the
    /// channel's clock.
    ///
    /// # Panics
    ///
    /// If the device rejects a readback command; use
    /// [`Executor::try_read_grf_b`] to handle it as a typed error.
    pub fn read_grf_b(ctx: &mut PimContext, ch: usize, unit: usize) -> [LaneVec; 8] {
        Self::try_read_grf_b(ctx, ch, unit).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Executor::read_grf_a`].
    ///
    /// # Errors
    ///
    /// [`PimError::Internal`] if the device rejects a readback command —
    /// the channel was left in a mode where the GRF row is not mapped.
    pub fn try_read_grf_a(
        ctx: &mut PimContext,
        ch: usize,
        unit: usize,
    ) -> Result<[LaneVec; 8], PimError> {
        Self::read_grf(ctx, ch, unit, 0)
    }

    /// Fallible [`Executor::read_grf_b`].
    ///
    /// # Errors
    ///
    /// [`PimError::Internal`] if the device rejects a readback command.
    pub fn try_read_grf_b(
        ctx: &mut PimContext,
        ch: usize,
        unit: usize,
    ) -> Result<[LaneVec; 8], PimError> {
        Self::read_grf(ctx, ch, unit, 8)
    }

    fn read_grf(
        ctx: &mut PimContext,
        ch: usize,
        unit: usize,
        col_base: u32,
    ) -> Result<[LaneVec; 8], PimError> {
        let bank = BankAddr::from_flat_index(2 * unit);
        let mut cmds = vec![Command::Act { bank, row: conf::GRF_ROW }];
        for i in 0..8u32 {
            cmds.push(Command::Rd { bank, col: col_base + i });
        }
        cmds.push(Command::Pre { bank });
        let ctrl = ctx.sys.channel_mut(ch);
        let mut out = [LaneVec::zero(); 8];
        let mut now = ctrl.now();
        let mut next_reg = 0;
        for cmd in &cmds {
            let at = ctrl.sink().earliest_issue(cmd, now);
            let outcome = ctrl.sink_mut().issue(cmd, at).map_err(|e| PimError::Internal {
                detail: format!("GRF readback on channel {ch} unit {unit}: {cmd}: {e}"),
            })?;
            now = at;
            if let Some(d) = outcome.data {
                out[next_reg] = LaneVec::from_block(&d);
                next_reg += 1;
            }
        }
        ctrl.advance_to(now);
        Ok(out)
    }

    /// The execution-mode the paper's shipped system uses.
    pub fn default_mode() -> ExecutionMode {
        ExecutionMode::Fenced { reorder_seed: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::isa::Operand;
    use pim_core::PimMode;

    #[test]
    fn choreography_brackets_data_phase() {
        let prog = vec![Instruction::Exit];
        let data =
            vec![Batch::commutative(vec![Command::Rd { bank: BankAddr::new(0, 0), col: 0 }])];
        let all = Executor::full_kernel(&prog, None, false, &data);
        // enter AB, CRF, op-mode on, data, op-mode off, exit AB.
        assert_eq!(all.len(), 6);
        assert!(!all[0].fence_after);
    }

    #[test]
    fn run_leaves_system_in_single_bank_mode() {
        let mut ctx = crate::PimContext::small_system();
        let prog = vec![
            Instruction::Mov {
                dst: Operand::grf_a(0),
                src: Operand::even_bank(),
                relu: false,
                aam: false,
            },
            Instruction::Exit,
        ];
        let bank = BankAddr::new(0, 0);
        let data = vec![
            Batch::setup(vec![Command::Act { bank, row: 0 }]),
            Batch::commutative(vec![Command::Rd { bank, col: 0 }]),
            Batch::setup(vec![Command::Pre { bank }]),
        ];
        let r = Executor::run(&mut ctx, 16, &prog, None, false, &data);
        assert!(r.end_cycle > 0);
        for ch in 0..16 {
            assert_eq!(ctx.sys.channel(ch).sink().mode(), PimMode::SingleBank, "ch {ch}");
            assert_eq!(ctx.sys.channel(ch).sink().stats().pim_triggers, 8);
        }
    }

    #[test]
    fn crf_padding_prevents_stale_instructions() {
        // Run kernel A (2 instrs), then kernel B (1 instr): B's CRF block
        // must overwrite A's second instruction with EXIT.
        let mut ctx = crate::PimContext::small_system();
        let bank = BankAddr::new(0, 0);
        let mov = Instruction::Mov {
            dst: Operand::grf_a(0),
            src: Operand::even_bank(),
            relu: false,
            aam: false,
        };
        let data = |n: u32| {
            vec![
                Batch::setup(vec![Command::Act { bank, row: 0 }]),
                Batch::commutative((0..n).map(|c| Command::Rd { bank, col: c }).collect()),
                Batch::setup(vec![Command::Pre { bank }]),
            ]
        };
        Executor::run(&mut ctx, 1, &[mov, mov, Instruction::Exit], None, false, &data(2));
        Executor::run(&mut ctx, 1, &[mov], None, false, &data(2));
        // Second kernel: first trigger runs MOV, second hits the padded
        // EXIT (not kernel A's stale second MOV).
        let unit = ctx.sys.channel(0).sink().unit(0);
        assert!(unit.is_halted());
        // Kernel A executed 2 MOVs; kernel B executed 1 MOV, then its
        // second trigger hit the padded EXIT (halted triggers don't count).
        assert_eq!(unit.stats().instructions, 3);
    }

    #[test]
    fn strict_mode_refuses_invalid_kernel() {
        let mut ctx = crate::PimContext::small_system();
        ctx.set_strict(true);
        // No EXIT: the verifier reports PV013.
        let prog = vec![Instruction::Mov {
            dst: Operand::grf_a(0),
            src: Operand::even_bank(),
            relu: false,
            aam: false,
        }];
        let err = Executor::try_run(&mut ctx, 1, &prog, None, false, &[]).unwrap_err();
        let crate::blas::PimError::InvalidKernel { report } = &err else {
            panic!("expected InvalidKernel, got {err}");
        };
        assert!(report.has_code(pim_verify::PvCode::Pv013NoExit));
        // The same launch is accepted (it simulates, however pointlessly)
        // without strict mode.
        ctx.set_strict(false);
        assert!(Executor::try_run(&mut ctx, 1, &prog, None, false, &[]).is_ok());
    }

    #[test]
    fn grf_readback_returns_unit_state() {
        let mut ctx = crate::PimContext::small_system();
        // Directly place a value in unit 2's GRF_B[3] of channel 1 via a
        // kernel that fills it from bank data.
        let bank = BankAddr::new(0, 0);
        let prog = vec![
            Instruction::Fill { dst: Operand::grf_b(3), src: Operand::even_bank(), aam: false },
            Instruction::Exit,
        ];
        // Seed the even banks of every unit on channel 1.
        for u in 0..8 {
            crate::layout::store_block(
                &mut ctx.sys,
                1,
                u,
                0,
                0,
                &LaneVec::from_f32([u as f32; 16]),
            );
        }
        let data = vec![
            Batch::setup(vec![Command::Act { bank, row: 0 }]),
            Batch::commutative(vec![Command::Rd { bank, col: 0 }]),
            Batch::setup(vec![Command::Pre { bank }]),
        ];
        Executor::run(&mut ctx, 16, &prog, None, false, &data);
        let grf = Executor::read_grf_b(&mut ctx, 1, 2);
        assert_eq!(grf[3].to_f32(), [2.0; 16]);
        assert_eq!(grf[0].to_f32(), [0.0; 16]);
    }
}
