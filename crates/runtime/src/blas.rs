//! PIM-BLAS (Section V-A): "a set of common linear algebra operations that
//! can exploit PIM [...] it makes users access and utilize the PIM
//! execution unit without knowing how to handle PIM."
//!
//! Every entry point runs **functionally** on the simulated device — real
//! FP16 data through real banks and real PIM units — and returns the
//! numerical result together with a cycle-accurate [`KernelReport`]. The
//! test suite checks both against f32 references.

use crate::context::PimContext;
use crate::executor::Executor;
use crate::kernels::{
    gemv_batches, gemv_microkernel, stream_batches, stream_columns, stream_microkernel, StreamOp,
    COLS_PER_ROW, GROUP,
};
use crate::layout::{self, BlockMap, BLOCK_ELEMS};
use pim_core::{LaneVec, PimVariant};
use pim_dram::Cycle;
use pim_fp16::F16;
use pim_obs::{names, Recorder, Scope};
use std::fmt;

/// Opens an op-level span named `name` if profiling is enabled; the caller
/// closes it with [`end_op`]. Op spans live in the global scope and enclose
/// every batch/command event the call produces.
fn begin_op(ctx: &PimContext, name: &'static str) -> Option<Recorder> {
    let r = ctx.recorder.clone()?;
    r.begin(ctx.sys.max_now(), name, names::CAT_OP, Scope::GLOBAL);
    Some(r)
}

/// Closes a span opened by [`begin_op`] at the system's current cycle.
fn end_op(rec: &Option<Recorder>, ctx: &PimContext, name: &'static str) {
    if let Some(r) = rec {
        r.end(ctx.sys.max_now(), name, names::CAT_OP, Scope::GLOBAL);
    }
}

/// Errors surfaced by the PIM-BLAS API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PimError {
    /// Input vectors/matrices disagree on length.
    SizeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// The operands do not fit in the reserved PIM region.
    OutOfMemory {
        /// Description of the failed allocation.
        detail: String,
    },
    /// Empty input.
    Empty,
    /// Strict mode refused the kernel: the `pim-verify` static verifier
    /// reported at least one error.
    InvalidKernel {
        /// The verifier's full diagnostic report.
        report: pim_verify::Report,
    },
    /// A runtime invariant was violated (a malformed kernel layout, a
    /// rejected device command). These indicate a bug in the runtime
    /// rather than bad user input, but they surface as typed errors so
    /// library callers are never torn down by a panic.
    Internal {
        /// Description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::SizeMismatch { detail } => write!(f, "size mismatch: {detail}"),
            PimError::OutOfMemory { detail } => write!(f, "PIM memory exhausted: {detail}"),
            PimError::Empty => write!(f, "empty input"),
            PimError::InvalidKernel { report } => {
                write!(f, "kernel rejected by pim-verify:\n{report}")
            }
            PimError::Internal { detail } => write!(f, "runtime invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for PimError {}

/// Cycle-accurate accounting of one PIM-BLAS call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelReport {
    /// Bus cycles the call took (wall clock across channels).
    pub cycles: Cycle,
    /// The same in seconds at the configured bus frequency.
    pub seconds: f64,
    /// DRAM commands issued.
    pub commands: u64,
    /// Fences executed.
    pub fences: u64,
    /// PIM triggers delivered (commands × units).
    pub pim_triggers: u64,
    /// Elements produced.
    pub elements: usize,
}

impl KernelReport {
    /// Merges another report (sequential composition).
    pub fn absorb(&mut self, other: &KernelReport) {
        self.cycles += other.cycles;
        self.seconds += other.seconds;
        self.commands += other.commands;
        self.fences += other.fences;
        self.pim_triggers += other.pim_triggers;
        self.elements = self.elements.max(other.elements);
    }

    /// Effective achieved element throughput in elements/second.
    pub fn elements_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.elements as f64 / self.seconds
        }
    }
}

/// The PIM-BLAS entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct PimBlas;

impl PimBlas {
    /// `z = x + y`, element-wise, on the PIM units.
    ///
    /// # Errors
    ///
    /// [`PimError::SizeMismatch`] if lengths differ; [`PimError::Empty`]
    /// for empty inputs; [`PimError::OutOfMemory`] if the reserved region
    /// cannot hold the operands.
    pub fn add(
        ctx: &mut PimContext,
        x: &[f32],
        y: &[f32],
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        Self::stream_binary(ctx, StreamOp::Add, x, Some(y), None)
    }

    /// `z = x * y`, element-wise.
    ///
    /// # Errors
    ///
    /// As for [`PimBlas::add`].
    pub fn mul(
        ctx: &mut PimContext,
        x: &[f32],
        y: &[f32],
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        Self::stream_binary(ctx, StreamOp::Mul, x, Some(y), None)
    }

    /// `z = relu(x)`, element-wise (the MOV(ReLU) path).
    ///
    /// # Errors
    ///
    /// As for [`PimBlas::add`].
    pub fn relu(ctx: &mut PimContext, x: &[f32]) -> Result<(Vec<f32>, KernelReport), PimError> {
        Self::stream_binary(ctx, StreamOp::Relu, x, None, None)
    }

    /// Inference-mode batch normalization with folded constants:
    /// `z = scale * x + shift` (the MAD path). `scale`/`shift` are applied
    /// cyclically with period 8 (the SRF depth) over 16-lane blocks.
    ///
    /// # Errors
    ///
    /// As for [`PimBlas::add`].
    pub fn bn(
        ctx: &mut PimContext,
        x: &[f32],
        scale: f32,
        shift: f32,
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        let mut lanes = [F16::ZERO; 16];
        for i in 0..8 {
            lanes[i] = F16::from_f32(scale);
            lanes[8 + i] = F16::from_f32(shift);
        }
        Self::stream_binary(ctx, StreamOp::Bn, x, None, Some(LaneVec::from_lanes(lanes)))
    }

    /// `z = a*x + y` — AXPY, the paper's canonical level-1 BLAS kernel
    /// ("AXPY for CV", Section III-C). The scalar `a` is broadcast through
    /// SRF_M; y streams through the GRF and x accumulates on top.
    ///
    /// # Errors
    ///
    /// As for [`PimBlas::add`].
    pub fn axpy(
        ctx: &mut PimContext,
        a: f32,
        x: &[f32],
        y: &[f32],
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        let mut lanes = [F16::ZERO; 16];
        for lane in lanes.iter_mut().take(8) {
            *lane = F16::from_f32(a);
        }
        // The AXPY kernel's first stage loads y, the second MACs x on top.
        Self::stream_binary(ctx, StreamOp::Axpy, y, Some(x), Some(LaneVec::from_lanes(lanes)))
    }

    /// `out = W·x + b` — GEMV with a fused bias, the shape of a fully
    /// connected layer. The matrix-vector product runs on PIM; the bias
    /// folds into the host-side reduction of the partial sums (zero extra
    /// DRAM traffic).
    ///
    /// # Errors
    ///
    /// As for [`PimBlas::gemv`], plus a bias-length check.
    pub fn gemv_bias(
        ctx: &mut PimContext,
        w: &[f32],
        n: usize,
        k: usize,
        x: &[f32],
        bias: &[f32],
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        if bias.len() != n {
            return Err(PimError::SizeMismatch {
                detail: format!("bias has {} elements, expected n = {n}", bias.len()),
            });
        }
        let (mut out, report) = Self::gemv(ctx, w, n, k, x)?;
        for (o, b) in out.iter_mut().zip(bias) {
            *o += b;
        }
        Ok((out, report))
    }

    /// Sparse-length-sum over an embedding table: `out = Σ_i table[idx_i]`
    /// — the recommendation-model kernel of Section II-A, implemented as a
    /// PIM extension (the paper excludes RM only for *capacity*, Section
    /// VII-A).
    ///
    /// `table` is row-major `rows × dim` (FP16-representable values). The
    /// embedding dimension is sliced 16 lanes per (channel, unit); each
    /// gather is one column access, so random indices pay the realistic
    /// ACT/PRE row-conflict cost.
    ///
    /// # Errors
    ///
    /// [`PimError::SizeMismatch`] for shape problems;
    /// [`PimError::OutOfMemory`] if the table's rows exceed the reserved
    /// region or `dim` exceeds one slice per unit; [`PimError::Empty`] for
    /// empty inputs.
    pub fn sls(
        ctx: &mut PimContext,
        table: &[f32],
        rows: usize,
        dim: usize,
        indices: &[u32],
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        use crate::kernels::{sls_batches, sls_microkernel};
        if rows == 0 || dim == 0 || indices.is_empty() {
            return Err(PimError::Empty);
        }
        if table.len() != rows * dim {
            return Err(PimError::SizeMismatch {
                detail: format!(
                    "table has {} elements, expected rows*dim = {}",
                    table.len(),
                    rows * dim
                ),
            });
        }
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= rows) {
            return Err(PimError::SizeMismatch {
                detail: format!("index {bad} out of range for {rows} embedding rows"),
            });
        }
        let map = BlockMap::full(&ctx.sys);
        let dim_blocks = BlockMap::blocks_for(dim);
        if map.slots_for(dim_blocks) > 1 {
            return Err(PimError::OutOfMemory {
                detail: format!(
                    "dim {dim} exceeds one 16-lane slice per unit ({} lanes)",
                    map.lanes_per_command()
                ),
            });
        }
        let dram_rows = (rows as u32).div_ceil(COLS_PER_ROW);
        let base_row = ctx
            .mm
            .alloc_rows_lockstep(dram_rows)
            .map_err(|e| PimError::OutOfMemory { detail: e.to_string() })?;
        let rec = begin_op(ctx, "sls");

        // Table placement: each (channel, unit) stores its 16-dim slice of
        // every embedding row; embedding row e lives at DRAM
        // (base + e/32, e%32).
        for e in 0..rows {
            for d in 0..dim_blocks {
                let (ch, u, _) = map.locate(d);
                let mut lanes = [F16::ZERO; 16];
                for (l, lane) in lanes.iter_mut().enumerate() {
                    let dd = d * 16 + l;
                    if dd < dim {
                        *lane = F16::from_f32(table[e * dim + dd]);
                    }
                }
                layout::store_block(
                    &mut ctx.sys,
                    ch,
                    u,
                    base_row + e as u32 / COLS_PER_ROW,
                    e as u32 % COLS_PER_ROW,
                    &LaneVec::from_lanes(lanes),
                );
            }
        }

        let program = sls_microkernel(indices.len() as u32, ctx.sys.pim_config());
        let data = sls_batches(indices, base_row);
        let start = ctx.sys.max_now();
        let triggers_before = ctx.sys.total_pim_triggers();
        let channels = ctx.sys.channel_count();
        let r = Executor::try_run(ctx, channels, &program, None, false, &data)?;

        // Gather the per-slice sums from GRF_A[0].
        let mut out = vec![0.0f32; dim];
        for d in 0..dim_blocks {
            let (ch, u, _) = map.locate(d);
            let grf = Executor::try_read_grf_a(ctx, ch, u)?;
            for (l, lane) in grf[0].lanes().iter().enumerate() {
                let dd = d * 16 + l;
                if dd < dim {
                    out[dd] = lane.to_f32();
                }
            }
        }
        ctx.sys.barrier();
        let cycles = ctx.sys.max_now() - start;
        let report = KernelReport {
            cycles,
            seconds: ctx.sys.cycles_to_seconds(cycles),
            commands: r.commands,
            fences: r.fences,
            pim_triggers: ctx.sys.total_pim_triggers() - triggers_before,
            elements: dim,
        };
        end_op(&rec, ctx, "sls");
        Ok((out, report))
    }

    fn stream_binary(
        ctx: &mut PimContext,
        op: StreamOp,
        x: &[f32],
        y: Option<&[f32]>,
        srf: Option<LaneVec>,
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        if x.is_empty() {
            return Err(PimError::Empty);
        }
        if let Some(y) = y {
            if y.len() != x.len() {
                return Err(PimError::SizeMismatch {
                    detail: format!("x has {} elements, y has {}", x.len(), y.len()),
                });
            }
        }
        let n = x.len();
        let cfg = ctx.sys.pim_config().clone();
        let map = BlockMap::full(&ctx.sys);
        let nblocks = BlockMap::blocks_for(n);
        let slots = map.slots_for(nblocks).max(1);
        let rows = (slots as u32).div_ceil(GROUP);
        let base_row = ctx
            .mm
            .alloc_rows_lockstep(rows)
            .map_err(|e| PimError::OutOfMemory { detail: e.to_string() })?;
        let op_name = match op {
            StreamOp::Add => "add",
            StreamOp::Mul => "mul",
            StreamOp::Relu => "relu",
            StreamOp::Bn => "bn",
            StreamOp::Axpy => "axpy",
        };
        let rec = begin_op(ctx, op_name);

        // Place operands (Fig. 15(b) interleaving).
        let (x_col, y_col, z_col) = stream_columns(op, &cfg);
        let two_bank = cfg.variant == PimVariant::TwoBankAccess;
        // On the 1-bank variant a two-operand op must have been assigned a
        // second column by `stream_columns`; a miss is a kernel-table bug.
        let y_plain_col = match (y, two_bank, y_col) {
            (Some(_), false, None) => {
                return Err(PimError::Internal {
                    detail: format!("stream op {op_name} has no second-operand column"),
                })
            }
            (Some(_), false, Some(c)) => Some(c),
            _ => None,
        };
        let xb = layout::f32_to_blocks(x);
        let yb = y.map(layout::f32_to_blocks);
        for b in 0..nblocks {
            let (ch, u, slot) = map.locate(b);
            let row = base_row + slot as u32 / GROUP;
            let coff = slot as u32 % GROUP;
            layout::store_block(&mut ctx.sys, ch, u, row, x_col + coff, &xb[b]);
            if let Some(ref yb) = yb {
                match y_plain_col {
                    Some(yc) => {
                        layout::store_block(&mut ctx.sys, ch, u, row, yc + coff, &yb[b]);
                    }
                    None => layout::store_block_odd(&mut ctx.sys, ch, u, row, x_col + coff, &yb[b]),
                }
            }
        }

        // Run.
        let program = stream_microkernel(op, rows, &cfg);
        let batches = stream_batches(op, rows, base_row, &cfg);
        let start = ctx.sys.max_now();
        let triggers_before = ctx.sys.total_pim_triggers();
        let channels = ctx.sys.channel_count();
        let r = Executor::try_run(ctx, channels, &program, srf.as_ref(), false, &batches)?;

        // Gather z.
        let z = layout::gather_vector(&ctx.sys, &map, n, |b| {
            let (_, _, slot) = map.locate(b);
            (base_row + slot as u32 / GROUP, z_col + slot as u32 % GROUP)
        });

        let cycles = r.end_cycle - start;
        let report = KernelReport {
            cycles,
            seconds: ctx.sys.cycles_to_seconds(cycles),
            commands: r.commands,
            fences: r.fences,
            pim_triggers: ctx.sys.total_pim_triggers() - triggers_before,
            elements: n,
        };
        end_op(&rec, ctx, op_name);
        Ok((z, report))
    }

    /// `out = W · x` — the level-2 BLAS kernel at the heart of the paper's
    /// evaluation. `w` is row-major `n × k`.
    ///
    /// Outputs are distributed 16 per unit (one per SIMD lane); inputs
    /// stream through the write datapath; partial sums accumulate in 8
    /// GRF_B registers per unit and are reduced on the host after a
    /// memory-mapped readback (see [`crate::kernels`]).
    ///
    /// # Errors
    ///
    /// [`PimError::SizeMismatch`] if `w.len() != n*k`; [`PimError::Empty`]
    /// for zero dimensions; [`PimError::OutOfMemory`] if weights do not
    /// fit.
    pub fn gemv(
        ctx: &mut PimContext,
        w: &[f32],
        n: usize,
        k: usize,
        x: &[f32],
    ) -> Result<(Vec<f32>, KernelReport), PimError> {
        if n == 0 || k == 0 {
            return Err(PimError::Empty);
        }
        if w.len() != n * k {
            return Err(PimError::SizeMismatch {
                detail: format!("w has {} elements, expected n*k = {}", w.len(), n * k),
            });
        }
        if x.len() != k {
            return Err(PimError::SizeMismatch {
                detail: format!("x has {} elements, expected k = {k}", x.len()),
            });
        }
        let cfg = ctx.sys.pim_config().clone();
        let map = BlockMap::full(&ctx.sys);
        let lanes_per_pass = map.lanes_per_command();
        let passes = n.div_ceil(lanes_per_pass);
        let kpad = k.div_ceil(GROUP as usize) * GROUP as usize;
        let rows_per_pass = (kpad as u32).div_ceil(COLS_PER_ROW);
        let base_row = ctx
            .mm
            .alloc_rows_lockstep(rows_per_pass * passes as u32)
            .map_err(|e| PimError::OutOfMemory { detail: e.to_string() })?;
        let rec = begin_op(ctx, "gemv");

        // Weight placement: lane l of (pass, ch, unit) owns output row
        // out_base + l; input j sits at (row j/32, col j%32).
        for p in 0..passes {
            let prow = base_row + p as u32 * rows_per_pass;
            for ch in 0..map.channels {
                for u in 0..map.units {
                    let out_base = p * lanes_per_pass + (ch * map.units + u) * BLOCK_ELEMS;
                    if out_base >= n {
                        continue;
                    }
                    for j in 0..k {
                        let mut lanes = [F16::ZERO; 16];
                        for (l, lane) in lanes.iter_mut().enumerate() {
                            let o = out_base + l;
                            if o < n {
                                *lane = F16::from_f32(w[o * k + j]);
                            }
                        }
                        layout::store_block(
                            &mut ctx.sys,
                            ch,
                            u,
                            prow + j as u32 / COLS_PER_ROW,
                            j as u32 % COLS_PER_ROW,
                            &LaneVec::from_lanes(lanes),
                        );
                    }
                }
            }
        }

        let groups = (kpad / GROUP as usize) as u32;
        let program = gemv_microkernel(groups, &cfg);
        let start = ctx.sys.max_now();
        let triggers_before = ctx.sys.total_pim_triggers();
        let mut out = vec![0.0f32; n];
        let mut commands = 0;
        let mut fences = 0;
        for p in 0..passes {
            let prow = base_row + p as u32 * rows_per_pass;
            let batches = gemv_batches(kpad, prow, x, &cfg);
            let channels = ctx.sys.channel_count();
            let r = Executor::try_run(ctx, channels, &program, None, true, &batches)?;
            commands += r.commands;
            fences += r.fences;
            // Host-side reduction of the 8 partial accumulators per unit.
            for ch in 0..map.channels {
                for u in 0..map.units {
                    let out_base = p * lanes_per_pass + (ch * map.units + u) * BLOCK_ELEMS;
                    if out_base >= n {
                        continue;
                    }
                    let grfb = Executor::try_read_grf_b(ctx, ch, u)?;
                    for l in 0..BLOCK_ELEMS {
                        let o = out_base + l;
                        if o < n {
                            out[o] = grfb.iter().map(|v| v[l].to_f32()).sum();
                        }
                    }
                }
            }
            ctx.sys.barrier();
        }

        let end = ctx.sys.max_now();
        let cycles = end - start;
        let report = KernelReport {
            cycles,
            seconds: ctx.sys.cycles_to_seconds(cycles),
            commands,
            fences,
            pim_triggers: ctx.sys.total_pim_triggers() - triggers_before,
            elements: n,
        };
        end_op(&rec, ctx, "gemv");
        Ok((out, report))
    }

    /// One LSTM cell step on PIM: the two gate GEMVs run on the device;
    /// the gate nonlinearities and element-wise state update run on the
    /// host (the paper accelerates the LSTM layers' GEMV work, Section
    /// VII-A).
    ///
    /// Weight layout: `w_x` is `4h × input`, `w_h` is `4h × h`, `bias` is
    /// `4h`, gate order `[i, f, g, o]`.
    ///
    /// # Errors
    ///
    /// Propagates the GEMV errors and checks all dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn lstm_cell(
        ctx: &mut PimContext,
        w_x: &[f32],
        w_h: &[f32],
        bias: &[f32],
        x: &[f32],
        h_prev: &[f32],
        c_prev: &[f32],
    ) -> Result<(Vec<f32>, Vec<f32>, KernelReport), PimError> {
        let h = h_prev.len();
        if c_prev.len() != h || bias.len() != 4 * h {
            return Err(PimError::SizeMismatch {
                detail: format!("hidden size {h}: bias/c_prev shapes disagree"),
            });
        }
        let (gx, mut report) = Self::gemv(ctx, w_x, 4 * h, x.len(), x)?;
        let (gh, r2) = Self::gemv(ctx, w_h, 4 * h, h, h_prev)?;
        report.absorb(&r2);
        // Host-side gate math in f32 (sigmoid/tanh are not PIM ops).
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        let mut h_next = vec![0.0f32; h];
        let mut c_next = vec![0.0f32; h];
        for j in 0..h {
            let i_g = sigmoid(gx[j] + gh[j] + bias[j]);
            let f_g = sigmoid(gx[h + j] + gh[h + j] + bias[h + j]);
            let g_g = (gx[2 * h + j] + gh[2 * h + j] + bias[2 * h + j]).tanh();
            let o_g = sigmoid(gx[3 * h + j] + gh[3 * h + j] + bias[3 * h + j]);
            c_next[j] = f_g * c_prev[j] + i_g * g_g;
            h_next[j] = o_g * c_next[j].tanh();
        }
        report.elements = h;
        Ok((h_next, c_next, report))
    }

    /// f32 reference GEMV for verification.
    pub fn reference_gemv(w: &[f32], n: usize, k: usize, x: &[f32]) -> Vec<f32> {
        (0..n)
            .map(|o| {
                // Mirror the device's FP16 rounding of inputs for a fair
                // comparison (operands are stored as binary16).
                (0..k)
                    .map(|j| F16::from_f32(w[o * k + j]).to_f32() * F16::from_f32(x[j]).to_f32())
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index i doubles as the element id in messages
mod tests {
    use super::*;
    use pim_fp16::max_abs_error;

    fn small_ctx() -> PimContext {
        PimContext::small_system()
    }

    #[test]
    fn add_small_vectors() {
        let mut ctx = small_ctx();
        let x: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..100).map(|i| (i * 2) as f32).collect();
        let (z, report) = PimBlas::add(&mut ctx, &x, &y).unwrap();
        for i in 0..100 {
            assert_eq!(z[i], (i * 3) as f32, "element {i}");
        }
        assert!(report.cycles > 0);
        assert!(report.fences > 0);
        assert_eq!(report.elements, 100);
    }

    #[test]
    fn add_spanning_many_rows() {
        let mut ctx = small_ctx();
        // 16 channels × 8 units × 16 lanes = 2048 elements per slot; use
        // enough to need several rows per unit.
        let n = 2048 * 20;
        let x = vec![1.25f32; n];
        let y = vec![2.5f32; n];
        let (z, _) = PimBlas::add(&mut ctx, &x, &y).unwrap();
        assert!(z.iter().all(|&v| v == 3.75), "all elements correct");
    }

    #[test]
    fn mul_matches_reference() {
        let mut ctx = small_ctx();
        let x: Vec<f32> = (0..500).map(|i| (i % 13) as f32 * 0.25).collect();
        let y: Vec<f32> = (0..500).map(|i| (i % 7) as f32 * 0.5).collect();
        let (z, _) = PimBlas::mul(&mut ctx, &x, &y).unwrap();
        for i in 0..500 {
            assert_eq!(z[i], x[i] * y[i], "element {i}");
        }
    }

    #[test]
    fn relu_clamps() {
        let mut ctx = small_ctx();
        let x: Vec<f32> = (0..64).map(|i| i as f32 - 32.0).collect();
        let (z, _) = PimBlas::relu(&mut ctx, &x).unwrap();
        for i in 0..64 {
            assert_eq!(z[i], (i as f32 - 32.0).max(0.0), "element {i}");
        }
    }

    #[test]
    fn bn_scale_and_shift() {
        let mut ctx = small_ctx();
        let x: Vec<f32> = (0..128).map(|i| i as f32).collect();
        let (z, _) = PimBlas::bn(&mut ctx, &x, 0.5, 3.0).unwrap();
        for i in 0..128 {
            let want = F16::from_f32(i as f32).mac(F16::from_f32(0.5), F16::from_f32(3.0)).to_f32();
            assert_eq!(z[i], want, "element {i}");
        }
    }

    #[test]
    fn axpy_matches_reference() {
        let mut ctx = small_ctx();
        let a = 0.75f32;
        let x: Vec<f32> = (0..300).map(|i| (i % 11) as f32 - 5.0).collect();
        let y: Vec<f32> = (0..300).map(|i| (i % 7) as f32).collect();
        let (z, report) = PimBlas::axpy(&mut ctx, a, &x, &y).unwrap();
        for i in 0..300 {
            // Device order: round16(round16(a*x) + y).
            let want = F16::from_f32(x[i]).mac(F16::from_f32(a), F16::from_f32(y[i])).to_f32();
            assert_eq!(z[i], want, "element {i}");
        }
        assert!(report.pim_triggers > 0);
    }

    #[test]
    fn gemv_small_exact() {
        let mut ctx = small_ctx();
        // 2x2 identity-ish.
        let w = vec![1.0, 0.0, 0.0, 2.0];
        let x = vec![3.0, 4.0];
        let (out, report) = PimBlas::gemv(&mut ctx, &w, 2, 2, &x).unwrap();
        assert_eq!(out, vec![3.0, 8.0]);
        assert!(report.cycles > 0);
    }

    #[test]
    fn gemv_matches_reference_within_fp16() {
        let mut ctx = small_ctx();
        let n = 64;
        let k = 48;
        let w: Vec<f32> = (0..n * k).map(|i| ((i % 17) as f32 - 8.0) / 16.0).collect();
        let x: Vec<f32> = (0..k).map(|i| ((i % 5) as f32 - 2.0) / 4.0).collect();
        let (out, _) = PimBlas::gemv(&mut ctx, &w, n, k, &x).unwrap();
        let reference = PimBlas::reference_gemv(&w, n, k, &x);
        let out16: Vec<F16> = out.iter().map(|&v| F16::from_f32(v)).collect();
        let err = max_abs_error(&out16, &reference);
        assert!(err < 0.05, "max abs error {err}");
    }

    #[test]
    fn gemv_bias_folds_into_reduction() {
        let mut ctx = small_ctx();
        let w = vec![1.0f32; 8 * 4];
        let x = vec![0.5f32; 4];
        let bias: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let (out, _) = PimBlas::gemv_bias(&mut ctx, &w, 8, 4, &x, &bias).unwrap();
        for (o, v) in out.iter().enumerate() {
            assert!((v - (2.0 + o as f32)).abs() < 1e-3, "output {o}: {v}");
        }
        assert!(matches!(
            PimBlas::gemv_bias(&mut ctx, &w, 8, 4, &x, &[1.0]),
            Err(PimError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn gemv_multi_pass() {
        let mut ctx = small_ctx();
        // 16 ch × 8 units × 16 lanes = 2048 outputs per pass; force 2
        // passes.
        let n = 2048 + 64;
        let k = 16;
        let w: Vec<f32> =
            (0..n * k).map(|i| if i % k == (i / k) % k { 1.0 } else { 0.0 }).collect();
        let x: Vec<f32> = (0..k).map(|i| i as f32).collect();
        let (out, _) = PimBlas::gemv(&mut ctx, &w, n, k, &x).unwrap();
        let reference = PimBlas::reference_gemv(&w, n, k, &x);
        for o in 0..n {
            assert!(
                (out[o] - reference[o]).abs() < 1e-3,
                "output {o}: {} vs {}",
                out[o],
                reference[o]
            );
        }
    }

    #[test]
    fn sls_matches_reference() {
        let mut ctx = small_ctx();
        let rows = 100;
        let dim = 48; // 3 dim-blocks across (ch0..3, unit 0)
        let table: Vec<f32> = (0..rows * dim).map(|i| ((i % 9) as f32 - 4.0) * 0.5).collect();
        let indices = [3u32, 97, 5, 5, 42, 0, 99];
        let (out, report) = PimBlas::sls(&mut ctx, &table, rows, dim, &indices).unwrap();
        // Device reference: sequential FP16 accumulation in index order.
        for d in 0..dim {
            let mut acc = F16::from_f32(table[indices[0] as usize * dim + d]);
            for &i in &indices[1..] {
                acc = acc + F16::from_f32(table[i as usize * dim + d]);
            }
            assert_eq!(out[d], acc.to_f32(), "dim {d}");
        }
        // Random indices mean row conflicts: at least one ACT per distinct
        // row touched, per channel.
        assert!(report.commands > indices.len() as u64);
    }

    #[test]
    fn sls_rejects_bad_shapes() {
        let mut ctx = small_ctx();
        assert!(matches!(
            PimBlas::sls(&mut ctx, &[1.0; 10], 2, 5, &[7]),
            Err(PimError::SizeMismatch { .. })
        ));
        assert!(matches!(PimBlas::sls(&mut ctx, &[], 0, 0, &[]), Err(PimError::Empty)));
    }

    #[test]
    fn lstm_cell_runs_and_is_finite() {
        let mut ctx = small_ctx();
        let h = 32;
        let xdim = 16;
        let w_x: Vec<f32> = (0..4 * h * xdim).map(|i| ((i % 11) as f32 - 5.0) / 64.0).collect();
        let w_h: Vec<f32> = (0..4 * h * h).map(|i| ((i % 7) as f32 - 3.0) / 64.0).collect();
        let bias = vec![0.1f32; 4 * h];
        let x = vec![0.5f32; xdim];
        let h0 = vec![0.0f32; h];
        let c0 = vec![0.0f32; h];
        let (h1, c1, report) =
            PimBlas::lstm_cell(&mut ctx, &w_x, &w_h, &bias, &x, &h0, &c0).unwrap();
        assert_eq!(h1.len(), h);
        assert!(h1.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
        assert!(c1.iter().all(|v| v.is_finite()));
        assert!(report.cycles > 0);
    }

    #[test]
    fn errors_are_reported() {
        let mut ctx = small_ctx();
        assert!(matches!(
            PimBlas::add(&mut ctx, &[1.0], &[1.0, 2.0]),
            Err(PimError::SizeMismatch { .. })
        ));
        assert!(matches!(PimBlas::add(&mut ctx, &[], &[]), Err(PimError::Empty)));
        assert!(matches!(
            PimBlas::gemv(&mut ctx, &[1.0; 4], 2, 3, &[1.0; 3]),
            Err(PimError::SizeMismatch { .. })
        ));
        let err = PimError::Empty;
        assert!(!err.to_string().is_empty());
    }
}
