//! The PIM device driver and memory manager (Section V-A).
//!
//! "The PIM device driver reserves memory space for PIM operations during
//! the booting process. It also sets the reserved memory space to an
//! uncacheable region [...] Receiving a request from an upper software
//! layer, the PIM device driver allocates physically contiguous memory
//! blocks."
//!
//! In this reproduction the reserved region is the row space
//! `[0, PIM_CONF_FIRST_ROW)` of every bank; the [`MemoryManager`] hands out
//! physically contiguous row regions per (channel, PIM unit) with a bump
//! allocator (PIM workloads are kernel-scoped arenas: everything is freed
//! together when the context resets, mirroring the driver's block
//! allocator).

use pim_core::conf::PIM_CONF_FIRST_ROW;
use std::fmt;

/// A physically contiguous run of rows in one PIM unit's even bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRegion {
    /// Channel index.
    pub channel: usize,
    /// PIM unit index within the channel.
    pub unit: usize,
    /// First row.
    pub start_row: u32,
    /// Number of rows.
    pub rows: u32,
}

impl RowRegion {
    /// Rows `[start_row, start_row + rows)`.
    pub fn row_range(&self) -> std::ops::Range<u32> {
        self.start_row..self.start_row + self.rows
    }
}

/// Allocation failure: the reserved PIM region of some bank is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// The channel that ran out of rows.
    pub channel: usize,
    /// The unit that ran out of rows.
    pub unit: usize,
    /// Rows requested.
    pub requested: u32,
    /// Rows remaining.
    pub available: u32,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PIM memory exhausted on channel {} unit {}: requested {} rows, {} available",
            self.channel, self.unit, self.requested, self.available
        )
    }
}

impl std::error::Error for AllocError {}

/// The device driver: owns the reserved, uncacheable PIM region.
#[derive(Debug, Clone)]
pub struct PimDriver {
    channels: usize,
    units_per_channel: usize,
    reserved_rows: u32,
}

impl PimDriver {
    /// "Boots" the driver: reserves all rows below the `PIM_CONF` area on
    /// every bank of every channel and marks the region uncacheable.
    pub fn boot(channels: usize, units_per_channel: usize) -> PimDriver {
        PimDriver { channels, units_per_channel, reserved_rows: PIM_CONF_FIRST_ROW }
    }

    /// Number of channels under management.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// PIM units per channel.
    pub fn units_per_channel(&self) -> usize {
        self.units_per_channel
    }

    /// Rows reserved per bank for PIM data.
    pub fn reserved_rows(&self) -> u32 {
        self.reserved_rows
    }

    /// Whether an access to `row` must bypass the cache: every row in the
    /// reserved region is uncacheable, "so that the host processor sends a
    /// DRAM command for every memory access to the PIM memory space".
    pub fn is_uncacheable(&self, row: u32) -> bool {
        row < self.reserved_rows
    }

    /// Creates the memory manager over the reserved region.
    pub fn memory_manager(&self) -> MemoryManager {
        MemoryManager {
            next_row: vec![0; self.channels * self.units_per_channel],
            units_per_channel: self.units_per_channel,
            reserved_rows: self.reserved_rows,
        }
    }
}

/// The PIM memory manager: a per-(channel, unit) bump allocator over the
/// driver's reserved rows. "The PIM memory manager governs the memory
/// allocated by the PIM device driver" (Section V-A).
#[derive(Debug, Clone)]
pub struct MemoryManager {
    next_row: Vec<u32>,
    units_per_channel: usize,
    reserved_rows: u32,
}

impl MemoryManager {
    /// Allocates `rows` physically contiguous rows in the even bank of
    /// (`channel`, `unit`).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the unit's reserved region is exhausted.
    pub fn alloc_rows(
        &mut self,
        channel: usize,
        unit: usize,
        rows: u32,
    ) -> Result<RowRegion, AllocError> {
        let idx = channel * self.units_per_channel + unit;
        let next = self.next_row[idx];
        let available = self.reserved_rows - next;
        if rows > available {
            return Err(AllocError { channel, unit, requested: rows, available });
        }
        self.next_row[idx] = next + rows;
        Ok(RowRegion { channel, unit, start_row: next, rows })
    }

    /// Allocates the same number of rows at the **same row offset** in
    /// every (channel, unit) — the shape every lock-step PIM kernel needs,
    /// since all banks open the same row per command.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if any unit cannot satisfy the request at a
    /// common offset.
    pub fn alloc_rows_lockstep(&mut self, rows: u32) -> Result<u32, AllocError> {
        // A lock-step region must start at the same row everywhere: take
        // the max of all bump pointers, then advance everyone past it. A
        // manager with no units (a zero-channel or zero-unit boot) can
        // satisfy nothing.
        let Some(&base) = self.next_row.iter().max() else {
            return Err(AllocError { channel: 0, unit: 0, requested: rows, available: 0 });
        };
        let available = self.reserved_rows.saturating_sub(base);
        if rows > available {
            return Err(AllocError { channel: 0, unit: 0, requested: rows, available });
        }
        for p in &mut self.next_row {
            *p = base + rows;
        }
        Ok(base)
    }

    /// Rows still free in the most-loaded unit.
    pub fn min_available(&self) -> u32 {
        let max_used = *self.next_row.iter().max().unwrap_or(&0);
        self.reserved_rows - max_used
    }

    /// Frees everything (arena reset between kernels/benchmarks).
    pub fn reset(&mut self) {
        for p in &mut self.next_row {
            *p = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_reserves_below_conf_rows() {
        let d = PimDriver::boot(64, 8);
        assert_eq!(d.reserved_rows(), PIM_CONF_FIRST_ROW);
        assert!(d.is_uncacheable(0));
        assert!(d.is_uncacheable(PIM_CONF_FIRST_ROW - 1));
        assert!(!d.is_uncacheable(PIM_CONF_FIRST_ROW));
    }

    #[test]
    fn alloc_is_contiguous_and_disjoint() {
        let d = PimDriver::boot(2, 8);
        let mut mm = d.memory_manager();
        let a = mm.alloc_rows(0, 0, 10).unwrap();
        let b = mm.alloc_rows(0, 0, 5).unwrap();
        assert_eq!(a.row_range(), 0..10);
        assert_eq!(b.row_range(), 10..15);
        // A different unit has its own space.
        let c = mm.alloc_rows(1, 3, 4).unwrap();
        assert_eq!(c.start_row, 0);
    }

    #[test]
    fn exhaustion_is_reported() {
        let d = PimDriver::boot(1, 1);
        let mut mm = d.memory_manager();
        mm.alloc_rows(0, 0, d.reserved_rows() - 1).unwrap();
        let err = mm.alloc_rows(0, 0, 2).unwrap_err();
        assert_eq!(err.available, 1);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn lockstep_alloc_aligns_offsets() {
        let d = PimDriver::boot(2, 2);
        let mut mm = d.memory_manager();
        mm.alloc_rows(0, 1, 7).unwrap(); // skew one unit
        let base = mm.alloc_rows_lockstep(3).unwrap();
        assert_eq!(base, 7, "lock-step region starts past the most-used unit");
        let next = mm.alloc_rows_lockstep(1).unwrap();
        assert_eq!(next, 10);
    }

    #[test]
    fn reset_frees_everything() {
        let d = PimDriver::boot(1, 2);
        let mut mm = d.memory_manager();
        mm.alloc_rows_lockstep(100).unwrap();
        mm.reset();
        assert_eq!(mm.alloc_rows_lockstep(1).unwrap(), 0);
        assert_eq!(mm.min_available(), d.reserved_rows() - 1);
    }
}
