//! The PIM runtime context: system + driver + memory manager + execution
//! mode, threaded through every PIM-BLAS call.

use crate::driver::{MemoryManager, PimDriver};
use pim_core::PimConfig;
use pim_host::{ExecutionBackend, ExecutionMode, HostConfig, PimSystem};
use pim_obs::Recorder;

/// Everything a PIM-BLAS call needs: the simulated system, the booted
/// driver, the memory manager, and the ordering regime.
#[derive(Debug)]
pub struct PimContext {
    /// The simulated host + PIM-HBM system.
    pub sys: PimSystem,
    /// The booted device driver.
    pub driver: PimDriver,
    /// The runtime memory manager over the driver's reserved region.
    pub mm: MemoryManager,
    /// The ordering regime kernels run under (fenced by default, matching
    /// the shipped system; [`ExecutionMode::Ordered`] reproduces the
    /// no-fence what-if).
    pub mode: ExecutionMode,
    /// The shared observability recorder, if profiling is enabled
    /// ([`PimContext::enable_profiling`]). `None` by default: instrumented
    /// layers then skip all event/metric work.
    pub recorder: Option<Recorder>,
    /// Strict launch mode: when set, every kernel launched through the
    /// executor is first checked by the `pim-verify` static verifier, and
    /// launches with verifier errors are refused with the full diagnostic
    /// report instead of being simulated.
    pub strict: bool,
}

impl PimContext {
    /// The paper's full evaluation system: 4 stacks, 64 channels.
    pub fn paper_system() -> PimContext {
        PimContext::new(HostConfig::paper(), PimConfig::paper())
    }

    /// A one-stack system for fast tests (16 channels).
    pub fn small_system() -> PimContext {
        let mut host = HostConfig::paper();
        host.stacks = 1;
        PimContext::new(host, PimConfig::paper())
    }

    /// Builds a context over explicit configurations.
    pub fn new(host: HostConfig, pim: PimConfig) -> PimContext {
        let sys = PimSystem::new(host, pim.clone());
        let driver = PimDriver::boot(sys.channel_count(), pim.units_per_pch);
        let mm = driver.memory_manager();
        PimContext {
            sys,
            driver,
            mm,
            mode: ExecutionMode::Fenced { reorder_seed: None },
            recorder: None,
            strict: false,
        }
    }

    /// Switches the ordering regime.
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// Enables or disables strict launch mode (see [`PimContext::strict`]).
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Selects the execution backend every kernel launched through this
    /// context runs under ([`ExecutionBackend::Sequential`] by default,
    /// [`ExecutionBackend::Threads`] to fan channels out over host worker
    /// threads). A scheduling choice only: results, stats, and merged event
    /// streams are identical under every backend.
    pub fn set_backend(&mut self, backend: ExecutionBackend) {
        self.sys.set_backend(backend);
    }

    /// The execution backend kernels currently run under.
    pub fn backend(&self) -> ExecutionBackend {
        self.sys.backend()
    }

    /// Attaches `recorder` to every layer of the simulation: each channel's
    /// memory controller and PIM device, plus the runtime itself (op
    /// spans). All layers share one event stream and one metrics registry.
    pub fn enable_profiling(&mut self, recorder: Recorder) {
        for i in 0..self.sys.channel_count() {
            let ctrl = self.sys.channel_mut(i);
            ctrl.set_recorder(recorder.clone(), i as u16);
            ctrl.sink_mut().set_recorder(recorder.clone(), i as u16);
        }
        self.recorder = Some(recorder);
    }

    /// Folds per-bank row-state residency (cycles spent with a row open vs
    /// precharged) into the recorder's gauges, summed over all channels up
    /// to each channel's current cycle. Call after the workload of
    /// interest; gauges overwrite, so repeated calls stay correct.
    pub fn snapshot_residency(&self) {
        let Some(r) = &self.recorder else { return };
        let (mut open, mut closed) = (0u64, 0u64);
        for i in 0..self.sys.channel_count() {
            let ctrl = self.sys.channel(i);
            let (o, c) = ctrl.sink().dram().bank_residency(ctrl.now());
            open += o;
            closed += c;
        }
        r.set_gauge(pim_obs::names::BANK_OPEN_CYCLES, open as f64);
        r.set_gauge(pim_obs::names::BANK_CLOSED_CYCLES, closed as f64);
    }

    /// Installs a seeded fault plan across the simulated system (see
    /// `pim_faults`). Off by default: a context that never calls this is
    /// bit-identical — cycle counts, command counts, results — to one
    /// built before fault support existed.
    pub fn inject_faults(&mut self, plan: &pim_faults::FaultPlan) {
        self.sys.install_faults(plan);
    }

    /// Frees all PIM memory (arena reset between benchmarks).
    pub fn reset_memory(&mut self) {
        self.mm.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_context_shape() {
        let ctx = PimContext::paper_system();
        assert_eq!(ctx.sys.channel_count(), 64);
        assert_eq!(ctx.driver.units_per_channel(), 8);
    }

    #[test]
    fn small_context_shape() {
        let ctx = PimContext::small_system();
        assert_eq!(ctx.sys.channel_count(), 16);
    }

    #[test]
    fn backend_defaults_sequential_and_round_trips() {
        let mut ctx = PimContext::small_system();
        assert_eq!(ctx.backend(), ExecutionBackend::Sequential);
        ctx.set_backend(ExecutionBackend::Threads(4));
        assert_eq!(ctx.backend(), ExecutionBackend::Threads(4));
    }
}
