//! The PIM preprocessor (Section V-A): "analyzes the source code of
//! applications and finds TensorFlow ops suitable for PIM acceleration at
//! runtime."
//!
//! The suitability test is the paper's own criterion: PIM targets
//! **memory-bound** kernels — low operations-per-byte, footprints that do
//! not fit in the LLC — and must "not hurt the performance of compute-bound
//! applications" (ResNet-50 in Fig. 10, which runs entirely on the host).

use crate::ops::OpKind;
use pim_core::isa::Instruction;
use pim_core::PimConfig;
use pim_host::HostConfig;

/// Where the preprocessor decides an op should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionTarget {
    /// Offload to the PIM execution units.
    Pim,
    /// Keep on the host processor.
    Host,
}

/// The preprocessor: a stateless analysis over op descriptors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Preprocessor;

impl Preprocessor {
    /// Arithmetic intensity (FLOPs per DRAM byte) below which a kernel is
    /// memory-bound on the paper's host: the machine balance is
    /// `peak_flops / peak_bandwidth` ≈ 26.5 TFLOPS / 1.23 TB/s ≈ 21.6
    /// FLOP/B; anything far below is bandwidth-limited.
    pub fn machine_balance(host: &HostConfig) -> f64 {
        host.peak_fp16_gflops() / host.peak_bandwidth_gbs(19.2)
    }

    /// Decides where `op` with the given working set and batch should run.
    ///
    /// Level-1/2 BLAS at batch 1 (GEMV, element-wise ops, BN) have ≤ ~1
    /// FLOP/B and go to PIM when their footprint exceeds the LLC; batching
    /// multiplies reuse (GEMV`→`GEMM), and once the effective intensity
    /// approaches the machine balance the host wins — "the processor with
    /// HBM begins to outperform one with PIM-HBM as it becomes less
    /// memory-bound" (Section VII-B, batch 4).
    pub fn decide(
        host: &HostConfig,
        op: OpKind,
        footprint_bytes: u64,
        batch: usize,
    ) -> ExecutionTarget {
        let intensity = op.flops_per_byte() * batch as f64;
        let balance = Self::machine_balance(host);
        let fits_in_llc = footprint_bytes <= host.llc_bytes as u64;
        // Compute-bound ops stay on the host outright.
        if !op.pim_supported() || intensity >= balance {
            return ExecutionTarget::Host;
        }
        // Cache-resident data is cheaper to keep on the host.
        if fits_in_llc {
            return ExecutionTarget::Host;
        }
        // The paper's measured crossover: at batch ≥ 4 the batched GEMM's
        // LLC reuse beats PIM even though intensity is still below balance
        // (Fig. 10). Element-wise ops stay memory-bound at any batch
        // ("ADD, which is the level-1 BLAS, is still memory-bound
        // regardless of the batch size").
        if op.batch_raises_reuse() && batch >= 4 {
            return ExecutionTarget::Host;
        }
        ExecutionTarget::Pim
    }

    /// Statically verifies a microkernel before launch (strict mode).
    ///
    /// Runs the `pim-verify` kernel pass on `program` under `config`'s
    /// variant; warnings are tolerated, errors refuse the launch.
    ///
    /// # Errors
    ///
    /// The full diagnostic [`pim_verify::Report`] when the verifier finds
    /// at least one error-severity finding.
    pub fn verify_kernel(
        config: &PimConfig,
        program: &[Instruction],
    ) -> Result<(), pim_verify::Report> {
        let report = pim_verify::verify_program(config, program);
        if report.has_errors() {
            Err(report)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIG: u64 = 64 << 20; // 64 MB ≫ LLC

    #[test]
    fn machine_balance_is_about_22() {
        let b = Preprocessor::machine_balance(&HostConfig::paper());
        assert!((20.0..24.0).contains(&b), "balance {b}");
    }

    #[test]
    fn gemv_batch1_goes_to_pim() {
        let h = HostConfig::paper();
        assert_eq!(Preprocessor::decide(&h, OpKind::Gemv, BIG, 1), ExecutionTarget::Pim);
    }

    #[test]
    fn gemv_batch4_returns_to_host() {
        let h = HostConfig::paper();
        assert_eq!(Preprocessor::decide(&h, OpKind::Gemv, BIG, 4), ExecutionTarget::Host);
    }

    #[test]
    fn add_stays_on_pim_at_any_batch() {
        let h = HostConfig::paper();
        for b in [1, 2, 4, 16] {
            assert_eq!(Preprocessor::decide(&h, OpKind::Add, BIG, b), ExecutionTarget::Pim);
        }
    }

    #[test]
    fn conv_always_host() {
        let h = HostConfig::paper();
        assert_eq!(Preprocessor::decide(&h, OpKind::Conv2d, BIG, 1), ExecutionTarget::Host);
    }

    #[test]
    fn cache_resident_stays_on_host() {
        let h = HostConfig::paper();
        assert_eq!(Preprocessor::decide(&h, OpKind::Gemv, 1 << 20, 1), ExecutionTarget::Host);
    }
}
