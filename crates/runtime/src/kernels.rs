//! PIM microkernel builders: the CRF programs and the DRAM command streams
//! that drive them.
//!
//! A PIM operation is two coupled artifacts (Section V-B): a *microkernel*
//! (the ≤32 instructions loaded into every unit's CRF) and a *kernel* (the
//! host command stream whose column commands trigger those instructions in
//! lock-step). The builders here keep the two consistent by construction —
//! every RD/WR the kernel issues maps to exactly the instruction the
//! microkernel's loop structure expects, which is the correctness
//! obligation Fig. 5 is about.
//!
//! ## Stream kernels (ADD / MUL / ReLU / BN)
//!
//! Operands are interleaved within each row of a unit's even bank
//! (Fig. 15(b)): for two-operand ops, columns 0–7 hold x-blocks, 8–15 hold
//! y-blocks and 16–23 receive z; one row therefore processes 8 blocks
//! ("the computed result should be stored to the bank after 8 ADD
//! instructions, which is limited by the number of GRF registers",
//! Section VII-B). The 2BA variant instead places y in the **odd** bank at
//! the same (row, column) and reads both banks in one instruction.
//!
//! ## GEMV
//!
//! Each unit's 16 lanes are 16 output elements; the weight block at
//! (row, col) holds `W[out_lane][j]` for input `j = row*32 + col`. Input
//! scalars stream through the write datapath: one WR loads 8 of them into
//! SRF_M via a `FILL SRF_M ← WDATA`, then 8 AAM MACs accumulate
//! `GRF_B[col&7] += EVEN_BANK × SRF_M[col&7]`. Partial sums land in 8
//! GRF_B registers which the host reduces after reading them back
//! (memory-mapped GRF row). The SRW variant fuses the operand stream into
//! the MACs: every trigger is a WR carrying `splat(x_j)` as WDATA while
//! its column address reads the weight block — "it does not need to write
//! the vector to GRF registers first with a DRAM column WR command and
//! then execute the operation with a subsequent DRAM column RD command"
//! (Section VII-D).

use pim_core::isa::{Instruction, Operand};
use pim_core::{LaneVec, PimConfig, PimVariant};
use pim_dram::{BankAddr, Command};
use pim_fp16::F16;
use pim_host::Batch;

/// Columns per DRAM row (1 KiB row / 32 B blocks).
pub const COLS_PER_ROW: u32 = 32;
/// The AAM tolerance window: 8 consecutive column commands (3-bit index).
pub const GROUP: u32 = 8;

/// The element-wise streaming operations PIM-BLAS offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// `z = x + y` (residual connections).
    Add,
    /// `z = x * y`.
    Mul,
    /// `z = relu(x)`.
    Relu,
    /// `z = a*x + b` with scalars in SRF (inference-folded batch norm).
    Bn,
    /// `z = a*x + y` with the scalar in SRF_M — the paper's level-1 BLAS
    /// example for CV workloads ("AXPY for CV", Section III-C).
    Axpy,
}

impl StreamOp {
    /// Operands read from memory per element.
    pub fn input_operands(self) -> usize {
        match self {
            StreamOp::Add | StreamOp::Mul | StreamOp::Axpy => 2,
            StreamOp::Relu | StreamOp::Bn => 1,
        }
    }

    /// Bytes of DRAM traffic per element (inputs + the stored result) —
    /// what the HBM baseline must stream.
    pub fn bytes_per_element(self) -> u64 {
        (self.input_operands() as u64 + 1) * 2
    }
}

/// Builds the stream-op microkernel for `groups` row-groups.
///
/// Base-variant ADD program (annotated with the triggering commands):
///
/// ```text
/// 0: FILL GRF_A[aam] ← EVEN_BANK      ; 8 RDs at columns 0-7  (x)
/// 1: JUMP 0, #8
/// 2: ADD  GRF_A[aam] ← GRF_A + EVEN   ; 8 RDs at columns 8-15 (y)
/// 3: JUMP 2, #8
/// 4: MOV  EVEN_BANK ← GRF_A[aam]      ; 8 RDs at columns 16-23 (z store)
/// 5: JUMP 4, #8
/// 6: JUMP 0, #groups                  ; next row
/// 7: EXIT
/// ```
///
/// # Panics
///
/// Panics if `groups == 0`.
pub fn stream_microkernel(op: StreamOp, groups: u32, config: &PimConfig) -> Vec<Instruction> {
    assert!(groups > 0, "a kernel must process at least one group");
    let aam = true;
    let ga = Operand::grf_a(0); // index ignored under AAM
    let even = Operand::even_bank();
    let two_bank = config.variant == PimVariant::TwoBankAccess;

    let mut prog = Vec::new();
    match op {
        StreamOp::Add | StreamOp::Mul => {
            if two_bank {
                // One instruction reads both operands: x from even, y from
                // odd, at the same (row, col).
                let combine = if op == StreamOp::Add {
                    Instruction::Add { dst: ga, src0: even, src1: Operand::odd_bank(), aam }
                } else {
                    Instruction::Mul { dst: ga, src0: even, src1: Operand::odd_bank(), aam }
                };
                prog.push(combine);
                prog.push(Instruction::Jump { target: 0, count: GROUP });
                prog.push(Instruction::Mov { dst: even, src: ga, relu: false, aam });
                prog.push(Instruction::Jump { target: 2, count: GROUP });
                prog.push(Instruction::Jump { target: 0, count: groups });
            } else {
                prog.push(Instruction::Fill { dst: ga, src: even, aam });
                prog.push(Instruction::Jump { target: 0, count: GROUP });
                let combine = if op == StreamOp::Add {
                    Instruction::Add { dst: ga, src0: ga, src1: even, aam }
                } else {
                    Instruction::Mul { dst: ga, src0: ga, src1: even, aam }
                };
                prog.push(combine);
                prog.push(Instruction::Jump { target: 2, count: GROUP });
                prog.push(Instruction::Mov { dst: even, src: ga, relu: false, aam });
                prog.push(Instruction::Jump { target: 4, count: GROUP });
                prog.push(Instruction::Jump { target: 0, count: groups });
            }
        }
        StreamOp::Relu => {
            prog.push(Instruction::Mov { dst: ga, src: even, relu: true, aam });
            prog.push(Instruction::Jump { target: 0, count: GROUP });
            prog.push(Instruction::Mov { dst: even, src: ga, relu: false, aam });
            prog.push(Instruction::Jump { target: 2, count: GROUP });
            prog.push(Instruction::Jump { target: 0, count: groups });
        }
        StreamOp::Bn => {
            // MAD: x*SRF_M + SRF_A; scale/shift were loaded into the SRF
            // once, before AB-PIM mode was entered.
            prog.push(Instruction::Mad { dst: ga, src0: even, src1: Operand::srf_m(0), aam });
            prog.push(Instruction::Jump { target: 0, count: GROUP });
            prog.push(Instruction::Mov { dst: even, src: ga, relu: false, aam });
            prog.push(Instruction::Jump { target: 2, count: GROUP });
            prog.push(Instruction::Jump { target: 0, count: groups });
        }
        StreamOp::Axpy => {
            // Load y into the GRF, accumulate a*x on top (a replicated in
            // SRF_M by the executor's SRF preload), store.
            prog.push(Instruction::Fill { dst: ga, src: even, aam });
            prog.push(Instruction::Jump { target: 0, count: GROUP });
            prog.push(Instruction::Mac { dst: ga, src0: even, src1: Operand::srf_m(0), aam });
            prog.push(Instruction::Jump { target: 2, count: GROUP });
            prog.push(Instruction::Mov { dst: even, src: ga, relu: false, aam });
            prog.push(Instruction::Jump { target: 4, count: GROUP });
            prog.push(Instruction::Jump { target: 0, count: groups });
        }
    }
    prog.push(Instruction::Exit);
    for i in &prog {
        config
            .instruction_legal(i)
            .unwrap_or_else(|e| panic!("generated illegal instruction {i}: {e}"));
    }
    prog
}

/// Column layout of a stream op's row: where x / y / z blocks live.
///
/// Returns `(x_col, y_col, z_col)` bases; `y_col` is `None` for one-input
/// ops and for 2BA (where y sits in the odd bank at the x columns).
pub fn stream_columns(op: StreamOp, config: &PimConfig) -> (u32, Option<u32>, u32) {
    let two_bank = config.variant == PimVariant::TwoBankAccess;
    match (op, two_bank) {
        (StreamOp::Add | StreamOp::Mul, false) => (0, Some(GROUP), 2 * GROUP),
        (StreamOp::Add | StreamOp::Mul, true) => (0, None, GROUP),
        // AXPY's first stage reads y (the FILL), its second reads x (the
        // MAC); the layout places the first operand at columns 0-7 either
        // way. The scalar rides the SRF, so 2BA gains nothing here.
        (StreamOp::Axpy, _) => (0, Some(GROUP), 2 * GROUP),
        (StreamOp::Relu | StreamOp::Bn, _) => (0, None, GROUP),
    }
}

/// Builds the per-channel data-phase command stream for a stream op over
/// `rows` row-groups (one group of 8 blocks per row). Identical for every
/// channel — lock-step execution.
pub fn stream_batches(op: StreamOp, rows: u32, base_row: u32, config: &PimConfig) -> Vec<Batch> {
    let bank = BankAddr::new(0, 0); // BA/BG ignored in AB mode
    let (x_col, y_col, z_col) = stream_columns(op, config);
    // The 2× variant's doubled GRF lets two 8-command groups share one
    // fence (Section VII-D); we merge fence windows accordingly.
    let merge = config.fence_window() as u32 / GROUP;
    let mut batches = Vec::new();
    let mut pending: Vec<Command> = Vec::new();
    let mut pending_groups = 0u32;
    let flush = |batches: &mut Vec<Batch>, pending: &mut Vec<Command>, pending_groups: &mut u32| {
        if !pending.is_empty() {
            batches.push(Batch::commutative(std::mem::take(pending)));
            *pending_groups = 0;
        }
    };
    for r in 0..rows {
        let row = base_row + r;
        flush(&mut batches, &mut pending, &mut pending_groups);
        batches.push(Batch::setup(vec![Command::Act { bank, row }]));
        let stage = |cols_base: u32,
                     batches: &mut Vec<Batch>,
                     pending: &mut Vec<Command>,
                     pending_groups: &mut u32| {
            for c in 0..GROUP {
                pending.push(Command::Rd { bank, col: cols_base + c });
            }
            *pending_groups += 1;
            if *pending_groups >= merge {
                batches.push(Batch::commutative(std::mem::take(pending)));
                *pending_groups = 0;
            }
        };
        stage(x_col, &mut batches, &mut pending, &mut pending_groups);
        if let Some(y) = y_col {
            stage(y, &mut batches, &mut pending, &mut pending_groups);
        }
        stage(z_col, &mut batches, &mut pending, &mut pending_groups);
        flush(&mut batches, &mut pending, &mut pending_groups);
        batches.push(Batch::setup(vec![Command::Pre { bank }]));
    }
    batches
}

/// Builds the GEMV microkernel for `groups` 8-input groups.
///
/// Base variant:
///
/// ```text
/// 0: FILL SRF_M ← WDATA                ; 1 WR streaming 8 x-scalars
/// 1: MAC GRF_B[aam] ← EVEN × SRF_M[aam]; 8 RDs over the weight columns
/// 2: JUMP 1, #8
/// 3: JUMP 0, #groups
/// 4: EXIT
/// ```
///
/// SRW variant (operand rides the WR that triggers the MAC):
///
/// ```text
/// 0: MAC GRF_B[aam] ← EVEN × WDATA     ; 8·groups WRs
/// 1: JUMP 0, #(8·groups)
/// 2: EXIT
/// ```
pub fn gemv_microkernel(groups: u32, config: &PimConfig) -> Vec<Instruction> {
    assert!(groups > 0);
    let prog = if config.variant == PimVariant::SimultaneousReadWrite {
        vec![
            Instruction::Mac {
                dst: Operand::grf_b(0),
                src0: Operand::even_bank(),
                src1: Operand::wdata(),
                aam: true,
            },
            Instruction::Jump { target: 0, count: groups * GROUP },
            Instruction::Exit,
        ]
    } else {
        vec![
            Instruction::Fill { dst: Operand::srf_m(0), src: Operand::wdata(), aam: false },
            Instruction::Mac {
                dst: Operand::grf_b(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(0),
                aam: true,
            },
            Instruction::Jump { target: 1, count: GROUP },
            Instruction::Jump { target: 0, count: groups },
            Instruction::Exit,
        ]
    };
    for i in &prog {
        config
            .instruction_legal(i)
            .unwrap_or_else(|e| panic!("generated illegal instruction {i}: {e}"));
    }
    prog
}

/// Builds the GEMV data-phase command stream for one pass over `k` inputs
/// (padded to a multiple of 8), starting at `base_row`, with the x-vector
/// `x` (length ≥ k).
pub fn gemv_batches(k: usize, base_row: u32, x: &[f32], config: &PimConfig) -> Vec<Batch> {
    let bank = BankAddr::new(0, 0);
    let groups = (k as u32).div_ceil(GROUP);
    let srw = config.variant == PimVariant::SimultaneousReadWrite;
    // The 2× variant's doubled GRF doubles the out-of-order tolerance
    // window, so two 9-command groups share one fence (Section VII-D).
    let merge = (config.fence_window() as u32 / GROUP).max(1);
    let mut pending: Vec<Command> = Vec::new();
    let mut pending_groups = 0u32;
    let mut batches = Vec::new();
    let mut open_row: Option<u32> = None;
    let flush = |batches: &mut Vec<Batch>, pending: &mut Vec<Command>, pg: &mut u32| {
        if !pending.is_empty() {
            batches.push(Batch::fenced_ordered(std::mem::take(pending)));
            *pg = 0;
        }
    };
    for g in 0..groups {
        let j0 = g * GROUP;
        let row = base_row + j0 / COLS_PER_ROW;
        let col0 = j0 % COLS_PER_ROW;
        if open_row != Some(row) {
            flush(&mut batches, &mut pending, &mut pending_groups);
            if open_row.is_some() {
                batches.push(Batch::setup(vec![Command::Pre { bank }]));
            }
            batches.push(Batch::setup(vec![Command::Act { bank, row }]));
            open_row = Some(row);
        }
        if srw {
            // 8 WRs: column addresses select the weight blocks; WDATA
            // carries the input scalar broadcast to all lanes.
            let cmds: Vec<Command> = (0..GROUP)
                .map(|c| {
                    let j = (j0 + c) as usize;
                    let xv = if j < k { x.get(j).copied().unwrap_or(0.0) } else { 0.0 };
                    Command::Wr {
                        bank,
                        col: col0 + c,
                        data: LaneVec::splat(F16::from_f32(xv)).to_block(),
                    }
                })
                .collect();
            batches.push(Batch::commutative(cmds));
        } else {
            // One WR streams 8 x-scalars into SRF_M (lanes 0–7), then 8
            // MAC triggers read the weight columns. The WR and its MACs
            // share one fence window ("a barrier for every 8 DRAM
            // commands"): the WR leads the group in program order, and the
            // fence at the group boundary bounds controller reordering.
            let mut lanes = [F16::ZERO; 16];
            for (c, lane) in lanes.iter_mut().enumerate().take(GROUP as usize) {
                let j = j0 as usize + c;
                *lane = F16::from_f32(if j < k { x.get(j).copied().unwrap_or(0.0) } else { 0.0 });
            }
            pending.push(Command::Wr {
                bank,
                col: col0,
                data: LaneVec::from_lanes(lanes).to_block(),
            });
            pending.extend((0..GROUP).map(|c| Command::Rd { bank, col: col0 + c }));
            pending_groups += 1;
            if pending_groups >= merge {
                flush(&mut batches, &mut pending, &mut pending_groups);
            }
        }
    }
    flush(&mut batches, &mut pending, &mut pending_groups);
    if open_row.is_some() {
        batches.push(Batch::setup(vec![Command::Pre { bank }]));
    }
    batches
}

/// Builds the SLS (sparse-length-sum) microkernel: accumulate `lookups`
/// gathered embedding rows into `GRF_A[0]`.
///
/// The embedding-lookup layer is the paper's motivating memory-bound
/// kernel for recommendation models (Section II-A); capacity keeps RM off
/// the evaluated system (Section VII-A), but the kernel itself maps
/// cleanly onto PIM: every gathered row is one column access, and the
/// row-buffer conflicts of random indices dominate — exactly the SLS
/// behaviour the RM literature reports.
///
/// ```text
/// 0: FILL GRF_A[0] ← EVEN_BANK     ; first lookup
/// 1: ADD  GRF_A[0], GRF_A[0], EVEN_BANK
/// 2: JUMP 1, #(lookups-1)
/// 3: EXIT
/// ```
///
/// # Panics
///
/// Panics if `lookups == 0`.
pub fn sls_microkernel(lookups: u32, config: &PimConfig) -> Vec<Instruction> {
    assert!(lookups > 0, "SLS needs at least one lookup");
    let ga = Operand::grf_a(0);
    let even = Operand::even_bank();
    let mut prog = vec![Instruction::Fill { dst: ga, src: even, aam: false }];
    if lookups > 1 {
        prog.push(Instruction::Add { dst: ga, src0: ga, src1: even, aam: false });
        if lookups > 2 {
            prog.push(Instruction::Jump { target: 1, count: lookups - 1 });
        }
    }
    prog.push(Instruction::Exit);
    for i in &prog {
        config
            .instruction_legal(i)
            .unwrap_or_else(|e| panic!("generated illegal instruction {i}: {e}"));
    }
    prog
}

/// Builds the SLS gather command stream: one (ACT, RD, PRE) per embedding
/// index at `base_row + index/32`, column `index % 32`, merging row
/// management when consecutive indices share a DRAM row.
pub fn sls_batches(indices: &[u32], base_row: u32) -> Vec<Batch> {
    let bank = BankAddr::new(0, 0);
    let mut batches = Vec::new();
    let mut open: Option<u32> = None;
    for (i, &idx) in indices.iter().enumerate() {
        let row = base_row + idx / COLS_PER_ROW;
        let col = idx % COLS_PER_ROW;
        if open != Some(row) {
            if open.is_some() {
                batches.push(Batch::setup(vec![Command::Pre { bank }]));
            }
            batches.push(Batch::setup(vec![Command::Act { bank, row }]));
            open = Some(row);
        }
        // The first lookup must precede the accumulating ADDs (it seeds
        // the register); later lookups commute with each other.
        if i == 0 {
            batches.push(Batch::fenced_ordered(vec![Command::Rd { bank, col }]));
        } else {
            batches.push(Batch {
                commands: vec![Command::Rd { bank, col }],
                commutative: true,
                fence_after: false,
                label: None,
            });
        }
    }
    // The gather's final column batch carries the kernel's closing fence:
    // it drains every in-flight accumulation before the host moves on to
    // the choreography tail and the GRF readback (the race `pim-verify`'s
    // fence pass reports as PV202 when missing).
    if let Some(last) = batches.last_mut() {
        last.fence_after = true;
    }
    if open.is_some() {
        batches.push(Batch::setup(vec![Command::Pre { bank }]));
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_kernels_fit_the_crf() {
        for op in [StreamOp::Add, StreamOp::Mul, StreamOp::Relu, StreamOp::Bn, StreamOp::Axpy] {
            for variant in PimVariant::ALL {
                let cfg = PimConfig::with_variant(variant);
                let prog = stream_microkernel(op, 100, &cfg);
                assert!(prog.len() <= 32, "{op:?}/{variant:?}: {} instrs", prog.len());
                assert!(matches!(prog.last(), Some(Instruction::Exit)));
            }
        }
    }

    #[test]
    fn add_kernel_trigger_budget() {
        // Base ADD: 24 triggers per group (8 loads, 8 adds, 8 stores).
        let cfg = PimConfig::paper();
        let batches = stream_batches(StreamOp::Add, 2, 0, &cfg);
        let cols: usize =
            batches.iter().flat_map(|b| b.commands.iter()).filter(|c| c.is_column()).count();
        assert_eq!(cols, 2 * 24);
        // 3 fences per row (one per 8-command window).
        let fences = batches.iter().filter(|b| b.fence_after).count();
        assert_eq!(fences, 6);
    }

    #[test]
    fn two_bank_variant_halves_input_commands() {
        let base = stream_batches(StreamOp::Add, 1, 0, &PimConfig::paper());
        let tba = stream_batches(
            StreamOp::Add,
            1,
            0,
            &PimConfig::with_variant(PimVariant::TwoBankAccess),
        );
        let count = |bs: &[Batch]| {
            bs.iter().flat_map(|b| b.commands.iter()).filter(|c| c.is_column()).count()
        };
        assert_eq!(count(&base), 24);
        assert_eq!(count(&tba), 16, "2BA reads x and y with one command");
    }

    #[test]
    fn double_resources_variant_halves_fences() {
        let base = stream_batches(StreamOp::Add, 4, 0, &PimConfig::paper());
        let dbl = stream_batches(
            StreamOp::Add,
            4,
            0,
            &PimConfig::with_variant(PimVariant::DoubleResources),
        );
        let fences = |bs: &[Batch]| bs.iter().filter(|b| b.fence_after).count();
        assert!(fences(&dbl) < fences(&base));
    }

    #[test]
    fn gemv_base_command_budget() {
        // K inputs → K/8 groups of (1 WR + 8 RD).
        let cfg = PimConfig::paper();
        let batches = gemv_batches(64, 0, &vec![1.0; 64], &cfg);
        let wrs: usize = batches
            .iter()
            .flat_map(|b| b.commands.iter())
            .filter(|c| matches!(c, Command::Wr { .. }))
            .count();
        let rds: usize = batches
            .iter()
            .flat_map(|b| b.commands.iter())
            .filter(|c| matches!(c, Command::Rd { .. }))
            .count();
        assert_eq!(wrs, 8);
        assert_eq!(rds, 64);
    }

    #[test]
    fn gemv_srw_variant_eliminates_separate_writes() {
        let cfg = PimConfig::with_variant(PimVariant::SimultaneousReadWrite);
        let batches = gemv_batches(64, 0, &vec![1.0; 64], &cfg);
        let cols: usize =
            batches.iter().flat_map(|b| b.commands.iter()).filter(|c| c.is_column()).count();
        assert_eq!(cols, 64, "SRW: one WR per input, no separate SRF loads");
    }

    #[test]
    fn gemv_crosses_rows_with_act_pre() {
        let cfg = PimConfig::paper();
        // 64 inputs = 2 rows of 32 columns.
        let batches = gemv_batches(64, 10, &vec![0.5; 64], &cfg);
        let acts: Vec<u32> = batches
            .iter()
            .flat_map(|b| b.commands.iter())
            .filter_map(|c| match c {
                Command::Act { row, .. } => Some(*row),
                _ => None,
            })
            .collect();
        assert_eq!(acts, vec![10, 11]);
    }

    #[test]
    fn microkernel_validates_on_its_variant() {
        // The 2BA ADD instruction is illegal on the base config...
        let tba_prog = stream_microkernel(
            StreamOp::Add,
            1,
            &PimConfig::with_variant(PimVariant::TwoBankAccess),
        );
        let base = PimConfig::paper();
        let both_banks = tba_prog.iter().find(|i| i.validate().is_err()).unwrap();
        assert!(base.instruction_legal(both_banks).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_group_kernel_rejected() {
        stream_microkernel(StreamOp::Add, 0, &PimConfig::paper());
    }
}
