//! PIM-friendly data layout (Section V-A preprocessor, Fig. 15).
//!
//! "The PIM preprocessor [...] maps associated operand data to memory
//! space in a PIM-friendly way." For lock-step all-bank execution every
//! unit must find its operand at the *same* (row, column) of its own bank,
//! so a vector is distributed round-robin across (channel, unit) at
//! 16-element (32-byte block) granularity. [`BlockMap`] is the single
//! source of that placement arithmetic, shared by the kernel builders and
//! the loaders.

use pim_core::LaneVec;
use pim_dram::BankAddr;
use pim_fp16::F16;
use pim_host::PimSystem;

/// Elements per 32-byte block (16 FP16 lanes).
pub const BLOCK_ELEMS: usize = 16;

/// Round-robin placement of 16-element blocks across (channel, unit).
///
/// Block `b` lands on channel `b % channels`, unit `(b / channels) %
/// units`, at slot `b / (channels × units)`. Slots are then mapped to
/// (row, column) by each kernel's own row structure (e.g. ADD interleaves
/// x/y/z columns within a row, Fig. 15(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMap {
    /// Channels used.
    pub channels: usize,
    /// Units used per channel.
    pub units: usize,
}

impl BlockMap {
    /// A map over the whole system.
    pub fn full(sys: &PimSystem) -> BlockMap {
        BlockMap { channels: sys.channel_count(), units: sys.pim_config().units_per_pch }
    }

    /// Number of 16-element blocks needed for `len` elements.
    pub fn blocks_for(len: usize) -> usize {
        len.div_ceil(BLOCK_ELEMS)
    }

    /// Placement of block `b`: `(channel, unit, slot)`.
    pub fn locate(&self, b: usize) -> (usize, usize, usize) {
        let ch = b % self.channels;
        let unit = (b / self.channels) % self.units;
        let slot = b / (self.channels * self.units);
        (ch, unit, slot)
    }

    /// Number of slots needed in every unit to hold `nblocks` blocks.
    pub fn slots_for(&self, nblocks: usize) -> usize {
        nblocks.div_ceil(self.channels * self.units)
    }

    /// Lanes of compute available per lock-step column command across the
    /// mapped units.
    pub fn lanes_per_command(&self) -> usize {
        self.channels * self.units * BLOCK_ELEMS
    }
}

/// Converts `len` f32 elements into 16-lane blocks, zero-padding the tail
/// ("we can concatenate dummy values to the end of the vectors",
/// Section VIII).
pub fn f32_to_blocks(data: &[f32]) -> Vec<LaneVec> {
    data.chunks(BLOCK_ELEMS)
        .map(|chunk| {
            let mut lanes = [F16::ZERO; BLOCK_ELEMS];
            for (l, &v) in lanes.iter_mut().zip(chunk.iter()) {
                *l = F16::from_f32(v);
            }
            LaneVec::from_lanes(lanes)
        })
        .collect()
}

/// DMA-loads one block into the **even** bank of (`ch`, `unit`) at
/// (`row`, `col`).
///
/// The paper's weights/operands arrive in PIM memory through normal host
/// writes before the kernel is timed (the "PIM BLAS APIs automatically
/// rearrange data layout when the host processor brings weight matrix
/// values to memory"); the backdoor poke models that pre-kernel placement
/// without charging it to kernel time.
pub fn store_block(sys: &mut PimSystem, ch: usize, unit: usize, row: u32, col: u32, v: &LaneVec) {
    let bank = BankAddr::from_flat_index(2 * unit);
    sys.channel_mut(ch).sink_mut().dram_mut().bank_mut(bank).poke_block(row, col, &v.to_block());
}

/// DMA-loads one block into the **odd** bank (used by the 2BA variant's
/// second-operand placement).
pub fn store_block_odd(
    sys: &mut PimSystem,
    ch: usize,
    unit: usize,
    row: u32,
    col: u32,
    v: &LaneVec,
) {
    let bank = BankAddr::from_flat_index(2 * unit + 1);
    sys.channel_mut(ch).sink_mut().dram_mut().bank_mut(bank).poke_block(row, col, &v.to_block());
}

/// Reads one block back from the even bank of (`ch`, `unit`).
pub fn load_block(sys: &PimSystem, ch: usize, unit: usize, row: u32, col: u32) -> LaneVec {
    let bank = BankAddr::from_flat_index(2 * unit);
    LaneVec::from_block(&sys.channel(ch).sink().dram().bank(bank).peek_block(row, col))
}

/// Gathers a distributed vector of `len` elements back to f32, given the
/// map and a function that yields each block's (row, col).
pub fn gather_vector(
    sys: &PimSystem,
    map: &BlockMap,
    len: usize,
    mut pos: impl FnMut(usize) -> (u32, u32),
) -> Vec<f32> {
    let mut out = Vec::with_capacity(len);
    let nblocks = BlockMap::blocks_for(len);
    for b in 0..nblocks {
        let (ch, unit, _) = map.locate(b);
        let (row, col) = pos(b);
        let v = load_block(sys, ch, unit, row, col);
        for lane in 0..BLOCK_ELEMS {
            if out.len() < len {
                out.push(v[lane].to_f32());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::PimConfig;
    use pim_host::HostConfig;

    #[test]
    fn block_math() {
        assert_eq!(BlockMap::blocks_for(16), 1);
        assert_eq!(BlockMap::blocks_for(17), 2);
        let m = BlockMap { channels: 4, units: 2 };
        assert_eq!(m.locate(0), (0, 0, 0));
        assert_eq!(m.locate(3), (3, 0, 0));
        assert_eq!(m.locate(4), (0, 1, 0));
        assert_eq!(m.locate(8), (0, 0, 1));
        assert_eq!(m.slots_for(9), 2);
        assert_eq!(m.lanes_per_command(), 128);
    }

    #[test]
    fn f32_blocks_pad_with_zeros() {
        let blocks = f32_to_blocks(&[1.0, 2.0, 3.0]);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0][2].to_f32(), 3.0);
        assert_eq!(blocks[0][3].to_f32(), 0.0);
    }

    #[test]
    fn store_load_roundtrip() {
        let mut sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
        let v = LaneVec::from_f32([9.0; 16]);
        store_block(&mut sys, 3, 5, 100, 7, &v);
        assert_eq!(load_block(&sys, 3, 5, 100, 7), v);
    }

    #[test]
    fn gather_reassembles_in_order() {
        let mut sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
        let map = BlockMap { channels: 2, units: 2 };
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let blocks = f32_to_blocks(&data);
        for (b, blk) in blocks.iter().enumerate() {
            let (ch, unit, slot) = map.locate(b);
            store_block(&mut sys, ch, unit, slot as u32, 0, blk);
        }
        let back = gather_vector(&sys, &map, 64, |b| {
            let (_, _, slot) = map.locate(b);
            (slot as u32, 0)
        });
        assert_eq!(back, data);
    }
}
