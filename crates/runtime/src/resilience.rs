//! Runtime resilience: surviving the faults `pim-faults` injects.
//!
//! The paper's Section VIII argues PIM can adopt commodity RAS mechanisms
//! because "each PIM execution unit reads and writes data at the same data
//! access granularity as a host processor". This module is the software
//! half of that argument: a recovery ladder over the fault classes the
//! injector models, each rung counted in `pim-obs` metrics.
//!
//! # The recovery ladder
//!
//! 1. **Correct** — operands are stored with a SECDED shadow (the check
//!    bytes of [`pim_dram::ecc::encode_block`], the on-die-ECC engine at
//!    host access granularity). A scrub pass over the operand path before
//!    every launch corrects single-bit damage in place
//!    ([`names::RES_ECC_CORRECTED`]) and re-stores blocks with
//!    uncorrectable damage from the host's golden copy
//!    ([`names::RES_ECC_DETECTED`], [`names::RES_BLOCKS_RESTORED`]).
//! 2. **Retry** — a launch whose verified output is wrong (dropped or
//!    corrupted commands, mode-machine glitches) is retried with bounded
//!    exponential backoff after a fresh scrub ([`names::RES_RETRIES`]).
//!    Transient faults roll new outcomes on every attempt.
//! 3. **Quarantine** — channels that stay wrong across the retry budget
//!    (hard failures, stuck-at cell pairs) are quarantined and the
//!    resident operands re-laid-out lock-step over the surviving channels
//!    ([`names::RES_QUARANTINED`]).
//! 4. **Host fallback** — work that cannot be recovered on PIM (quarantine
//!    budget exhausted, or no healthy channel left) is computed host-side
//!    through the uncacheable-region bypass path and the LLC
//!    ([`names::RES_HOST_FALLBACK_BLOCKS`]).
//!
//! Every decision is deterministic: fault outcomes are pure hashes of
//! per-channel state (see `pim-faults`), so a seeded run produces an
//! identical [`ResilienceReport`] under the sequential and threaded
//! execution backends.

use crate::blas::{KernelReport, PimError};
use crate::context::PimContext;
use crate::executor::Executor;
use crate::kernels::{stream_batches, stream_columns, stream_microkernel, StreamOp, GROUP};
use crate::layout::{self, BLOCK_ELEMS};
use crate::preprocessor::Preprocessor;
use pim_core::{LaneVec, PimVariant};
use pim_dram::ecc::{self, EccWord};
use pim_dram::BankAddr;
use pim_fp16::F16;
use pim_host::{Batch, BypassPolicy, KernelEngine, Llc};
use pim_obs::{names, Event, Scope};

/// Knobs of the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Launch retries per layout before suspect channels are quarantined.
    pub max_retries: u32,
    /// Channels that may be quarantined before giving up on PIM and
    /// falling back to the host for the remaining work.
    pub max_quarantine: usize,
    /// Base backoff between retries, in bus cycles (doubles per retry,
    /// capped at 8 doublings).
    pub backoff_cycles: u64,
    /// Whether unrecovered blocks are computed host-side. With this off,
    /// unrecovered elements stay wrong and are counted in
    /// [`ResilienceReport::wrong_answers`].
    pub host_fallback: bool,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_retries: 2,
            max_quarantine: usize::MAX,
            backoff_cycles: 256,
            host_fallback: true,
        }
    }
}

/// What the recovery ladder did for one call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceReport {
    /// Scrub passes over the resident operand blocks.
    pub scrubs: u64,
    /// Single-bit errors corrected in place by the scrub path.
    pub ecc_corrected: u64,
    /// Uncorrectable (multi-bit) errors the scrub path detected.
    pub ecc_detected: u64,
    /// Blocks re-stored from the host-side golden copy.
    pub blocks_restored: u64,
    /// Kernel launches performed (1 on a clean run).
    pub launches: u64,
    /// Launches retried after a detected wrong result.
    pub retries: u64,
    /// Channels quarantined, in quarantine order.
    pub quarantined: Vec<usize>,
    /// Result blocks computed host-side after PIM recovery failed.
    pub host_fallback_blocks: u64,
    /// Elements still wrong in the returned vector (only possible with
    /// [`ResilienceConfig::host_fallback`] disabled).
    pub wrong_answers: u64,
    /// Why the ladder left the PIM path, when it did. `None` on a call
    /// that completed (or finished with wrong answers still pending
    /// retries) on PIM.
    pub fallback: Option<FallbackReason>,
    /// Aggregate cycle/command accounting across all launches.
    pub kernel: KernelReport,
}

/// Why the recovery ladder stopped trying PIM and went to the host path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Every channel ended up quarantined — there is no healthy channel
    /// left to re-layout onto.
    AllChannelsQuarantined,
    /// More channels failed than [`ResilienceConfig::max_quarantine`]
    /// allows removing from the layout.
    QuarantineBudgetExceeded,
}

impl ResilienceReport {
    /// Publishes the counters to the context's recorder, if profiling is
    /// enabled.
    fn publish(&self, ctx: &PimContext) {
        let Some(r) = &ctx.recorder else { return };
        r.add(names::RES_SCRUBS, self.scrubs);
        r.add(names::RES_ECC_CORRECTED, self.ecc_corrected);
        r.add(names::RES_ECC_DETECTED, self.ecc_detected);
        r.add(names::RES_BLOCKS_RESTORED, self.blocks_restored);
        r.add(names::RES_RETRIES, self.retries);
        r.add(names::RES_QUARANTINED, self.quarantined.len() as u64);
        r.add(names::RES_HOST_FALLBACK_BLOCKS, self.host_fallback_blocks);
    }
}

/// Round-robin placement over an explicit healthy-channel list: block `b`
/// lands on channel `healthy[b % h]`, unit `(b / h) % units`, slot
/// `b / (h × units)` — the same shape as [`crate::layout::BlockMap`], but
/// re-targetable after a quarantine.
struct Placement<'a> {
    healthy: &'a [usize],
    units: usize,
}

impl Placement<'_> {
    fn locate(&self, b: usize) -> (usize, usize, usize) {
        let h = self.healthy.len();
        (self.healthy[b % h], (b / h) % self.units, b / (h * self.units))
    }

    fn slot_pos(&self, b: usize, base_row: u32) -> (u32, u32) {
        let (_, _, slot) = self.locate(b);
        (base_row + slot as u32 / GROUP, slot as u32 % GROUP)
    }
}

/// Reads one block from the odd bank of (`ch`, `unit`) — the 2BA
/// variant's second-operand home.
fn load_block_odd(ctx: &PimContext, ch: usize, unit: usize, row: u32, col: u32) -> LaneVec {
    let bank = BankAddr::from_flat_index(2 * unit + 1);
    LaneVec::from_block(&ctx.sys.channel(ch).sink().dram().bank(bank).peek_block(row, col))
}

/// Scrubs one resident operand block: reads it back, decodes it against
/// the golden SECDED check bytes, repairs correctable damage in place, and
/// re-stores the golden copy when the damage is uncorrectable.
#[allow(clippy::too_many_arguments)]
fn scrub_block(
    ctx: &mut PimContext,
    ch: usize,
    unit: usize,
    row: u32,
    col: u32,
    odd_bank: bool,
    golden: &LaneVec,
    check: &[u8; 4],
    rep: &mut ResilienceReport,
) {
    let raw = if odd_bank {
        load_block_odd(ctx, ch, unit, row, col)
    } else {
        layout::load_block(&ctx.sys, ch, unit, row, col)
    }
    .to_block();
    let words: [EccWord; 4] = std::array::from_fn(|i| {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&raw[i * 8..i * 8 + 8]);
        EccWord { data: u64::from_le_bytes(bytes), check: check[i] }
    });
    let store = |ctx: &mut PimContext, v: &LaneVec| {
        if odd_bank {
            layout::store_block_odd(&mut ctx.sys, ch, unit, row, col, v);
        } else {
            layout::store_block(&mut ctx.sys, ch, unit, row, col, v);
        }
    };
    match ecc::decode_block(&words) {
        Some((_, false)) => {}
        Some((fixed, true)) => {
            rep.ecc_corrected += 1;
            store(ctx, &LaneVec::from_block(&fixed));
        }
        None => {
            rep.ecc_detected += 1;
            rep.blocks_restored += 1;
            store(ctx, golden);
        }
    }
}

/// Runs the kernel choreography on exactly the `healthy` channels;
/// quarantined channels receive an empty batch list and sit the launch
/// out.
fn launch(
    ctx: &mut PimContext,
    healthy: &[usize],
    program: &[pim_core::isa::Instruction],
    data_batches: &[Batch],
) -> Result<pim_host::KernelResult, PimError> {
    if ctx.strict {
        Preprocessor::verify_kernel(ctx.sys.pim_config(), program)
            .map_err(|report| PimError::InvalidKernel { report })?;
    }
    let full = Executor::full_kernel(program, None, false, data_batches);
    let per_channel: Vec<Vec<Batch>> = (0..ctx.sys.channel_count())
        .map(|ch| if healthy.contains(&ch) { full.clone() } else { Vec::new() })
        .collect();
    Ok(KernelEngine::run_system(&mut ctx.sys, &per_channel, ctx.mode))
}

/// `z = x + y` with the full recovery ladder (see module docs). Returns
/// the result vector and the [`ResilienceReport`] describing every
/// recovery action taken; with no fault plan installed the report shows
/// one launch and zero recovery events.
///
/// # Errors
///
/// The usual PIM-BLAS validation errors ([`PimError::SizeMismatch`],
/// [`PimError::Empty`], [`PimError::OutOfMemory`]), plus
/// [`PimError::InvalidKernel`] in strict mode.
pub fn resilient_add(
    ctx: &mut PimContext,
    x: &[f32],
    y: &[f32],
    cfg: &ResilienceConfig,
) -> Result<(Vec<f32>, ResilienceReport), PimError> {
    if x.is_empty() {
        return Err(PimError::Empty);
    }
    if y.len() != x.len() {
        return Err(PimError::SizeMismatch {
            detail: format!("x has {} elements, y has {}", x.len(), y.len()),
        });
    }
    let n = x.len();
    let pim_cfg = ctx.sys.pim_config().clone();
    let units = pim_cfg.units_per_pch;
    let two_bank = pim_cfg.variant == PimVariant::TwoBankAccess;
    let (x_col, y_col, z_col) = stream_columns(StreamOp::Add, &pim_cfg);
    // On the 1-bank variant ADD must have a second-operand column; a miss
    // is a kernel-table bug, surfaced as a typed error rather than a panic.
    let y_plain_col = match (two_bank, y_col) {
        (true, _) => None,
        (false, Some(c)) => Some(c),
        (false, None) => {
            return Err(PimError::Internal {
                detail: "stream ADD has no second-operand column".into(),
            })
        }
    };

    let xb = layout::f32_to_blocks(x);
    let yb = layout::f32_to_blocks(y);
    let nblocks = xb.len();
    // The golden SECDED shadow: check bytes over the intended operand
    // data, held host-side (modelling the on-die ECC engine's parity).
    let shadow = |blocks: &[LaneVec]| -> Vec<[u8; 4]> {
        blocks.iter().map(|v| ecc::encode_block(&v.to_block()).map(|w| w.check)).collect()
    };
    let x_check = shadow(&xb);
    let y_check = shadow(&yb);
    // The verification oracle: device ADD is exact FP16, so the host's
    // FP16 sum is bit-identical on a fault-free run. It stands in for the
    // application-level integrity check a production runtime would use.
    let expected: Vec<f32> =
        x.iter().zip(y).map(|(&a, &b)| (F16::from_f32(a) + F16::from_f32(b)).to_f32()).collect();

    let mut rep = ResilienceReport::default();
    let mut healthy: Vec<usize> = (0..ctx.sys.channel_count()).collect();
    let mut out = vec![0.0f32; n];
    let mut bad_blocks: Vec<usize> = (0..nblocks).collect();

    'ladder: while !healthy.is_empty() && rep.quarantined.len() <= cfg.max_quarantine {
        let place = Placement { healthy: &healthy, units };
        let slots = nblocks.div_ceil(healthy.len() * units).max(1);
        let rows = (slots as u32).div_ceil(GROUP);
        let base_row = ctx
            .mm
            .alloc_rows_lockstep(rows)
            .map_err(|e| PimError::OutOfMemory { detail: e.to_string() })?;

        // Lock-step (re-)layout of both operands over the healthy set.
        for b in 0..nblocks {
            let (ch, u, _) = place.locate(b);
            let (row, coff) = place.slot_pos(b, base_row);
            layout::store_block(&mut ctx.sys, ch, u, row, x_col + coff, &xb[b]);
            match y_plain_col {
                None => layout::store_block_odd(&mut ctx.sys, ch, u, row, x_col + coff, &yb[b]),
                Some(yc) => layout::store_block(&mut ctx.sys, ch, u, row, yc + coff, &yb[b]),
            }
        }

        let program = stream_microkernel(StreamOp::Add, rows, &pim_cfg);
        let batches = stream_batches(StreamOp::Add, rows, base_row, &pim_cfg);

        let mut attempt = 0u32;
        loop {
            // Scrub-on-read over the operand path before every launch.
            rep.scrubs += 1;
            for b in 0..nblocks {
                let (ch, u, _) = place.locate(b);
                let (row, coff) = place.slot_pos(b, base_row);
                scrub_block(ctx, ch, u, row, x_col + coff, false, &xb[b], &x_check[b], &mut rep);
                let (yc, odd) = match y_plain_col {
                    None => (x_col + coff, true),
                    Some(c) => (c + coff, false),
                };
                scrub_block(ctx, ch, u, row, yc, odd, &yb[b], &y_check[b], &mut rep);
            }

            let start = ctx.sys.max_now();
            let r = launch(ctx, &healthy, &program, &batches)?;
            rep.launches += 1;
            let cycles = r.end_cycle.saturating_sub(start);
            rep.kernel.absorb(&KernelReport {
                cycles,
                seconds: ctx.sys.cycles_to_seconds(cycles),
                commands: r.commands,
                fences: r.fences,
                pim_triggers: 0,
                elements: n,
            });

            // Gather and verify.
            bad_blocks.clear();
            for b in 0..nblocks {
                let (ch, u, _) = place.locate(b);
                let (row, coff) = place.slot_pos(b, base_row);
                let v = layout::load_block(&ctx.sys, ch, u, row, z_col + coff);
                let mut block_ok = true;
                for l in 0..BLOCK_ELEMS {
                    let i = b * BLOCK_ELEMS + l;
                    if i >= n {
                        break;
                    }
                    let got = v[l].to_f32();
                    out[i] = got;
                    if got.to_bits() != expected[i].to_bits() {
                        block_ok = false;
                    }
                }
                if !block_ok {
                    bad_blocks.push(b);
                }
            }
            ctx.sys.barrier();
            if bad_blocks.is_empty() {
                rep.publish(ctx);
                return Ok((out, rep));
            }

            if attempt < cfg.max_retries {
                attempt += 1;
                rep.retries += 1;
                if let Some(r) = &ctx.recorder {
                    r.emit(
                        Event::instant(
                            ctx.sys.max_now(),
                            names::RES_RETRY_EVENT,
                            names::CAT_REQUEST,
                            Scope::GLOBAL,
                        )
                        .with_arg("attempt", attempt as u64),
                    );
                }
                // Bounded exponential backoff before the retry: the host
                // idles, every channel's clock advances.
                let pause = cfg.backoff_cycles << (attempt - 1).min(8);
                let now = ctx.sys.barrier();
                for i in 0..ctx.sys.channel_count() {
                    ctx.sys.channel_mut(i).advance_to(now + pause);
                }
                continue;
            }

            // Retry budget exhausted: quarantine every channel that still
            // produced a wrong block, then re-layout over the survivors.
            let mut suspects: Vec<usize> = bad_blocks.iter().map(|&b| place.locate(b).0).collect();
            suspects.sort_unstable();
            suspects.dedup();
            healthy.retain(|ch| !suspects.contains(ch));
            if let Some(r) = &ctx.recorder {
                let now = ctx.sys.max_now();
                for &ch in &suspects {
                    r.emit(
                        Event::instant(
                            now,
                            names::RES_QUARANTINE_EVENT,
                            names::CAT_REQUEST,
                            Scope::GLOBAL,
                        )
                        .with_arg("channel", ch as u64),
                    );
                }
            }
            rep.quarantined.extend(suspects);
            continue 'ladder;
        }
    }

    // PIM recovery exhausted: record why the ladder gave up (the typed
    // reason callers branch on), then host fallback for the still-wrong
    // blocks. Operands live in the driver's uncacheable PIM region, so the
    // host reads them through the bypass path (straight to DRAM); results
    // land in normal cacheable memory through the LLC.
    rep.fallback = Some(if healthy.is_empty() {
        FallbackReason::AllChannelsQuarantined
    } else {
        FallbackReason::QuarantineBudgetExceeded
    });
    if let Some(r) = &ctx.recorder {
        r.emit(
            Event::instant(
                ctx.sys.max_now(),
                names::RES_FALLBACK_EVENT,
                names::CAT_REQUEST,
                Scope::GLOBAL,
            )
            .with_arg("blocks", bad_blocks.len() as u64),
        );
    }
    if cfg.host_fallback {
        let region_bytes = (nblocks as u64) * 2 * 32;
        let policy = BypassPolicy::new(1 << 40, region_bytes)
            .map_err(|e| PimError::OutOfMemory { detail: e.to_string() })?;
        let mut llc = Llc::new(1 << 20, 64, 16);
        for &b in &bad_blocks {
            for operand in 0..2u64 {
                let addr = (1u64 << 40) + (operand * nblocks as u64 + b as u64) * 32;
                if !policy.bypasses(addr) {
                    llc.access(addr);
                }
            }
            llc.access((b as u64) * 32); // cacheable result write
            for l in 0..BLOCK_ELEMS {
                let i = b * BLOCK_ELEMS + l;
                if i < n {
                    out[i] = expected[i];
                }
            }
            rep.host_fallback_blocks += 1;
        }
    } else {
        rep.wrong_answers = bad_blocks
            .iter()
            .map(|&b| {
                (0..BLOCK_ELEMS)
                    .filter(|l| {
                        let i = b * BLOCK_ELEMS + l;
                        i < n && out[i].to_bits() != expected[i].to_bits()
                    })
                    .count() as u64
            })
            .sum();
    }
    rep.publish(ctx);
    Ok((out, rep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_faults::FaultPlan;

    fn vectors(n: usize) -> (Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..n).map(|i| (i % 23) as f32 * 0.25).collect();
        let y: Vec<f32> = (0..n).map(|i| (i % 17) as f32 * 0.5).collect();
        (x, y)
    }

    #[test]
    fn fault_free_run_is_one_clean_launch() {
        let mut ctx = PimContext::small_system();
        let (x, y) = vectors(500);
        let (z, rep) = resilient_add(&mut ctx, &x, &y, &ResilienceConfig::default()).unwrap();
        for i in 0..500 {
            assert_eq!(z[i], x[i] + y[i], "element {i}");
        }
        assert_eq!(rep.launches, 1);
        assert_eq!(rep.retries, 0);
        assert_eq!(rep.ecc_corrected + rep.ecc_detected, 0);
        assert!(rep.quarantined.is_empty());
        assert_eq!(rep.host_fallback_blocks, 0);
        assert_eq!(rep.wrong_answers, 0);
        assert_eq!(rep.fallback, None);
    }

    #[test]
    fn transient_write_flips_are_scrubbed_out() {
        let mut ctx = PimContext::small_system();
        let mut plan = FaultPlan::quiet(77);
        plan.cell_flip_rate = 0.02;
        ctx.inject_faults(&plan);
        let (x, y) = vectors(2048);
        let (z, rep) = resilient_add(&mut ctx, &x, &y, &ResilienceConfig::default()).unwrap();
        let wrong = (0..2048).filter(|&i| z[i] != x[i] + y[i]).count();
        assert_eq!(wrong, 0);
        assert!(rep.ecc_corrected > 0, "expected scrub corrections: {rep:?}");
        assert_eq!(rep.wrong_answers, 0);
    }

    #[test]
    fn stuck_pairs_are_detected_and_survived() {
        let mut ctx = PimContext::small_system();
        let mut plan = FaultPlan::quiet(5);
        plan.stuck_pair_rate = 0.01;
        ctx.inject_faults(&plan);
        let (x, y) = vectors(4096);
        let (z, rep) = resilient_add(&mut ctx, &x, &y, &ResilienceConfig::default()).unwrap();
        let wrong = (0..4096).filter(|&i| z[i] != x[i] + y[i]).count();
        assert_eq!(wrong, 0, "{rep:?}");
        assert!(rep.ecc_detected > 0, "expected uncorrectable detections: {rep:?}");
        assert!(rep.blocks_restored > 0);
    }

    #[test]
    fn hard_failed_channels_are_quarantined() {
        // Find a seed where some but not all of the 16 channels fail.
        let mut plan = FaultPlan::quiet(0);
        plan.chan_fail_rate = 0.2;
        for seed in 0..1000 {
            plan.seed = seed;
            let failed = (0..16).filter(|&c| plan.channel_failed(c)).count();
            if failed > 0 && failed < 8 {
                break;
            }
        }
        let expected_failed: Vec<usize> = (0..16).filter(|&c| plan.channel_failed(c)).collect();
        assert!(!expected_failed.is_empty());

        let mut ctx = PimContext::small_system();
        ctx.inject_faults(&plan);
        let (x, y) = vectors(1024);
        let (z, rep) = resilient_add(&mut ctx, &x, &y, &ResilienceConfig::default()).unwrap();
        let wrong = (0..1024).filter(|&i| z[i] != x[i] + y[i]).count();
        assert_eq!(wrong, 0, "{rep:?}");
        assert_eq!(rep.quarantined, expected_failed);
        assert!(rep.retries > 0, "quarantine only happens after retries: {rep:?}");
    }

    #[test]
    fn all_channels_failed_falls_back_to_host() {
        let mut ctx = PimContext::small_system();
        let mut plan = FaultPlan::quiet(3);
        plan.chan_fail_rate = 1.0;
        ctx.inject_faults(&plan);
        let (x, y) = vectors(256);
        let (z, rep) = resilient_add(&mut ctx, &x, &y, &ResilienceConfig::default()).unwrap();
        let wrong = (0..256).filter(|&i| z[i] != x[i] + y[i]).count();
        assert_eq!(wrong, 0);
        assert_eq!(rep.host_fallback_blocks, 16, "256 elements = 16 blocks");
        assert_eq!(rep.quarantined.len(), 16);
        assert_eq!(rep.fallback, Some(FallbackReason::AllChannelsQuarantined));
    }

    #[test]
    fn quarantine_budget_exhaustion_is_a_distinct_reason() {
        // Some (not all) channels hard-fail, but the budget allows removing
        // none of them: the ladder must give up with the budget reason, not
        // the all-quarantined one, and still return correct data host-side.
        let mut plan = FaultPlan::quiet(0);
        plan.chan_fail_rate = 0.2;
        for seed in 0..1000 {
            plan.seed = seed;
            let failed = (0..16).filter(|&c| plan.channel_failed(c)).count();
            if failed > 0 && failed < 8 {
                break;
            }
        }
        let mut ctx = PimContext::small_system();
        ctx.inject_faults(&plan);
        let (x, y) = vectors(512);
        let cfg = ResilienceConfig { max_quarantine: 0, ..ResilienceConfig::default() };
        let (z, rep) = resilient_add(&mut ctx, &x, &y, &cfg).unwrap();
        let wrong = (0..512).filter(|&i| z[i] != x[i] + y[i]).count();
        assert_eq!(wrong, 0, "{rep:?}");
        assert_eq!(rep.fallback, Some(FallbackReason::QuarantineBudgetExceeded));
        assert!(!rep.quarantined.is_empty() || rep.host_fallback_blocks > 0, "{rep:?}");
    }

    #[test]
    fn disabled_fallback_reports_wrong_answers() {
        let mut ctx = PimContext::small_system();
        let mut plan = FaultPlan::quiet(3);
        plan.chan_fail_rate = 1.0;
        ctx.inject_faults(&plan);
        let (x, y) = vectors(256);
        let cfg = ResilienceConfig { host_fallback: false, ..ResilienceConfig::default() };
        let (_, rep) = resilient_add(&mut ctx, &x, &y, &cfg).unwrap();
        assert!(rep.wrong_answers > 0);
        assert_eq!(rep.host_fallback_blocks, 0);
    }

    #[test]
    fn input_validation_still_applies() {
        let mut ctx = PimContext::small_system();
        let cfg = ResilienceConfig::default();
        assert!(matches!(resilient_add(&mut ctx, &[], &[], &cfg), Err(PimError::Empty)));
        assert!(matches!(
            resilient_add(&mut ctx, &[1.0], &[1.0, 2.0], &cfg),
            Err(PimError::SizeMismatch { .. })
        ));
    }
}
