//! Deterministic multi-tenant serving over the PIM stack: admission
//! control, deadlines, a sim-cycle watchdog, and per-channel-group circuit
//! breakers.
//!
//! The paper's software stack (§VI) assumes a single well-behaved caller;
//! §VIII notes that PIM-HBM "can support virtualization and multi-tenancy"
//! because the host controls each channel independently. This module is
//! the overload-and-failure story a production deployment of that claim
//! needs, layered over [`PimContext`]/`KernelEngine`:
//!
//! 1. **Admission control** — bounded per-tenant FIFO queues with explicit
//!    backpressure: a request that does not fit is shed with a typed
//!    [`RejectReason`] (`QueueFull` when the tenant's queue is at
//!    capacity, `Overloaded` when the estimated backlog exceeds the
//!    configured cycle budget). Nothing in the serving path panics.
//! 2. **Deadlines** — every request carries an absolute sim-cycle
//!    deadline. Expired requests are dropped from the queues, and work
//!    that finishes late is reported as [`Disposition::DeadlineMissed`].
//! 3. **Watchdog** — each kernel launch runs under a cycle limit through
//!    the engine's cooperative cancellation point
//!    (`KernelEngine::run_system_bounded`): a launch that exceeds its
//!    budget stops issuing data batches, the teardown choreography still
//!    runs, and the implicated channel groups are charged with a failure.
//! 4. **Circuit breakers** — one breaker per channel group counts
//!    consecutive failures (wrong results or watchdog timeouts). A tripped
//!    breaker opens the group, re-routing work to the survivors (the same
//!    lock-step re-layout the resilience ladder uses); after a cycle-based
//!    cooldown it half-opens and one probe launch decides whether it
//!    closes again.
//! 5. **Graceful degradation** — per request, chosen by deadline slack:
//!    PIM over the available groups, re-layout over surviving groups after
//!    a failure, host BLAS when no group is available or the slack no
//!    longer covers the PIM estimate.
//!
//! # Determinism
//!
//! Every decision — admission, dispatch order, watchdog firing, breaker
//! transitions, degradation — is a function of the simulated clock, the
//! request trace, and seeded tie-break hashes. No wall-clock time, no
//! ambient randomness. Combined with the backend-invariance contract of
//! `pim_host::parallel`, a seeded trace produces a byte-identical
//! [`ServeReport`] under `Sequential` and `Threads(n)` execution backends.
//!
//! Every action is counted under the `srv.*` names of [`pim_obs::names`]
//! when profiling is enabled, and mirrored in [`ServeStats`] regardless.
//!
//! # Request-scoped tracing
//!
//! When profiling is enabled, every request is minted a deterministic
//! [`TraceCtx`] at admission (splitmix64 over the server seed and the
//! submission id — never a wall clock) and its lifecycle is emitted as
//! `request`-category instants: `req.admit`, `req.dispatch`, one
//! `req.launch` per PIM attempt, and `req.done` carrying the disposition
//! code ([`Disposition::code`]). While a request executes, its context is
//! installed as the recorder's *ambient trace*, so every event the
//! engine, controller, and device emit on the request's behalf — down to
//! per-bank command instants — is stamped with the owning trace id and
//! tenant, under every execution backend identically. The trace id is
//! also echoed on [`RequestOutcome::trace`] for joining reports to event
//! streams, and per-tenant SLO histograms (queue wait, service time,
//! deadline slack) accumulate in [`ServeReport::slo`].

use crate::blas::PimError;
use crate::context::PimContext;
use crate::executor::Executor;
use crate::kernels::{stream_batches, stream_columns, stream_microkernel, StreamOp, GROUP};
use crate::layout::{self, BLOCK_ELEMS};
use crate::preprocessor::Preprocessor;
use pim_core::PimVariant;
use pim_dram::Cycle;
use pim_fp16::F16;
use pim_host::{Batch, KernelEngine, KernelResult};
use pim_obs::{names, Event, Histogram, Scope, TraceCtx, TraceId};
use std::collections::{BTreeMap, VecDeque};

/// SplitMix64 finalizer for seeded tie-breaks (the shared mixing core,
/// re-exported from pim-obs so trace ids and tie-breaks agree; decisions
/// must not depend on ambient state).
fn mix(z: u64) -> u64 {
    pim_obs::trace::mix(z)
}

/// Knobs of the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded per-tenant queue depth; arrivals beyond it are shed with
    /// [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Admission budget: when the estimated backlog (queued work plus the
    /// new request, in cycles) exceeds this, the arrival is shed with
    /// [`RejectReason::Overloaded`].
    pub max_backlog_cycles: u64,
    /// Consecutive failures (wrong result or watchdog timeout) that trip a
    /// channel group's breaker open.
    pub breaker_threshold: u32,
    /// Cycles a tripped breaker stays open before half-opening for a probe.
    pub breaker_cooldown: Cycle,
    /// Channels per breaker group (the quarantine/re-layout granularity).
    pub channels_per_group: usize,
    /// Default watchdog budget per kernel launch, in cycles (a request may
    /// override it; the effective limit never extends past the deadline).
    pub watchdog_budget: Cycle,
    /// PIM attempts (initial launch plus re-layouts over surviving groups)
    /// before the request degrades to the host.
    pub max_attempts: u32,
    /// Modelled host-fallback cost in cycles per element (the degradation
    /// path advances the simulated clock by this, keeping deadline math
    /// meaningful).
    pub host_cycles_per_element: u64,
    /// Seed of the cost model's cycles-per-element estimate before any
    /// launch has been observed.
    pub initial_cycles_per_element: u64,
    /// Seed for deterministic tie-breaks (equal arrivals, equal deadlines).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 8,
            max_backlog_cycles: 4_000_000,
            breaker_threshold: 3,
            breaker_cooldown: 500_000,
            channels_per_group: 4,
            watchdog_budget: 500_000,
            max_attempts: 3,
            host_cycles_per_element: 16,
            initial_cycles_per_element: 64,
            seed: 0x5E17,
        }
    }
}

/// The operation a request asks for (element-wise, FP16-exact on device).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOp {
    /// `z = x + y`.
    Add {
        /// Left operand.
        x: Vec<f32>,
        /// Right operand.
        y: Vec<f32>,
    },
    /// `z = x * y`.
    Mul {
        /// Left operand.
        x: Vec<f32>,
        /// Right operand.
        y: Vec<f32>,
    },
}

impl ServeOp {
    fn stream_op(&self) -> StreamOp {
        match self {
            ServeOp::Add { .. } => StreamOp::Add,
            ServeOp::Mul { .. } => StreamOp::Mul,
        }
    }

    fn operands(&self) -> (&[f32], &[f32]) {
        match self {
            ServeOp::Add { x, y } | ServeOp::Mul { x, y } => (x, y),
        }
    }

    /// The host-side oracle: the device computes exact FP16, so the FP16
    /// result is bit-exact on a fault-free run. It doubles as the host
    /// BLAS of the degradation ladder and as the integrity check a
    /// production runtime would run at the application level.
    fn host_reference(&self) -> Vec<f32> {
        let (x, y) = self.operands();
        x.iter()
            .zip(y)
            .map(|(&a, &b)| {
                let (a, b) = (F16::from_f32(a), F16::from_f32(b));
                match self {
                    ServeOp::Add { .. } => (a + b).to_f32(),
                    ServeOp::Mul { .. } => (a * b).to_f32(),
                }
            })
            .collect()
    }
}

/// One request to the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Tenant the request belongs to (its own bounded queue).
    pub tenant: u32,
    /// Arrival time in absolute sim cycles (open-loop traffic).
    pub arrival: Cycle,
    /// Absolute sim-cycle deadline.
    pub deadline: Cycle,
    /// Optional channel-group affinity: the request only runs on these
    /// groups (a tenant's partition under §VIII multi-tenancy). `None`
    /// means any group.
    pub groups: Option<Vec<usize>>,
    /// Optional per-request watchdog budget override, in cycles.
    pub budget: Option<Cycle>,
    /// The operation.
    pub op: ServeOp,
}

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's bounded queue was at capacity.
    QueueFull,
    /// The estimated backlog exceeded [`ServeConfig::max_backlog_cycles`].
    Overloaded,
}

/// How a request ended. Every submitted request ends in exactly one of
/// these — the serving layer never panics on load or faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Completed on PIM within the deadline; the verified result is in
    /// [`RequestOutcome::result`].
    Completed,
    /// Shed by admission control with the given typed reason.
    Shed(RejectReason),
    /// Expired in queue, or finished past its deadline.
    DeadlineMissed,
    /// Computed host-side by the degradation policy (no healthy group, or
    /// insufficient deadline slack for PIM).
    FellBackToHost,
}

impl Disposition {
    /// Stable numeric code, carried as the `req.done` trace event's
    /// argument: 0 completed, 1 shed (queue full), 2 shed (overloaded),
    /// 3 deadline missed, 4 fell back to host.
    pub fn code(&self) -> u64 {
        match self {
            Disposition::Completed => 0,
            Disposition::Shed(RejectReason::QueueFull) => 1,
            Disposition::Shed(RejectReason::Overloaded) => 2,
            Disposition::DeadlineMissed => 3,
            Disposition::FellBackToHost => 4,
        }
    }
}

/// The record of one request's journey through the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Submission-order id (index into the trace given to [`Server::run`]).
    pub id: usize,
    /// The tenant.
    pub tenant: u32,
    /// Arrival cycle, as submitted.
    pub arrival: Cycle,
    /// Cycle execution started, if it did.
    pub started: Option<Cycle>,
    /// Cycle the request left the system.
    pub finished: Cycle,
    /// How it ended.
    pub disposition: Disposition,
    /// The result vector for `Completed` and `FellBackToHost`.
    pub result: Option<Vec<f32>>,
    /// The request's deterministic trace id ([`TraceId::mint`] over the
    /// server seed and `id`) — the join key into recorded event streams.
    pub trace: TraceId,
}

/// Counters mirroring the `srv.*` observability names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests submitted ([`names::SRV_SUBMITTED`]).
    pub submitted: u64,
    /// Requests admitted into a queue ([`names::SRV_ADMITTED`]).
    pub admitted: u64,
    /// Sheds with [`RejectReason::QueueFull`].
    pub shed_queue_full: u64,
    /// Sheds with [`RejectReason::Overloaded`].
    pub shed_overloaded: u64,
    /// Requests completed on PIM in time.
    pub completed: u64,
    /// Deadline misses (queue expiry or late finish).
    pub deadline_missed: u64,
    /// Kernel launches cancelled by the watchdog.
    pub watchdog_cancels: u64,
    /// Breaker trips (closed/half-open → open).
    pub breaker_trips: u64,
    /// Breaker half-opens (open → probe allowed).
    pub breaker_half_opens: u64,
    /// Breaker closes (half-open → closed after a good probe).
    pub breaker_closes: u64,
    /// Re-layouts over a reduced group set.
    pub relayouts: u64,
    /// Requests computed host-side.
    pub host_fallbacks: u64,
}

/// Per-tenant SLO histograms, accumulated over one [`Server::run`] call.
///
/// Lives on [`ServeReport`] rather than [`ServeStats`] (which stays a
/// `Copy` bundle of plain counters). All three use
/// [`names::LATENCY_BUCKETS`] bounds, so they merge and export cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSlo {
    /// Cycles from arrival to dispatch (or to expiry, for requests that
    /// died in queue).
    pub queue_wait: Histogram,
    /// Cycles from dispatch to completion; only requests that started.
    pub service: Histogram,
    /// Deadline slack remaining at completion; 0 for a miss.
    pub deadline_slack: Histogram,
}

impl Default for TenantSlo {
    fn default() -> TenantSlo {
        TenantSlo {
            queue_wait: Histogram::new(names::LATENCY_BUCKETS),
            service: Histogram::new(names::LATENCY_BUCKETS),
            deadline_slack: Histogram::new(names::LATENCY_BUCKETS),
        }
    }
}

/// What one [`Server::run`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One outcome per submitted request, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Counter totals for this run.
    pub stats: ServeStats,
    /// Per-tenant SLO histograms for this run (shed requests excluded —
    /// they never occupied the system).
    pub slo: BTreeMap<u32, TenantSlo>,
    /// Sim cycle at which the trace drained.
    pub end_cycle: Cycle,
}

impl ServeReport {
    /// Arrival-to-finish latencies (cycles) of requests that produced a
    /// result (`Completed` and `FellBackToHost`), in submission order.
    pub fn served_latencies(&self) -> Vec<Cycle> {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(o.disposition, Disposition::Completed | Disposition::FellBackToHost)
            })
            .map(|o| o.finished.saturating_sub(o.arrival))
            .collect()
    }
}

/// Per-group breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: Cycle },
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct Breaker {
    state: BreakerState,
    failures: u32,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker { state: BreakerState::Closed, failures: 0 }
    }

    /// Whether the group may serve at `now`; transitions open → half-open
    /// once the cooldown has elapsed.
    fn admit(&mut self, now: Cycle, stats: &mut ServeStats) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    stats.breaker_half_opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn failure(&mut self, now: Cycle, cfg: &ServeConfig, stats: &mut ServeStats) {
        self.failures += 1;
        let reopen = matches!(self.state, BreakerState::HalfOpen);
        if reopen || self.failures >= cfg.breaker_threshold {
            if !matches!(self.state, BreakerState::Open { .. }) {
                stats.breaker_trips += 1;
            }
            self.state = BreakerState::Open { until: now + cfg.breaker_cooldown };
        }
    }

    fn success(&mut self, stats: &mut ServeStats) {
        if matches!(self.state, BreakerState::HalfOpen) {
            stats.breaker_closes += 1;
        }
        self.failures = 0;
        self.state = BreakerState::Closed;
    }
}

/// A request sitting in a tenant queue.
#[derive(Debug)]
struct Queued {
    id: usize,
    req: ServeRequest,
    est_cycles: u64,
}

/// The deterministic multi-tenant scheduler. Owns a mutable borrow of the
/// context for its lifetime; all state (queues, breakers, cost model) is
/// carried across [`Server::run`] calls.
#[derive(Debug)]
pub struct Server<'a> {
    ctx: &'a mut PimContext,
    cfg: ServeConfig,
    breakers: Vec<Breaker>,
    queues: BTreeMap<u32, VecDeque<Queued>>,
    stats: ServeStats,
    /// Per-tenant SLO histograms for the run in progress (drained into
    /// [`ServeReport::slo`] at the end of each [`Server::run`]).
    slo: BTreeMap<u32, TenantSlo>,
    /// Cost model: observed cycles per 1000 elements (EWMA, integer).
    cpe_milli: u64,
}

impl<'a> Server<'a> {
    /// Builds a server over `ctx` (clamps `channels_per_group` to at least
    /// 1 and at most the channel count).
    pub fn new(ctx: &'a mut PimContext, cfg: ServeConfig) -> Server<'a> {
        let mut cfg = cfg;
        cfg.channels_per_group = cfg.channels_per_group.clamp(1, ctx.sys.channel_count().max(1));
        cfg.max_attempts = cfg.max_attempts.max(1);
        let groups = ctx.sys.channel_count().div_ceil(cfg.channels_per_group);
        let cpe_milli = cfg.initial_cycles_per_element.max(1) * 1000;
        Server {
            ctx,
            cfg,
            breakers: vec![Breaker::new(); groups],
            queues: BTreeMap::new(),
            stats: ServeStats::default(),
            slo: BTreeMap::new(),
            cpe_milli,
        }
    }

    /// Number of channel groups (breaker domains).
    pub fn group_count(&self) -> usize {
        self.breakers.len()
    }

    /// The counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Channels of group `g`.
    fn group_channels(&self, g: usize) -> std::ops::Range<usize> {
        let lo = g * self.cfg.channels_per_group;
        lo..((g + 1) * self.cfg.channels_per_group).min(self.ctx.sys.channel_count())
    }

    fn group_of(&self, ch: usize) -> usize {
        ch / self.cfg.channels_per_group
    }

    /// Estimated PIM cost of an `n`-element request under the cost model.
    fn est_pim_cycles(&self, n: usize) -> u64 {
        (n as u64).saturating_mul(self.cpe_milli) / 1000
    }

    /// Estimated service cost for admission purposes: the cheaper of the
    /// PIM estimate and the host-fallback cost, since the degradation
    /// policy will pick whichever path fits. Admission must not shed a
    /// request the host could comfortably serve just because PIM is slow.
    fn est_service_cycles(&self, n: usize) -> u64 {
        self.est_pim_cycles(n).min((n as u64).saturating_mul(self.cfg.host_cycles_per_element))
    }

    /// Folds an observed launch into the cost model (3/4 old, 1/4 new —
    /// integer EWMA, deterministic).
    fn observe_cost(&mut self, cycles: Cycle, elements: usize) {
        if elements == 0 {
            return;
        }
        let new = cycles.saturating_mul(1000) / elements as u64;
        self.cpe_milli = (3 * self.cpe_milli + new.max(1)) / 4;
    }

    /// Total estimated cycles of queued work.
    fn backlog_cycles(&self) -> u64 {
        self.queues.values().flatten().map(|q| q.est_cycles).sum()
    }

    /// Typed admission decision for one arrival at the current backlog.
    fn admission(&self, tenant: u32, est: u64) -> Result<(), RejectReason> {
        let depth = self.queues.get(&tenant).map_or(0, VecDeque::len);
        if depth >= self.cfg.queue_capacity {
            return Err(RejectReason::QueueFull);
        }
        if self.backlog_cycles().saturating_add(est) > self.cfg.max_backlog_cycles {
            return Err(RejectReason::Overloaded);
        }
        Ok(())
    }

    /// Runs a whole open-loop trace to completion. Requests are processed
    /// in arrival order (ties broken by the seeded hash, then submission
    /// id); the queues drain under earliest-deadline-first dispatch.
    ///
    /// Returns one [`RequestOutcome`] per request, in submission order —
    /// every request ends `Completed`, `Shed`, `DeadlineMissed`, or
    /// `FellBackToHost`.
    ///
    /// # Errors
    ///
    /// Only plumbing failures surface as [`PimError`] (allocation larger
    /// than the reserved region, strict-mode kernel rejection); load and
    /// injected faults never do.
    pub fn run(&mut self, requests: Vec<ServeRequest>) -> Result<ServeReport, PimError> {
        let stats_before = self.stats;
        let mut outcomes: Vec<Option<RequestOutcome>> = Vec::new();
        outcomes.resize_with(requests.len(), || None);

        // Arrival order with seeded tie-breaks: a deterministic total order
        // even when two tenants' requests land on the same cycle.
        let mut arrivals: Vec<(usize, ServeRequest)> = requests.into_iter().enumerate().collect();
        arrivals.sort_by_key(|(id, r)| (r.arrival, mix(self.cfg.seed ^ *id as u64), *id));
        let mut pending: VecDeque<(usize, ServeRequest)> = arrivals.into();

        loop {
            let now = self.ctx.sys.max_now();

            // 1. Admit everything that has arrived by `now`.
            while pending.front().is_some_and(|(_, r)| r.arrival <= now) {
                let (id, req) = pending.pop_front().unwrap_or_else(|| unreachable!());
                self.stats.submitted += 1;
                let n = req.op.operands().0.len();
                let est = self.est_service_cycles(n);
                let trace = TraceCtx::root(self.cfg.seed, id as u64, req.tenant);
                match self.admission(req.tenant, est) {
                    Ok(()) => {
                        self.stats.admitted += 1;
                        if let Some(r) = &self.ctx.recorder {
                            r.emit(
                                Event::instant(
                                    now,
                                    names::REQ_ADMIT,
                                    names::CAT_REQUEST,
                                    Scope::GLOBAL,
                                )
                                .with_arg("id", id as u64)
                                .with_trace(trace),
                            );
                        }
                        self.queues.entry(req.tenant).or_default().push_back(Queued {
                            id,
                            req,
                            est_cycles: est,
                        });
                    }
                    Err(reason) => {
                        match reason {
                            RejectReason::QueueFull => self.stats.shed_queue_full += 1,
                            RejectReason::Overloaded => self.stats.shed_overloaded += 1,
                        }
                        let disposition = Disposition::Shed(reason);
                        if let Some(r) = &self.ctx.recorder {
                            r.emit(
                                Event::instant(
                                    now,
                                    names::REQ_DONE,
                                    names::CAT_REQUEST,
                                    Scope::GLOBAL,
                                )
                                .with_arg("disposition", disposition.code())
                                .with_trace(trace),
                            );
                        }
                        outcomes[id] = Some(RequestOutcome {
                            id,
                            tenant: req.tenant,
                            arrival: req.arrival,
                            started: None,
                            finished: now,
                            disposition,
                            result: None,
                            trace: trace.trace,
                        });
                    }
                }
            }

            // 2. Purge queued requests whose deadline already passed.
            let mut purged: Vec<(u32, u64)> = Vec::new();
            let seed = self.cfg.seed;
            for queue in self.queues.values_mut() {
                queue.retain(|q| {
                    if q.req.deadline > now {
                        return true;
                    }
                    self.stats.deadline_missed += 1;
                    let trace = TraceCtx::root(seed, q.id as u64, q.req.tenant);
                    if let Some(r) = &self.ctx.recorder {
                        r.emit(
                            Event::instant(now, names::REQ_DONE, names::CAT_REQUEST, Scope::GLOBAL)
                                .with_arg("disposition", Disposition::DeadlineMissed.code())
                                .with_trace(trace),
                        );
                    }
                    purged.push((q.req.tenant, now.saturating_sub(q.req.arrival)));
                    outcomes[q.id] = Some(RequestOutcome {
                        id: q.id,
                        tenant: q.req.tenant,
                        arrival: q.req.arrival,
                        started: None,
                        finished: now,
                        disposition: Disposition::DeadlineMissed,
                        result: None,
                        trace: trace.trace,
                    });
                    false
                });
            }
            for (tenant, wait) in purged {
                self.note_slo(tenant, wait, None, 0);
            }

            // 3. Dispatch: earliest deadline among the queue heads (FIFO
            //    within a tenant), seeded tie-break across tenants.
            let next = self
                .queues
                .iter()
                .filter_map(|(&tenant, q)| q.front().map(|h| (tenant, h)))
                .min_by_key(|(_, h)| (h.req.deadline, mix(self.cfg.seed ^ h.id as u64), h.id))
                .map(|(tenant, _)| tenant);

            match next {
                Some(tenant) => {
                    let queued = self
                        .queues
                        .get_mut(&tenant)
                        .and_then(VecDeque::pop_front)
                        .unwrap_or_else(|| unreachable!("head vanished"));
                    let deadline = queued.req.deadline;
                    let arrival = queued.req.arrival;
                    let outcome = self.execute(queued)?;
                    if let Some(started) = outcome.started {
                        let wait = started.saturating_sub(arrival);
                        let service = outcome.finished.saturating_sub(started);
                        let slack = match outcome.disposition {
                            Disposition::DeadlineMissed => 0,
                            _ => deadline.saturating_sub(outcome.finished),
                        };
                        self.note_slo(tenant, wait, Some(service), slack);
                    }
                    let id = outcome.id;
                    outcomes[id] = Some(outcome);
                }
                None => match pending.front() {
                    // Idle until the next arrival: the host sleeps, every
                    // channel's clock advances.
                    Some((_, r)) => {
                        let t = r.arrival;
                        for i in 0..self.ctx.sys.channel_count() {
                            self.ctx.sys.channel_mut(i).advance_to(t);
                        }
                    }
                    None => break,
                },
            }
        }

        let end_cycle = self.ctx.sys.barrier();
        self.publish(&stats_before);
        let outcomes = outcomes
            .into_iter()
            .enumerate()
            .map(|(id, o)| o.unwrap_or_else(|| panic!("request {id} never resolved")))
            .collect();
        Ok(ServeReport {
            outcomes,
            stats: delta(&self.stats, &stats_before),
            end_cycle,
            slo: std::mem::take(&mut self.slo),
        })
    }

    /// Executes one admitted request, wrapping the degradation ladder in a
    /// request-scoped trace: `req.dispatch`/`req.done` instants bracket the
    /// execution, and the request's [`TraceCtx`] is installed as the
    /// recorder's ambient trace for its duration so every device- and
    /// controller-level event joins back to this request and tenant.
    fn execute(&mut self, q: Queued) -> Result<RequestOutcome, PimError> {
        let trace = TraceCtx::root(self.cfg.seed, q.id as u64, q.req.tenant);
        if let Some(r) = &self.ctx.recorder {
            r.emit(
                Event::instant(
                    self.ctx.sys.max_now(),
                    names::REQ_DISPATCH,
                    names::CAT_REQUEST,
                    Scope::GLOBAL,
                )
                .with_arg("id", q.id as u64)
                .with_trace(trace),
            );
            r.set_trace(Some(trace));
        }
        let result = self.execute_inner(q, trace);
        if let Some(r) = &self.ctx.recorder {
            r.set_trace(None);
            if let Ok(o) = &result {
                r.emit(
                    Event::instant(o.finished, names::REQ_DONE, names::CAT_REQUEST, Scope::GLOBAL)
                        .with_arg("disposition", o.disposition.code())
                        .with_trace(trace),
                );
            }
        }
        result
    }

    /// The degradation ladder itself (PIM attempts, then host fallback).
    fn execute_inner(&mut self, q: Queued, trace: TraceCtx) -> Result<RequestOutcome, PimError> {
        let Queued { id, req, .. } = q;
        let started = self.ctx.sys.max_now();
        let n = req.op.operands().0.len();
        let oracle = req.op.host_reference();

        let outcome = |disposition, started, finished, result| RequestOutcome {
            id,
            tenant: req.tenant,
            arrival: req.arrival,
            started,
            finished,
            disposition,
            result,
            trace: trace.trace,
        };

        // Candidate groups: the request's affinity, intersected with the
        // groups whose breakers admit work right now.
        let now = started;
        let candidates: Vec<usize> = (0..self.breakers.len())
            .filter(|g| req.groups.as_ref().is_none_or(|set| set.contains(g)))
            .filter(|&g| self.breakers[g].admit(now, &mut self.stats))
            .collect();

        // Degradation policy by deadline slack: PIM when the estimate fits
        // (or nothing else would), host BLAS when PIM's estimate blows the
        // slack but the host's still fits, miss when already expired.
        let slack = req.deadline.saturating_sub(now);
        let est_pim = self.est_pim_cycles(n);
        let est_host = (n as u64).saturating_mul(self.cfg.host_cycles_per_element);
        let pim_viable = !candidates.is_empty();
        let prefer_host = !pim_viable || (est_pim > slack && est_host <= slack);

        if !prefer_host {
            match self.run_on_pim(&req, &candidates, &oracle, trace)? {
                PimAttempt::Done { finished, result, cycles } => {
                    self.observe_cost(cycles, n);
                    return Ok(if finished > req.deadline {
                        self.stats.deadline_missed += 1;
                        outcome(Disposition::DeadlineMissed, Some(started), finished, None)
                    } else {
                        self.stats.completed += 1;
                        outcome(Disposition::Completed, Some(started), finished, Some(result))
                    });
                }
                PimAttempt::Exhausted => {}
            }
        }

        // Host fallback: modelled cost advances the simulated clock.
        let now = self.ctx.sys.max_now();
        if now >= req.deadline {
            self.stats.deadline_missed += 1;
            return Ok(outcome(Disposition::DeadlineMissed, Some(started), now, None));
        }
        self.stats.host_fallbacks += 1;
        let finished = now + est_host;
        for i in 0..self.ctx.sys.channel_count() {
            self.ctx.sys.channel_mut(i).advance_to(finished);
        }
        Ok(if finished > req.deadline {
            self.stats.deadline_missed += 1;
            outcome(Disposition::DeadlineMissed, Some(started), finished, None)
        } else {
            outcome(Disposition::FellBackToHost, Some(started), finished, Some(oracle))
        })
    }

    /// The PIM half of the ladder: bounded launches over the candidate
    /// groups, excluding implicated groups (breaker failures) between
    /// attempts. Returns `Exhausted` when the request must degrade to the
    /// host.
    fn run_on_pim(
        &mut self,
        req: &ServeRequest,
        candidates: &[usize],
        oracle: &[f32],
        trace: TraceCtx,
    ) -> Result<PimAttempt, PimError> {
        let (x, y) = req.op.operands();
        let op = req.op.stream_op();
        let n = x.len();
        if n == 0 || y.len() != n {
            // Malformed requests never reach the device; the host oracle
            // path reports them (empty result) rather than panicking.
            return Ok(PimAttempt::Exhausted);
        }
        let pim_cfg = self.ctx.sys.pim_config().clone();
        let units = pim_cfg.units_per_pch;
        let two_bank = pim_cfg.variant == PimVariant::TwoBankAccess;
        let (x_col, y_col, z_col) = stream_columns(op, &pim_cfg);
        let y_plain_col = match (two_bank, y_col) {
            (true, _) => None,
            (false, Some(c)) => Some(c),
            (false, None) => {
                return Err(PimError::Internal {
                    detail: "two-operand stream kernel without a second operand column".into(),
                })
            }
        };
        let xb = layout::f32_to_blocks(x);
        let yb = layout::f32_to_blocks(y);
        let nblocks = xb.len();

        let mut avail: Vec<usize> = candidates.to_vec();
        for attempt in 0..self.cfg.max_attempts {
            if avail.is_empty() {
                return Ok(PimAttempt::Exhausted);
            }
            let now = self.ctx.sys.max_now();
            if now >= req.deadline {
                return Ok(PimAttempt::Exhausted);
            }
            if attempt > 0 {
                self.stats.relayouts += 1;
            }

            // Lock-step layout over the channels of the available groups.
            let channels: Vec<usize> = avail.iter().flat_map(|&g| self.group_channels(g)).collect();
            let h = channels.len();
            let locate = |b: usize| (channels[b % h], (b / h) % units, b / (h * units));
            let slot_pos = |b: usize, base: u32| {
                let slot = (b / (h * units)) as u32;
                (base + slot / GROUP, slot % GROUP)
            };
            self.ctx.reset_memory();
            let slots = nblocks.div_ceil(h * units).max(1);
            let rows = (slots as u32).div_ceil(GROUP);
            let base_row = self
                .ctx
                .mm
                .alloc_rows_lockstep(rows)
                .map_err(|e| PimError::OutOfMemory { detail: e.to_string() })?;
            for b in 0..nblocks {
                let (ch, u, _) = locate(b);
                let (row, coff) = slot_pos(b, base_row);
                layout::store_block(&mut self.ctx.sys, ch, u, row, x_col + coff, &xb[b]);
                match y_plain_col {
                    Some(yc) => {
                        layout::store_block(&mut self.ctx.sys, ch, u, row, yc + coff, &yb[b])
                    }
                    None => {
                        layout::store_block_odd(&mut self.ctx.sys, ch, u, row, x_col + coff, &yb[b])
                    }
                }
            }

            // Bounded launch: the watchdog limit never extends past the
            // deadline.
            let program = stream_microkernel(op, rows, &pim_cfg);
            let data = stream_batches(op, rows, base_row, &pim_cfg);
            let budget = req.budget.unwrap_or(self.cfg.watchdog_budget);
            let deadline_capped = req.deadline <= now.saturating_add(budget);
            let limit = req.deadline.min(now.saturating_add(budget));
            let start = now;
            // Each PIM attempt runs under a child span so retries after a
            // re-layout are distinguishable in the trace.
            let attempt_ctx = trace.child(attempt as u64 + 1);
            if let Some(r) = &self.ctx.recorder {
                r.emit(
                    Event::instant(start, names::REQ_LAUNCH, names::CAT_REQUEST, Scope::GLOBAL)
                        .with_arg("attempt", attempt as u64 + 1)
                        .with_trace(attempt_ctx),
                );
                r.set_trace(Some(attempt_ctx));
            }
            let (result, cancelled) =
                self.launch_bounded(&channels, &program, &data, Some(limit))?;
            if let Some(r) = &self.ctx.recorder {
                r.set_trace(Some(trace));
            }

            let fail = |server: &mut Server, groups: &[usize]| {
                let at = server.ctx.sys.max_now();
                for &g in groups {
                    server.breakers[g].failure(at, &server.cfg, &mut server.stats);
                }
            };

            let timed_out: Vec<usize> = {
                let mut gs: Vec<usize> = cancelled
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c)
                    .map(|(ch, _)| self.group_of(ch))
                    .collect();
                gs.sort_unstable();
                gs.dedup();
                gs
            };
            if !timed_out.is_empty() {
                self.stats.watchdog_cancels += 1;
                // A deadline-capped cancel means the request ran out of
                // slack, not that the hardware is sick: the request
                // degrades without charging the groups' breakers. Only a
                // budget-capped cancel is a genuine component timeout.
                if deadline_capped {
                    return Ok(PimAttempt::Exhausted);
                }
                fail(self, &timed_out);
                avail.retain(|g| !timed_out.contains(g));
                continue;
            }

            // Gather and verify against the oracle.
            let mut out = vec![0.0f32; n];
            let mut bad_groups: Vec<usize> = Vec::new();
            for b in 0..nblocks {
                let (ch, u, _) = locate(b);
                let (row, coff) = slot_pos(b, base_row);
                let v = layout::load_block(&self.ctx.sys, ch, u, row, z_col + coff);
                for l in 0..BLOCK_ELEMS {
                    let i = b * BLOCK_ELEMS + l;
                    if i >= n {
                        break;
                    }
                    out[i] = v[l].to_f32();
                    if out[i].to_bits() != oracle[i].to_bits() {
                        bad_groups.push(self.group_of(ch));
                    }
                }
            }
            bad_groups.sort_unstable();
            bad_groups.dedup();
            let finished = self.ctx.sys.barrier();
            if bad_groups.is_empty() {
                for &g in &avail {
                    self.breakers[g].success(&mut self.stats);
                }
                return Ok(PimAttempt::Done {
                    finished,
                    result: out,
                    cycles: result.end_cycle.saturating_sub(start),
                });
            }
            fail(self, &bad_groups);
            avail.retain(|g| !bad_groups.contains(g));
        }
        Ok(PimAttempt::Exhausted)
    }

    /// Runs the kernel choreography on exactly `channels` under the
    /// watchdog limit; other channels sit the launch out.
    fn launch_bounded(
        &mut self,
        channels: &[usize],
        program: &[pim_core::isa::Instruction],
        data_batches: &[Batch],
        limit: Option<Cycle>,
    ) -> Result<(KernelResult, Vec<bool>), PimError> {
        if self.ctx.strict {
            Preprocessor::verify_kernel(self.ctx.sys.pim_config(), program)
                .map_err(|report| PimError::InvalidKernel { report })?;
        }
        let full = Executor::full_kernel(program, None, false, data_batches);
        let per_channel: Vec<Vec<Batch>> = (0..self.ctx.sys.channel_count())
            .map(|ch| if channels.contains(&ch) { full.clone() } else { Vec::new() })
            .collect();
        Ok(KernelEngine::run_system_bounded(&mut self.ctx.sys, &per_channel, self.ctx.mode, limit))
    }

    /// Records one request's SLO observations: queue wait always, service
    /// time when the request actually started, and deadline slack (0 for a
    /// miss). Mirrored into the context recorder's histograms so the
    /// OpenMetrics export carries the same distributions as
    /// [`ServeReport::slo`].
    fn note_slo(&mut self, tenant: u32, wait: Cycle, service: Option<Cycle>, slack: Cycle) {
        let slo = self.slo.entry(tenant).or_default();
        slo.queue_wait.record(wait);
        if let Some(s) = service {
            slo.service.record(s);
        }
        slo.deadline_slack.record(slack);
        if let Some(r) = &self.ctx.recorder {
            r.observe(names::SRV_QUEUE_WAIT, names::LATENCY_BUCKETS, wait);
            if let Some(s) = service {
                r.observe(names::SRV_SERVICE, names::LATENCY_BUCKETS, s);
            }
            r.observe(names::SRV_DEADLINE_SLACK, names::LATENCY_BUCKETS, slack);
        }
    }

    /// Publishes this run's counter deltas to the context recorder.
    fn publish(&self, before: &ServeStats) {
        let Some(r) = &self.ctx.recorder else { return };
        let d = delta(&self.stats, before);
        r.add(names::SRV_SUBMITTED, d.submitted);
        r.add(names::SRV_ADMITTED, d.admitted);
        r.add(names::SRV_SHED_QUEUE_FULL, d.shed_queue_full);
        r.add(names::SRV_SHED_OVERLOADED, d.shed_overloaded);
        r.add(names::SRV_COMPLETED, d.completed);
        r.add(names::SRV_DEADLINE_MISSED, d.deadline_missed);
        r.add(names::SRV_WATCHDOG_CANCELS, d.watchdog_cancels);
        r.add(names::SRV_BREAKER_TRIPS, d.breaker_trips);
        r.add(names::SRV_BREAKER_HALF_OPENS, d.breaker_half_opens);
        r.add(names::SRV_BREAKER_CLOSES, d.breaker_closes);
        r.add(names::SRV_RELAYOUTS, d.relayouts);
        r.add(names::SRV_HOST_FALLBACKS, d.host_fallbacks);
    }
}

/// What one trip through the PIM ladder produced.
enum PimAttempt {
    Done { finished: Cycle, result: Vec<f32>, cycles: Cycle },
    Exhausted,
}

fn delta(now: &ServeStats, before: &ServeStats) -> ServeStats {
    ServeStats {
        submitted: now.submitted - before.submitted,
        admitted: now.admitted - before.admitted,
        shed_queue_full: now.shed_queue_full - before.shed_queue_full,
        shed_overloaded: now.shed_overloaded - before.shed_overloaded,
        completed: now.completed - before.completed,
        deadline_missed: now.deadline_missed - before.deadline_missed,
        watchdog_cancels: now.watchdog_cancels - before.watchdog_cancels,
        breaker_trips: now.breaker_trips - before.breaker_trips,
        breaker_half_opens: now.breaker_half_opens - before.breaker_half_opens,
        breaker_closes: now.breaker_closes - before.breaker_closes,
        relayouts: now.relayouts - before.relayouts,
        host_fallbacks: now.host_fallbacks - before.host_fallbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_faults::FaultPlan;

    fn add_req(tenant: u32, arrival: Cycle, deadline: Cycle, n: usize) -> ServeRequest {
        let x: Vec<f32> = (0..n).map(|i| (i % 23) as f32 * 0.25).collect();
        let y: Vec<f32> = (0..n).map(|i| (i % 17) as f32 * 0.5).collect();
        ServeRequest {
            tenant,
            arrival,
            deadline,
            groups: None,
            budget: None,
            op: ServeOp::Add { x, y },
        }
    }

    #[test]
    fn single_request_completes_with_exact_result() {
        let mut ctx = PimContext::small_system();
        let mut server = Server::new(&mut ctx, ServeConfig::default());
        let req = add_req(0, 0, 10_000_000, 1024);
        let oracle = req.op.host_reference();
        let report = server.run(vec![req]).unwrap();
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert_eq!(o.disposition, Disposition::Completed);
        assert_eq!(o.result.as_deref(), Some(&oracle[..]));
        assert!(o.finished > 0);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.host_fallbacks, 0);
    }

    #[test]
    fn queue_capacity_sheds_with_typed_reason() {
        let mut ctx = PimContext::small_system();
        let cfg = ServeConfig { queue_capacity: 1, ..ServeConfig::default() };
        let mut server = Server::new(&mut ctx, cfg);
        // Three simultaneous arrivals for one tenant: all three hit
        // admission before any dispatch, so the depth-1 queue takes the
        // first and sheds the other two.
        let reqs = (0..3).map(|_| add_req(7, 0, 50_000_000, 512)).collect();
        let report = server.run(reqs).unwrap();
        let shed = report
            .outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Shed(RejectReason::QueueFull))
            .count();
        assert_eq!(shed, 2, "{:?}", report.stats);
        assert_eq!(report.stats.shed_queue_full, 2);
        assert_eq!(report.stats.completed, 1);
    }

    #[test]
    fn backlog_budget_sheds_overloaded() {
        let mut ctx = PimContext::small_system();
        let cfg = ServeConfig { max_backlog_cycles: 1, ..ServeConfig::default() };
        let mut server = Server::new(&mut ctx, cfg);
        let reqs = (0..2).map(|_| add_req(0, 0, 50_000_000, 512)).collect();
        let report = server.run(reqs).unwrap();
        assert_eq!(report.stats.shed_overloaded, 2, "{:?}", report.stats);
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.disposition == Disposition::Shed(RejectReason::Overloaded)));
    }

    #[test]
    fn expired_deadline_is_missed_not_run() {
        let mut ctx = PimContext::small_system();
        let mut server = Server::new(&mut ctx, ServeConfig::default());
        // Deadline of 1 cycle: expires before/at dispatch.
        let report = server.run(vec![add_req(0, 0, 1, 512)]).unwrap();
        assert_eq!(report.outcomes[0].disposition, Disposition::DeadlineMissed);
        assert_eq!(report.stats.deadline_missed, 1);
        assert_eq!(report.stats.completed + report.stats.host_fallbacks, 0);
    }

    #[test]
    fn tight_slack_degrades_to_host() {
        let mut ctx = PimContext::small_system();
        // Make PIM look expensive and the host cheap: any real deadline
        // prefers the host.
        let cfg = ServeConfig {
            initial_cycles_per_element: 1_000_000,
            host_cycles_per_element: 1,
            ..ServeConfig::default()
        };
        let mut server = Server::new(&mut ctx, cfg);
        let req = add_req(0, 0, 100_000, 1024);
        let oracle = req.op.host_reference();
        let report = server.run(vec![req]).unwrap();
        let o = &report.outcomes[0];
        assert_eq!(o.disposition, Disposition::FellBackToHost, "{:?}", report.stats);
        assert_eq!(o.result.as_deref(), Some(&oracle[..]));
        assert_eq!(report.stats.host_fallbacks, 1);
    }

    #[test]
    fn watchdog_cancels_and_request_still_resolves() {
        let mut ctx = PimContext::small_system();
        let cfg = ServeConfig { breaker_threshold: 1, ..ServeConfig::default() };
        let mut server = Server::new(&mut ctx, cfg);
        let mut req = add_req(0, 0, 50_000_000, 4096);
        // A 1-cycle budget cancels every data batch on every attempt.
        req.budget = Some(1);
        let report = server.run(vec![req]).unwrap();
        assert!(report.stats.watchdog_cancels > 0);
        assert_eq!(report.outcomes[0].disposition, Disposition::FellBackToHost);
        assert!(report.stats.breaker_trips > 0, "{:?}", report.stats);
    }

    #[test]
    fn hard_failed_group_trips_breaker_and_work_reroutes() {
        // Hard-fail exactly the channels of group 0 (0..4) by finding a
        // seed where only low channels fail — simpler: fail channel 0 only
        // is not directly expressible, so use a plan with chan_fail and
        // check that wherever failures landed, completed results are exact.
        let mut plan = FaultPlan::quiet(0);
        plan.chan_fail_rate = 0.15;
        let mut failed: Vec<usize> = Vec::new();
        for seed in 0..2000 {
            plan.seed = seed;
            failed = (0..16).filter(|&c| plan.channel_failed(c)).collect();
            if !failed.is_empty() && failed.len() <= 4 {
                break;
            }
        }
        assert!(!failed.is_empty());
        let mut ctx = PimContext::small_system();
        ctx.inject_faults(&plan);
        let cfg = ServeConfig { breaker_threshold: 1, ..ServeConfig::default() };
        let mut server = Server::new(&mut ctx, cfg);
        let reqs: Vec<ServeRequest> =
            (0..4).map(|i| add_req(0, i * 1000, 80_000_000, 2048)).collect();
        let oracles: Vec<Vec<f32>> = reqs.iter().map(|r| r.op.host_reference()).collect();
        let report = server.run(reqs).unwrap();
        for (o, oracle) in report.outcomes.iter().zip(&oracles) {
            if let Some(result) = &o.result {
                assert_eq!(result, oracle, "request {} returned wrong data", o.id);
            }
        }
        assert!(report.stats.breaker_trips > 0, "{:?}", report.stats);
        assert!(report.stats.relayouts > 0, "{:?}", report.stats);
        // Later requests avoid the tripped group and complete first try.
        assert!(report.stats.completed > 0, "{:?}", report.stats);
    }

    #[test]
    fn breaker_state_machine() {
        let cfg = ServeConfig { breaker_threshold: 2, breaker_cooldown: 100, ..Default::default() };
        let mut stats = ServeStats::default();
        let mut b = Breaker::new();
        assert!(b.admit(0, &mut stats));
        b.failure(10, &cfg, &mut stats);
        assert!(b.admit(11, &mut stats), "one failure below threshold keeps it closed");
        b.failure(12, &cfg, &mut stats);
        assert_eq!(stats.breaker_trips, 1);
        assert!(!b.admit(13, &mut stats), "open during cooldown");
        assert!(b.admit(112, &mut stats), "half-open after cooldown");
        assert_eq!(stats.breaker_half_opens, 1);
        // A failed probe re-opens immediately (no threshold).
        b.failure(113, &cfg, &mut stats);
        assert_eq!(stats.breaker_trips, 2);
        assert!(b.admit(213 + cfg.breaker_cooldown, &mut stats));
        b.success(&mut stats);
        assert_eq!(stats.breaker_closes, 1);
        assert!(b.admit(999, &mut stats));
    }

    #[test]
    fn trace_replay_is_deterministic() {
        let trace = |seed: u64| -> Vec<ServeRequest> {
            (0..6)
                .map(|i| {
                    let mut r = add_req((i % 3) as u32, i * 700, 40_000_000 + i * 13, 1024);
                    r.groups = Some(vec![(i % 4) as usize, ((i + 1) % 4) as usize]);
                    let _ = seed;
                    r
                })
                .collect()
        };
        let run = |requests: Vec<ServeRequest>| {
            let mut ctx = PimContext::small_system();
            let mut server = Server::new(&mut ctx, ServeConfig::default());
            server.run(requests).unwrap()
        };
        let a = run(trace(1));
        let b = run(trace(1));
        assert_eq!(a, b);
    }

    #[test]
    fn group_affinity_restricts_placement() {
        let mut ctx = PimContext::small_system();
        let mut server = Server::new(&mut ctx, ServeConfig::default());
        assert_eq!(server.group_count(), 4, "16 channels / 4 per group");
        let mut req = add_req(0, 0, 50_000_000, 512);
        req.groups = Some(vec![2]);
        let report = server.run(vec![req]).unwrap();
        assert_eq!(report.outcomes[0].disposition, Disposition::Completed);
        // Only group 2's channels (8..12) saw PIM triggers.
        for ch in 0..16 {
            let triggers = ctx.sys.channel(ch).sink().stats().pim_triggers;
            if (8..12).contains(&ch) {
                assert!(triggers > 0, "channel {ch} should have executed");
            } else {
                assert_eq!(triggers, 0, "channel {ch} outside the affinity set ran");
            }
        }
    }

    #[test]
    fn mul_requests_are_served_too() {
        let mut ctx = PimContext::small_system();
        let mut server = Server::new(&mut ctx, ServeConfig::default());
        let x: Vec<f32> = (0..640).map(|i| (i % 13) as f32 * 0.25).collect();
        let y: Vec<f32> = (0..640).map(|i| (i % 7) as f32 * 0.5).collect();
        let req = ServeRequest {
            tenant: 1,
            arrival: 0,
            deadline: 50_000_000,
            groups: None,
            budget: None,
            op: ServeOp::Mul { x: x.clone(), y: y.clone() },
        };
        let oracle = req.op.host_reference();
        let report = server.run(vec![req]).unwrap();
        assert_eq!(report.outcomes[0].result.as_deref(), Some(&oracle[..]));
        for i in 0..640 {
            assert_eq!(oracle[i], x[i] * y[i], "element {i}");
        }
    }

    #[test]
    fn srv_metrics_published_when_profiling() {
        let mut ctx = PimContext::small_system();
        let rec = pim_obs::Recorder::vec();
        ctx.enable_profiling(rec.clone());
        let mut server = Server::new(&mut ctx, ServeConfig::default());
        let report = server.run(vec![add_req(0, 0, 50_000_000, 512)]).unwrap();
        assert_eq!(report.stats.completed, 1);
        let m = rec.metrics().registry;
        assert_eq!(m.counter(names::SRV_SUBMITTED), 1);
        assert_eq!(m.counter(names::SRV_ADMITTED), 1);
        assert_eq!(m.counter(names::SRV_COMPLETED), 1);
    }
}
