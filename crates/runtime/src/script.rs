//! `pimsim` scripting: drive a single PIM-HBM channel from a small text
//! language — assemble microkernels, seed banks, fire standard DRAM
//! commands, and inspect registers and traces. The debugging workflow the
//! paper's FPGA bring-up system provided ("we can precisely control the
//! operation of PIM-HBM with this system", Section VI), in text form.
//!
//! # Commands
//!
//! ```text
//! mode ab | mode sb          enter/exit all-bank mode (ACT+PRE sequences)
//! pim on | pim off           set PIM_OP_MODE (ACT+WR+PRE sequence)
//! program                    begin a microkernel block (pim-core assembly)
//!   MAC GRF_B[0], EVEN_BANK, SRF_M[0] (AAM)
//!   ...
//! end                        assemble + load into every CRF
//! srf  m0..m7 a0..a7         load 16 scalars into SRF_M / SRF_A
//! poke UNIT ROW COL v0..v15  backdoor-seed a unit's even bank
//! peek UNIT ROW COL          print a block (backdoor read)
//! act ROW | rd COL | pre | prea
//! wr COL v0..v15             column write (WDATA in AB-PIM mode)
//! dump grf_a|grf_b|srf_m|srf_a UNIT   print a unit's registers
//! stats                      print PIM channel statistics
//! trace                      print the recorded command trace
//! profile                    print recorded metrics (needs profiling on)
//! # comment / ; comment
//! ```

use pim_core::asm;
use pim_core::{conf, LaneVec, PimChannel, PimConfig, PimMode};
use pim_dram::{BankAddr, Command, CommandSink, Cycle, TimingParams, TracingSink};
use pim_fp16::F16;
use pim_obs::Recorder;
use std::fmt;

/// A script execution error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// Line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

/// An interactive single-channel PIM session.
#[derive(Debug)]
pub struct ScriptSession {
    channel: TracingSink<PimChannel>,
    now: Cycle,
    recorder: Option<Recorder>,
}

impl Default for ScriptSession {
    fn default() -> ScriptSession {
        ScriptSession::new()
    }
}

impl ScriptSession {
    /// A fresh paper-configuration channel with a 4096-entry trace.
    pub fn new() -> ScriptSession {
        ScriptSession {
            channel: TracingSink::new(
                PimChannel::new(TimingParams::hbm2(), PimConfig::paper()),
                4096,
            ),
            now: 0,
            recorder: None,
        }
    }

    /// Attaches an in-memory [`Recorder`] to the channel so subsequent
    /// commands feed the metrics registry and event stream; idempotent.
    /// Returns a clone of the session's recorder.
    pub fn enable_profiling(&mut self) -> Recorder {
        if let Some(recorder) = &self.recorder {
            return recorder.clone();
        }
        let recorder = Recorder::vec();
        self.channel.inner_mut().set_recorder(recorder.clone(), 0);
        self.recorder = Some(recorder.clone());
        recorder
    }

    /// The session recorder, if profiling is enabled.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The channel under test.
    pub fn channel(&self) -> &PimChannel {
        self.channel.inner()
    }

    fn issue_all(&mut self, cmds: &[Command], line: usize) -> Result<Option<LaneVec>, ScriptError> {
        let mut data = None;
        for c in cmds {
            let at = self.channel.earliest_issue(c, self.now);
            let out = self
                .channel
                .issue(c, at)
                .map_err(|e| ScriptError { line, message: format!("{c}: {e}") })?;
            if let Some(d) = out.data {
                data = Some(LaneVec::from_block(&d));
            }
            self.now = at;
        }
        Ok(data)
    }

    /// Executes a whole script; returns the printed output lines.
    ///
    /// # Errors
    ///
    /// Stops at the first [`ScriptError`].
    pub fn run(&mut self, source: &str) -> Result<Vec<String>, ScriptError> {
        let mut out = Vec::new();
        let mut lines = source.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = i + 1;
            let text = raw.split(['#', ';']).next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let mut toks = text.split_whitespace();
            let Some(cmd) = toks.next() else { continue };
            let rest: Vec<&str> = toks.collect();
            match cmd {
                "mode" => match rest.as_slice() {
                    ["ab"] => {
                        self.issue_all(&conf::enter_ab_sequence(), line)?;
                    }
                    ["sb"] => {
                        self.issue_all(&conf::exit_ab_sequence(), line)?;
                    }
                    _ => return err(line, "mode expects `ab` or `sb`"),
                },
                "pim" => match rest.as_slice() {
                    ["on"] => {
                        self.issue_all(&conf::set_pim_op_mode_sequence(true), line)?;
                    }
                    ["off"] => {
                        self.issue_all(&conf::set_pim_op_mode_sequence(false), line)?;
                    }
                    _ => return err(line, "pim expects `on` or `off`"),
                },
                "program" => {
                    let mut body = String::new();
                    let mut closed = false;
                    for (j, praw) in lines.by_ref() {
                        if praw.trim() == "end" {
                            closed = true;
                            break;
                        }
                        body.push_str(praw);
                        body.push('\n');
                        let _ = j;
                    }
                    if !closed {
                        return err(line, "program block missing `end`");
                    }
                    let program = asm::assemble(&body)
                        .map_err(|e| ScriptError { line: line + e.line, message: e.message })?;
                    let bank = BankAddr::new(0, 0);
                    let mut cmds = vec![Command::Act { bank, row: conf::CRF_ROW }];
                    for (ci, chunk) in program.chunks(8).enumerate() {
                        let mut block = [0u8; 32];
                        for (k, ins) in chunk.iter().enumerate() {
                            block[k * 4..k * 4 + 4].copy_from_slice(&ins.encode().to_le_bytes());
                        }
                        for k in chunk.len()..8 {
                            block[k * 4..k * 4 + 4].copy_from_slice(
                                &pim_core::isa::Instruction::Exit.encode().to_le_bytes(),
                            );
                        }
                        cmds.push(Command::Wr { bank, col: ci as u32, data: block });
                    }
                    cmds.push(Command::Pre { bank });
                    self.issue_all(&cmds, line)?;
                    out.push(format!("loaded {} instructions", program.len()));
                }
                "srf" => {
                    let vals = parse_floats(&rest, 16, line)?;
                    let bank = BankAddr::new(0, 0);
                    let block = LaneVec::from_f32(vals).to_block();
                    self.issue_all(
                        &[
                            Command::Act { bank, row: conf::SRF_ROW },
                            Command::Wr { bank, col: 0, data: block },
                            Command::Pre { bank },
                        ],
                        line,
                    )?;
                }
                "poke" => {
                    if rest.len() != 19 {
                        return err(line, "poke UNIT ROW COL v0..v15");
                    }
                    let unit: usize = parse(rest[0], line)?;
                    let row: u32 = parse(rest[1], line)?;
                    let col: u32 = parse(rest[2], line)?;
                    let vals = parse_floats(&rest[3..], 16, line)?;
                    let bank = BankAddr::from_flat_index(2 * unit);
                    self.channel.inner_mut().dram_mut().bank_mut(bank).poke_block(
                        row,
                        col,
                        &LaneVec::from_f32(vals).to_block(),
                    );
                }
                "peek" => {
                    if rest.len() != 3 {
                        return err(line, "peek UNIT ROW COL");
                    }
                    let unit: usize = parse(rest[0], line)?;
                    let row: u32 = parse(rest[1], line)?;
                    let col: u32 = parse(rest[2], line)?;
                    let bank = BankAddr::from_flat_index(2 * unit);
                    let v = LaneVec::from_block(
                        &self.channel.inner().dram().bank(bank).peek_block(row, col),
                    );
                    out.push(format!("peek u{unit} r{row} c{col}: {}", fmt_lanes(&v)));
                }
                "act" => {
                    let row: u32 = parse(rest.first().copied().unwrap_or(""), line)?;
                    self.issue_all(&[Command::Act { bank: BankAddr::new(0, 0), row }], line)?;
                }
                "rd" => {
                    let col: u32 = parse(rest.first().copied().unwrap_or(""), line)?;
                    if let Some(v) =
                        self.issue_all(&[Command::Rd { bank: BankAddr::new(0, 0), col }], line)?
                    {
                        out.push(format!("rd c{col}: {}", fmt_lanes(&v)));
                    }
                }
                "wr" => {
                    if rest.len() != 17 {
                        return err(line, "wr COL v0..v15");
                    }
                    let col: u32 = parse(rest[0], line)?;
                    let vals = parse_floats(&rest[1..], 16, line)?;
                    self.issue_all(
                        &[Command::Wr {
                            bank: BankAddr::new(0, 0),
                            col,
                            data: LaneVec::from_f32(vals).to_block(),
                        }],
                        line,
                    )?;
                }
                "pre" => {
                    self.issue_all(&[Command::Pre { bank: BankAddr::new(0, 0) }], line)?;
                }
                "prea" => {
                    self.issue_all(&[Command::PreAll], line)?;
                }
                "dump" => {
                    if rest.len() != 2 {
                        return err(line, "dump grf_a|grf_b|srf_m|srf_a UNIT");
                    }
                    let unit: usize = parse(rest[1], line)?;
                    if unit >= self.channel.inner().unit_count() {
                        return err(line, format!("unit {unit} out of range"));
                    }
                    let u = self.channel.inner().unit(unit);
                    match rest[0] {
                        "grf_a" | "grf_b" => {
                            for r in 0..8 {
                                let v = if rest[0] == "grf_a" {
                                    u.grf_a().read(r)
                                } else {
                                    u.grf_b().read(r)
                                };
                                out.push(format!("{}[{r}] = {}", rest[0], fmt_lanes(&v)));
                            }
                        }
                        "srf_m" | "srf_a" => {
                            let vals: Vec<String> = (0..8)
                                .map(|r| {
                                    let s = if rest[0] == "srf_m" {
                                        u.srf_m().read(r)
                                    } else {
                                        u.srf_a().read(r)
                                    };
                                    format!("{}", s.to_f32())
                                })
                                .collect();
                            out.push(format!("{} = [{}]", rest[0], vals.join(", ")));
                        }
                        other => return err(line, format!("unknown register file `{other}`")),
                    }
                }
                "stats" => {
                    let s = self.channel.inner().stats();
                    out.push(format!(
                        "mode={} transitions={} ab_acts={} ab_reads={} ab_writes={} triggers={}",
                        self.channel.inner().mode(),
                        s.mode_transitions,
                        s.ab_acts,
                        s.ab_reads,
                        s.ab_writes,
                        s.pim_triggers
                    ));
                }
                "trace" => {
                    out.push(self.channel.render());
                }
                "profile" => match &self.recorder {
                    None => out.push(
                        "profiling disabled (enable_profiling() / pimsim --profile)".to_string(),
                    ),
                    Some(r) => {
                        let snapshot = r.metrics();
                        for (name, v) in snapshot.registry.counters() {
                            out.push(format!("{name} = {v}"));
                        }
                        for (name, v) in snapshot.registry.gauges() {
                            out.push(format!("{name} = {v}"));
                        }
                        out.push(format!("events = {}", r.events_offered()));
                    }
                },
                other => return err(line, format!("unknown command `{other}`")),
            }
        }
        Ok(out)
    }

    /// Current operating mode.
    pub fn mode(&self) -> PimMode {
        self.channel.inner().mode()
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ScriptError> {
    Err(ScriptError { line, message: message.into() })
}

fn parse<T: std::str::FromStr>(tok: &str, line: usize) -> Result<T, ScriptError> {
    tok.parse().map_err(|_| ScriptError { line, message: format!("bad number `{tok}`") })
}

fn parse_floats(toks: &[&str], n: usize, line: usize) -> Result<[f32; 16], ScriptError> {
    if toks.len() != n {
        return err(line, format!("expected {n} values, got {}", toks.len()));
    }
    let mut vals = [0.0f32; 16];
    for (v, t) in vals.iter_mut().zip(toks.iter()) {
        *v = parse(t, line)?;
    }
    Ok(vals)
}

fn fmt_lanes(v: &LaneVec) -> String {
    let lanes: Vec<String> = v.lanes().iter().map(|l: &F16| format!("{}", l.to_f32())).collect();
    format!("[{}]", lanes.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
# seed unit 0's even bank
poke 0 0 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
mode ab
program
  MUL GRF_A[0], EVEN_BANK, SRF_M[0]
  MOV EVEN_BANK, GRF_A[0]
  EXIT
end
srf 2 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0
pim on
act 0
rd 0
rd 0
pre
pim off
mode sb
peek 0 0 0
stats
"#;

    #[test]
    fn demo_script_runs_end_to_end() {
        let mut s = ScriptSession::new();
        let out = s.run(DEMO).unwrap();
        assert_eq!(s.mode(), PimMode::SingleBank);
        assert!(out.iter().any(|l| l.contains("loaded 3 instructions")), "{out:?}");
        // The kernel doubled the seeded vector in place.
        let peek = out.iter().find(|l| l.starts_with("peek")).unwrap();
        assert!(peek.contains("[2, 4, 6, 8"), "{peek}");
        let stats = out.iter().find(|l| l.starts_with("mode=")).unwrap();
        assert!(stats.contains("triggers=16"), "{stats}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut s = ScriptSession::new();
        let e = s.run("mode ab\nbogus cmd\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = ScriptSession::new().run("rd 0").unwrap_err();
        assert!(e.message.contains("closed bank") || e.message.contains("RD"), "{e}");
    }

    #[test]
    fn program_without_end_rejected() {
        let e = ScriptSession::new().run("program\nEXIT\n").unwrap_err();
        assert!(e.message.contains("end"));
    }

    #[test]
    fn assembly_errors_point_into_the_block() {
        let e = ScriptSession::new().run("mode ab\nprogram\nBOGUS\nend\n").unwrap_err();
        assert!(e.message.contains("BOGUS"));
        assert!(e.line >= 3, "line {}", e.line);
    }

    #[test]
    fn profile_command_reports_metrics_when_enabled() {
        let mut off = ScriptSession::new();
        let out = off.run("profile").unwrap();
        assert!(out.iter().any(|l| l.contains("profiling disabled")), "{out:?}");

        let mut s = ScriptSession::new();
        let rec = s.enable_profiling();
        let out = s.run(DEMO).unwrap();
        assert!(out.iter().any(|l| l.contains("peek")), "{out:?}");
        let out = s.run("profile").unwrap();
        // The demo walks SB -> AB -> AB-PIM and back: 4 transitions.
        assert!(out.iter().any(|l| l == "dev.mode_transitions = 4"), "{out:?}");
        assert!(out.iter().any(|l| l.starts_with("dev.pim_triggers = ")), "{out:?}");
        assert_eq!(rec.metrics().registry.counter("dev.mode_transitions"), 4);
        // Enabling twice hands back the same recorder.
        let again = s.enable_profiling();
        assert_eq!(again.metrics().registry.counter("dev.mode_transitions"), 4);
    }

    #[test]
    fn dump_and_trace_produce_output() {
        let mut s = ScriptSession::new();
        let out = s.run("mode ab\nsrf 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16\ndump srf_m 0\ndump srf_a 0\ntrace").unwrap();
        assert!(out.iter().any(|l| l.contains("srf_m = [1, 2, 3")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("srf_a = [9, 10")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("ACT")), "trace should show commands");
    }
}
