//! Virtual-to-physical translation for PIM buffers (Sections V-A / IX).
//!
//! The paper's stack is explicit about why the driver hands out
//! *physically contiguous* memory: the runtime must "correctly access a
//! target DRAM bank, row, and column of the (interleaved or scrambled)
//! physical address" (Section IX), and a PIM kernel's lock-step layout is
//! computed in physical coordinates. "Receiving a request from an upper
//! software layer, the PIM device driver allocates physically contiguous
//! memory blocks. This allows us not to worry about virtual-physical
//! address translations for PIM kernels" (Section V-A).
//!
//! This module models both sides: a page-granular [`VirtualMapping`] and
//! the contiguity check the driver's allocator guarantees by construction.
//! The test demonstrates the failure the paper is avoiding: a scattered
//! mapping sends a virtually-contiguous buffer to physically disarranged
//! channels, breaking the lock-step layout invariant.

use pim_dram::AddressMapping;
use std::collections::HashMap;
use std::fmt;

/// Page size of the host's virtual memory system.
pub const PAGE_BYTES: u64 = 4096;

/// A translation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmemError {
    /// The virtual page has no mapping.
    Unmapped {
        /// The faulting virtual address.
        vaddr: u64,
    },
    /// The buffer's physical pages are not contiguous.
    NotContiguous {
        /// First virtual address whose physical page breaks the run.
        vaddr: u64,
    },
}

impl fmt::Display for VmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmemError::Unmapped { vaddr } => write!(f, "page fault at {vaddr:#x}"),
            VmemError::NotContiguous { vaddr } => {
                write!(f, "physical discontiguity at {vaddr:#x}")
            }
        }
    }
}

impl std::error::Error for VmemError {}

/// A page-granular virtual → physical mapping.
#[derive(Debug, Clone, Default)]
pub struct VirtualMapping {
    pages: HashMap<u64, u64>, // vpage -> ppage
}

impl VirtualMapping {
    /// An empty address space.
    pub fn new() -> VirtualMapping {
        VirtualMapping::default()
    }

    /// Maps `n` virtual pages starting at `vbase` to physically
    /// **contiguous** pages starting at `pbase` — what the PIM driver's
    /// allocator produces.
    ///
    /// # Panics
    ///
    /// Panics on unaligned bases.
    pub fn map_contiguous(&mut self, vbase: u64, pbase: u64, n: u64) {
        assert_eq!(vbase % PAGE_BYTES, 0, "virtual base must be page-aligned");
        assert_eq!(pbase % PAGE_BYTES, 0, "physical base must be page-aligned");
        for i in 0..n {
            self.pages.insert(vbase / PAGE_BYTES + i, pbase / PAGE_BYTES + i);
        }
    }

    /// Maps `n` virtual pages to an explicit list of physical pages — the
    /// general-purpose allocator's scattered result.
    ///
    /// # Panics
    ///
    /// Panics if `ppages.len() != n` or bases are unaligned.
    pub fn map_scattered(&mut self, vbase: u64, ppages: &[u64]) {
        assert_eq!(vbase % PAGE_BYTES, 0);
        for (i, &pp) in ppages.iter().enumerate() {
            assert_eq!(pp % PAGE_BYTES, 0, "physical page must be aligned");
            self.pages.insert(vbase / PAGE_BYTES + i as u64, pp / PAGE_BYTES);
        }
    }

    /// Translates one virtual address.
    ///
    /// # Errors
    ///
    /// [`VmemError::Unmapped`] on a page fault.
    pub fn translate(&self, vaddr: u64) -> Result<u64, VmemError> {
        let vpage = vaddr / PAGE_BYTES;
        let off = vaddr % PAGE_BYTES;
        self.pages.get(&vpage).map(|pp| pp * PAGE_BYTES + off).ok_or(VmemError::Unmapped { vaddr })
    }

    /// Verifies the driver's invariant over a buffer: every page present
    /// and physically contiguous, returning the physical base.
    ///
    /// # Errors
    ///
    /// [`VmemError::Unmapped`] or [`VmemError::NotContiguous`].
    pub fn require_contiguous(&self, vbase: u64, bytes: u64) -> Result<u64, VmemError> {
        let pbase = self.translate(vbase)?;
        let pages = bytes.div_ceil(PAGE_BYTES);
        for i in 1..pages {
            let vaddr = vbase + i * PAGE_BYTES;
            let p = self.translate(vaddr)?;
            if p != pbase + i * PAGE_BYTES {
                return Err(VmemError::NotContiguous { vaddr });
            }
        }
        Ok(pbase)
    }

    /// The set of pseudo channels a virtually-contiguous buffer actually
    /// touches under `mapping` — the diagnostic behind the lock-step
    /// layout invariant.
    pub fn channels_touched(
        &self,
        mapping: &AddressMapping,
        vbase: u64,
        bytes: u64,
    ) -> Result<Vec<usize>, VmemError> {
        let mut channels = std::collections::BTreeSet::new();
        let mut a = vbase;
        while a < vbase + bytes {
            let p = self.translate(a)?;
            channels.insert(mapping.decode(p).pch);
            a += 32;
        }
        Ok(channels.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_mapping_translates_and_passes_the_check() {
        let mut vm = VirtualMapping::new();
        vm.map_contiguous(0x10_0000, 0x40_0000, 4);
        assert_eq!(vm.translate(0x10_0123).unwrap(), 0x40_0123);
        assert_eq!(vm.require_contiguous(0x10_0000, 4 * PAGE_BYTES).unwrap(), 0x40_0000);
    }

    #[test]
    fn page_faults_are_reported() {
        let vm = VirtualMapping::new();
        assert_eq!(vm.translate(0x1234), Err(VmemError::Unmapped { vaddr: 0x1234 }));
    }

    #[test]
    fn scattered_mapping_fails_the_driver_invariant() {
        let mut vm = VirtualMapping::new();
        // Pages from a general allocator: shuffled frames.
        vm.map_scattered(0, &[0x9000, 0x3000, 0x7000]);
        let e = vm.require_contiguous(0, 3 * PAGE_BYTES).unwrap_err();
        assert!(matches!(e, VmemError::NotContiguous { .. }));
        // Individual translation still works — the pages exist, they're
        // just not PIM-usable as one buffer.
        assert_eq!(vm.translate(PAGE_BYTES + 4).unwrap(), 0x3004);
    }

    #[test]
    fn scattering_breaks_the_channel_interleave_pattern() {
        // The concrete failure the paper avoids: the runtime computes its
        // layout assuming the driver's contiguous interleave; a scattered
        // buffer visits the same channels in a *different order/pattern*,
        // so lock-step operands land in the wrong banks.
        let mapping = AddressMapping::new(16);
        let mut contiguous = VirtualMapping::new();
        contiguous.map_contiguous(0, 0, 2);
        let mut scattered = VirtualMapping::new();
        scattered.map_scattered(0, &[PAGE_BYTES * 5, PAGE_BYTES * 2]);

        let a = contiguous.channels_touched(&mapping, 0, 2 * PAGE_BYTES).unwrap();
        let b = scattered.channels_touched(&mapping, 0, 2 * PAGE_BYTES).unwrap();
        // Both sweep all 16 channels (pages are bigger than the 256 B
        // interleave)...
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        // ...but the per-address assignment differs: find a 32-byte block
        // whose channel changed.
        let mut diverged = false;
        for off in (0..2 * PAGE_BYTES).step_by(32) {
            let pa = contiguous.translate(off).unwrap();
            let pb = scattered.translate(off).unwrap();
            if mapping.decode(pa).pch != mapping.decode(pb).pch
                || mapping.decode(pa).bank != mapping.decode(pb).bank
                || mapping.decode(pa).row != mapping.decode(pb).row
            {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "scattering must perturb the physical layout");
    }
}
