//! The PIM software stack (Section V, Fig. 6) — everything between an
//! application's tensor operation and the DRAM command stream.
//!
//! The paper's stack has four layers, all reproduced here:
//!
//! * **PIM device driver** ([`PimDriver`]) — "reserves memory space for PIM
//!   operations during the booting process", marks it uncacheable, and
//!   "allocates physically contiguous memory blocks" so the runtime never
//!   worries about virtual-address translation mid-kernel.
//! * **PIM runtime** — the [`MemoryManager`] (placement of operands in a
//!   PIM-friendly layout and caching of generated microkernels), the
//!   [`Preprocessor`] (decides which ops are worth running on PIM and
//!   generates microkernel code), and the [`Executor`] (programs the CRF,
//!   drives mode transitions, and streams the DRAM commands).
//! * **PIM BLAS** ([`PimBlas`]) — the user-facing linear-algebra API
//!   (ADD, MUL, ReLU, BN, GEMV, LSTM), each of which runs functionally on
//!   the simulated device and returns both the numerical result and a
//!   cycle-accurate [`KernelReport`].
//! * **Custom ops** ([`ops`]) — the six TensorFlow-style PIM custom
//!   operations the paper implements (ADD, MUL, Relu, LSTM, GEMV, BN).
//!
//! # Example
//!
//! ```
//! use pim_runtime::{PimBlas, PimContext};
//!
//! let mut ctx = PimContext::paper_system();
//! let x = vec![1.0f32; 4096];
//! let y = vec![2.0f32; 4096];
//! let (z, report) = PimBlas::add(&mut ctx, &x, &y).unwrap();
//! assert!(z.iter().all(|&v| v == 3.0));
//! assert!(report.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blas;
mod context;
mod driver;
pub mod energy_bridge;
mod executor;
pub mod graph;
pub mod kernels;
pub mod layout;
pub mod ops;
mod preprocessor;
pub mod resilience;
pub mod script;
pub mod serve;
pub mod vmem;

pub use blas::{KernelReport, PimBlas, PimError};
pub use context::PimContext;
pub use driver::{AllocError, MemoryManager, PimDriver, RowRegion};
pub use executor::Executor;
pub use graph::{run_graph, GraphNode, GraphResult, NodeRecord};
pub use kernels::{gemv_microkernel, stream_microkernel, StreamOp};
pub use layout::BlockMap;
pub use pim_host::ExecutionBackend;
pub use preprocessor::{ExecutionTarget, Preprocessor};
pub use resilience::{resilient_add, FallbackReason, ResilienceConfig, ResilienceReport};
pub use script::{ScriptError, ScriptSession};
pub use serve::{
    Disposition, RejectReason, RequestOutcome, ServeConfig, ServeOp, ServeReport, ServeRequest,
    ServeStats, Server, TenantSlo,
};
