//! Property-based tests of PIM-BLAS: random shapes and data through the
//! full stack, checked against f32 references computed with the device's
//! FP16 rounding semantics.

use pim_fp16::F16;
use pim_host::ExecutionMode;
use pim_runtime::{PimBlas, PimContext};
use proptest::prelude::*;

/// Small, well-scaled values: FP16 exact-friendly without being trivial.
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-512i32..512).prop_map(|v| v as f32 * 0.125), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ADD matches the FP16 reference for random lengths and data.
    #[test]
    fn add_matches_reference(
        n in 1usize..3000,
        seed in any::<u64>(),
    ) {
        let data: Vec<f32> = (0..2 * n)
            .map(|i| {
                let h = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((i as u64).wrapping_mul(0x2545F4914F6CDD1D));
                ((h >> 32) as i32 % 256) as f32 * 0.25
            })
            .collect();
        let (x, y) = data.split_at(n);
        let mut ctx = PimContext::small_system();
        let (z, _) = PimBlas::add(&mut ctx, x, y).unwrap();
        for i in 0..n {
            let want = (F16::from_f32(x[i]) + F16::from_f32(y[i])).to_f32();
            prop_assert_eq!(z[i], want, "element {}", i);
        }
    }

    /// AXPY matches the two-step-rounded reference.
    #[test]
    fn axpy_matches_reference(
        x in values(200),
        y in values(200),
        a in -8i32..8,
    ) {
        let a = a as f32 * 0.25;
        let mut ctx = PimContext::small_system();
        let (z, _) = PimBlas::axpy(&mut ctx, a, &x, &y).unwrap();
        for i in 0..x.len() {
            let want = F16::from_f32(x[i]).mac(F16::from_f32(a), F16::from_f32(y[i])).to_f32();
            prop_assert_eq!(z[i], want, "element {}", i);
        }
    }

    /// ReLU is exact for every input.
    #[test]
    fn relu_matches_reference(x in values(500)) {
        let mut ctx = PimContext::small_system();
        let (z, _) = PimBlas::relu(&mut ctx, &x).unwrap();
        for i in 0..x.len() {
            prop_assert_eq!(z[i], x[i].max(0.0), "element {}", i);
        }
    }

    /// GEMV stays within FP16 accumulation error of the f32 reference for
    /// random small shapes.
    #[test]
    fn gemv_matches_reference(
        n in 1usize..96,
        k in 1usize..96,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as i32 % 16) as f32 / 16.0
        };
        let w: Vec<f32> = (0..n * k).map(|_| next()).collect();
        let x: Vec<f32> = (0..k).map(|_| next()).collect();
        let mut ctx = PimContext::small_system();
        let (out, _) = PimBlas::gemv(&mut ctx, &w, n, k, &x).unwrap();
        let reference = PimBlas::reference_gemv(&w, n, k, &x);
        for o in 0..n {
            let tol = 0.01 * reference[o].abs().max(1.0) + 0.02;
            prop_assert!(
                (out[o] - reference[o]).abs() <= tol,
                "output {}: {} vs {}", o, out[o], reference[o]
            );
        }
    }

    /// AAM order-tolerance, fuzzed: any controller reordering within the
    /// fence windows leaves stream-kernel results bit-identical (Section
    /// IV-C, Fig. 5(d/e)).
    #[test]
    fn aam_tolerates_any_in_window_reordering(
        seed in any::<u64>(),
        n in 64usize..4096,
    ) {
        let x: Vec<f32> = (0..n).map(|i| (i % 89) as f32 * 0.5).collect();
        let y: Vec<f32> = (0..n).map(|i| (i % 71) as f32 * 0.25).collect();
        let mut in_order = PimContext::small_system();
        let (a, _) = PimBlas::add(&mut in_order, &x, &y).unwrap();
        let mut reordered = PimContext::small_system();
        reordered.set_mode(ExecutionMode::Fenced { reorder_seed: Some(seed) });
        let (b, _) = PimBlas::add(&mut reordered, &x, &y).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Kernel timing is monotone in problem size (more elements never take
    /// fewer cycles).
    #[test]
    fn add_cycles_monotone(n in 64usize..2000) {
        let mut ctx = PimContext::small_system();
        let x = vec![1.0f32; n];
        let (_, small) = PimBlas::add(&mut ctx, &x, &x).unwrap();
        let mut ctx2 = PimContext::small_system();
        let x2 = vec![1.0f32; n * 4];
        let (_, big) = PimBlas::add(&mut ctx2, &x2, &x2).unwrap();
        prop_assert!(big.cycles >= small.cycles);
    }
}
