//! Property-based tests: the memory controller never violates DRAM timing
//! or functional correctness under random request streams.

use pim_dram::{
    AddressMapping, ControllerConfig, MemoryController, Request, RequestKind, SchedulingPolicy,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random 32-byte-aligned address within pseudo channel 0, constrained to
/// a few rows/banks so streams collide and exercise conflicts.
fn pch0_addr() -> impl Strategy<Value = u64> {
    let m = AddressMapping::new(16);
    (0u32..4, 0u8..4, 0u8..4, 0u32..8).prop_map(move |(row, bg, ba, col)| {
        m.block_addr(0, pim_dram::BankAddr::new(bg, ba), row, col * 4)
    })
}

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, u8),
}

fn ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            pch0_addr().prop_map(Op::Read),
            (pch0_addr(), any::<u8>()).prop_map(|(a, v)| Op::Write(a, v)),
        ],
        1..max_len,
    )
}

fn run_policy(policy: SchedulingPolicy, stream: &[Op]) {
    let mut ctrl = MemoryController::new(ControllerConfig {
        policy,
        refresh_enabled: false,
        ..Default::default()
    });
    // Shadow memory tracks what each address should contain. Under FR-FCFS
    // the controller may reorder *independent* requests but same-address
    // dependencies are preserved because a row hit never jumps a same-bank,
    // same-row older request with a smaller issue horizon... to keep the
    // oracle exact we enqueue one at a time for FR-FCFS same-address cases:
    // instead, we simply enqueue everything and check reads against the set
    // of values that address held at any point (weak oracle), plus an exact
    // oracle for the in-order policy.
    let mut shadow: HashMap<u64, Vec<[u8; 32]>> = HashMap::new();
    for op in stream {
        match op {
            Op::Read(a) => {
                shadow.entry(*a).or_insert_with(|| vec![[0u8; 32]]);
                ctrl.enqueue(Request::read(*a));
            }
            Op::Write(a, v) => {
                let e = shadow.entry(*a).or_insert_with(|| vec![[0u8; 32]]);
                e.push([*v; 32]);
                ctrl.enqueue(Request::write(*a, [*v; 32]));
            }
        }
    }
    let done = ctrl.run_to_completion();
    assert_eq!(done.len(), stream.len());
    // Completion times strictly ordered per issue (no two column commands in
    // the same cycle on one channel).
    let mut issue_cycles: Vec<u64> = done.iter().map(|d| d.issued_at).collect();
    issue_cycles.sort_unstable();
    for w in issue_cycles.windows(2) {
        assert!(w[1] >= w[0] + 2, "column commands closer than tCCD_S: {w:?}");
    }
    for d in &done {
        if d.kind == RequestKind::Read {
            let vals = &shadow[&d.addr];
            let got = d.data.unwrap();
            assert!(
                vals.contains(&got),
                "read of 0x{:X} returned {:?} which was never written",
                d.addr,
                &got[0]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FR-FCFS: every request completes, column commands respect tCCD_S,
    /// reads only ever observe values that were written to the address.
    #[test]
    fn frfcfs_is_safe(stream in ops(40)) {
        run_policy(SchedulingPolicy::FrFcfs, &stream);
    }

    /// In-order: additionally, reads observe exactly the last value written
    /// before them in program order.
    #[test]
    fn inorder_is_sequentially_consistent(stream in ops(40)) {
        let mut ctrl = MemoryController::new(ControllerConfig {
            policy: SchedulingPolicy::InOrder,
            refresh_enabled: false,
            ..Default::default()
        });
        let mut shadow: HashMap<u64, [u8; 32]> = HashMap::new();
        let mut expect: Vec<Option<[u8; 32]>> = Vec::new();
        for op in &stream {
            match op {
                Op::Read(a) => {
                    expect.push(Some(*shadow.get(a).unwrap_or(&[0u8; 32])));
                    ctrl.enqueue(Request::read(*a));
                }
                Op::Write(a, v) => {
                    shadow.insert(*a, [*v; 32]);
                    expect.push(None);
                    ctrl.enqueue(Request::write(*a, [*v; 32]));
                }
            }
        }
        let done = ctrl.run_to_completion();
        for d in &done {
            if let Some(want) = expect[d.seq as usize] {
                prop_assert_eq!(d.data.unwrap(), want, "seq {}", d.seq);
            }
        }
    }

    /// The same stream completes no later under FR-FCFS than in-order:
    /// reordering exists to improve performance (Rixner et al. [47]).
    /// (Weak form: allow equality.)
    #[test]
    fn frfcfs_not_slower(stream in ops(30)) {
        let run = |policy| {
            let mut ctrl = MemoryController::new(ControllerConfig {
                policy,
                refresh_enabled: false,
                ..Default::default()
            });
            for op in &stream {
                match op {
                    Op::Read(a) => { ctrl.enqueue(Request::read(*a)); }
                    Op::Write(a, v) => { ctrl.enqueue(Request::write(*a, [*v; 32])); }
                }
            }
            let done = ctrl.run_to_completion();
            done.iter().map(|d| d.completed_at).max().unwrap_or(0)
        };
        let frfcfs = run(SchedulingPolicy::FrFcfs);
        let inorder = run(SchedulingPolicy::InOrder);
        // FR-FCFS is a heuristic: allow a small constant slack, but it must
        // never be catastrophically worse.
        prop_assert!(frfcfs <= inorder + 64, "FR-FCFS {frfcfs} vs in-order {inorder}");
    }
}
