//! Physical address mapping (paper Fig. 15(a)).
//!
//! The host's physical addresses are scattered ("interleaved or scrambled",
//! Section IX) across pseudo channels, bank groups, banks, rows and columns.
//! The PIM software stack must know this mapping to place operands so that
//! all banks see the right data in AB mode — that is the job of the PIM-BLAS
//! data-layout rearrangement (Fig. 15(b)). This module is the single source
//! of truth for the mapping.
//!
//! The default layout, low bits to high bits, is
//!
//! ```text
//! | row | ba (2) | bg (2) | col_hi (2) | pch (p) | col_lo (3) | offset (5) |
//! ```
//!
//! * `offset` — 5 bits: a byte within the 32-byte column block;
//! * `col_lo` — 3 bits: 8 consecutive column blocks = 256 B contiguous per
//!   pseudo channel, matching the programming model's "8 accesses × 32 bytes
//!   per access" per thread group (Fig. 8);
//! * `pch` — channel interleaving at 256 B granularity;
//! * `col_hi` — the remaining 2 column bits (32 columns per 1 KiB row);
//! * `bg`/`ba` — bank bits above the column bits, so a contiguous stream
//!   sweeps bank groups before reopening rows;
//! * `row` — the top bits.

use crate::bank::{COLS_PER_ROW, ROWS_PER_BANK};
use crate::command::BankAddr;

/// A physical address decomposed into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Pseudo channel index.
    pub pch: usize,
    /// Bank coordinates within the pseudo channel.
    pub bank: BankAddr,
    /// Row index.
    pub row: u32,
    /// Column (32-byte block) index within the row.
    pub col: u32,
    /// Byte offset within the 32-byte block.
    pub offset: u32,
}

/// The physical-address ↔ DRAM-coordinate mapping of the system.
///
/// # Example
///
/// ```
/// use pim_dram::AddressMapping;
/// let m = AddressMapping::new(16);
/// let d = m.decode(0x1234);
/// assert_eq!(m.encode(&d), 0x1234);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapping {
    pch_count: usize,
    pch_bits: u32,
}

impl AddressMapping {
    /// Creates a mapping over `pch_count` pseudo channels.
    ///
    /// # Panics
    ///
    /// Panics if `pch_count` is not a power of two or is zero.
    pub fn new(pch_count: usize) -> AddressMapping {
        assert!(pch_count.is_power_of_two() && pch_count > 0, "pch count must be a power of two");
        AddressMapping { pch_count, pch_bits: pch_count.trailing_zeros() }
    }

    /// Number of pseudo channels covered.
    pub fn pch_count(&self) -> usize {
        self.pch_count
    }

    /// Total addressable bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.pch_count as u64
            * crate::BANKS_PER_PCH as u64
            * ROWS_PER_BANK as u64
            * crate::bank::ROW_BYTES as u64
    }

    /// Bytes that are contiguous within one pseudo channel before the
    /// mapping hops to the next channel (256 B in the default layout).
    pub fn pch_contiguity_bytes(&self) -> u64 {
        256
    }

    /// Decodes a physical address.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds [`AddressMapping::capacity_bytes`].
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        assert!(addr < self.capacity_bytes(), "address 0x{addr:X} beyond capacity");
        let mut a = addr;
        let offset = (a & 0x1F) as u32;
        a >>= 5;
        let col_lo = (a & 0x7) as u32;
        a >>= 3;
        let pch = (a & ((1 << self.pch_bits) - 1)) as usize;
        a >>= self.pch_bits;
        let col_hi = (a & 0x3) as u32;
        a >>= 2;
        let bg = (a & 0x3) as u8;
        a >>= 2;
        let ba = (a & 0x3) as u8;
        a >>= 2;
        let row = a as u32;
        debug_assert!(row < ROWS_PER_BANK);
        let col = (col_hi << 3) | col_lo;
        debug_assert!(col < COLS_PER_ROW);
        DecodedAddr { pch, bank: BankAddr::new(bg, ba), row, col, offset }
    }

    /// Encodes DRAM coordinates back into a physical address
    /// (inverse of [`AddressMapping::decode`]).
    pub fn encode(&self, d: &DecodedAddr) -> u64 {
        let col_lo = (d.col & 0x7) as u64;
        let col_hi = ((d.col >> 3) & 0x3) as u64;
        let mut a = d.row as u64;
        a = (a << 2) | d.bank.ba as u64;
        a = (a << 2) | d.bank.bg as u64;
        a = (a << 2) | col_hi;
        a = (a << self.pch_bits) | d.pch as u64;
        a = (a << 3) | col_lo;
        (a << 5) | d.offset as u64
    }

    /// The physical address of the 32-byte block at the given coordinates
    /// (offset 0).
    pub fn block_addr(&self, pch: usize, bank: BankAddr, row: u32, col: u32) -> u64 {
        self.encode(&DecodedAddr { pch, bank, row, col, offset: 0 })
    }
}

impl Default for AddressMapping {
    fn default() -> AddressMapping {
        AddressMapping::new(crate::PCH_PER_STACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_roundtrip() {
        let m = AddressMapping::new(16);
        for addr in [0u64, 31, 32, 255, 256, 4096, 0xDEAD00, m.capacity_bytes() - 1] {
            assert_eq!(m.encode(&m.decode(addr)), addr, "addr 0x{addr:X}");
        }
    }

    #[test]
    fn contiguous_256b_stays_in_one_channel() {
        // The programming model sends 8 × 32 B from one thread group to one
        // channel (Fig. 8); the mapping must keep those in one pCH.
        let m = AddressMapping::new(16);
        let base = 0x4000u64;
        let pch = m.decode(base).pch;
        for off in (0..256).step_by(32) {
            assert_eq!(m.decode(base + off).pch, pch);
        }
        // The next 256 B block goes to the next channel.
        assert_ne!(m.decode(base + 256).pch, pch);
    }

    #[test]
    fn consecutive_256b_blocks_sweep_all_channels() {
        let m = AddressMapping::new(16);
        let mut seen = std::collections::HashSet::new();
        for i in 0..16u64 {
            seen.insert(m.decode(i * 256).pch);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn bank_bits_above_column_bits() {
        // Walking one channel's contiguous space sweeps all 32 columns of a
        // row in one bank-group... then moves to the next bank group.
        let m = AddressMapping::new(16);
        let d0 = m.decode(0);
        assert_eq!((d0.bank, d0.row, d0.col), (BankAddr::new(0, 0), 0, 0));
        // Same channel, next column-hi block: +16 channels' worth of 256 B.
        let d1 = m.decode(256 * 16);
        assert_eq!(d1.pch, 0);
        assert_eq!(d1.col, 8);
        assert_eq!(d1.bank, BankAddr::new(0, 0));
        // After 4 col_hi steps the bg increments.
        let d2 = m.decode(256 * 16 * 4);
        assert_eq!(d2.bank, BankAddr::new(1, 0));
        assert_eq!(d2.col, 0);
    }

    #[test]
    fn capacity_is_512mib_per_stack_of_4gb_dies() {
        // 16 pCH × 16 banks × 8192 rows × 1 KiB = 2 GiB per stack of four
        // 4 Gb PIM dies (the paper's PIM-HBM half of the 6 GB cube).
        let m = AddressMapping::new(16);
        assert_eq!(m.capacity_bytes(), 2 * 1024 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_address_panics() {
        let m = AddressMapping::new(16);
        m.decode(m.capacity_bytes());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        AddressMapping::new(3);
    }
}
