//! DRAM commands and addresses.
//!
//! The PIM architecture is controlled entirely through these standard
//! commands — that is its central practicality claim (Section III): "it is
//! architected for host processors to control PIM operations through
//! standard DRAM interfaces". There is deliberately no `PimExec` command in
//! this enum; PIM execution is a *side effect* of `Rd`/`Wr` while the device
//! is in AB-PIM mode.

use std::fmt;

/// Size in bytes of one column access: 256 bits over 4 64-bit bursts on a
/// pseudo channel (Section II-B).
pub const DATA_BLOCK_BYTES: usize = 32;

/// The 32-byte data block transferred by one column command — 16 FP16 lanes.
pub type DataBlock = [u8; DATA_BLOCK_BYTES];

/// Bank coordinates within a pseudo channel.
///
/// ```
/// use pim_dram::BankAddr;
/// let b = BankAddr::new(2, 3);
/// assert_eq!(b.flat_index(), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankAddr {
    /// Bank group index (0..4).
    pub bg: u8,
    /// Bank index within the group (0..4).
    pub ba: u8,
}

impl BankAddr {
    /// Creates a bank address.
    ///
    /// # Panics
    ///
    /// Panics if `bg` or `ba` is out of range (0..4 each).
    pub fn new(bg: u8, ba: u8) -> BankAddr {
        assert!(bg < crate::BANK_GROUPS as u8, "bank group {bg} out of range");
        assert!(ba < crate::BANKS_PER_GROUP as u8, "bank {ba} out of range");
        BankAddr { bg, ba }
    }

    /// Flat bank index in `0..16`: `bg * 4 + ba`.
    pub fn flat_index(self) -> usize {
        self.bg as usize * crate::BANKS_PER_GROUP + self.ba as usize
    }

    /// Inverse of [`BankAddr::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn from_flat_index(index: usize) -> BankAddr {
        assert!(index < crate::BANKS_PER_PCH, "bank index {index} out of range");
        BankAddr {
            bg: (index / crate::BANKS_PER_GROUP) as u8,
            ba: (index % crate::BANKS_PER_GROUP) as u8,
        }
    }

    /// All 16 bank addresses of a pseudo channel, in flat-index order.
    pub fn all() -> impl Iterator<Item = BankAddr> {
        (0..crate::BANKS_PER_PCH).map(BankAddr::from_flat_index)
    }
}

impl fmt::Display for BankAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BG{}/BA{}", self.bg, self.ba)
    }
}

/// A standard DRAM command as sent over a pseudo channel's CA bus.
///
/// `Rd`/`Wr` column addresses select one [`DATA_BLOCK_BYTES`]-sized block in
/// the open row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Activate (open) `row` in the addressed bank.
    Act {
        /// Target bank.
        bank: BankAddr,
        /// Row to open.
        row: u32,
    },
    /// Precharge (close) the addressed bank.
    Pre {
        /// Target bank.
        bank: BankAddr,
    },
    /// Precharge all banks in the pseudo channel.
    PreAll,
    /// Column read of the 32-byte block at `col` in the open row.
    Rd {
        /// Target bank.
        bank: BankAddr,
        /// Column (32-byte block index within the row).
        col: u32,
    },
    /// Column write of the 32-byte block at `col` in the open row.
    Wr {
        /// Target bank.
        bank: BankAddr,
        /// Column (32-byte block index within the row).
        col: u32,
        /// Data to write.
        data: DataBlock,
    },
    /// All-bank refresh. All banks must be precharged.
    Ref,
}

impl Command {
    /// The bank this command targets, if it is bank-scoped.
    pub fn bank(&self) -> Option<BankAddr> {
        match self {
            Command::Act { bank, .. }
            | Command::Pre { bank }
            | Command::Rd { bank, .. }
            | Command::Wr { bank, .. } => Some(*bank),
            Command::PreAll | Command::Ref => None,
        }
    }

    /// `true` for column (`Rd`/`Wr`) commands — the commands that trigger
    /// PIM instruction execution in AB-PIM mode (Section III-A).
    pub fn is_column(&self) -> bool {
        matches!(self, Command::Rd { .. } | Command::Wr { .. })
    }

    /// Short mnemonic for traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Act { .. } => "ACT",
            Command::Pre { .. } => "PRE",
            Command::PreAll => "PREA",
            Command::Rd { .. } => "RD",
            Command::Wr { .. } => "WR",
            Command::Ref => "REF",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Act { bank, row } => write!(f, "ACT {bank} row={row}"),
            Command::Pre { bank } => write!(f, "PRE {bank}"),
            Command::PreAll => write!(f, "PREA"),
            Command::Rd { bank, col } => write!(f, "RD {bank} col={col}"),
            Command::Wr { bank, col, .. } => write!(f, "WR {bank} col={col}"),
            Command::Ref => write!(f, "REF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_addr_flat_roundtrip() {
        for i in 0..16 {
            assert_eq!(BankAddr::from_flat_index(i).flat_index(), i);
        }
        assert_eq!(BankAddr::all().count(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_addr_rejects_bad_group() {
        BankAddr::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_addr_rejects_bad_bank() {
        BankAddr::new(0, 4);
    }

    #[test]
    fn command_classification() {
        let b = BankAddr::new(0, 0);
        assert!(Command::Rd { bank: b, col: 0 }.is_column());
        assert!(Command::Wr { bank: b, col: 0, data: [0; 32] }.is_column());
        assert!(!Command::Act { bank: b, row: 0 }.is_column());
        assert_eq!(Command::Ref.bank(), None);
        assert_eq!(Command::Pre { bank: b }.bank(), Some(b));
        assert_eq!(Command::PreAll.mnemonic(), "PREA");
    }

    #[test]
    fn display_is_informative() {
        let b = BankAddr::new(1, 2);
        let s = format!("{}", Command::Act { bank: b, row: 7 });
        assert!(s.contains("BG1/BA2") && s.contains("row=7"));
    }
}
