//! Statistics counters for channels and the memory controller.

use crate::timing::Cycle;

/// Per-pseudo-channel command counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// ACT commands issued.
    pub acts: u64,
    /// Column read commands issued.
    pub reads: u64,
    /// Column write commands issued.
    pub writes: u64,
    /// PRE / PREA commands issued.
    pub pres: u64,
    /// REF commands issued.
    pub refreshes: u64,
}

impl ChannelStats {
    /// Total column commands (reads + writes).
    pub fn column_commands(&self) -> u64 {
        self.reads + self.writes
    }

    /// Bytes moved across the channel data bus by column commands.
    pub fn data_bytes(&self) -> u64 {
        self.column_commands() * crate::DATA_BLOCK_BYTES as u64
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.acts += other.acts;
        self.reads += other.reads;
        self.writes += other.writes;
        self.pres += other.pres;
        self.refreshes += other.refreshes;
    }
}

/// Memory-controller level statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Requests that hit an already-open row.
    pub row_hits: u64,
    /// Requests that opened a closed row.
    pub row_misses: u64,
    /// Requests that had to close a different open row first.
    pub row_conflicts: u64,
    /// Requests the scheduler issued out of arrival order (FR-FCFS
    /// reordering — the behaviour AAM must tolerate, Section IV-C).
    pub reordered: u64,
    /// Completed requests.
    pub completed: u64,
    /// Cycle at which the last request completed.
    pub last_completion: Cycle,
}

impl ControllerStats {
    /// Total requests classified by row outcome: hits + misses + conflicts.
    ///
    /// The controller classifies every completed request exactly once, so
    /// this equals [`ControllerStats::completed`]; the controller debug-
    /// asserts that invariant at each stats update.
    pub fn total_requests(&self) -> u64 {
        self.row_hits + self.row_misses + self.row_conflicts
    }

    /// Row-buffer hit rate over all completed requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_bytes_counts_columns() {
        let s = ChannelStats { reads: 3, writes: 1, ..Default::default() };
        assert_eq!(s.column_commands(), 4);
        assert_eq!(s.data_bytes(), 128);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ChannelStats { acts: 1, reads: 2, ..Default::default() };
        let b = ChannelStats { acts: 10, writes: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.acts, 11);
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 5);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(ControllerStats::default().row_hit_rate(), 0.0);
        let s = ControllerStats { row_hits: 3, row_misses: 1, ..Default::default() };
        assert_eq!(s.row_hit_rate(), 0.75);
    }
}
