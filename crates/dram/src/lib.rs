//! Cycle-level HBM2 DRAM substrate for the PIM-HBM reproduction.
//!
//! The paper ("Hardware Architecture and Software Stack for PIM Based on
//! Commercial DRAM Technology", ISCA 2021) implements its PIM architecture on
//! a commercial HBM2 design and drives it with an **unmodified JEDEC-compliant
//! memory controller**. This crate is the synthetic equivalent of that
//! substrate: a timing-accurate, functionally-accurate model of an HBM2
//! pseudo channel hierarchy plus the host-side memory controller, in the
//! tradition of DRAMSim2 (which the paper itself uses for design-space
//! exploration in Section VII-D).
//!
//! # Organization (paper Fig. 2)
//!
//! * A [`HbmStack`] ("device" / "cube") exposes 16 pseudo channels.
//! * A [`PseudoChannel`] contains 4 bank groups of 4 [`Bank`]s each
//!   (16 banks), a 64-bit data bus running at 2.4 Gbps/pin, and delivers one
//!   32-byte data block per column command (4 bursts of 64 bits).
//! * Each bank stores real bytes: every read returns the data a real device
//!   would return, so the PIM execution units built on top compute real
//!   FP16 results.
//!
//! # Timing model
//!
//! Time is counted in memory-bus cycles ([`Cycle`]) at 1.2 GHz (the paper's
//! 2.4 Gbps operating point, Table V). The model is event-driven: commands
//! carry issue timestamps and the channel tracks, per resource, the earliest
//! cycle at which each command class may issue ([`PseudoChannel::earliest_issue`]).
//! All JEDEC inter-command constraints relevant to the paper are enforced:
//! tRCD, tRP, tRAS, tRC, tCCD_S/tCCD_L, tRRD_S/tRRD_L, tFAW, tWR, tRTP,
//! tWTR, tCL/tWL/tBL and refresh (tREFI/tRFC).
//!
//! The paper's bandwidth arithmetic falls out of these parameters and is
//! locked in by tests: per pseudo channel, standard (single-bank) operation
//! sustains one 32 B column access per tCCD_S = 2 tCK → 19.2 GB/s, while
//! all-bank PIM operation performs 16 bank accesses per tCCD_L = 4 tCK →
//! 8× more on-chip bandwidth (Section III-B).
//!
//! # Example
//!
//! ```
//! use pim_dram::{MemoryController, ControllerConfig, Request};
//!
//! let mut ctrl = MemoryController::new(ControllerConfig::default());
//! let addr = 0x1000;
//! ctrl.enqueue(Request::write(addr, [0xAB; 32]));
//! ctrl.enqueue(Request::read(addr));
//! let done = ctrl.run_to_completion();
//! assert_eq!(done[1].data.unwrap(), [0xAB; 32]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod channel;
mod command;
pub mod config_file;
mod controller;
pub mod ecc;
mod mapping;
mod request;
mod stack;
mod stats;
mod timing;
mod trace;

pub use bank::{Bank, BankState};
pub use channel::{CommandSink, IssueError, IssueOutcome, PseudoChannel};
pub use command::{BankAddr, Command, DataBlock, DATA_BLOCK_BYTES};
pub use controller::{ControllerConfig, MemoryController, PagePolicy, SchedulingPolicy};
pub use mapping::{AddressMapping, DecodedAddr};
pub use request::{CompletedRequest, Request, RequestKind};
pub use stack::{merge_runs, HbmStack};
pub use stats::{ChannelStats, ControllerStats};
pub use timing::{Cycle, TimingParams};
pub use trace::{TraceEntry, TracingSink};

/// Number of bank groups per pseudo channel (paper Fig. 2).
pub const BANK_GROUPS: usize = 4;
/// Number of banks per bank group (paper Fig. 2).
pub const BANKS_PER_GROUP: usize = 4;
/// Number of banks per pseudo channel.
pub const BANKS_PER_PCH: usize = BANK_GROUPS * BANKS_PER_GROUP;
/// Number of pseudo channels per HBM stack (paper Table V).
pub const PCH_PER_STACK: usize = 16;
