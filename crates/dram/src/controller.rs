//! A JEDEC-compliant, per-pseudo-channel memory controller.
//!
//! The paper's central constraint is that PIM-HBM is driven by *unmodified*
//! DRAM controllers. Two controller behaviours matter for the results:
//!
//! * **FR-FCFS reordering** (Rixner et al. [47], cited in Section IV-C):
//!   "modern DRAM controllers often re-order DRAM commands to maximize
//!   performance". This is what breaks naive PIM instruction ordering
//!   (Fig. 5) and what address-aligned mode tolerates. The
//!   [`SchedulingPolicy::FrFcfs`] policy implements it: ready row hits are
//!   served before older row misses.
//! * **In-order issue** ([`SchedulingPolicy::InOrder`]): the paper's
//!   §VII-B notes "a processor manufacturer confirms that the order of DRAM
//!   commands can be preserved only in PIM mode at negligible cost"; the
//!   no-fence experiment uses this policy.
//!
//! The controller runs an open-page policy: rows stay open until a
//! conflicting request needs the bank (or refresh closes everything).

use crate::channel::{CommandSink, PseudoChannel};
use crate::command::{BankAddr, Command};
use crate::mapping::AddressMapping;
use crate::request::{CompletedRequest, Request, RequestKind};
use crate::stats::ControllerStats;
use crate::timing::{Cycle, TimingParams};
use pim_obs::{names, Event, Recorder, Scope};
use std::collections::VecDeque;

/// Request scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// First-ready, first-come-first-served: row hits bypass older misses.
    /// The default behaviour of commodity controllers.
    FrFcfs,
    /// Strict arrival order. Models the PIM-mode ordering guarantee used by
    /// the paper's no-fence evaluation.
    InOrder,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePolicy {
    /// Rows stay open until a conflicting request (or refresh) closes them
    /// — rewards locality, the policy the paper's host assumes (row hits
    /// are what FR-FCFS reorders for).
    Open,
    /// Every column command is followed by an immediate precharge when no
    /// queued request hits the open row — rewards random traffic by hiding
    /// tRP.
    Closed,
}

/// Configuration of a [`MemoryController`].
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// DRAM timing parameters for the attached channel.
    pub timing: TimingParams,
    /// Physical address mapping.
    pub mapping: AddressMapping,
    /// Which pseudo channel of the mapping this controller serves.
    pub pch_id: usize,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Whether periodic refresh is injected (tREFI/tRFC).
    pub refresh_enabled: bool,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            timing: TimingParams::hbm2(),
            mapping: AddressMapping::default(),
            pch_id: 0,
            policy: SchedulingPolicy::FrFcfs,
            page_policy: PagePolicy::Open,
            refresh_enabled: true,
        }
    }
}

/// Per-request progress through the command sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextStep {
    /// Bank has a different row open; must precharge first.
    Pre,
    /// Bank closed; must activate.
    Act,
    /// Row open; column command can go.
    Col,
}

#[derive(Debug)]
struct PendingRequest {
    req: Request,
    bank: BankAddr,
    row: u32,
    col: u32,
    /// Set once this request has caused a precharge (row conflict), for
    /// stats attribution.
    conflicted: bool,
    /// Set once this request has caused an activate (row miss).
    missed: bool,
}

/// A memory controller bound to one command sink (a plain
/// [`PseudoChannel`] or a PIM device wrapping one).
///
/// Requests are [`MemoryController::enqueue`]d and drained by
/// [`MemoryController::run_to_completion`] (or stepped by
/// [`MemoryController::drain_one`]); completions are returned in completion
/// order, which under [`SchedulingPolicy::FrFcfs`] may differ from arrival
/// order.
#[derive(Debug)]
pub struct MemoryController<S: CommandSink = PseudoChannel> {
    config: ControllerConfig,
    sink: S,
    queue: VecDeque<PendingRequest>,
    now: Cycle,
    next_seq: u64,
    next_refresh: Cycle,
    stats: ControllerStats,
    /// Observability hook; `None` (the default) costs one pointer test per
    /// instrumented site.
    recorder: Option<Recorder>,
    /// System-level channel index reported in event scopes. The controller
    /// itself does not know which channel of the system it serves, so this
    /// is set alongside the recorder.
    channel_id: u16,
    /// Last row each bank activated on the raw (PIM) path, for row-outcome
    /// classification of command streams that bypass the request queue.
    raw_last_row: [Option<u32>; crate::BANKS_PER_PCH],
}

impl MemoryController<PseudoChannel> {
    /// Creates a controller driving a fresh HBM2 pseudo channel.
    pub fn new(config: ControllerConfig) -> MemoryController<PseudoChannel> {
        let channel = PseudoChannel::new(config.timing.clone());
        MemoryController::with_sink(config, channel)
    }
}

impl<S: CommandSink> MemoryController<S> {
    /// Creates a controller driving an existing sink (e.g. a PIM device).
    pub fn with_sink(config: ControllerConfig, sink: S) -> MemoryController<S> {
        let next_refresh = config.timing.t_refi;
        MemoryController {
            config,
            sink,
            queue: VecDeque::new(),
            now: 0,
            next_seq: 0,
            next_refresh,
            stats: ControllerStats::default(),
            recorder: None,
            channel_id: 0,
            raw_last_row: [None; crate::BANKS_PER_PCH],
        }
    }

    /// Attaches an observability recorder. `channel_id` is the system-level
    /// channel index stamped into event scopes (a standalone controller is
    /// channel 0).
    pub fn set_recorder(&mut self, recorder: Recorder, channel_id: u16) {
        self.recorder = Some(recorder);
        self.channel_id = channel_id;
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// The system-level channel index stamped into event scopes (0 unless
    /// set by [`MemoryController::set_recorder`]).
    pub fn channel_id(&self) -> u16 {
        self.channel_id
    }

    /// The sink (channel / PIM device) behind this controller.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the sink, for test setup and PIM device
    /// configuration reads.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Current simulation time in bus cycles.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Controller statistics.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Number of queued, unfinished requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a request at the current cycle; returns its sequence number.
    pub fn enqueue(&mut self, mut req: Request) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        req.arrival = self.now;
        req.seq = seq;
        let d = self.config.mapping.decode(req.addr);
        assert_eq!(
            d.pch, self.config.pch_id,
            "request addr 0x{:X} routes to pCH {} but this controller serves pCH {}",
            req.addr, d.pch, self.config.pch_id
        );
        assert_eq!(d.offset, 0, "requests must address the start of a 32-byte block");
        self.queue.push_back(PendingRequest {
            req,
            bank: d.bank,
            row: d.row,
            col: d.col,
            conflicted: false,
            missed: false,
        });
        if let Some(r) = &self.recorder {
            r.observe(names::CTRL_QUEUE_DEPTH, names::QUEUE_DEPTH_BUCKETS, self.queue.len() as u64);
        }
        seq
    }

    /// Static mnemonic for a command, used as event name.
    fn command_name(cmd: &Command) -> &'static str {
        match cmd {
            Command::Act { .. } => "ACT",
            Command::Rd { .. } => "RD",
            Command::Wr { .. } => "WR",
            Command::Pre { .. } => "PRE",
            Command::PreAll => "PREA",
            Command::Ref => "REF",
        }
    }

    /// Emits a command instant event (no-op without a recorder).
    fn emit_command(&self, cmd: &Command, at: Cycle) {
        let Some(r) = &self.recorder else { return };
        let scope = match cmd {
            Command::Act { bank, .. }
            | Command::Rd { bank, .. }
            | Command::Wr { bank, .. }
            | Command::Pre { bank } => Scope::bank(self.channel_id, bank.flat_index() as u16),
            Command::PreAll | Command::Ref => Scope::channel(self.channel_id),
        };
        let ev = Event::instant(at, Self::command_name(cmd), names::CAT_COMMAND, scope);
        let ev = match cmd {
            Command::Act { row, .. } => ev.with_arg("row", *row as u64),
            Command::Rd { col, .. } | Command::Wr { col, .. } => ev.with_arg("col", *col as u64),
            _ => ev,
        };
        r.emit(ev);
    }

    /// What the given pending request needs next.
    fn next_step(&self, p: &PendingRequest) -> NextStep {
        match self.sink.open_row(p.bank) {
            None => NextStep::Act,
            Some(r) if r == p.row => NextStep::Col,
            Some(_) => NextStep::Pre,
        }
    }

    /// Whether any queued request is a row hit on `bank`'s open row — used
    /// to defer conflict precharges until hits drain (FR-FCFS).
    fn bank_has_pending_hit(&self, bank: BankAddr) -> bool {
        let open = self.sink.open_row(bank);
        match open {
            None => false,
            Some(row) => self.queue.iter().any(|p| p.bank == bank && p.row == row),
        }
    }

    fn command_for(&self, p: &PendingRequest, step: NextStep) -> Command {
        match step {
            NextStep::Pre => Command::Pre { bank: p.bank },
            NextStep::Act => Command::Act { bank: p.bank, row: p.row },
            NextStep::Col => match p.req.kind {
                RequestKind::Read => Command::Rd { bank: p.bank, col: p.col },
                RequestKind::Write => Command::Wr {
                    bank: p.bank,
                    col: p.col,
                    data: p.req.data.expect("write request without data"),
                },
            },
        }
    }

    /// Performs a refresh if one is due: closes all rows and issues REF.
    fn maybe_refresh(&mut self) {
        if !self.config.refresh_enabled || self.now < self.next_refresh {
            return;
        }
        let pre = Command::PreAll;
        let at = self.sink.earliest_issue(&pre, self.now);
        self.sink.issue(&pre, at).expect("PREA for refresh failed");
        self.emit_command(&pre, at);
        let rf = Command::Ref;
        let at = self.sink.earliest_issue(&rf, at);
        self.sink.issue(&rf, at).expect("REF failed");
        self.emit_command(&rf, at);
        self.now = at;
        self.next_refresh += self.config.timing.t_refi;
    }

    /// Issues commands until one queued request's column command completes;
    /// returns it, or `None` if the queue is empty.
    pub fn drain_one(&mut self) -> Option<CompletedRequest> {
        loop {
            self.maybe_refresh();
            let idx = self.choose_request()?;
            let step = self.next_step(&self.queue[idx]);
            let cmd = self.command_for(&self.queue[idx], step);
            let at = self.sink.earliest_issue(&cmd, self.now);
            let outcome = self
                .sink
                .issue(&cmd, at)
                .unwrap_or_else(|e| panic!("scheduler issued illegal command {cmd}: {e}"));
            self.now = at;
            self.emit_command(&cmd, at);
            match step {
                NextStep::Pre => {
                    self.queue[idx].conflicted = true;
                }
                NextStep::Act => {
                    self.queue[idx].missed = true;
                }
                NextStep::Col => {
                    let p = self.queue.remove(idx).expect("index in range");
                    // Closed-page policy: precharge immediately unless a
                    // queued request still hits this row.
                    if self.config.page_policy == PagePolicy::Closed
                        && !self.bank_has_pending_hit(p.bank)
                        && self.sink.open_row(p.bank).is_some()
                    {
                        let pre = Command::Pre { bank: p.bank };
                        let pre_at = self.sink.earliest_issue(&pre, self.now);
                        self.sink.issue(&pre, pre_at).expect("auto-precharge");
                    }
                    if p.conflicted {
                        self.stats.row_conflicts += 1;
                    } else if p.missed {
                        self.stats.row_misses += 1;
                    } else {
                        self.stats.row_hits += 1;
                    }
                    let reordered = self.queue.iter().any(|q| q.req.seq < p.req.seq);
                    if reordered {
                        self.stats.reordered += 1;
                    }
                    let completed_at = outcome.data_at.expect("column command carries data time");
                    self.stats.completed += 1;
                    self.stats.last_completion = completed_at;
                    debug_assert_eq!(
                        self.stats.total_requests(),
                        self.stats.completed,
                        "every completed request must be classified as exactly one of \
                         hit/miss/conflict"
                    );
                    if let Some(r) = &self.recorder {
                        r.add(
                            if p.conflicted {
                                names::CTRL_ROW_CONFLICT
                            } else if p.missed {
                                names::CTRL_ROW_MISS
                            } else {
                                names::CTRL_ROW_HIT
                            },
                            1,
                        );
                        r.add(names::CTRL_COMPLETED, 1);
                        if reordered {
                            r.add(names::CTRL_REORDERED, 1);
                        }
                    }
                    return Some(CompletedRequest {
                        seq: p.req.seq,
                        addr: p.req.addr,
                        kind: p.req.kind,
                        data: outcome.data,
                        issued_at: outcome.issued_at,
                        completed_at,
                    });
                }
            }
        }
    }

    /// Picks the queue index to advance next, per policy.
    fn choose_request(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        match self.config.policy {
            SchedulingPolicy::InOrder => Some(0),
            SchedulingPolicy::FrFcfs => {
                // Candidate = (earliest issue cycle, class, seq, idx); lower
                // wins. Class: column=0 beats act=1 beats pre=2 on ties, so
                // ready row hits are served before row misses (FR-FCFS).
                let mut best: Option<(Cycle, u8, u64, usize)> = None;
                for (idx, p) in self.queue.iter().enumerate() {
                    let step = self.next_step(p);
                    // Defer a conflict precharge while other requests still
                    // hit the open row.
                    if step == NextStep::Pre && self.bank_has_pending_hit(p.bank) {
                        continue;
                    }
                    let class = match step {
                        NextStep::Col => 0u8,
                        NextStep::Act => 1,
                        NextStep::Pre => 2,
                    };
                    let cmd = self.command_for(p, step);
                    let at = self.sink.earliest_issue(&cmd, self.now);
                    let key = (at, class, p.req.seq, idx);
                    if best.is_none_or(|b| key < (b.0, b.1, b.2, b.3)) {
                        best = Some(key);
                    }
                }
                // All candidates deferred (only conflict-precharges remain
                // behind hits) cannot happen: a hit candidate always exists
                // in that case and is never deferred.
                best.map(|(_, _, _, idx)| idx)
            }
        }
    }

    /// Drains the whole queue; returns completions in completion order.
    pub fn run_to_completion(&mut self) -> Vec<CompletedRequest> {
        let mut done = Vec::with_capacity(self.queue.len());
        while let Some(c) = self.drain_one() {
            done.push(c);
        }
        done
    }

    /// Issues a raw command stream in order (used by the PIM executor for
    /// mode transitions and CRF programming, which bypass the request
    /// queue). Returns the issue cycle of the last command.
    ///
    /// # Panics
    ///
    /// Panics if any command is illegal for the current bank state — raw
    /// streams are programmer-controlled, so an illegal command is a bug in
    /// the PIM kernel, which is exactly what the paper's deterministic
    /// execution model lets the host reason about.
    pub fn issue_raw(&mut self, commands: &[Command]) -> Cycle {
        assert!(self.queue.is_empty(), "raw issue with queued requests would interleave");
        for cmd in commands {
            let at = self.sink.earliest_issue(cmd, self.now);
            self.sink.issue(cmd, at).unwrap_or_else(|e| panic!("raw command {cmd} illegal: {e}"));
            self.now = at;
            if self.recorder.is_some() {
                self.emit_command(cmd, at);
                self.classify_raw(cmd);
            }
        }
        self.now
    }

    /// Row-outcome accounting for the raw (PIM) path, which bypasses the
    /// request queue and so never reaches the [`ControllerStats`] update in
    /// [`MemoryController::drain_one`]. An ACT re-opening a bank on a
    /// different row than last time is a conflict-shaped access (the
    /// previous row's locality was lost); a first-time or same-row ACT is a
    /// miss; every column command lands on the open row by construction and
    /// counts as a hit. Metrics-only: `ControllerStats` stays a
    /// queued-request measure.
    fn classify_raw(&mut self, cmd: &Command) {
        let r = self.recorder.as_ref().expect("caller checked recorder");
        r.add(names::CTRL_RAW_COMMANDS, 1);
        match cmd {
            Command::Act { bank, row } => {
                let slot = &mut self.raw_last_row[bank.flat_index()];
                match *slot {
                    Some(prev) if prev != *row => r.add(names::CTRL_ROW_CONFLICT, 1),
                    _ => r.add(names::CTRL_ROW_MISS, 1),
                }
                *slot = Some(*row);
            }
            Command::Rd { .. } | Command::Wr { .. } => r.add(names::CTRL_ROW_HIT, 1),
            Command::Pre { .. } | Command::PreAll | Command::Ref => {}
        }
    }

    /// Advances local time without issuing commands (models host-side gaps
    /// such as kernel-launch overhead between PIM kernels).
    pub fn advance_to(&mut self, cycle: Cycle) {
        self.now = self.now.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: SchedulingPolicy) -> ControllerConfig {
        ControllerConfig { policy, refresh_enabled: false, ..Default::default() }
    }

    use super::PagePolicy;

    /// Two addresses in the same bank, different rows; one in a different
    /// bank group.
    fn addr_at(row: u32, bank: BankAddr, col: u32) -> u64 {
        AddressMapping::default().block_addr(0, bank, row, col)
    }

    #[test]
    fn read_after_write_returns_data() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::FrFcfs));
        let a = addr_at(3, BankAddr::new(0, 0), 4);
        c.enqueue(Request::write(a, [0x42; 32]));
        c.enqueue(Request::read(a));
        let done = c.run_to_completion();
        assert_eq!(done.len(), 2);
        let rd = done.iter().find(|d| d.kind == RequestKind::Read).unwrap();
        assert_eq!(rd.data, Some([0x42; 32]));
    }

    #[test]
    fn frfcfs_reorders_row_hits_ahead_of_misses() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::FrFcfs));
        let bank = BankAddr::new(0, 0);
        // Open row 0 with a first read.
        c.enqueue(Request::read(addr_at(0, bank, 0)));
        let _ = c.drain_one().unwrap();
        // Now a row-miss request (row 1) arrives before a row-hit (row 0).
        c.enqueue(Request::read(addr_at(1, bank, 0))); // seq 1, conflict
        c.enqueue(Request::read(addr_at(0, bank, 1))); // seq 2, hit
        let done = c.run_to_completion();
        assert_eq!(done[0].seq, 2, "row hit must be served first");
        assert_eq!(done[1].seq, 1);
        assert!(c.stats().reordered >= 1);
        let s = c.stats();
        // First read was a miss (opened row 0); seq 2 hit it; seq 1 conflicted.
        assert_eq!((s.row_misses, s.row_hits, s.row_conflicts), (1, 1, 1));
    }

    #[test]
    fn inorder_preserves_arrival_order() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::InOrder));
        let bank = BankAddr::new(0, 0);
        c.enqueue(Request::read(addr_at(1, bank, 0)));
        c.enqueue(Request::read(addr_at(0, bank, 1)));
        c.enqueue(Request::read(addr_at(1, bank, 2)));
        let done = c.run_to_completion();
        let seqs: Vec<u64> = done.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(c.stats().reordered, 0);
    }

    #[test]
    fn row_hit_miss_conflict_accounting() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::InOrder));
        let bank = BankAddr::new(1, 1);
        c.enqueue(Request::read(addr_at(0, bank, 0))); // miss (opens row 0)
        c.enqueue(Request::read(addr_at(0, bank, 1))); // hit
        c.enqueue(Request::read(addr_at(2, bank, 0))); // conflict (closes 0)
        c.run_to_completion();
        let s = c.stats();
        assert_eq!((s.row_misses, s.row_hits, s.row_conflicts), (1, 1, 1));
    }

    #[test]
    fn bank_level_parallelism_overlaps_activates() {
        // Reads to different bank groups should take far less than the
        // serialized time: ACTs overlap under tRRD_S.
        let t = TimingParams::hbm2();
        let mut c = MemoryController::new(cfg(SchedulingPolicy::FrFcfs));
        for bg in 0..4u8 {
            c.enqueue(Request::read(addr_at(0, BankAddr::new(bg, 0), 0)));
        }
        let done = c.run_to_completion();
        let last = done.iter().map(|d| d.completed_at).max().unwrap();
        // Serialized would be ~4 × (tRCD + tCL + tBL); overlapped should be
        // roughly tRRD_S*3 + tRCD + tCL + tBL plus small slack.
        let serialized = 4 * (t.t_rcd + t.t_cl + t.t_bl);
        assert!(
            last < serialized,
            "last completion {last} not overlapped (serialized {serialized})"
        );
    }

    #[test]
    fn refresh_is_injected_when_enabled() {
        let mut c =
            MemoryController::new(ControllerConfig { refresh_enabled: true, ..Default::default() });
        // Jump past tREFI and touch the channel.
        let t = c.config.timing.clone();
        c.advance_to(t.t_refi + 1);
        c.enqueue(Request::read(addr_at(0, BankAddr::new(0, 0), 0)));
        c.run_to_completion();
        assert_eq!(c.sink().stats().refreshes, 1);
    }

    #[test]
    fn raw_issue_preserves_program_order() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::FrFcfs));
        let bank = BankAddr::new(0, 0);
        let end = c.issue_raw(&[
            Command::Act { bank, row: 5 },
            Command::Wr { bank, col: 0, data: [9; 32] },
            Command::Rd { bank, col: 0 },
            Command::Pre { bank },
        ]);
        assert!(end > 0);
        assert_eq!(c.sink().stats().reads, 1);
        assert!(c.sink().all_banks_closed());
    }

    #[test]
    fn closed_page_wins_on_sparse_random_rows() {
        // One request at a time to a fresh row, with idle gaps between
        // arrivals: closed-page hides tRP in the gap, open-page pays the
        // conflict (PRE then ACT) on the critical path of every request.
        let run = |page_policy: PagePolicy| {
            let mut c = MemoryController::new(ControllerConfig {
                policy: SchedulingPolicy::InOrder,
                page_policy,
                refresh_enabled: false,
                ..Default::default()
            });
            let bank = BankAddr::new(0, 0);
            let mut last = 0;
            for i in 0..16u32 {
                c.enqueue(Request::read(addr_at(i % 7, bank, 0)));
                last = c.run_to_completion().last().unwrap().completed_at;
                // Idle gap before the next arrival (long enough for the
                // auto-precharge to complete in the background).
                let gap_end = c.now() + 60;
                c.advance_to(gap_end);
            }
            last
        };
        let open = run(PagePolicy::Open);
        let closed = run(PagePolicy::Closed);
        assert!(closed < open, "closed {closed} should beat open {open} on sparse random rows");
    }

    #[test]
    fn open_page_wins_on_streaming_rows() {
        let run = |page_policy: PagePolicy| {
            let mut c = MemoryController::new(ControllerConfig {
                policy: SchedulingPolicy::InOrder,
                page_policy,
                refresh_enabled: false,
                ..Default::default()
            });
            let bank = BankAddr::new(0, 0);
            for col in 0..16u32 {
                c.enqueue(Request::read(addr_at(0, bank, col)));
            }
            let done = c.run_to_completion();
            (done.last().unwrap().completed_at, c.stats().row_hits)
        };
        let (open, open_hits) = run(PagePolicy::Open);
        let (closed, _) = run(PagePolicy::Closed);
        assert!(open <= closed, "open {open} should not lose to closed {closed} when streaming");
        assert_eq!(open_hits, 15, "every request after the first hits the open row");
    }

    #[test]
    fn closed_page_keeps_rows_open_for_pending_hits() {
        // Two same-row requests enqueued together: the auto-precharge must
        // not fire between them.
        let mut c = MemoryController::new(ControllerConfig {
            policy: SchedulingPolicy::InOrder,
            page_policy: PagePolicy::Closed,
            refresh_enabled: false,
            ..Default::default()
        });
        let bank = BankAddr::new(2, 0);
        c.enqueue(Request::read(addr_at(4, bank, 0)));
        c.enqueue(Request::read(addr_at(4, bank, 1)));
        c.run_to_completion();
        assert_eq!(c.stats().row_hits, 1, "second request hits before auto-precharge");
        // And after draining, the bank is closed.
        assert_eq!(c.sink().open_row(bank), None);
    }

    #[test]
    fn recorder_counters_match_stats() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::InOrder));
        c.set_recorder(Recorder::vec(), 0);
        let bank = BankAddr::new(1, 1);
        c.enqueue(Request::read(addr_at(0, bank, 0))); // miss
        c.enqueue(Request::read(addr_at(0, bank, 1))); // hit
        c.enqueue(Request::read(addr_at(2, bank, 0))); // conflict
        c.run_to_completion();
        let r = c.recorder().unwrap();
        let m = r.metrics().registry;
        assert_eq!(m.counter(names::CTRL_ROW_MISS), c.stats().row_misses);
        assert_eq!(m.counter(names::CTRL_ROW_HIT), c.stats().row_hits);
        assert_eq!(m.counter(names::CTRL_ROW_CONFLICT), c.stats().row_conflicts);
        assert_eq!(m.counter(names::CTRL_COMPLETED), 3);
        assert_eq!(m.histogram(names::CTRL_QUEUE_DEPTH).unwrap().count(), 3);
        let events = r.events().unwrap();
        assert!(events.iter().any(|e| e.name == "ACT"));
        assert!(events.iter().any(|e| e.name == "RD"));
        assert_eq!(c.stats().total_requests(), c.stats().completed);
    }

    #[test]
    fn raw_path_classifies_rows_into_metrics_only() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::FrFcfs));
        c.set_recorder(Recorder::vec(), 2);
        let bank = BankAddr::new(0, 0);
        c.issue_raw(&[
            Command::Act { bank, row: 5 },               // miss (first open)
            Command::Wr { bank, col: 0, data: [1; 32] }, // hit
            Command::Rd { bank, col: 0 },                // hit
            Command::Pre { bank },
            Command::Act { bank, row: 6 }, // conflict (row changed)
        ]);
        let m = c.recorder().unwrap().metrics().registry;
        assert_eq!(m.counter(names::CTRL_RAW_COMMANDS), 5);
        assert_eq!(m.counter(names::CTRL_ROW_MISS), 1);
        assert_eq!(m.counter(names::CTRL_ROW_HIT), 2);
        assert_eq!(m.counter(names::CTRL_ROW_CONFLICT), 1);
        // ControllerStats stays a queued-request measure.
        assert_eq!(c.stats().completed, 0);
        assert_eq!(c.stats().total_requests(), 0);
    }

    #[test]
    #[should_panic(expected = "routes to pCH")]
    fn wrong_channel_address_rejected() {
        let mut c = MemoryController::new(cfg(SchedulingPolicy::FrFcfs));
        // 256 bytes in: maps to pCH 1.
        c.enqueue(Request::read(256));
    }

    #[test]
    fn controller_is_send() {
        // The parallel execution backend moves whole controllers onto
        // scoped worker threads; this fails to compile if any field (sink,
        // recorder, queue) regresses to a thread-bound type.
        fn assert_send<T: Send>() {}
        assert_send::<MemoryController<PseudoChannel>>();
    }
}
