//! Plain-text timing configuration files, DRAMSim2 style.
//!
//! The paper's own design-space exploration ran on "a modified version of
//! DRAMSim2" (Section VII-D), which reads `key=value` device files. This
//! module gives the reproduction the same workflow: timing parameter sets
//! load from text, so experiments can swap devices without recompiling.
//!
//! Format: one `KEY=value` per line, `;` or `#` comments, keys matching
//! the [`crate::TimingParams`] fields in upper snake case (e.g. `TCCD_L=4`).
//! Unknown keys are errors (typos must not silently become defaults);
//! missing keys inherit from the base preset named by `BASE=` (default
//! `hbm2`).

use crate::timing::TimingParams;
use std::fmt;

/// A configuration-file parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Line of the error (0 for file-level problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn base_preset(name: &str, line: usize) -> Result<TimingParams, ConfigError> {
    match name {
        "hbm2" => Ok(TimingParams::hbm2()),
        "hbm2_2gbps" => Ok(TimingParams::hbm2_2gbps()),
        "gddr6" => Ok(TimingParams::gddr6()),
        "lpddr5" => Ok(TimingParams::lpddr5()),
        "ddr5" => Ok(TimingParams::ddr5()),
        other => Err(ConfigError {
            line,
            message: format!(
                "unknown BASE preset `{other}` (expected hbm2, hbm2_2gbps, gddr6, lpddr5, ddr5)"
            ),
        }),
    }
}

/// Parses a timing configuration from text.
///
/// # Errors
///
/// Returns a [`ConfigError`] for syntax problems, unknown keys, unknown
/// base presets, or a final parameter set that fails
/// [`TimingParams::validate`].
///
/// ```
/// use pim_dram::config_file::parse_timing;
/// let t = parse_timing("BASE=hbm2\nTCCD_L = 6 ; slower bank group\n").unwrap();
/// assert_eq!(t.t_ccd_l, 6);
/// ```
pub fn parse_timing(source: &str) -> Result<TimingParams, ConfigError> {
    // First pass: find the base.
    let mut base = TimingParams::hbm2();
    let mut assignments: Vec<(usize, String, String)> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let Some((key, value)) = text.split_once('=') else {
            return Err(ConfigError { line, message: format!("expected KEY=value, got `{text}`") });
        };
        let key = key.trim().to_ascii_uppercase();
        let value = value.trim().to_string();
        if key == "BASE" {
            base = base_preset(&value, line)?;
        } else {
            assignments.push((line, key, value));
        }
    }
    let mut t = base;
    let mut trc_explicit = false;
    for (line, key, value) in assignments {
        let v: u64 = value.parse().map_err(|_| ConfigError {
            line,
            message: format!("`{key}` needs an unsigned integer, got `{value}`"),
        })?;
        match key.as_str() {
            "BUS_MHZ" => t.bus_mhz = v,
            "TRCD" => t.t_rcd = v,
            "TRP" => t.t_rp = v,
            "TRAS" => t.t_ras = v,
            "TRC" => {
                t.t_rc = v;
                trc_explicit = true;
            }
            "TCCD_S" => t.t_ccd_s = v,
            "TCCD_L" => t.t_ccd_l = v,
            "TRRD_S" => t.t_rrd_s = v,
            "TRRD_L" => t.t_rrd_l = v,
            "TFAW" => t.t_faw = v,
            "TCL" => t.t_cl = v,
            "TWL" => t.t_wl = v,
            "TBL" => t.t_bl = v,
            "TWR" => t.t_wr = v,
            "TRTP" => t.t_rtp = v,
            "TWTR" => t.t_wtr = v,
            "TRTW" => t.t_rtw = v,
            "TREFI" => t.t_refi = v,
            "TRFC" => t.t_rfc = v,
            other => {
                return Err(ConfigError {
                    line,
                    message: format!("unknown timing parameter `{other}`"),
                })
            }
        }
    }
    // tRC is structurally tRAS + tRP; recompute unless explicitly set.
    if !trc_explicit {
        t.t_rc = t.t_ras + t.t_rp;
    }
    t.validate().map_err(|m| ConfigError { line: 0, message: m })?;
    Ok(t)
}

/// Serializes a parameter set back to the file format (inverse of
/// [`parse_timing`] for round-trip workflows).
pub fn render_timing(t: &TimingParams) -> String {
    format!(
        "BUS_MHZ={}\nTRCD={}\nTRP={}\nTRAS={}\nTRC={}\nTCCD_S={}\nTCCD_L={}\n\
         TRRD_S={}\nTRRD_L={}\nTFAW={}\nTCL={}\nTWL={}\nTBL={}\nTWR={}\nTRTP={}\n\
         TWTR={}\nTRTW={}\nTREFI={}\nTRFC={}\n",
        t.bus_mhz,
        t.t_rcd,
        t.t_rp,
        t.t_ras,
        t.t_rc,
        t.t_ccd_s,
        t.t_ccd_l,
        t.t_rrd_s,
        t.t_rrd_l,
        t.t_faw,
        t.t_cl,
        t.t_wl,
        t.t_bl,
        t.t_wr,
        t.t_rtp,
        t.t_wtr,
        t.t_rtw,
        t.t_refi,
        t.t_rfc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_hbm2() {
        let t = parse_timing("").unwrap();
        assert_eq!(t, TimingParams::hbm2());
    }

    #[test]
    fn base_selection_and_overrides() {
        let t = parse_timing("BASE=gddr6\nTCL=30\n").unwrap();
        assert_eq!(t.bus_mhz, TimingParams::gddr6().bus_mhz);
        assert_eq!(t.t_cl, 30);
    }

    #[test]
    fn comments_whitespace_and_case() {
        let t = parse_timing("# header\n  tccd_l = 8  ; slow\n\n").unwrap();
        assert_eq!(t.t_ccd_l, 8);
    }

    #[test]
    fn trc_recomputed_from_ras_rp() {
        let t = parse_timing("TRAS=50\nTRP=20\n").unwrap();
        assert_eq!(t.t_rc, 70);
        // Explicit TRC wins (and must still validate).
        let e = parse_timing("TRAS=50\nTRP=20\nTRC=60\n").unwrap_err();
        assert!(e.message.contains("tRC"));
    }

    #[test]
    fn errors_are_precise() {
        let e = parse_timing("TCCD_X=4").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("TCCD_X"));
        let e = parse_timing("TCL=fast").unwrap_err();
        assert!(e.message.contains("unsigned integer"));
        let e = parse_timing("garbage line").unwrap_err();
        assert!(e.message.contains("KEY=value"));
        let e = parse_timing("BASE=hbm9").unwrap_err();
        assert!(e.message.contains("hbm9"));
    }

    #[test]
    fn invalid_final_set_rejected() {
        let e = parse_timing("TCCD_L=1\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("tCCD_L"));
    }

    #[test]
    fn render_parse_roundtrip() {
        for t in [
            TimingParams::hbm2(),
            TimingParams::gddr6(),
            TimingParams::lpddr5(),
            TimingParams::ddr5(),
        ] {
            let text = render_timing(&t);
            let back = parse_timing(&text).unwrap();
            assert_eq!(back, t);
        }
    }
}
