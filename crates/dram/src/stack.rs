//! An HBM stack ("cube"): 16 independent pseudo channels with per-channel
//! controllers.
//!
//! The paper's evaluation system 2.5D-integrates **four** stacks with the
//! processor (Section VI), for 64 pseudo channels total; `pim-host` composes
//! multiple stacks. Each pseudo channel has its own controller because "the
//! host processor can independently control PIM operations of each memory
//! channel" (Section III-A).

use crate::channel::CommandSink;
use crate::controller::{ControllerConfig, MemoryController};
use crate::mapping::AddressMapping;
use crate::request::{CompletedRequest, Request};
use crate::timing::Cycle;

/// A set of 16 pseudo channels, each behind its own [`MemoryController`].
///
/// Generic over the sink type so the same stack plumbing serves plain HBM2
/// (`HbmStack<PseudoChannel>`) and PIM-HBM (`HbmStack<PimChannel>` in
/// `pim-core`).
#[derive(Debug)]
pub struct HbmStack<S: CommandSink> {
    controllers: Vec<MemoryController<S>>,
    mapping: AddressMapping,
}

impl<S: CommandSink> HbmStack<S> {
    /// Builds a stack by constructing one sink per pseudo channel.
    pub fn from_sinks<F>(config: &ControllerConfig, mut make_sink: F) -> HbmStack<S>
    where
        F: FnMut(usize) -> S,
    {
        let mapping = config.mapping.clone();
        let controllers = (0..mapping.pch_count())
            .map(|pch| {
                let mut c = config.clone();
                c.pch_id = pch;
                MemoryController::with_sink(c, make_sink(pch))
            })
            .collect();
        HbmStack { controllers, mapping }
    }

    /// The stack's address mapping.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Number of pseudo channels.
    pub fn pch_count(&self) -> usize {
        self.controllers.len()
    }

    /// The controller for a pseudo channel.
    pub fn controller(&self, pch: usize) -> &MemoryController<S> {
        &self.controllers[pch]
    }

    /// Mutable controller access.
    pub fn controller_mut(&mut self, pch: usize) -> &mut MemoryController<S> {
        &mut self.controllers[pch]
    }

    /// Routes a request to its channel by physical address.
    pub fn enqueue(&mut self, req: Request) {
        let pch = self.mapping.decode(req.addr).pch;
        self.controllers[pch].enqueue(req);
    }

    /// Drains every channel; returns all completions (per-channel completion
    /// order, channels concatenated) and the cycle at which the slowest
    /// channel finished.
    ///
    /// Channels run in parallel in real hardware; the returned `finish`
    /// cycle is the max over channels, which is the system-level latency.
    /// The reduction goes through [`merge_runs`] so it is the exact same
    /// code regardless of how the per-channel drains were ordered.
    pub fn run_all(&mut self) -> (Vec<CompletedRequest>, Cycle) {
        merge_runs(self.controllers.iter_mut().map(|c| c.run_to_completion()))
    }

    /// Synchronizes all channels' local clocks to the latest one — a global
    /// barrier, as issued between dependent PIM kernel phases.
    pub fn barrier(&mut self) -> Cycle {
        let now = self.controllers.iter().map(|c| c.now()).max().unwrap_or(0);
        for c in &mut self.controllers {
            c.advance_to(now);
        }
        now
    }
}

/// Folds per-channel completion lists (in stable channel-index order) into
/// one completion vector plus the system-level finish cycle (max of the
/// per-channel last completions).
///
/// This is the single reduction used for channel-level fan-in: sequential
/// drains ([`HbmStack::run_all`]) and any parallel driver that collects
/// per-channel results must feed this helper in channel-index order, so the
/// merged output is identical no matter where each channel actually ran.
pub fn merge_runs(
    per_channel: impl IntoIterator<Item = Vec<CompletedRequest>>,
) -> (Vec<CompletedRequest>, Cycle) {
    let mut done = Vec::new();
    let mut finish = 0;
    for d in per_channel {
        if let Some(last) = d.iter().map(|r| r.completed_at).max() {
            finish = finish.max(last);
        }
        done.extend(d);
    }
    (done, finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PseudoChannel;
    use crate::{ControllerConfig, TimingParams};

    fn stack() -> HbmStack<PseudoChannel> {
        let cfg = ControllerConfig { refresh_enabled: false, ..Default::default() };
        HbmStack::from_sinks(&cfg, |_| PseudoChannel::new(TimingParams::hbm2()))
    }

    #[test]
    fn routes_by_address() {
        let mut s = stack();
        // 256-byte stride sweeps channels.
        for i in 0..16u64 {
            s.enqueue(Request::write(i * 256, [i as u8; 32]));
        }
        let (done, _) = s.run_all();
        assert_eq!(done.len(), 16);
        for pch in 0..16 {
            assert_eq!(s.controller(pch).sink().stats().writes, 1, "pch {pch}");
        }
    }

    #[test]
    fn write_then_read_across_channels() {
        let mut s = stack();
        for i in 0..32u64 {
            s.enqueue(Request::write(i * 32, [(i + 1) as u8; 32]));
        }
        s.run_all();
        for i in 0..32u64 {
            s.enqueue(Request::read(i * 32));
        }
        let (done, _) = s.run_all();
        for d in done {
            let i = d.addr / 32;
            assert_eq!(d.data, Some([(i + 1) as u8; 32]));
        }
    }

    #[test]
    fn parallel_channels_finish_concurrently() {
        let mut s = stack();
        // One read per channel: the stack finish time equals a single
        // channel's latency, not 16×.
        for i in 0..16u64 {
            s.enqueue(Request::read(i * 256));
        }
        let (_, finish) = s.run_all();
        let t = TimingParams::hbm2();
        assert_eq!(finish, t.t_rcd + t.t_cl + t.t_bl);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut s = stack();
        s.enqueue(Request::read(0));
        s.run_all();
        let now = s.barrier();
        assert!(now > 0);
        for pch in 0..16 {
            assert_eq!(s.controller(pch).now(), now);
        }
    }
}
