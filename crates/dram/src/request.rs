//! Memory requests as seen by the memory controller.

use crate::command::DataBlock;
use crate::timing::Cycle;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A 32-byte read.
    Read,
    /// A 32-byte write.
    Write,
}

/// A 32-byte memory request addressed by physical address.
///
/// Requests must be 32-byte aligned: one request maps to exactly one DRAM
/// column command, the access granularity shared by the host and the PIM
/// execution units (Section III-A: "each PIM execution unit accesses the
/// memory at the same data access granularity as the host processor").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Read or write.
    pub kind: RequestKind,
    /// Physical byte address (32-byte aligned).
    pub addr: u64,
    /// Write payload (writes only).
    pub data: Option<DataBlock>,
    /// Cycle the request arrived at the controller; filled by
    /// [`crate::MemoryController::enqueue`].
    pub(crate) arrival: Cycle,
    /// Arrival sequence number (program order).
    pub(crate) seq: u64,
}

impl Request {
    /// Creates a read request.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 32-byte aligned.
    pub fn read(addr: u64) -> Request {
        assert_eq!(addr % 32, 0, "requests must be 32-byte aligned");
        Request { kind: RequestKind::Read, addr, data: None, arrival: 0, seq: 0 }
    }

    /// Creates a write request.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 32-byte aligned.
    pub fn write(addr: u64, data: DataBlock) -> Request {
        assert_eq!(addr % 32, 0, "requests must be 32-byte aligned");
        Request { kind: RequestKind::Write, addr, data: Some(data), arrival: 0, seq: 0 }
    }
}

/// A finished request, in completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The original request's arrival sequence number.
    pub seq: u64,
    /// Physical address.
    pub addr: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Data returned (reads only).
    pub data: Option<DataBlock>,
    /// Cycle the column command issued.
    pub issued_at: Cycle,
    /// Cycle the data crossed the bus.
    pub completed_at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_payload() {
        let r = Request::read(64);
        assert_eq!(r.kind, RequestKind::Read);
        assert!(r.data.is_none());
        let w = Request::write(96, [1; 32]);
        assert_eq!(w.kind, RequestKind::Write);
        assert_eq!(w.data, Some([1; 32]));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_request_panics() {
        Request::read(33);
    }
}
