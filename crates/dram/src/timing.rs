//! HBM2 timing parameters.
//!
//! All parameters are expressed in memory-bus clock cycles (`tCK`). The
//! paper's PIM-HBM runs the bus at 1.0–1.2 GHz (2.0–2.4 Gbps/pin, Table V);
//! the default parameter set below corresponds to the 1.2 GHz operating
//! point. The DRAM core (and the PIM execution unit) runs at bus/4 =
//! 300 MHz, which is why back-to-back column commands to the same bank group
//! are spaced tCCD_L = 4 tCK apart while commands to different bank groups
//! may issue every tCCD_S = 2 tCK (Section III-B).

/// A point in time, in memory-bus clock cycles.
pub type Cycle = u64;

/// The complete set of DRAM timing parameters used by the simulator.
///
/// Values follow JESD235 HBM2 at 2.4 Gbps with typical latencies from the
/// 20nm HBM2 design the paper builds on (Sohn et al., JSSC 2017 \[51\]).
/// Absolute values shift results by constants; every paper result we
/// reproduce is a *ratio*, which depends on the structural parameters
/// (tCCD_S vs tCCD_L, burst length, bank count) that are exact.
///
/// # Example
///
/// ```
/// use pim_dram::TimingParams;
/// let t = TimingParams::hbm2();
/// assert_eq!(t.t_ccd_l, 2 * t.t_ccd_s);
/// assert_eq!(t.peak_pch_bandwidth_gbs(), 19.2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingParams {
    /// Bus clock frequency in MHz (data rate is 2× this).
    pub bus_mhz: u64,
    /// ACT to internal read/write delay (row to column delay).
    pub t_rcd: Cycle,
    /// PRE to ACT delay (row precharge time).
    pub t_rp: Cycle,
    /// ACT to PRE minimum (row active time).
    pub t_ras: Cycle,
    /// ACT to ACT to the same bank (== tRAS + tRP).
    pub t_rc: Cycle,
    /// Column command to column command, different bank group.
    pub t_ccd_s: Cycle,
    /// Column command to column command, same bank group.
    pub t_ccd_l: Cycle,
    /// ACT to ACT, different bank group.
    pub t_rrd_s: Cycle,
    /// ACT to ACT, same bank group.
    pub t_rrd_l: Cycle,
    /// Four-activate window: at most 4 ACTs per pseudo channel in this window.
    pub t_faw: Cycle,
    /// Read CAS latency (column command to first data beat).
    pub t_cl: Cycle,
    /// Write CAS latency.
    pub t_wl: Cycle,
    /// Burst length in cycles (BL4 on a 64-bit pCH bus → 32 bytes).
    pub t_bl: Cycle,
    /// Write recovery: last write data beat to PRE.
    pub t_wr: Cycle,
    /// Read to PRE delay.
    pub t_rtp: Cycle,
    /// Write data end to read command, same pseudo channel.
    pub t_wtr: Cycle,
    /// Read command to write command spacing (bus turnaround).
    pub t_rtw: Cycle,
    /// Average refresh interval.
    pub t_refi: Cycle,
    /// Refresh cycle time (all banks busy).
    pub t_rfc: Cycle,
}

impl TimingParams {
    /// HBM2 at 2.4 Gbps/pin (bus 1.2 GHz), the paper's Table V operating
    /// point.
    pub fn hbm2() -> TimingParams {
        TimingParams {
            bus_mhz: 1200,
            t_rcd: 17,
            t_rp: 17,
            t_ras: 40,
            t_rc: 57,
            t_ccd_s: 2,
            t_ccd_l: 4,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 16,
            t_cl: 17,
            t_wl: 7,
            t_bl: 4,
            t_wr: 19,
            t_rtp: 5,
            t_wtr: 9,
            t_rtw: 8,
            t_refi: 4680,
            t_rfc: 312,
        }
    }

    /// HBM2 at 2.0 Gbps/pin (bus 1.0 GHz), the paper's lower operating point
    /// (Table V: 1–1.2 GHz external clocking).
    pub fn hbm2_2gbps() -> TimingParams {
        let mut t = TimingParams::hbm2();
        t.bus_mhz = 1000;
        // Latency in nanoseconds is constant; in cycles it scales with
        // frequency. 1.0/1.2 of the 2.4 Gbps values, rounded up.
        t.t_rcd = 15;
        t.t_rp = 15;
        t.t_ras = 34;
        t.t_rc = 49;
        t.t_cl = 15;
        t.t_wr = 16;
        t.t_refi = 3900;
        t.t_rfc = 260;
        t
    }

    /// GDDR6 at 16 Gbps/pin (bus 8 GHz effective; modeled at the command
    /// clock). The paper notes the architecture "is applicable to any
    /// standard DRAM such as DDR, LPDDR, and GDDR DRAM with a few changes"
    /// (Section III); these presets quantify the claim — see the
    /// `dram_generations` binary.
    pub fn gddr6() -> TimingParams {
        TimingParams {
            bus_mhz: 2000, // command clock (WCK runs 4x)
            t_rcd: 24,
            t_rp: 24,
            t_ras: 52,
            t_rc: 76,
            t_ccd_s: 2,
            t_ccd_l: 4,
            t_rrd_s: 6,
            t_rrd_l: 8,
            t_faw: 24,
            t_cl: 24,
            t_wl: 8,
            t_bl: 4,
            t_wr: 24,
            t_rtp: 6,
            t_wtr: 10,
            t_rtw: 10,
            t_refi: 7800,
            t_rfc: 560,
        }
    }

    /// LPDDR5 at 6.4 Gbps/pin.
    pub fn lpddr5() -> TimingParams {
        TimingParams {
            bus_mhz: 800,
            t_rcd: 15,
            t_rp: 15,
            t_ras: 34,
            t_rc: 49,
            t_ccd_s: 2,
            t_ccd_l: 4,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 16,
            t_cl: 15,
            t_wl: 7,
            t_bl: 8, // BL16 on a 16-bit channel
            t_wr: 14,
            t_rtp: 6,
            t_wtr: 8,
            t_rtw: 8,
            t_refi: 3100,
            t_rfc: 224,
        }
    }

    /// DDR5-4800.
    pub fn ddr5() -> TimingParams {
        TimingParams {
            bus_mhz: 2400,
            t_rcd: 39,
            t_rp: 39,
            t_ras: 77,
            t_rc: 116,
            t_ccd_s: 8,
            t_ccd_l: 16,
            t_rrd_s: 8,
            t_rrd_l: 12,
            t_faw: 32,
            t_cl: 40,
            t_wl: 38,
            t_bl: 8,
            t_wr: 72,
            t_rtp: 18,
            t_wtr: 22,
            t_rtw: 16,
            t_refi: 9360,
            t_rfc: 984,
        }
    }

    /// The structural PIM compute-bandwidth gain over the standard
    /// interface for a device with `banks` banks per channel: all banks
    /// respond per tCCD_L instead of one per tCCD_S — "the compute
    /// bandwidth improves by a half of the number of banks" when tCCD_L is
    /// twice tCCD_S (Section III-B), independent of generation.
    pub fn pim_bandwidth_gain(&self, banks: usize) -> f64 {
        banks as f64 * self.t_ccd_s as f64 / self.t_ccd_l as f64
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relation. The relations
    /// are the structural ones the simulator relies on (e.g. `tRC = tRAS +
    /// tRP`, `tCCD_L >= tCCD_S`).
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc != self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must equal tRAS + tRP ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_ccd_l < self.t_ccd_s {
            return Err("tCCD_L must be >= tCCD_S".into());
        }
        if self.t_rrd_l < self.t_rrd_s {
            return Err("tRRD_L must be >= tRRD_S".into());
        }
        if self.t_bl == 0 || self.t_ccd_s == 0 {
            return Err("burst length and tCCD_S must be nonzero".into());
        }
        if self.t_refi <= self.t_rfc {
            return Err("tREFI must exceed tRFC".into());
        }
        Ok(())
    }

    /// Peak bandwidth of one pseudo channel in GB/s as seen by the host:
    /// 32 bytes per tCCD_S-spaced column command on the 64-bit bus.
    ///
    /// At 1.2 GHz this is 19.2 GB/s/pCH → 307.2 GB/s per 16-pCH stack,
    /// matching Table V's off-chip (I/O) bandwidth.
    pub fn peak_pch_bandwidth_gbs(&self) -> f64 {
        let bytes_per_cmd = 32.0;
        let cmds_per_sec = self.bus_mhz as f64 * 1e6 / self.t_ccd_s as f64;
        bytes_per_cmd * cmds_per_sec / 1e9
    }

    /// Peak *on-chip* bandwidth of one pseudo channel in all-bank (PIM) mode:
    /// 16 banks × 32 bytes per tCCD_L-spaced command.
    ///
    /// At 1.2 GHz this is 153.6 GB/s/pCH → 2.458 TB/s per stack gross; the
    /// paper's Table V reports 1.229 TB/s because one PIM execution unit
    /// serves two banks, so 8 banks' worth of operands is consumed per
    /// command ("8 operating banks per pCH", Section VI).
    pub fn peak_pch_allbank_bandwidth_gbs(&self, operating_banks: usize) -> f64 {
        let bytes_per_cmd = 32.0 * operating_banks as f64;
        let cmds_per_sec = self.bus_mhz as f64 * 1e6 / self.t_ccd_l as f64;
        bytes_per_cmd * cmds_per_sec / 1e9
    }

    /// Nanoseconds per bus cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e3 / self.bus_mhz as f64
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: Cycle) -> f64 {
        cycles as f64 / (self.bus_mhz as f64 * 1e6)
    }
}

impl Default for TimingParams {
    fn default() -> TimingParams {
        TimingParams::hbm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_is_valid() {
        TimingParams::hbm2().validate().unwrap();
        TimingParams::hbm2_2gbps().validate().unwrap();
    }

    #[test]
    fn all_generation_presets_are_valid() {
        for t in [TimingParams::gddr6(), TimingParams::lpddr5(), TimingParams::ddr5()] {
            t.validate().unwrap();
        }
    }

    #[test]
    fn pim_gain_is_half_the_banks_when_ccd_doubles() {
        // HBM2/GDDR6/LPDDR5 all have tCCD_L = 2·tCCD_S → gain = banks/2.
        assert_eq!(TimingParams::hbm2().pim_bandwidth_gain(16), 8.0);
        assert_eq!(TimingParams::gddr6().pim_bandwidth_gain(16), 8.0);
        assert_eq!(TimingParams::lpddr5().pim_bandwidth_gain(16), 8.0);
        // DDR5-4800's tCCD_L/tCCD_S is also 2, with 32 banks per channel.
        assert_eq!(TimingParams::ddr5().pim_bandwidth_gain(32), 16.0);
    }

    #[test]
    fn ccd_ratio_is_two() {
        // The paper: "tCCD_S (2 tCK) is typically a half of tCCD_L (4 tCK)",
        // which is why AB mode yields 8× (= 16 banks / 2) bandwidth.
        let t = TimingParams::hbm2();
        assert_eq!(t.t_ccd_s, 2);
        assert_eq!(t.t_ccd_l, 4);
    }

    #[test]
    fn table5_offchip_bandwidth() {
        // 19.2 GB/s per pCH × 16 pCH = 307.2 GB/s per stack (Table V).
        let t = TimingParams::hbm2();
        let stack = t.peak_pch_bandwidth_gbs() * 16.0;
        assert!((stack - 307.2).abs() < 1e-9, "got {stack}");
    }

    #[test]
    fn table5_onchip_bandwidth() {
        // 8 operating banks per pCH × 16 pCH = 1.2288 TB/s (Table V:
        // "1TB/s~1.229TB/s").
        let t = TimingParams::hbm2();
        let stack = t.peak_pch_allbank_bandwidth_gbs(8) * 16.0;
        assert!((stack - 1228.8).abs() < 1e-6, "got {stack}");
        // And the 2.0 Gbps point gives the 1 TB/s lower bound.
        let t0 = TimingParams::hbm2_2gbps();
        let stack0 = t0.peak_pch_allbank_bandwidth_gbs(8) * 16.0;
        assert!((stack0 - 1024.0).abs() < 1e-6, "got {stack0}");
    }

    #[test]
    fn ab_mode_bandwidth_ratio_is_8x() {
        // Section III-B: "the compute bandwidth improves by a half of the
        // number of banks" = 16/2 = 8×, comparing all 16 banks at tCCD_L
        // against the host's tCCD_S stream.
        let t = TimingParams::hbm2();
        let ratio = t.peak_pch_allbank_bandwidth_gbs(16) / t.peak_pch_bandwidth_gbs();
        assert!((ratio - 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_sets_are_rejected() {
        let mut t = TimingParams::hbm2();
        t.t_rc = 1;
        assert!(t.validate().is_err());
        let mut t = TimingParams::hbm2();
        t.t_ccd_l = 1;
        assert!(t.validate().is_err());
        let mut t = TimingParams::hbm2();
        t.t_rfc = t.t_refi + 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn cycle_time_conversions() {
        let t = TimingParams::hbm2();
        assert!((t.ns_per_cycle() - 0.8333).abs() < 1e-3);
        assert!((t.cycles_to_seconds(1_200_000_000) - 1.0).abs() < 1e-12);
    }
}
