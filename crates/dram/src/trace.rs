//! Command tracing: a decorator that records every command a sink accepts.
//!
//! DRAMSim2-style command traces are the debugging backbone of memory
//! system work; [`TracingSink`] wraps any [`CommandSink`] (a plain channel
//! or a PIM device) without perturbing timing, records up to a bounded
//! number of entries, and renders a human-readable log. The PIM executor's
//! whole choreography — mode transitions, CRF programming, triggers — can
//! be inspected as the standard-command stream it really is.

use crate::channel::{CommandSink, IssueError, IssueOutcome};
use crate::command::{BankAddr, Command};
use crate::timing::{Cycle, TimingParams};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One recorded command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue cycle.
    pub cycle: Cycle,
    /// The command (write payloads preserved).
    pub command: Command,
    /// Whether the sink accepted it.
    pub accepted: bool,
}

/// A [`CommandSink`] decorator that records issued commands.
///
/// # Example
///
/// ```
/// use pim_dram::{TracingSink, PseudoChannel, CommandSink, Command, BankAddr, TimingParams};
///
/// let mut ch = TracingSink::new(PseudoChannel::new(TimingParams::hbm2()), 128);
/// let bank = BankAddr::new(0, 0);
/// ch.issue(&Command::Act { bank, row: 3 }, 0).unwrap();
/// assert_eq!(ch.len(), 1);
/// assert!(ch.render().contains("ACT"));
/// ```
#[derive(Debug)]
pub struct TracingSink<S: CommandSink> {
    inner: S,
    trace: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl<S: CommandSink> TracingSink<S> {
    /// Wraps `inner`, keeping the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: S, capacity: usize) -> TracingSink<S> {
        assert!(capacity > 0, "trace capacity must be nonzero");
        TracingSink { inner, trace: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped sink.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps, discarding the trace.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The recorded entries, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter()
    }

    /// The recorded entries, oldest first (alias of [`TracingSink::trace`]
    /// with a concrete iterator type; also available via `&sink` in a
    /// `for` loop).
    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, TraceEntry> {
        self.trace.iter()
    }

    /// `true` if no entries were evicted — the trace covers every command
    /// the sink saw. Check this (or [`TracingSink::dropped`]) before
    /// treating the trace as the full command history.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Entries evicted because the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.trace.clear();
        self.dropped = 0;
    }

    /// Renders the trace as a cycle-stamped text log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier commands dropped ...", self.dropped);
        }
        for e in &self.trace {
            let _ = writeln!(
                out,
                "{:>12} {} {}",
                e.cycle,
                if e.accepted { " " } else { "!" },
                e.command
            );
        }
        // Completeness footer, always present: a truncated trace must never
        // be mistaken for the full command history.
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "=== trace truncated: {} retained, {} dropped ===",
                self.trace.len(),
                self.dropped
            );
        } else {
            let _ = writeln!(out, "=== trace complete: {} commands ===", self.trace.len());
        }
        out
    }

    fn record(&mut self, cycle: Cycle, command: &Command, accepted: bool) {
        if self.trace.len() == self.capacity {
            self.trace.pop_front();
            self.dropped += 1;
        }
        self.trace.push_back(TraceEntry { cycle, command: command.clone(), accepted });
    }
}

impl<'a, S: CommandSink> IntoIterator for &'a TracingSink<S> {
    type Item = &'a TraceEntry;
    type IntoIter = std::collections::vec_deque::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<S: CommandSink> CommandSink for TracingSink<S> {
    fn earliest_issue(&self, cmd: &Command, now: Cycle) -> Cycle {
        self.inner.earliest_issue(cmd, now)
    }

    fn issue(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, IssueError> {
        let r = self.inner.issue(cmd, cycle);
        self.record(cycle, cmd, r.is_ok());
        r
    }

    fn open_row(&self, bank: BankAddr) -> Option<u32> {
        self.inner.open_row(bank)
    }

    fn timing(&self) -> &TimingParams {
        self.inner.timing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PseudoChannel;

    fn traced() -> TracingSink<PseudoChannel> {
        TracingSink::new(PseudoChannel::new(TimingParams::hbm2()), 4)
    }

    #[test]
    fn records_accepted_and_rejected() {
        let mut t = traced();
        let bank = BankAddr::new(0, 0);
        t.issue(&Command::Act { bank, row: 1 }, 0).unwrap();
        // Too early: tRCD not elapsed.
        let _ = t.issue(&Command::Rd { bank, col: 0 }, 1);
        assert_eq!(t.len(), 2);
        let entries: Vec<_> = t.trace().collect();
        assert!(entries[0].accepted);
        assert!(!entries[1].accepted);
        assert!(t.render().contains("!"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = traced();
        let bank = BankAddr::new(0, 0);
        t.issue(&Command::Act { bank, row: 9 }, 0).unwrap();
        let mut now = t.earliest_issue(&Command::Rd { bank, col: 0 }, 0);
        for col in 0..5 {
            let cmd = Command::Rd { bank, col };
            let at = t.earliest_issue(&cmd, now);
            t.issue(&cmd, at).unwrap();
            now = at;
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 2);
        assert!(!t.is_complete());
        // The ACT was evicted; first retained entry is a RD.
        assert!(matches!(t.trace().next().unwrap().command, Command::Rd { .. }));
        let log = t.render();
        assert!(log.contains("dropped"));
        assert!(log.contains("truncated: 4 retained, 2 dropped"));
    }

    #[test]
    fn render_footer_marks_complete_traces() {
        let mut t = traced();
        t.issue(&Command::Act { bank: BankAddr::new(0, 0), row: 0 }, 0).unwrap();
        assert!(t.is_complete());
        let log = t.render();
        assert!(log.contains("trace complete: 1 commands"));
        assert!(!log.contains("truncated"));
    }

    #[test]
    fn iterates_by_reference() {
        let mut t = traced();
        let bank = BankAddr::new(0, 0);
        t.issue(&Command::Act { bank, row: 2 }, 0).unwrap();
        let mut seen = 0;
        for e in &t {
            assert!(e.accepted);
            seen += 1;
        }
        assert_eq!(seen, 1);
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn timing_is_transparent() {
        let mut plain = PseudoChannel::new(TimingParams::hbm2());
        let mut t = traced();
        let bank = BankAddr::new(1, 1);
        let a = plain.issue(&Command::Act { bank, row: 0 }, 0).unwrap();
        let b = t.issue(&Command::Act { bank, row: 0 }, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            plain.earliest_issue(&Command::Rd { bank, col: 0 }, 0),
            t.earliest_issue(&Command::Rd { bank, col: 0 }, 0)
        );
        assert_eq!(t.open_row(bank), Some(0));
    }

    #[test]
    fn clear_resets() {
        let mut t = traced();
        t.issue(&Command::Act { bank: BankAddr::new(0, 0), row: 0 }, 0).unwrap();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        TracingSink::new(PseudoChannel::new(TimingParams::hbm2()), 0);
    }
}
