//! On-die ECC: a SECDED (72, 64) Hamming code.
//!
//! The paper's Section VIII: "Our current PIM-HBM does not support ECC
//! yet. However, future PIM based on the proposed architecture can easily
//! support ECC as each PIM execution unit reads and writes data at the
//! same data access granularity as a host processor. In addition, DRAM
//! began to have on-die ECC including HBM3. Thus, PIM may leverage the
//! on-die ECC engine to generate and check the ECC parity bits even in PIM
//! mode." This module implements that engine: the standard single-error-
//! correct / double-error-detect extended Hamming code over 64-bit words —
//! one codeword per half of a PIM data access, exactly the granularity the
//! paper's argument relies on.
//!
//! Encoding layout: 8 check bits for a 64-bit payload. Check bit `i`
//! (i in 0..7) covers every payload bit whose 7-bit *codeword position*
//! has bit `i` set (positions 1..=72, powers of two reserved for check
//! bits); the 8th bit is overall parity, which distinguishes single from
//! double errors.

/// A 72-bit SECDED codeword: 64 data bits + 8 check bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccWord {
    /// The data bits as stored (possibly corrupted in transit).
    pub data: u64,
    /// The 8 check bits.
    pub check: u8,
}

/// The outcome of decoding a possibly corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccResult {
    /// No error detected.
    Clean(u64),
    /// A single-bit error was corrected (in data or check bits); the
    /// payload is the corrected value.
    Corrected(u64),
    /// An uncorrectable (double-bit) error was detected.
    Uncorrectable,
}

/// Maps payload bit `d` (0..64) to its codeword position (1..=72, skipping
/// the power-of-two check positions).
fn data_position(d: u32) -> u32 {
    // Positions 1,2,4,8,16,32,64 are check bits; data fills the rest in
    // order.
    let mut pos = 0;
    let mut remaining = d as i64;
    loop {
        pos += 1;
        if (pos as u32 & (pos as u32 - 1)) == 0 {
            continue; // power of two: check bit slot
        }
        if remaining == 0 {
            return pos as u32;
        }
        remaining -= 1;
    }
}

/// Computes the 7 Hamming check bits plus overall parity for `data`.
fn compute_check(data: u64) -> u8 {
    let mut check = 0u8;
    for d in 0..64u32 {
        if (data >> d) & 1 == 1 {
            let pos = data_position(d);
            for b in 0..7u32 {
                if (pos >> b) & 1 == 1 {
                    check ^= 1 << b;
                }
            }
        }
    }
    // Bit 7: overall parity of data + the 7 Hamming bits.
    let ones = data.count_ones() + (check & 0x7F).count_ones();
    if ones % 2 == 1 {
        check |= 0x80;
    }
    check
}

/// Encodes a 64-bit word into a SECDED codeword.
///
/// ```
/// use pim_dram::ecc;
/// let w = ecc::encode(0xDEAD_BEEF_CAFE_F00D);
/// assert_eq!(ecc::decode(w), ecc::EccResult::Clean(0xDEAD_BEEF_CAFE_F00D));
/// ```
pub fn encode(data: u64) -> EccWord {
    EccWord { data, check: compute_check(data) }
}

/// Decodes a codeword, correcting a single-bit error anywhere in the 72
/// bits and detecting double-bit errors.
pub fn decode(word: EccWord) -> EccResult {
    let expect = compute_check(word.data);
    let syndrome = (word.check ^ expect) & 0x7F;
    let parity_ok = {
        let ones =
            word.data.count_ones() + (word.check & 0x7F).count_ones() + (word.check >> 7) as u32;
        ones.is_multiple_of(2)
    };
    match (syndrome, parity_ok) {
        (0, true) => EccResult::Clean(word.data),
        (0, false) => {
            // The overall parity bit itself flipped.
            EccResult::Corrected(word.data)
        }
        (_, false) => {
            // Single-bit error at codeword position `syndrome`.
            let pos = syndrome as u32;
            if pos & (pos - 1) == 0 {
                // A check bit flipped; data is intact.
                return EccResult::Corrected(word.data);
            }
            // Find which data bit lives at that position.
            for d in 0..64u32 {
                if data_position(d) == pos {
                    return EccResult::Corrected(word.data ^ (1u64 << d));
                }
            }
            // Syndrome points past the codeword: treat as uncorrectable.
            EccResult::Uncorrectable
        }
        (_, true) => EccResult::Uncorrectable,
    }
}

/// Encodes a 32-byte PIM data block as four SECDED codewords — the
/// granularity argument of Section VIII made concrete: one column access
/// is exactly four on-die-ECC words, for the host path and the PIM path
/// alike.
pub fn encode_block(block: &crate::DataBlock) -> [EccWord; 4] {
    std::array::from_fn(|i| {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&block[i * 8..i * 8 + 8]);
        encode(u64::from_le_bytes(bytes))
    })
}

/// Decodes four codewords back into a block; returns `None` if any word is
/// uncorrectable.
pub fn decode_block(words: &[EccWord; 4]) -> Option<(crate::DataBlock, bool)> {
    let mut block = [0u8; 32];
    let mut corrected = false;
    for (i, w) in words.iter().enumerate() {
        let data = match decode(*w) {
            EccResult::Clean(d) => d,
            EccResult::Corrected(d) => {
                corrected = true;
                d
            }
            EccResult::Uncorrectable => return None,
        };
        block[i * 8..i * 8 + 8].copy_from_slice(&data.to_le_bytes());
    }
    Some((block, corrected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            assert_eq!(decode(encode(data)), EccResult::Clean(data), "{data:#x}");
        }
    }

    #[test]
    fn every_single_data_bit_error_is_corrected() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let w = encode(data);
        for bit in 0..64 {
            let corrupted = EccWord { data: w.data ^ (1 << bit), check: w.check };
            assert_eq!(decode(corrupted), EccResult::Corrected(data), "bit {bit}");
        }
    }

    #[test]
    fn every_single_check_bit_error_is_corrected() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let w = encode(data);
        for bit in 0..8 {
            let corrupted = EccWord { data: w.data, check: w.check ^ (1 << bit) };
            assert_eq!(decode(corrupted), EccResult::Corrected(data), "check bit {bit}");
        }
    }

    #[test]
    fn double_bit_errors_are_detected() {
        let data = 0xFFFF_0000_FFFF_0000u64;
        let w = encode(data);
        // A sample of double flips across data/data, data/check.
        for (a, b) in [(0u32, 1u32), (5, 40), (63, 62), (13, 27)] {
            let corrupted = EccWord { data: w.data ^ (1 << a) ^ (1 << b), check: w.check };
            assert_eq!(decode(corrupted), EccResult::Uncorrectable, "bits {a},{b}");
        }
        for (a, b) in [(0u32, 3u8), (60, 6)] {
            let corrupted = EccWord { data: w.data ^ (1u64 << a), check: w.check ^ (1 << b) };
            assert_eq!(decode(corrupted), EccResult::Uncorrectable, "data {a} check {b}");
        }
    }

    #[test]
    fn block_roundtrip_and_correction() {
        let mut block = [0u8; 32];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i * 37) as u8;
        }
        let mut words = super::encode_block(&block);
        let (clean, corrected) = decode_block(&words).unwrap();
        assert_eq!(clean, block);
        assert!(!corrected);
        // Flip one bit in the third codeword.
        words[2].data ^= 1 << 17;
        let (fixed, corrected) = decode_block(&words).unwrap();
        assert_eq!(fixed, block);
        assert!(corrected);
        // Double error kills it.
        words[2].data ^= (1 << 3) | (1 << 9);
        // (now 3 flips total in word 2: 17, 3, 9 — odd weight looks like a
        // "single" error to SECDED and miscorrects or flags; flip one back
        // to make it exactly 2.)
        words[2].data ^= 1 << 17;
        assert_eq!(decode_block(&words), None);
    }

    #[test]
    fn data_positions_are_unique_and_skip_check_slots() {
        let mut seen = std::collections::HashSet::new();
        for d in 0..64 {
            let p = data_position(d);
            assert!((3..=72).contains(&p), "bit {d} at {p}");
            assert!(p & (p - 1) != 0, "bit {d} landed on a check slot {p}");
            assert!(seen.insert(p), "duplicate position {p}");
        }
    }
}
