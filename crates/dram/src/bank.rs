//! A single DRAM bank: functional row storage plus per-bank timing state.
//!
//! The paper's key design philosophy is to leave the bank itself untouched
//! ("it does not disturb the key components (i.e., subarray and bank) of
//! commodity DRAM", Section III-A); the PIM execution unit sits at the
//! bank's I/O boundary. Accordingly this model is a plain JEDEC bank — the
//! PIM logic in `pim-core` consumes the same [`Bank::read_block`] /
//! [`Bank::write_block`] interface the chip-external I/O path does.

use crate::command::{DataBlock, DATA_BLOCK_BYTES};
use crate::timing::Cycle;
use pim_faults::CellFaults;
use std::collections::HashMap;

/// Bytes per DRAM row (page) per bank, per pseudo channel: 1 KiB for HBM2.
pub const ROW_BYTES: usize = 1024;
/// Number of 32-byte column blocks per row.
pub const COLS_PER_ROW: u32 = (ROW_BYTES / DATA_BLOCK_BYTES) as u32;
/// Rows per bank. 8192 rows × 1 KiB × 16 banks × 4 pCH = 512 MiB per die
/// (4 Gb, the paper's PIM-HBM die capacity in Section VI).
pub const ROWS_PER_BANK: u32 = 8192;

/// The row-buffer state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// No row is open.
    Closed,
    /// `row` is open in the row buffer (sense amplifiers).
    Open(u32),
}

/// One DRAM bank: an array of rows with an open-row (row buffer) state
/// machine and the per-bank timing horizon.
///
/// Rows are materialized lazily; untouched rows read as zero bytes, which
/// stands in for an initialized device.
///
/// # Example
///
/// ```
/// use pim_dram::{Bank, BankState};
/// let mut bank = Bank::new();
/// assert_eq!(bank.state(), BankState::Closed);
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    rows: HashMap<u32, Box<[u8]>>,
    /// Earliest cycle an ACT may issue (tRC after previous ACT, tRP after
    /// precharge completes).
    pub(crate) next_act: Cycle,
    /// Earliest cycle a column command may issue (tRCD after ACT).
    pub(crate) next_col: Cycle,
    /// Earliest cycle a PRE may issue (tRAS after ACT, tWR after write data,
    /// tRTP after read).
    pub(crate) next_pre: Cycle,
    /// Cycle of the most recent ACT, for tRAS accounting.
    pub(crate) last_act: Cycle,
    /// Cycles accumulated with a row open, over all closed open-intervals.
    open_cycles: u64,
    /// Seeded cell-fault state, absent in the fault-free configuration.
    /// Boxed so the dormant hook costs one pointer per bank and one null
    /// test per array access.
    faults: Option<Box<CellFaults>>,
}

impl Default for Bank {
    fn default() -> Bank {
        Bank::new()
    }
}

impl Bank {
    /// Creates a closed, zero-initialized bank.
    pub fn new() -> Bank {
        Bank {
            state: BankState::Closed,
            rows: HashMap::new(),
            next_act: 0,
            next_col: 0,
            next_pre: 0,
            last_act: 0,
            open_cycles: 0,
            faults: None,
        }
    }

    /// Installs (or clears) the seeded cell-fault state for this bank.
    /// With `None` — the default — the array is fault-free and every
    /// access path is bit-identical to a build without fault support.
    pub fn set_faults(&mut self, faults: Option<CellFaults>) {
        self.faults = faults.map(Box::new);
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Open(r) => Some(r),
            BankState::Closed => None,
        }
    }

    /// Records an ACT at `cycle` with the given timing parameters.
    ///
    /// The caller (the pseudo channel) has already validated legality.
    pub(crate) fn do_activate(&mut self, row: u32, cycle: Cycle, t: &crate::TimingParams) {
        debug_assert!(row < ROWS_PER_BANK, "row {row} out of range");
        debug_assert_eq!(self.state, BankState::Closed);
        self.state = BankState::Open(row);
        self.last_act = cycle;
        self.next_col = cycle + t.t_rcd;
        self.next_pre = cycle + t.t_ras;
        self.next_act = cycle + t.t_rc;
    }

    /// Records a PRE at `cycle`.
    pub(crate) fn do_precharge(&mut self, cycle: Cycle, t: &crate::TimingParams) {
        if self.state != BankState::Closed {
            self.open_cycles += cycle.saturating_sub(self.last_act);
        }
        self.state = BankState::Closed;
        self.next_act = self.next_act.max(cycle + t.t_rp);
    }

    /// Records a column read at `cycle`; extends the precharge horizon by
    /// tRTP.
    pub(crate) fn note_read(&mut self, cycle: Cycle, t: &crate::TimingParams) {
        self.next_pre = self.next_pre.max(cycle + t.t_rtp);
    }

    /// Records a column write at `cycle`; extends the precharge horizon to
    /// write-data end plus tWR.
    pub(crate) fn note_write(&mut self, cycle: Cycle, t: &crate::TimingParams) {
        self.next_pre = self.next_pre.max(cycle + t.t_wl + t.t_bl + t.t_wr);
    }

    /// Reads the 32-byte block at `col` of the **open** row.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or `col` is out of range — the pseudo
    /// channel validates both before calling.
    pub fn read_block(&self, col: u32) -> DataBlock {
        let row = self.open_row().expect("read with no open row");
        assert!(col < COLS_PER_ROW, "column {col} out of range");
        let mut block = [0u8; DATA_BLOCK_BYTES];
        if let Some(data) = self.rows.get(&row) {
            let off = col as usize * DATA_BLOCK_BYTES;
            block.copy_from_slice(&data[off..off + DATA_BLOCK_BYTES]);
        }
        if let Some(f) = &self.faults {
            f.corrupt_read(row, col, &mut block);
        }
        block
    }

    /// Writes the 32-byte block at `col` of the **open** row.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or `col` is out of range.
    pub fn write_block(&mut self, col: u32, data: &DataBlock) {
        let row = self.open_row().expect("write with no open row");
        assert!(col < COLS_PER_ROW, "column {col} out of range");
        let mut data = *data;
        if let Some(f) = &mut self.faults {
            f.corrupt_write(row, col, &mut data);
        }
        let storage =
            self.rows.entry(row).or_insert_with(|| vec![0u8; ROW_BYTES].into_boxed_slice());
        let off = col as usize * DATA_BLOCK_BYTES;
        storage[off..off + DATA_BLOCK_BYTES].copy_from_slice(&data);
    }

    /// Direct backdoor read used by test assertions and by the functional
    /// loader of the software stack (modelling DMA initialization): reads a
    /// block without touching row-buffer or timing state.
    pub fn peek_block(&self, row: u32, col: u32) -> DataBlock {
        assert!(row < ROWS_PER_BANK && col < COLS_PER_ROW);
        let mut block = [0u8; DATA_BLOCK_BYTES];
        if let Some(data) = self.rows.get(&row) {
            let off = col as usize * DATA_BLOCK_BYTES;
            block.copy_from_slice(&data[off..off + DATA_BLOCK_BYTES]);
        }
        if let Some(f) = &self.faults {
            f.corrupt_read(row, col, &mut block);
        }
        block
    }

    /// Direct backdoor write (see [`Bank::peek_block`]). Like the in-band
    /// path, it is subject to transient write faults: DMA traffic crosses
    /// the same array.
    pub fn poke_block(&mut self, row: u32, col: u32, data: &DataBlock) {
        assert!(row < ROWS_PER_BANK && col < COLS_PER_ROW);
        let mut data = *data;
        if let Some(f) = &mut self.faults {
            f.corrupt_write(row, col, &mut data);
        }
        let storage =
            self.rows.entry(row).or_insert_with(|| vec![0u8; ROW_BYTES].into_boxed_slice());
        let off = col as usize * DATA_BLOCK_BYTES;
        storage[off..off + DATA_BLOCK_BYTES].copy_from_slice(&data);
    }

    /// Number of rows that have been materialized (written at least once).
    pub fn touched_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cycles this bank has spent with a row open, up to `now`: completed
    /// open-intervals plus the in-progress one if a row is open.
    ///
    /// Row-state residency is the denominator-side of the paper's
    /// row-buffer analysis: open time is when column traffic can flow,
    /// closed time is precharge/idle overhead.
    pub fn open_cycles(&self, now: Cycle) -> u64 {
        let in_progress = match self.state {
            BankState::Open(_) => now.saturating_sub(self.last_act),
            BankState::Closed => 0,
        };
        self.open_cycles + in_progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingParams;

    #[test]
    fn new_bank_is_closed_and_zeroed() {
        let bank = Bank::new();
        assert_eq!(bank.state(), BankState::Closed);
        assert_eq!(bank.open_row(), None);
        assert_eq!(bank.peek_block(0, 0), [0u8; 32]);
        assert_eq!(bank.touched_rows(), 0);
    }

    #[test]
    fn activate_read_write_cycle() {
        let t = TimingParams::hbm2();
        let mut bank = Bank::new();
        bank.do_activate(5, 100, &t);
        assert_eq!(bank.open_row(), Some(5));
        assert_eq!(bank.next_col, 100 + t.t_rcd);
        assert_eq!(bank.next_pre, 100 + t.t_ras);
        assert_eq!(bank.next_act, 100 + t.t_rc);

        let data = [7u8; 32];
        bank.write_block(3, &data);
        assert_eq!(bank.read_block(3), data);
        // Other columns remain zero.
        assert_eq!(bank.read_block(4), [0u8; 32]);
        assert_eq!(bank.touched_rows(), 1);

        bank.do_precharge(200, &t);
        assert_eq!(bank.state(), BankState::Closed);
        // Data persists across precharge.
        assert_eq!(bank.peek_block(5, 3), data);
    }

    #[test]
    fn write_extends_precharge_horizon() {
        let t = TimingParams::hbm2();
        let mut bank = Bank::new();
        bank.do_activate(0, 0, &t);
        let before = bank.next_pre;
        bank.note_write(100, &t);
        assert!(bank.next_pre > before);
        assert_eq!(bank.next_pre, 100 + t.t_wl + t.t_bl + t.t_wr);
    }

    #[test]
    fn read_extends_precharge_horizon_by_rtp() {
        let t = TimingParams::hbm2();
        let mut bank = Bank::new();
        bank.do_activate(0, 0, &t);
        bank.note_read(1000, &t);
        assert_eq!(bank.next_pre, 1000 + t.t_rtp);
    }

    #[test]
    #[should_panic(expected = "no open row")]
    fn read_closed_bank_panics() {
        Bank::new().read_block(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_bounds_checked() {
        let t = TimingParams::hbm2();
        let mut bank = Bank::new();
        bank.do_activate(0, 0, &t);
        bank.read_block(COLS_PER_ROW);
    }

    #[test]
    fn open_cycles_accumulate_across_intervals() {
        let t = TimingParams::hbm2();
        let mut bank = Bank::new();
        assert_eq!(bank.open_cycles(100), 0);
        bank.do_activate(0, 100, &t);
        // In-progress interval counts.
        assert_eq!(bank.open_cycles(150), 50);
        bank.do_precharge(160, &t);
        assert_eq!(bank.open_cycles(300), 60);
        bank.do_activate(1, 400, &t);
        bank.do_precharge(450, &t);
        assert_eq!(bank.open_cycles(500), 110);
    }

    #[test]
    fn poke_then_activate_read_sees_data() {
        let t = TimingParams::hbm2();
        let mut bank = Bank::new();
        bank.poke_block(11, 2, &[0x5A; 32]);
        bank.do_activate(11, 0, &t);
        assert_eq!(bank.read_block(2), [0x5A; 32]);
    }
}
