//! The pseudo channel: 16 banks in 4 bank groups, shared CA/data buses, and
//! every inter-command timing constraint between them.

use crate::bank::Bank;
use crate::command::{BankAddr, Command, DataBlock};
use crate::stats::ChannelStats;
use crate::timing::{Cycle, TimingParams};
use std::fmt;

/// Why a command could not issue at the requested cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueError {
    /// The command violates a timing constraint; it may issue at `earliest`.
    TooEarly {
        /// Earliest legal issue cycle.
        earliest: Cycle,
    },
    /// ACT addressed to a bank that already has an open row.
    BankAlreadyOpen,
    /// Column command or PRE addressed to a bank with no open row (PRE to a
    /// closed bank is a NOP on real devices; we flag it to catch controller
    /// bugs).
    BankNotOpen,
    /// REF issued while one or more banks still have open rows.
    BanksOpenOnRefresh,
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::TooEarly { earliest } => {
                write!(f, "command violates timing; earliest legal cycle is {earliest}")
            }
            IssueError::BankAlreadyOpen => write!(f, "ACT to a bank with an open row"),
            IssueError::BankNotOpen => write!(f, "column/PRE command to a closed bank"),
            IssueError::BanksOpenOnRefresh => write!(f, "REF with open rows"),
        }
    }
}

impl std::error::Error for IssueError {}

/// The result of successfully issuing a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueOutcome {
    /// The cycle at which the command issued.
    pub issued_at: Cycle,
    /// For `Rd`: the data block, valid on the bus at `data_at`.
    pub data: Option<DataBlock>,
    /// For `Rd`/`Wr`: the cycle at which the (last beat of) data crosses the
    /// bus — `issued_at + tCL/tWL + tBL`.
    pub data_at: Option<Cycle>,
}

/// Anything that accepts DRAM commands with channel timing semantics.
///
/// [`PseudoChannel`] implements this for a plain HBM2 channel; `pim-core`
/// wraps a channel in a PIM device model that implements the same trait, so
/// the unmodified [`crate::MemoryController`] drives both — which is exactly
/// the drop-in-replacement property the paper demonstrates.
///
/// `Send` is a supertrait: each pseudo channel owns its sink exclusively and
/// the host's parallel execution backend moves whole controllers (sink
/// included) onto worker threads. Sinks hold only per-channel state, so
/// migration is safe by construction.
pub trait CommandSink: Send {
    /// The earliest cycle at or after `now` at which `cmd` could legally
    /// issue, ignoring state errors (those surface from `issue`).
    fn earliest_issue(&self, cmd: &Command, now: Cycle) -> Cycle;

    /// Issues `cmd` at `cycle`.
    ///
    /// # Errors
    ///
    /// Returns an [`IssueError`] if the command violates timing or bank
    /// state; the channel state is unchanged on error.
    fn issue(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, IssueError>;

    /// The open row of `bank`, if any — the controller's row-hit oracle.
    fn open_row(&self, bank: BankAddr) -> Option<u32>;

    /// Timing parameters of the underlying channel.
    fn timing(&self) -> &TimingParams;
}

/// Tracks the four-activate window (tFAW): a ring of the last 4 ACT times.
#[derive(Debug, Clone, Default)]
struct FawWindow {
    acts: [Cycle; 4],
    head: usize,
    count: usize,
}

impl FawWindow {
    /// Earliest cycle a new ACT may issue under tFAW.
    fn earliest(&self, t_faw: Cycle) -> Cycle {
        if self.count < 4 {
            return 0;
        }
        // The oldest of the last 4 ACTs plus tFAW.
        self.acts[self.head].saturating_add(t_faw)
    }

    fn record(&mut self, cycle: Cycle) {
        self.acts[self.head] = cycle;
        self.head = (self.head + 1) % 4;
        self.count = (self.count + 1).min(4);
    }
}

/// An HBM2 pseudo channel: 4 bank groups × 4 banks with shared buses.
///
/// See the crate docs for the timing model. All state mutation goes through
/// [`CommandSink::issue`]; on error no state changes.
#[derive(Debug, Clone)]
pub struct PseudoChannel {
    timing: TimingParams,
    banks: Vec<Bank>,
    /// Per-bank-group earliest next column command (tCCD_L).
    bg_next_col: [Cycle; crate::BANK_GROUPS],
    /// Channel-wide earliest next column command (tCCD_S).
    ch_next_col: Cycle,
    /// Per-bank-group earliest next ACT (tRRD_L).
    bg_next_act: [Cycle; crate::BANK_GROUPS],
    /// Channel-wide earliest next ACT (tRRD_S).
    ch_next_act: Cycle,
    /// Channel-wide earliest next RD (write-to-read turnaround, refresh).
    ch_next_rd: Cycle,
    /// Channel-wide earliest next WR (read-to-write turnaround, refresh).
    ch_next_wr: Cycle,
    faw: FawWindow,
    stats: ChannelStats,
}

impl PseudoChannel {
    /// Creates a channel with the given timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`TimingParams::validate`].
    pub fn new(timing: TimingParams) -> PseudoChannel {
        timing.validate().expect("invalid timing parameters");
        PseudoChannel {
            timing,
            banks: (0..crate::BANKS_PER_PCH).map(|_| Bank::new()).collect(),
            bg_next_col: [0; crate::BANK_GROUPS],
            ch_next_col: 0,
            bg_next_act: [0; crate::BANK_GROUPS],
            ch_next_act: 0,
            ch_next_rd: 0,
            ch_next_wr: 0,
            faw: FawWindow::default(),
            stats: ChannelStats::default(),
        }
    }

    /// Immutable access to a bank (for PIM units and tests).
    pub fn bank(&self, addr: BankAddr) -> &Bank {
        &self.banks[addr.flat_index()]
    }

    /// Mutable access to a bank (for PIM units, which sit at the bank I/O
    /// boundary and read/write operands directly — Section III-A).
    pub fn bank_mut(&mut self, addr: BankAddr) -> &mut Bank {
        &mut self.banks[addr.flat_index()]
    }

    /// Accumulated per-channel statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// True if every bank is precharged.
    pub fn all_banks_closed(&self) -> bool {
        self.banks.iter().all(|b| b.open_row().is_none())
    }

    /// Bank-state residency up to `now`: total cycles banks spent with a
    /// row open and total cycles spent precharged, summed across the 16
    /// banks (so the two numbers add up to `16 * now`).
    pub fn bank_residency(&self, now: Cycle) -> (u64, u64) {
        let open: u64 = self.banks.iter().map(|b| b.open_cycles(now)).sum();
        let total = crate::BANKS_PER_PCH as u64 * now;
        (open, total.saturating_sub(open))
    }

    /// All-bank activate: functionally opens `row` in every bank at once.
    ///
    /// This is the PIM device's AB-mode row operation (Section III-B: "the
    /// same row and column of all the banks are concurrently accessed in a
    /// lock-step manner by a single DRAM command"). The caller (the PIM
    /// device model) owns AB-mode timing; per-bank horizons are updated so
    /// a later return to single-bank mode stays legal.
    ///
    /// # Panics
    ///
    /// Panics if any bank already has an open row — lock-step state must be
    /// uniform.
    pub fn all_bank_activate(&mut self, row: u32, cycle: Cycle) {
        let t = self.timing.clone();
        for b in &mut self.banks {
            assert!(b.open_row().is_none(), "all-bank ACT with an open row");
            b.do_activate(row, cycle, &t);
        }
        self.stats.acts += crate::BANKS_PER_PCH as u64;
    }

    /// All-bank precharge: functionally closes every bank.
    pub fn all_bank_precharge(&mut self, cycle: Cycle) {
        let t = self.timing.clone();
        for b in &mut self.banks {
            if b.open_row().is_some() {
                b.do_precharge(cycle, &t);
            }
        }
        self.stats.pres += 1;
    }

    /// Raises every internal timing horizon to at least `cycle`.
    ///
    /// Used by the PIM device model when leaving all-bank mode: all-bank
    /// operation bypasses the per-bank-group trackers (the all-bank control
    /// logic drives the banks directly), so on return to single-bank mode
    /// the channel must not accept commands earlier than the cycle at which
    /// all-bank activity ended.
    pub fn quiesce_until(&mut self, cycle: Cycle) {
        for b in &mut self.banks {
            b.next_act = b.next_act.max(cycle);
            b.next_col = b.next_col.max(cycle);
            b.next_pre = b.next_pre.max(cycle);
        }
        for v in &mut self.bg_next_col {
            *v = (*v).max(cycle);
        }
        for v in &mut self.bg_next_act {
            *v = (*v).max(cycle);
        }
        self.ch_next_col = self.ch_next_col.max(cycle);
        self.ch_next_act = self.ch_next_act.max(cycle);
        self.ch_next_rd = self.ch_next_rd.max(cycle);
        self.ch_next_wr = self.ch_next_wr.max(cycle);
    }

    fn earliest_act(&self, bank: BankAddr, now: Cycle) -> Cycle {
        let b = &self.banks[bank.flat_index()];
        now.max(b.next_act)
            .max(self.bg_next_act[bank.bg as usize])
            .max(self.ch_next_act)
            .max(self.faw.earliest(self.timing.t_faw))
    }

    fn earliest_col(&self, bank: BankAddr, is_read: bool, now: Cycle) -> Cycle {
        let b = &self.banks[bank.flat_index()];
        let turnaround = if is_read { self.ch_next_rd } else { self.ch_next_wr };
        now.max(b.next_col)
            .max(self.bg_next_col[bank.bg as usize])
            .max(self.ch_next_col)
            .max(turnaround)
    }

    fn earliest_pre(&self, bank: BankAddr, now: Cycle) -> Cycle {
        now.max(self.banks[bank.flat_index()].next_pre)
    }

    fn earliest_ref(&self, now: Cycle) -> Cycle {
        // A refresh may start once every bank could accept an ACT (i.e. all
        // precharges and prior refreshes have completed) and in-flight
        // column traffic has drained.
        let banks = self.banks.iter().map(|b| b.next_act).max().unwrap_or(0);
        now.max(banks).max(self.ch_next_col)
    }
}

impl CommandSink for PseudoChannel {
    fn earliest_issue(&self, cmd: &Command, now: Cycle) -> Cycle {
        match cmd {
            Command::Act { bank, .. } => self.earliest_act(*bank, now),
            Command::Rd { bank, .. } => self.earliest_col(*bank, true, now),
            Command::Wr { bank, .. } => self.earliest_col(*bank, false, now),
            Command::Pre { bank } => self.earliest_pre(*bank, now),
            Command::PreAll => {
                BankAddr::all().map(|b| self.earliest_pre(b, now)).max().unwrap_or(now)
            }
            Command::Ref => self.earliest_ref(now),
        }
    }

    fn issue(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, IssueError> {
        let earliest = self.earliest_issue(cmd, cycle);
        if cycle < earliest {
            return Err(IssueError::TooEarly { earliest });
        }
        let t = self.timing.clone();
        match cmd {
            Command::Act { bank, row } => {
                let b = &mut self.banks[bank.flat_index()];
                if b.open_row().is_some() {
                    return Err(IssueError::BankAlreadyOpen);
                }
                b.do_activate(*row, cycle, &t);
                self.bg_next_act[bank.bg as usize] =
                    self.bg_next_act[bank.bg as usize].max(cycle + t.t_rrd_l);
                self.ch_next_act = self.ch_next_act.max(cycle + t.t_rrd_s);
                self.faw.record(cycle);
                self.stats.acts += 1;
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: None })
            }
            Command::Rd { bank, col } => {
                let b = &self.banks[bank.flat_index()];
                if b.open_row().is_none() {
                    return Err(IssueError::BankNotOpen);
                }
                let data = b.read_block(*col);
                self.banks[bank.flat_index()].note_read(cycle, &t);
                self.bg_next_col[bank.bg as usize] =
                    self.bg_next_col[bank.bg as usize].max(cycle + t.t_ccd_l);
                self.ch_next_col = self.ch_next_col.max(cycle + t.t_ccd_s);
                // Read-to-write bus turnaround.
                self.ch_next_wr = self.ch_next_wr.max(cycle + t.t_rtw);
                self.stats.reads += 1;
                let data_at = cycle + t.t_cl + t.t_bl;
                Ok(IssueOutcome { issued_at: cycle, data: Some(data), data_at: Some(data_at) })
            }
            Command::Wr { bank, col, data } => {
                let b = &mut self.banks[bank.flat_index()];
                if b.open_row().is_none() {
                    return Err(IssueError::BankNotOpen);
                }
                b.write_block(*col, data);
                b.note_write(cycle, &t);
                self.bg_next_col[bank.bg as usize] =
                    self.bg_next_col[bank.bg as usize].max(cycle + t.t_ccd_l);
                self.ch_next_col = self.ch_next_col.max(cycle + t.t_ccd_s);
                // Write-to-read turnaround (tWTR after last data beat).
                self.ch_next_rd = self.ch_next_rd.max(cycle + t.t_wl + t.t_bl + t.t_wtr);
                self.stats.writes += 1;
                let data_at = cycle + t.t_wl + t.t_bl;
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: Some(data_at) })
            }
            Command::Pre { bank } => {
                let b = &mut self.banks[bank.flat_index()];
                if b.open_row().is_none() {
                    return Err(IssueError::BankNotOpen);
                }
                b.do_precharge(cycle, &t);
                self.stats.pres += 1;
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: None })
            }
            Command::PreAll => {
                for b in &mut self.banks {
                    if b.open_row().is_some() {
                        b.do_precharge(cycle, &t);
                    }
                }
                self.stats.pres += 1;
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: None })
            }
            Command::Ref => {
                if !self.all_banks_closed() {
                    return Err(IssueError::BanksOpenOnRefresh);
                }
                for b in &mut self.banks {
                    b.next_act = b.next_act.max(cycle + t.t_rfc);
                }
                self.stats.refreshes += 1;
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: None })
            }
        }
    }

    fn open_row(&self, bank: BankAddr) -> Option<u32> {
        self.banks[bank.flat_index()].open_row()
    }

    fn timing(&self) -> &TimingParams {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd(bg: u8, ba: u8, col: u32) -> Command {
        Command::Rd { bank: BankAddr::new(bg, ba), col }
    }

    fn act(bg: u8, ba: u8, row: u32) -> Command {
        Command::Act { bank: BankAddr::new(bg, ba), row }
    }

    #[test]
    fn act_then_read_respects_trcd() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(0, 0, 3), 0).unwrap();
        let e = ch.earliest_issue(&rd(0, 0, 0), 0);
        assert_eq!(e, t.t_rcd);
        assert!(matches!(ch.issue(&rd(0, 0, 0), t.t_rcd - 1), Err(IssueError::TooEarly { .. })));
        let out = ch.issue(&rd(0, 0, 0), t.t_rcd).unwrap();
        assert_eq!(out.data_at, Some(t.t_rcd + t.t_cl + t.t_bl));
    }

    #[test]
    fn same_bank_group_columns_spaced_by_tccd_l() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(0, 0, 0), 0).unwrap();
        ch.issue(&act(0, 1, 0), t.t_rrd_l).unwrap();
        // Wait until both banks are column-ready, so only tCCD_L binds.
        let first = ch.earliest_issue(&rd(0, 1, 0), 0).max(ch.earliest_issue(&rd(0, 0, 0), 0));
        ch.issue(&rd(0, 0, 0), first).unwrap();
        // Same bank group, different bank: still tCCD_L apart.
        let e = ch.earliest_issue(&rd(0, 1, 0), first);
        assert_eq!(e, first + t.t_ccd_l);
    }

    #[test]
    fn different_bank_group_columns_spaced_by_tccd_s() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(0, 0, 0), 0).unwrap();
        ch.issue(&act(1, 0, 0), t.t_rrd_s).unwrap();
        let first = ch.earliest_issue(&rd(0, 0, 0), 100);
        ch.issue(&rd(0, 0, 0), first).unwrap();
        let e = ch.earliest_issue(&rd(1, 0, 0), first);
        assert_eq!(e, first + t.t_ccd_s);
    }

    #[test]
    fn faw_limits_activates() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        // Four ACTs to different bank groups at tRRD_S spacing.
        let mut cycle = 0;
        for i in 0..4u8 {
            let c = ch.earliest_issue(&act(i, 0, 0), cycle);
            ch.issue(&act(i, 0, 0), c).unwrap();
            cycle = c;
        }
        // The fifth ACT must wait for the tFAW window from the first ACT.
        let e = ch.earliest_issue(&act(0, 1, 0), cycle);
        assert!(e >= t.t_faw, "5th ACT at {e}, expected >= tFAW {}", t.t_faw);
    }

    #[test]
    fn read_returns_written_data() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(2, 1, 9), 0).unwrap();
        let wr_at = ch.earliest_issue(
            &Command::Wr { bank: BankAddr::new(2, 1), col: 5, data: [0xEE; 32] },
            0,
        );
        ch.issue(&Command::Wr { bank: BankAddr::new(2, 1), col: 5, data: [0xEE; 32] }, wr_at)
            .unwrap();
        let rd_at = ch.earliest_issue(&rd(2, 1, 5), wr_at);
        let out = ch.issue(&rd(2, 1, 5), rd_at).unwrap();
        assert_eq!(out.data, Some([0xEE; 32]));
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(0, 0, 0), 0).unwrap();
        ch.issue(&act(1, 0, 0), t.t_rrd_s).unwrap();
        let wr_at = ch
            .earliest_issue(&Command::Wr { bank: BankAddr::new(0, 0), col: 0, data: [0; 32] }, 100);
        ch.issue(&Command::Wr { bank: BankAddr::new(0, 0), col: 0, data: [0; 32] }, wr_at).unwrap();
        let e = ch.earliest_issue(&rd(1, 0, 0), wr_at);
        assert_eq!(e, wr_at + t.t_wl + t.t_bl + t.t_wtr);
    }

    #[test]
    fn precharge_respects_tras_and_write_recovery() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(0, 0, 0), 0).unwrap();
        assert_eq!(ch.earliest_issue(&Command::Pre { bank: BankAddr::new(0, 0) }, 0), t.t_ras);
        let wr_at = t.t_rcd;
        ch.issue(&Command::Wr { bank: BankAddr::new(0, 0), col: 0, data: [0; 32] }, wr_at).unwrap();
        let e = ch.earliest_issue(&Command::Pre { bank: BankAddr::new(0, 0) }, 0);
        assert_eq!(e, wr_at + t.t_wl + t.t_bl + t.t_wr);
    }

    #[test]
    fn state_errors_detected() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t);
        assert_eq!(ch.issue(&rd(0, 0, 0), 1000), Err(IssueError::BankNotOpen));
        ch.issue(&act(0, 0, 0), 1000).unwrap();
        assert_eq!(ch.issue(&act(0, 0, 1), 5000), Err(IssueError::BankAlreadyOpen));
        assert_eq!(ch.issue(&Command::Ref, 50_000), Err(IssueError::BanksOpenOnRefresh));
        assert_eq!(
            ch.issue(&Command::Pre { bank: BankAddr::new(3, 3) }, 5000),
            Err(IssueError::BankNotOpen)
        );
    }

    #[test]
    fn refresh_blocks_activates_for_trfc() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&Command::Ref, 100).unwrap();
        let e = ch.earliest_issue(&act(0, 0, 0), 100);
        assert_eq!(e, 100 + t.t_rfc);
    }

    #[test]
    fn preall_closes_everything() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(0, 0, 0), 0).unwrap();
        ch.issue(&act(2, 2, 0), t.t_rrd_s).unwrap();
        assert!(!ch.all_banks_closed());
        let e = ch.earliest_issue(&Command::PreAll, 0);
        ch.issue(&Command::PreAll, e).unwrap();
        assert!(ch.all_banks_closed());
    }

    #[test]
    fn error_leaves_state_unchanged() {
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t);
        ch.issue(&act(0, 0, 0), 0).unwrap();
        let before = ch.stats().clone();
        let _ = ch.issue(&rd(0, 0, 0), 0); // too early (tRCD)
        assert_eq!(ch.stats(), &before);
        assert_eq!(ch.open_row(BankAddr::new(0, 0)), Some(0));
    }

    #[test]
    fn sustained_sb_read_stream_hits_peak_bandwidth() {
        // Alternating bank groups sustains one RD per tCCD_S — the channel's
        // 19.2 GB/s peak that Table V's off-chip number is built from.
        let t = TimingParams::hbm2();
        let mut ch = PseudoChannel::new(t.clone());
        ch.issue(&act(0, 0, 0), 0).unwrap();
        ch.issue(&act(1, 0, 0), t.t_rrd_s).unwrap();
        // Start well past both banks' tRCD so only column timing binds.
        let mut cycle = 100;
        let start = ch.earliest_issue(&rd(0, 0, 0), cycle);
        let n = 100;
        for i in 0..n {
            let bg = (i % 2) as u8;
            let cmd = rd(bg, 0, (i / 2) as u32 % 32);
            let e = ch.earliest_issue(&cmd, cycle);
            ch.issue(&cmd, e).unwrap();
            cycle = e;
        }
        let span = cycle - start;
        assert_eq!(span, (n - 1) * t.t_ccd_s, "stream not at tCCD_S cadence");
    }
}
