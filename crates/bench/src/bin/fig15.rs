//! Reproduces Fig. 15: the data layout for PIM ADD — where the runtime
//! places the 128-byte-aligned operand blocks of vectors a and b so that
//! every lock-step column command finds both operands at the same
//! (row, column) across banks.
use pim_bench::report::format_table;
use pim_core::PimConfig;
use pim_runtime::kernels::{stream_columns, StreamOp};
use pim_runtime::layout::BlockMap;

fn main() {
    println!("Fig. 15: data placement of vectors a and b for PIM ADD\n");
    let cfg = PimConfig::paper();
    let (a_col, b_col, z_col) = stream_columns(StreamOp::Add, &cfg);
    let map = BlockMap { channels: 4, units: 2 }; // a small window for display
    let mut rows = Vec::new();
    for block in 0..16usize {
        let (ch, unit, slot) = map.locate(block);
        let row = slot / 8;
        let coff = (slot % 8) as u32;
        rows.push(vec![
            format!("{block}"),
            format!("pCH{ch}"),
            format!("unit{unit} (bank {})", 2 * unit),
            format!("r{row}"),
            format!("c{}", a_col + coff),
            format!("c{}", b_col.unwrap() + coff),
            format!("c{}", z_col + coff),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["16-elem block", "channel", "PIM unit", "DRAM row", "a", "b", "z=a+b"],
            &rows
        )
    );
    println!("paper= operands at 128-byte-aligned boundaries per channel (Fig. 15(b));");
    println!("       our row interleave puts a at columns 0-7, b at 8-15, z at 16-23,");
    println!("       so one AAM window (8 commands) covers each operand stage.");
    println!("       Tail padding: \"we can concatenate dummy values to the end of the");
    println!("       vectors\" — f32_to_blocks zero-pads the last block.");
}
