//! Seeded open-loop serving campaign runner.
//!
//! ```text
//! cargo run --release -p pim-bench --bin pimserve -- \
//!     [--seed N] [--elements N] [--requests N] [--tenants N] \
//!     [--deadline-slack N] [--intervals I1,I2,...] [--rates R1,R2,...] \
//!     [--backend sequential|threads:N] [--expect-clean]
//! ```
//!
//! Sweeps arrival rate against base fault rate, drives the deterministic
//! serving layer with a seeded request trace at every grid point, and
//! prints the `pim-bench/serve-campaign-v1` JSON report on stdout. The
//! report is deterministic in the config and byte-identical across
//! execution backends.
//!
//! `--expect-clean` exits non-zero if any served result disagrees with the
//! exact FP16 oracle — the CI smoke job's assertion that overload and
//! faults may shed or delay work but never corrupt an answer.
//!
//! `--metrics PATH` attaches a counting recorder to every grid point and
//! writes the accumulated metrics registry (srv.* counters, per-run SLO
//! histograms) as a validated OpenMetrics text exposition. Recording has
//! zero observer effect: the JSON report is byte-identical with or without
//! the flag.

use pim_bench::json;
use pim_bench::serve::{report_json, run_campaign_recorded, ServeCampaignConfig};
use pim_host::ExecutionBackend;
use pim_obs::{openmetrics, Recorder};

fn usage() -> ! {
    eprintln!(
        "usage: pimserve [--seed N] [--elements N] [--requests N] [--tenants N] \
         [--deadline-slack N] [--intervals I1,I2,...] [--rates R1,R2,...] \
         [--backend sequential|threads:N] [--expect-clean] [--metrics PATH]"
    );
    std::process::exit(2);
}

fn bad(msg: String) -> ! {
    eprintln!("pimserve: {msg}");
    usage();
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| bad(format!("{flag} requires a value")))
}

fn parse_pos(v: &str, what: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => bad(format!("bad {what} '{v}'")),
    }
}

fn parse_backend(text: &str) -> ExecutionBackend {
    if text == "sequential" {
        return ExecutionBackend::Sequential;
    }
    if let Some(n) = text.strip_prefix("threads:") {
        match n.parse::<usize>() {
            Ok(n) if n > 0 => return ExecutionBackend::Threads(n),
            _ => bad(format!("bad worker count '{n}'")),
        }
    }
    bad(format!("unknown backend '{text}' (expected sequential or threads:N)"))
}

fn parse_intervals(text: &str) -> Vec<u64> {
    let intervals: Vec<u64> = text
        .split(',')
        .map(|v| match v.trim().parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => bad(format!("bad interval '{v}' (expected a positive cycle count)")),
        })
        .collect();
    if intervals.is_empty() {
        bad("empty interval list".to_string());
    }
    intervals
}

fn parse_rates(text: &str) -> Vec<f64> {
    let rates: Vec<f64> = text
        .split(',')
        .map(|r| match r.trim().parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => bad(format!("bad rate '{r}' (expected a number in [0, 1])")),
        })
        .collect();
    if rates.is_empty() {
        bad("empty rate list".to_string());
    }
    rates
}

fn main() {
    let mut cfg = ServeCampaignConfig::default();
    let mut expect_clean = false;
    let mut metrics_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = next_value(&mut args, "--seed");
                cfg.seed = v.parse().unwrap_or_else(|_| bad(format!("bad seed '{v}'")));
            }
            "--elements" => {
                cfg.elements = parse_pos(&next_value(&mut args, "--elements"), "element count");
            }
            "--requests" => {
                cfg.requests = parse_pos(&next_value(&mut args, "--requests"), "request count");
            }
            "--tenants" => {
                cfg.tenants = parse_pos(&next_value(&mut args, "--tenants"), "tenant count") as u32;
            }
            "--deadline-slack" => {
                cfg.deadline_slack =
                    parse_pos(&next_value(&mut args, "--deadline-slack"), "deadline slack") as u64;
            }
            "--intervals" => cfg.intervals = parse_intervals(&next_value(&mut args, "--intervals")),
            "--rates" => cfg.fault_rates = parse_rates(&next_value(&mut args, "--rates")),
            "--backend" => cfg.backend = parse_backend(&next_value(&mut args, "--backend")),
            "--expect-clean" => expect_clean = true,
            "--metrics" => metrics_path = Some(next_value(&mut args, "--metrics")),
            "--help" | "-h" => usage(),
            other => bad(format!("unknown argument '{other}'")),
        }
    }

    // A counting recorder keeps the metrics registry without retaining the
    // event stream (campaigns emit millions of events).
    let recorder = metrics_path.as_ref().map(|_| Recorder::counting());
    let points = run_campaign_recorded(&cfg, recorder.as_ref()).unwrap_or_else(|e| {
        eprintln!("pimserve: campaign failed: {e}");
        std::process::exit(1);
    });
    println!("{}", json::to_string(&report_json(&cfg, &points)));

    if let (Some(path), Some(r)) = (&metrics_path, &recorder) {
        let exposition = openmetrics::render(&r.metrics().registry);
        if let Err(e) = openmetrics::validate(&exposition) {
            eprintln!("pimserve: invalid OpenMetrics exposition: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(path, &exposition) {
            eprintln!("pimserve: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path} ({} bytes)", exposition.len());
    }

    let wrong: u64 = points.iter().map(|p| p.wrong_answers).sum();
    if expect_clean && wrong > 0 {
        eprintln!("FAIL: {wrong} wrong answers reached callers");
        std::process::exit(1);
    }
    let served: u64 = points.iter().map(|p| p.completed + p.host_fallbacks).sum();
    let shed: u64 = points.iter().map(|p| p.shed_queue_full + p.shed_overloaded).sum();
    let missed: u64 = points.iter().map(|p| p.deadline_missed).sum();
    eprintln!(
        "campaign done: {} points, {served} served / {shed} shed / {missed} missed, \
         {wrong} wrong answers{}",
        points.len(),
        if expect_clean { " (clean gate passed)" } else { "" }
    );
}
