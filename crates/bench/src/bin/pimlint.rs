//! `pimlint` — the command-line driver for the `pim-verify` static
//! analysis passes.
//!
//! ```text
//! usage: pimlint [OPTIONS] [FILES...]
//!
//!   FILES             `.pim` microkernel sources (assembled, then run
//!                     through the kernel verifier) and `.trace` command
//!                     streams (protocol linter + fence-race detector)
//!   --builtin         also lint every built-in runtime microkernel (all
//!                     hardware variants) and every executor choreography
//!   --variant NAME    hardware variant for the kernel pass:
//!                     base | 2x | 2bank | srw        (default: base)
//!   --deny-warnings   exit non-zero on warnings, not just errors
//!   --encode FILE     assemble FILE and print its CRF image as hex words
//!                     (for authoring `.trace` fixtures), then exit
//! ```
//!
//! A file whose first line is `; expect: PV###` inverts the check: the
//! file *must* produce that diagnostic (the committed invalid corpus under
//! `tests/corpus/` is linted this way in CI).
//!
//! Exit status: 0 clean (or all expectations met), 1 diagnostics found or
//! an expectation unmet, 2 usage or I/O error.

use pim_bench::lint;
use pim_core::{PimConfig, PimVariant};

fn usage() -> ! {
    eprintln!(
        "usage: pimlint [--builtin] [--variant base|2x|2bank|srw] \
         [--deny-warnings] [--encode FILE] [FILES...]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("pimlint: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut files: Vec<String> = Vec::new();
    let mut builtin = false;
    let mut deny_warnings = false;
    let mut encode: Option<String> = None;
    let mut variant = PimVariant::Base;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--builtin" => builtin = true,
            "--deny-warnings" => deny_warnings = true,
            "--encode" => encode = Some(args.next().unwrap_or_else(|| usage())),
            "--variant" => {
                variant = match args.next().as_deref() {
                    Some("base") => PimVariant::Base,
                    Some("2x") => PimVariant::DoubleResources,
                    Some("2bank") => PimVariant::TwoBankAccess,
                    Some("srw") => PimVariant::SimultaneousReadWrite,
                    _ => usage(),
                };
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            _ => usage(),
        }
    }
    if files.is_empty() && !builtin && encode.is_none() {
        usage();
    }
    let cfg = PimConfig::with_variant(variant);

    if let Some(path) = encode {
        match pim_core::asm::assemble(&read(&path)) {
            Ok(prog) => {
                for i in &prog {
                    println!("0x{:08X}  ; {i}", i.encode());
                }
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut failed = false;

    for path in &files {
        let source = read(path);
        let report = if path.ends_with(".pim") {
            lint::lint_pim_source(&cfg, &source)
        } else if path.ends_with(".trace") {
            lint::lint_trace_source(&cfg, &source)
        } else {
            eprintln!("pimlint: {path}: expected a .pim or .trace file");
            std::process::exit(2);
        };
        match lint::expected_code(&source) {
            Some(code) => {
                if report.has_code(code) {
                    println!("{path}: produces {code} as expected");
                } else {
                    eprint!("{}", report.render(path));
                    eprintln!("{path}: FAILED — expected {code}, not produced");
                    failed = true;
                }
            }
            None => {
                if !report.is_clean() {
                    print!("{}", report.render(path));
                }
                if report.has_errors() || (deny_warnings && report.warning_count() > 0) {
                    failed = true;
                }
            }
        }
    }

    if builtin {
        let mut checked = 0usize;
        for (name, report) in lint::builtin_kernel_reports() {
            checked += 1;
            if !report.is_clean() {
                print!("{}", report.render(&name));
                failed = true;
            }
        }
        for (name, protocol, fences) in lint::builtin_stream_reports() {
            checked += 1;
            if !protocol.is_clean() {
                print!("{}", protocol.render(&name));
                failed = true;
            }
            if !fences.is_clean() {
                print!("{}", fences.render(&name));
                failed = true;
            }
        }
        println!(
            "builtin: {checked} kernel/stream targets linted{}",
            if failed { "" } else { ", all clean" }
        );
    }

    std::process::exit(if failed { 1 } else { 0 });
}
