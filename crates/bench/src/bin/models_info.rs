//! Prints the evaluated applications' structural inventory: layer counts,
//! parameters, per-inference FLOPs, and the fraction of weights in
//! PIM-eligible layers — the "why these apps" table behind Section VII-A.
use pim_bench::report::format_table;
use pim_models::models;

fn main() {
    println!("Application inventory (Section VII-A + extensions)\n");
    let mut all = models::all_models();
    all.push(models::vgg16());
    let rows: Vec<Vec<String>> = all
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.layers.len().to_string(),
                format!("{:.1} MB", m.weight_bytes() as f64 / 1048576.0),
                format!("{:.1} GFLOP", m.inference_flops() as f64 / 1e9),
                format!("{:.0}%", m.pim_eligible_weight_fraction() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Model", "layers", "weights", "FLOPs/inference", "PIM-eligible weights"],
            &rows
        )
    );
    println!("Note: convolution weights are not tabulated (the model tracks only");
    println!("the memory-bound layers' parameters — convs never touch the PIM path),");
    println!("so 'weights' is the streamed-parameter footprint, the quantity that");
    println!("matters for bandwidth. The eligible fraction predicts the Fig. 10");
    println!("ordering: DS2 (all LSTM) gains most, ResNet-50 (all conv) shows parity.");
}
