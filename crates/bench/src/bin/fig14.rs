//! Reproduces Fig. 14: the design-space-exploration variants
//! (PIM-HBM-2x, -2BA, -SRW) over the microbenchmarks + BN.
use pim_bench::report::format_table;

fn main() {
    println!("Fig. 14: DSE variants, speedup over the HBM baseline\n");
    let (rows, geo) = pim_bench::experiments::fig14();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.variant.to_string(), r.workload.clone(), format!("{:.2}x", r.speedup)])
        .collect();
    println!("{}", format_table(&["Variant", "Workload", "Speedup"], &table));
    println!("geometric means:");
    let base = geo.iter().find(|(v, _)| *v == "PIM-HBM").map(|(_, g)| *g).unwrap();
    for (v, g) in &geo {
        println!("  {v:<14} {g:.2}x  ({:+.0}% vs base)", (g / base - 1.0) * 100.0);
    }
    println!("\npaper= 2x: ~+40% geo-mean (+24% die); 2BA: ~+20% (esp. ADD, +60% power);");
    println!("       SRW: ~+10% (esp. GEMV +25%). See EXPERIMENTS.md for deviations.");
}
