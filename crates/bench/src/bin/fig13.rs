//! Reproduces Fig. 13: average system power of DS2 over time on the HBM
//! and PIM-HBM systems (ASCII time series).
fn main() {
    println!("Fig. 13: average system power of DS2 over time\n");
    let (hbm, pim) = pim_bench::experiments::fig13(40);
    let render = |name: &str, series: &[(f64, f64)]| {
        println!("{name}:");
        for (t, w) in series {
            let bars = (*w / 5.0).round() as usize;
            println!("  {:>7.2} ms | {:<60} {:.0} W", t * 1e3, "#".repeat(bars.min(60)), w);
        }
        let avg: f64 = series.iter().map(|(_, w)| w).sum::<f64>() / series.len() as f64;
        let end = series.last().map(|(t, _)| *t).unwrap_or(0.0);
        println!("  average {avg:.0} W over {:.1} ms\n", end * 1e3);
    };
    render("PROC-HBM", &hbm);
    render("PIM-HBM", &pim);
    println!("paper= PIM-HBM finishes earlier AND at lower average power.");
}
