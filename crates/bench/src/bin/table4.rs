//! Reproduces Table IV: the PIM execution unit specification.
use pim_bench::report::format_table;

fn main() {
    println!("Table IV: Specification of PIM execution unit\n");
    let rows: Vec<Vec<String>> =
        pim_bench::experiments::table4().into_iter().map(|(k, v)| vec![k, v]).collect();
    println!("{}", format_table(&["Parameter", "Value"], &rows));
    println!(
        "paper= identical structural values; 9.6 GFLOPS is derived (16 lanes x 2 ops x 300MHz)."
    );
}
