//! Seeded fault-injection campaign runner.
//!
//! ```text
//! cargo run --release -p pim-bench --bin pimfault -- \
//!     [--seed N] [--elements N] [--rates R1,R2,...] \
//!     [--backend sequential|threads:N] [--expect-clean]
//! ```
//!
//! Sweeps the base fault rate over `pim_bench::faults::fault_mix`, runs
//! the resilient runtime at every point, and prints the
//! `pim-bench/fault-campaign-v1` JSON report on stdout. The report is
//! deterministic in `(seed, elements, rates)` and byte-identical across
//! execution backends.
//!
//! `--expect-clean` exits non-zero if any point has wrong answers — the
//! CI smoke job's assertion that the recovery ladder fully recovers.

use pim_bench::faults::{report_json, run_campaign, CampaignConfig};
use pim_bench::json;
use pim_host::ExecutionBackend;

fn usage() -> ! {
    eprintln!(
        "usage: pimfault [--seed N] [--elements N] [--rates R1,R2,...] \
         [--backend sequential|threads:N] [--expect-clean]"
    );
    std::process::exit(2);
}

fn bad(msg: String) -> ! {
    eprintln!("pimfault: {msg}");
    usage();
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| bad(format!("{flag} requires a value")))
}

fn parse_backend(text: &str) -> ExecutionBackend {
    if text == "sequential" {
        return ExecutionBackend::Sequential;
    }
    if let Some(n) = text.strip_prefix("threads:") {
        match n.parse::<usize>() {
            Ok(n) if n > 0 => return ExecutionBackend::Threads(n),
            _ => bad(format!("bad worker count '{n}'")),
        }
    }
    bad(format!("unknown backend '{text}' (expected sequential or threads:N)"))
}

fn parse_rates(text: &str) -> Vec<f64> {
    let rates: Vec<f64> = text
        .split(',')
        .map(|r| match r.trim().parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => bad(format!("bad rate '{r}' (expected a number in [0, 1])")),
        })
        .collect();
    if rates.is_empty() {
        bad("empty rate list".to_string());
    }
    rates
}

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut expect_clean = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = next_value(&mut args, "--seed");
                cfg.seed = v.parse().unwrap_or_else(|_| bad(format!("bad seed '{v}'")));
            }
            "--elements" => {
                let v = next_value(&mut args, "--elements");
                cfg.elements = match v.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => bad(format!("bad element count '{v}'")),
                };
            }
            "--rates" => cfg.rates = parse_rates(&next_value(&mut args, "--rates")),
            "--backend" => cfg.backend = parse_backend(&next_value(&mut args, "--backend")),
            "--expect-clean" => expect_clean = true,
            "--help" | "-h" => usage(),
            other => bad(format!("unknown argument '{other}'")),
        }
    }

    let points = run_campaign(&cfg).unwrap_or_else(|e| {
        eprintln!("pimfault: campaign failed: {e}");
        std::process::exit(1);
    });
    println!("{}", json::to_string(&report_json(&cfg, &points)));

    let wrong: u64 = points.iter().map(|p| p.wrong_answers).sum();
    if expect_clean && wrong > 0 {
        eprintln!("FAIL: {wrong} wrong answers escaped the recovery ladder");
        std::process::exit(1);
    }
    eprintln!(
        "campaign done: {} points, {} wrong answers{}",
        points.len(),
        wrong,
        if expect_clean { " (clean gate passed)" } else { "" }
    );
}
