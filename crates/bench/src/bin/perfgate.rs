//! The CI perf-regression gate.
//!
//! ```text
//! cargo run --release -p pim-bench --bin perfgate -- [--baseline PATH] [--write-baseline]
//! ```
//!
//! Runs a fixed smoke workload and compares it against the checked-in
//! `BENCH_baseline.json` on two axes:
//!
//! * **Deterministic fields** (`sim_cycles`, `commands`, `fences`) must
//!   match *exactly* — any drift means the simulator's behaviour changed,
//!   which is either a bug or a change that must re-baseline deliberately.
//! * **Normalized throughput** — simulated cycles per host second, divided
//!   by a simulator-independent calibration score measured in the same
//!   process ([`pim_bench::parallel::calibrate`]). The ratio is
//!   machine-portable, so the gate never flakes on a slower CI runner; a
//!   drop of more than 20% against baseline fails the job.
//!
//! `--write-baseline` reruns the measurement and rewrites the baseline
//! file — use after a deliberate behaviour or performance change.

use pim_bench::json::{self, obj, Json};
use pim_bench::parallel::{calibrate, measure_run_system, synthetic_batches, RunMeasurement};
use pim_bench::report::format_table;
use pim_host::ExecutionBackend;

/// Throughput may regress by at most this fraction before the gate fails.
const TOLERANCE: f64 = 0.20;

/// Smoke workload shape: 64 channels × 16k batch triples, fixed seed —
/// sized so one sequential run takes a few hundred milliseconds of CPU
/// time, well above the ~10 ms CPU-clock tick.
const CHANNELS: usize = 64;
const BATCHES: usize = 16_000;
const SEED: u64 = 0x5EED;

/// Calibration loop length (a few hundred milliseconds on a modern core).
const CALIBRATION_ITERS: u64 = 200_000_000;

/// Trials per measurement; the gate keeps each quantity's best trial.
/// Residual CPU-time noise (cache pollution from neighbours, frequency
/// ramps) is one-sided — it only makes runs *slower* — so the max over
/// trials converges on the machine's true speed and the best/best ratio is
/// far more stable than any single run.
const TRIALS: usize = 3;

struct Measured {
    run: RunMeasurement,
    calibration: f64,
}

impl Measured {
    /// Simulated cycles per CPU second, per calibration unit — the
    /// machine-portable throughput figure the gate compares. CPU time
    /// (rather than wall time) makes preemption by other processes not
    /// count against the measurement; the time unit itself cancels out of
    /// the ratio, so even clock-granularity conventions are irrelevant.
    fn normalized(&self) -> f64 {
        self.run.cycles_per_cpu_sec() / self.calibration.max(1e-9)
    }

    fn to_json(&self) -> Json {
        obj([
            ("schema", Json::Str("pim-bench/perfgate-baseline-v1".to_string())),
            ("workload", Json::Str(format!("synthetic{CHANNELS}x{BATCHES}"))),
            ("sim_cycles", Json::Num(self.run.end_cycle as f64)),
            ("commands", Json::Num(self.run.commands as f64)),
            ("fences", Json::Num(self.run.fences as f64)),
            ("calibration_score", Json::Num(self.calibration)),
            ("workload_cycles_per_cpu_sec", Json::Num(self.run.cycles_per_cpu_sec())),
            ("normalized_throughput", Json::Num(self.normalized())),
        ])
    }
}

fn measure() -> Measured {
    let per_channel = synthetic_batches(CHANNELS, BATCHES, SEED);
    let mut calibration = 0.0f64;
    let mut best_run: Option<RunMeasurement> = None;
    for _ in 0..TRIALS {
        calibration = calibration.max(calibrate(CALIBRATION_ITERS).iters_per_cpu_sec);
        // Sequential: single-threaded throughput is the stable quantity;
        // thread scheduling noise would widen the error bars for no benefit.
        let run = measure_run_system(ExecutionBackend::Sequential, &per_channel);
        if best_run.as_ref().is_none_or(|b| run.cpu_s < b.cpu_s) {
            best_run = Some(run);
        }
    }
    Measured { run: best_run.expect("TRIALS > 0"), calibration }
}

fn main() {
    let mut baseline_path = String::from("BENCH_baseline.json");
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            "--baseline" => {
                baseline_path = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (expected --baseline PATH / --write-baseline)"
                );
                std::process::exit(2);
            }
        }
    }

    let measured = measure();

    if write_baseline {
        std::fs::write(&baseline_path, json::to_string(&measured.to_json()) + "\n").unwrap_or_else(
            |e| {
                eprintln!("cannot write {baseline_path}: {e}");
                std::process::exit(1);
            },
        );
        eprintln!("wrote baseline to {baseline_path}");
        return;
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read {baseline_path}: {e} (run with --write-baseline first)");
        std::process::exit(1);
    });
    let baseline = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{baseline_path}: {e}");
        std::process::exit(1);
    });
    let base_u64 = |key: &str| {
        baseline.get(key).and_then(Json::as_u64).unwrap_or_else(|| {
            eprintln!("{baseline_path}: missing integer field '{key}'");
            std::process::exit(1);
        })
    };
    let base_f64 = |key: &str| {
        baseline.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
            eprintln!("{baseline_path}: missing number field '{key}'");
            std::process::exit(1);
        })
    };

    let base_norm = base_f64("normalized_throughput");
    let ratio = measured.normalized() / base_norm.max(1e-12);

    let exact = [
        ("sim_cycles", base_u64("sim_cycles"), measured.run.end_cycle),
        ("commands", base_u64("commands"), measured.run.commands),
        ("fences", base_u64("fences"), measured.run.fences),
    ];

    let mut rows: Vec<Vec<String>> = exact
        .iter()
        .map(|(name, base, now)| {
            vec![
                name.to_string(),
                format!("{base}"),
                format!("{now}"),
                if base == now { "ok" } else { "MISMATCH" }.to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "normalized throughput".to_string(),
        format!("{base_norm:.4}"),
        format!("{:.4}", measured.normalized()),
        format!("{:+.1}%", (ratio - 1.0) * 100.0),
    ]);
    println!("{}", format_table(&["metric", "baseline", "current", "status"], &rows));

    let mut failed = false;
    for (name, base, now) in &exact {
        if base != now {
            eprintln!(
                "FAIL: deterministic field '{name}' changed ({base} -> {now}); \
                       re-baseline deliberately if this is intended"
            );
            failed = true;
        }
    }
    if ratio < 1.0 - TOLERANCE {
        eprintln!(
            "FAIL: normalized throughput regressed {:.1}% (tolerance {:.0}%)",
            (1.0 - ratio) * 100.0,
            TOLERANCE * 100.0
        );
        failed = true;
    } else {
        eprintln!(
            "perf gate passed: throughput ratio {ratio:.3} (tolerance -{:.0}%)",
            TOLERANCE * 100.0
        );
    }
    if failed {
        std::process::exit(1);
    }
}
