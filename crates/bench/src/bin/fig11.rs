//! Reproduces Fig. 11: the power breakdown of HBM vs PIM-HBM over
//! back-to-back DRAM RD commands, plus the Section VII-C headlines.
use pim_bench::report::format_table;
use pim_energy::PowerComponent;

fn main() {
    println!("Fig. 11: per-pCH power breakdown over back-to-back column reads\n");
    let f = pim_bench::experiments::fig11();
    let mut rows = Vec::new();
    for c in PowerComponent::ALL {
        rows.push(vec![
            c.label().to_string(),
            format!("{:.3} W", f.bars[0].breakdown.get(c)),
            format!("{:.3} W", f.bars[1].breakdown.get(c)),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        format!("{:.3} W", f.bars[0].breakdown.total()),
        format!("{:.3} W", f.bars[1].breakdown.total()),
    ]);
    println!("{}", format_table(&["Component", "HBM", "PIM-HBM"], &rows));
    println!("power ratio         = {:.3}   (paper: 1.054, '5.4% higher power')", f.power_ratio);
    println!("on-chip bandwidth   = {:.1}x   (paper: 4x)", f.bandwidth_ratio);
    println!(
        "energy/bit ratio    = {:.2}x   (paper: ~3.5x lower energy per bit)",
        f.energy_per_bit_ratio
    );
    println!(
        "buffer-I/O gating   = {:.1}%   (paper: '~10% lower than HBM' if gated)",
        f.buffer_gating_saving * 100.0
    );
}
