//! Reproduces Table V: the PIM-HBM device specification, with the
//! bandwidth rows derived from the simulator's timing engine.
use pim_bench::report::format_table;

fn main() {
    println!("Table V: Specification of PIM-HBM device\n");
    let rows: Vec<Vec<String>> =
        pim_bench::experiments::table5().into_iter().map(|(k, v)| vec![k, v]).collect();
    println!("{}", format_table(&["Parameter", "Value"], &rows));
    println!("paper= 1TB/s~1.229TB/s on-chip, 256~307.2GB/s off-chip -- derived, not copied:");
    println!("       16 banks/pCH at tCCD_L with 8 operating banks vs 1 bank at tCCD_S.");
}
