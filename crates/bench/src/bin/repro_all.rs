//! Runs every reproduction experiment in sequence and prints a one-page
//! markdown summary — the quick way to regenerate EXPERIMENTS.md's
//! measured column.
use pim_bench::experiments as exp;
use pim_bench::micro::geo_mean;

fn main() {
    println!("# PIM-HBM reproduction — full sweep\n");

    let c = exp::table2();
    println!(
        "Table II: MUL {} ADD {} MAC {} MAD {} MOV {} (compute total {})",
        c.mul,
        c.add,
        c.mac,
        c.mad,
        c.mov,
        c.compute_total()
    );

    let f5 = exp::fig5_aam_demo();
    println!(
        "Fig 5: fenced err={}, AAM-reordered err={}, unfenced err={} (must be >0)",
        f5.fenced_in_order_err, f5.fenced_reordered_err, f5.unfenced_reordered_err
    );

    println!("\nFig 10 (relative perf, PIM/HBM):");
    let rows = exp::fig10();
    for batch in [1usize, 2, 4] {
        let line: Vec<String> = rows
            .iter()
            .filter(|r| r.batch == batch)
            .map(|r| format!("{} {:.2}x", r.name, r.relative_perf))
            .collect();
        println!("  B{batch}: {}", line.join(" | "));
    }

    let f11 = exp::fig11();
    println!(
        "\nFig 11: power ratio {:.3} at {:.0}x bandwidth; energy/bit {:.2}x; gating saves {:.0}%",
        f11.power_ratio,
        f11.bandwidth_ratio,
        f11.energy_per_bit_ratio,
        f11.buffer_gating_saving * 100.0
    );

    println!("\nFig 12 (energy efficiency of PIM-HBM):");
    for r in exp::fig12() {
        println!(
            "  {:>8}: {:.2}x vs PROC-HBM, {:.2}x vs PROC-HBMx4",
            r.name,
            r.pim_efficiency_gain(),
            r.pim_gain_over_x4()
        );
    }

    let (hbm, pim) = exp::fig13(16);
    let avg = |s: &[(f64, f64)]| s.iter().map(|(_, w)| w).sum::<f64>() / s.len() as f64;
    println!(
        "\nFig 13: DS2 runs {:.1}x faster on PIM at {:.0} W vs {:.0} W average",
        hbm.last().unwrap().0 / pim.last().unwrap().0,
        avg(&pim),
        avg(&hbm)
    );

    let (_, geo) = exp::fig14();
    let base = geo.iter().find(|(v, _)| *v == "PIM-HBM").unwrap().1;
    let deltas: Vec<String> =
        geo.iter().map(|(v, g)| format!("{v} {:+.0}%", (g / base - 1.0) * 100.0)).collect();
    println!("\nFig 14 (geo-mean vs base): {}", deltas.join(" | "));

    let gains: Vec<f64> = exp::nofence().into_iter().map(|(_, g)| g).collect();
    println!("No-fence gain: {:.2}x geo-mean across batches", geo_mean(&gains));

    let err = exp::functional_spot_check();
    println!("\nFunctional spot check (GEMV vs f32 reference): max |err| = {err:.4}");
    println!("\nDone. See EXPERIMENTS.md for the paper-vs-measured record.");
}
