//! Calibration probe: prints every headline number in one sweep.
//! (kept as the tuning record for EXPERIMENTS.md)
//! Calibration probe: raw numbers for every experiment knob.
use pim_bench::micro::{add_micro, bn_micro, gemv_micro, geo_mean};
use pim_bench::workloads;
use pim_energy::SystemPowerModel;
use pim_host::ExecutionMode;
use pim_models::{models, CostModel, ModelRunner, SystemKind};

fn main() {
    let mut cost = CostModel::paper();
    println!("== micro (fenced) ==");
    for b in [1usize, 2, 4] {
        let mut speedups = vec![];
        for w in workloads::gemv_workloads() {
            let r = gemv_micro(&mut cost, &w, b);
            println!(
                "{} B{b}: hbm={:.1}us pim={:.1}us speedup={:.2} miss={:.2}",
                w.name,
                r.hbm_s * 1e6,
                r.pim_s * 1e6,
                r.speedup(),
                r.llc_miss
            );
            speedups.push(r.speedup());
        }
        for w in workloads::add_workloads() {
            let r = add_micro(&mut cost, &w, b);
            println!(
                "{} B{b}: hbm={:.1}us pim={:.1}us speedup={:.2}",
                w.name,
                r.hbm_s * 1e6,
                r.pim_s * 1e6,
                r.speedup()
            );
            speedups.push(r.speedup());
        }
        println!("geo-mean B{b}: {:.2}", geo_mean(&speedups));
    }
    println!("== no-fence ratio ==");
    let mut ordered = CostModel::paper();
    ordered.mode = ExecutionMode::Ordered;
    for b in [1usize, 2, 4] {
        let mut ratios = vec![];
        for w in workloads::gemv_workloads() {
            let f = gemv_micro(&mut cost, &w, b);
            let o = gemv_micro(&mut ordered, &w, b);
            ratios.push(f.pim_s / o.pim_s);
        }
        for w in workloads::add_workloads() {
            let f = add_micro(&mut cost, &w, b);
            let o = add_micro(&mut ordered, &w, b);
            ratios.push(f.pim_s / o.pim_s);
        }
        println!("B{b} no-fence gain geo-mean: {:.2}", geo_mean(&ratios));
    }
    println!("== BN ==");
    for w in workloads::bn_workloads() {
        let r = bn_micro(&mut cost, &w, 1);
        println!("{}: speedup {:.2}", w.name, r.speedup());
    }
    println!("== apps ==");
    let power = SystemPowerModel::paper();
    for m in models::all_models() {
        for b in [1usize, 2, 4] {
            let hbm = ModelRunner::run(&mut cost, &power, &m, SystemKind::ProcHbm, b);
            let pim = ModelRunner::run(&mut cost, &power, &m, SystemKind::PimHbm, b);
            let x4 = ModelRunner::run(&mut cost, &power, &m, SystemKind::ProcHbmX4, b);
            let e_h = hbm.energy_j(&power);
            let e_p = pim.energy_j(&power);
            let e_x = x4.energy_j(&power);
            println!("{} B{b}: speedup={:.2} (hbm {:.1}ms pim {:.1}ms) eff_vs_hbm={:.2} eff_vs_x4={:.2} pimfrac={:.2}",
                m.name, pim.speedup_over(&hbm), hbm.total_seconds*1e3, pim.total_seconds*1e3,
                e_h/e_p, e_x/e_p, pim.pim_time_fraction());
        }
    }
}
