//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Fence synchronization cost** — how the per-barrier overhead eats
//!    the AB-mode bandwidth advantage (Section IV-C / VII-B).
//! 2. **PIM units per pseudo channel** — the paper's explicit trade-off:
//!    "the number of PIM execution units can be fewer than that of banks,
//!    i.e., trade-off between the cost and the on-chip compute bandwidth"
//!    (Section III-A).
use pim_bench::report::{format_table, time};
use pim_core::PimConfig;
use pim_dram::TimingParams;
use pim_host::HostConfig;
use pim_models::CostModel;

fn main() {
    println!("Ablation 1: fence synchronization overhead (GEMV4, batch 1)\n");
    let mut rows = Vec::new();
    for sync in [0u64, 12, 24, 48, 96, 192] {
        let mut host = HostConfig::paper();
        host.fence_sync_overhead_cycles = sync;
        let mut cost = CostModel::new(host, PimConfig::paper(), TimingParams::hbm2());
        let r = cost.pim_gemv(8192, 8192);
        rows.push(vec![format!("{sync} cycles"), time(r.seconds), format!("{}", r.fences)]);
    }
    println!("{}", format_table(&["fence sync", "GEMV4 time", "fences"], &rows));
    println!("The shipped system sits at 24 cycles; the no-fence controller of");
    println!("Section VII-B is the 'ordered' row of the nofence binary.\n");

    println!("Ablation 2: PIM execution units per pseudo channel (GEMV4)\n");
    let mut rows = Vec::new();
    let mut base = None;
    for units in [1usize, 2, 4, 8] {
        let mut pim = PimConfig::paper();
        pim.units_per_pch = units;
        let mut cost = CostModel::new(HostConfig::paper(), pim, TimingParams::hbm2());
        let r = cost.pim_gemv(8192, 8192);
        let b = *base.get_or_insert(r.seconds);
        rows.push(vec![
            units.to_string(),
            format!("{}", units * 2),
            time(r.seconds),
            format!("{:.2}x", b / r.seconds),
        ]);
    }
    println!(
        "{}",
        format_table(&["units/pCH", "banks served", "GEMV4 time", "speedup vs 1 unit"], &rows)
    );
    println!("Fewer units shrink the per-pass lane count, multiplying passes: the");
    println!("cost/bandwidth knob the paper describes, quantified.");
}
