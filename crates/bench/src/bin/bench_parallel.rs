//! Sweeps the threaded execution backend over worker counts and emits
//! `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p pim-bench --bin bench_parallel -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs the small CI configuration (completes in a few seconds);
//! the default is the full configuration behind the committed numbers.
//! `--out` redirects the JSON document (default `BENCH_parallel.json`).

use pim_bench::parallel::{run_bench, BenchParams};
use pim_bench::report::format_table;

fn main() {
    let mut out_path = String::from("BENCH_parallel.json");
    let mut params = BenchParams::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => params = BenchParams::smoke(),
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument '{other}' (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("host parallelism: {host_parallelism} (speedup is bounded by this)");

    let (doc, sweeps) = run_bench(params);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for s in &sweeps {
        rows.push(vec![
            s.name.clone(),
            "seq".to_string(),
            format!("{:.3}", s.sequential.wall_s),
            "1.00".to_string(),
            "-".to_string(),
        ]);
        for (w, m, identical) in &s.points {
            rows.push(vec![
                s.name.clone(),
                format!("{w}"),
                format!("{:.3}", m.wall_s),
                format!("{:.2}", s.sequential.wall_s / m.wall_s.max(1e-12)),
                if *identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    println!("{}", format_table(&["workload", "workers", "wall s", "speedup", "identical"], &rows));

    let diverged = sweeps.iter().flat_map(|s| s.points.iter()).any(|(_, _, identical)| !identical);

    std::fs::write(&out_path, pim_bench::json::to_string(&doc) + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");

    if diverged {
        eprintln!("FAIL: a threaded run diverged from the sequential reference");
        std::process::exit(1);
    }
}
