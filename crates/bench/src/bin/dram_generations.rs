//! The paper's portability claim (Section III): the PIM architecture "is
//! applicable to any standard DRAM such as DDR, LPDDR, and GDDR DRAM with
//! a few changes". This binary quantifies the all-bank compute-bandwidth
//! gain on each generation's timing parameters.
use pim_bench::report::format_table;
use pim_dram::TimingParams;

fn main() {
    println!("PIM all-bank bandwidth gain across DRAM generations\n");
    let gens: [(&str, TimingParams, usize); 4] = [
        ("HBM2 (2.4 Gbps)", TimingParams::hbm2(), 16),
        ("GDDR6 (16 Gbps)", TimingParams::gddr6(), 16),
        ("LPDDR5 (6.4 Gbps)", TimingParams::lpddr5(), 16),
        ("DDR5-4800", TimingParams::ddr5(), 32),
    ];
    let mut rows = Vec::new();
    for (name, t, banks) in gens {
        t.validate().unwrap();
        rows.push(vec![
            name.to_string(),
            format!("{}", banks),
            format!("{} / {}", t.t_ccd_s, t.t_ccd_l),
            format!("{:.1} GB/s", t.peak_pch_bandwidth_gbs()),
            format!("{:.0}x", t.pim_bandwidth_gain(banks)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["Generation", "banks/ch", "tCCD_S/tCCD_L", "std channel BW", "PIM gain"],
            &rows
        )
    );
    println!("The structural gain is banks x tCCD_S/tCCD_L — half the banks whenever");
    println!("tCCD_L is twice tCCD_S (Section III-B), independent of generation.");
}
