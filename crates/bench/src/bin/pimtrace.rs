//! `pimtrace` — traced serving runs: export, inspect, and diff the
//! request-scoped observability artifacts.
//!
//! ```text
//! pimtrace run      [--seed N] [--elements N] [--requests N] [--tenants N]
//!                   [--deadline-slack N] [--interval N] [--rate R]
//!                   [--backend sequential|threads:N] --out DIR
//! pimtrace selftest [--seed N] [--elements N] [--requests N]
//!                   [--interval N] [--rate R]
//! pimtrace filter   --trace PATH [--name SUBSTR] [--cat SUBSTR]
//! pimtrace diff     A B
//! ```
//!
//! `run` re-runs one serve-campaign sweep point with tracing enabled and
//! writes `trace.json`, `attrib.txt`, `attrib.folded`, and `metrics.om`
//! into `--out DIR`. All four artifacts are deterministic in the config
//! and byte-identical across execution backends.
//!
//! `selftest` proves that claim at runtime: it runs the point under
//! `Sequential`, `Threads(2)`, and `Threads(4)`, asserts every artifact is
//! byte-identical, and re-checks the cycle-conservation invariant (every
//! channel's attribution buckets sum exactly to the end cycle).
//!
//! `filter` loads a `trace.json` and prints matching events (one per
//! line); `diff` compares two artifact files and reports the first
//! difference.

use pim_bench::json::{self, Json};
use pim_bench::serve::ServeCampaignConfig;
use pim_bench::trace::{assert_backend_identity, run_traced};
use pim_host::ExecutionBackend;

fn usage() -> ! {
    eprintln!(
        "usage: pimtrace run [--seed N] [--elements N] [--requests N] [--tenants N]\n\
         \x20                [--deadline-slack N] [--interval N] [--rate R]\n\
         \x20                [--backend sequential|threads:N] --out DIR\n\
         \x20      pimtrace selftest [--seed N] [--elements N] [--requests N] [--interval N] [--rate R]\n\
         \x20      pimtrace filter --trace PATH [--name SUBSTR] [--cat SUBSTR]\n\
         \x20      pimtrace diff A B"
    );
    std::process::exit(2);
}

fn bad(msg: String) -> ! {
    eprintln!("pimtrace: {msg}");
    usage();
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| bad(format!("{flag} requires a value")))
}

fn parse_pos(v: &str, what: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => bad(format!("bad {what} '{v}'")),
    }
}

/// The point parameters shared by `run` and `selftest`.
struct PointArgs {
    cfg: ServeCampaignConfig,
    interval: u64,
    rate: f64,
    out: Option<String>,
}

fn parse_point_args(args: &mut impl Iterator<Item = String>) -> PointArgs {
    let mut cfg = ServeCampaignConfig {
        elements: 512,
        requests: 8,
        intervals: vec![],
        fault_rates: vec![],
        ..ServeCampaignConfig::default()
    };
    let mut interval = 5_000u64;
    let mut rate = 0.0f64;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = next_value(args, "--seed");
                cfg.seed = v.parse().unwrap_or_else(|_| bad(format!("bad seed '{v}'")));
            }
            "--elements" => cfg.elements = parse_pos(&next_value(args, "--elements"), "elements"),
            "--requests" => cfg.requests = parse_pos(&next_value(args, "--requests"), "requests"),
            "--tenants" => {
                cfg.tenants = parse_pos(&next_value(args, "--tenants"), "tenants") as u32;
            }
            "--deadline-slack" => {
                cfg.deadline_slack =
                    parse_pos(&next_value(args, "--deadline-slack"), "deadline slack") as u64;
            }
            "--interval" => {
                interval = parse_pos(&next_value(args, "--interval"), "interval") as u64;
            }
            "--rate" => {
                let v = next_value(args, "--rate");
                rate = match v.parse::<f64>() {
                    Ok(r) if (0.0..=1.0).contains(&r) => r,
                    _ => bad(format!("bad rate '{v}' (expected a number in [0, 1])")),
                };
            }
            "--backend" => {
                let v = next_value(args, "--backend");
                cfg.backend = if v == "sequential" {
                    ExecutionBackend::Sequential
                } else if let Some(n) = v.strip_prefix("threads:") {
                    ExecutionBackend::Threads(parse_pos(n, "worker count"))
                } else {
                    bad(format!("unknown backend '{v}'"))
                };
            }
            "--out" => out = Some(next_value(args, "--out")),
            "--help" | "-h" => usage(),
            other => bad(format!("unknown argument '{other}'")),
        }
    }
    PointArgs { cfg, interval, rate, out }
}

fn write_artifact(dir: &std::path::Path, name: &str, content: &str) {
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("pimtrace: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} bytes)", path.display(), content.len());
}

fn cmd_run(args: &mut impl Iterator<Item = String>) {
    let p = parse_point_args(args);
    let Some(out) = p.out else { bad("run requires --out DIR".to_string()) };
    let dir = std::path::Path::new(&out);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("pimtrace: cannot create {out}: {e}");
        std::process::exit(1);
    }
    let art = run_traced(&p.cfg, p.interval, p.rate).unwrap_or_else(|e| {
        eprintln!("pimtrace: traced run failed: {e}");
        std::process::exit(1);
    });
    write_artifact(dir, "trace.json", &art.chrome);
    write_artifact(dir, "attrib.txt", &art.attrib_table);
    write_artifact(dir, "attrib.folded", &art.folded);
    write_artifact(dir, "metrics.om", &art.openmetrics);
    println!(
        "traced point (interval {}, rate {}): {} events, end cycle {}",
        p.interval, p.rate, art.events, art.end_cycle
    );
}

fn cmd_selftest(args: &mut impl Iterator<Item = String>) {
    let p = parse_point_args(args);
    let art = assert_backend_identity(
        &p.cfg,
        p.interval,
        p.rate,
        &[ExecutionBackend::Threads(2), ExecutionBackend::Threads(4)],
    )
    .unwrap_or_else(|e| {
        eprintln!("pimtrace: selftest FAILED: {e}");
        std::process::exit(1);
    });
    println!(
        "selftest ok: {} events, end cycle {}, all artifacts byte-identical under \
         sequential / threads:2 / threads:4, cycle conservation exact",
        art.events, art.end_cycle
    );
}

/// One line per Chrome trace event: `ts ph pid:tid cat name [trace]`.
fn event_line(e: &Json) -> String {
    let s = |k: &str| e.get(k).and_then(Json::as_str).unwrap_or("").to_string();
    let n = |k: &str| e.get(k).and_then(Json::as_u64).unwrap_or(0);
    let trace = e
        .get("args")
        .and_then(|a| a.get("trace"))
        .and_then(Json::as_str)
        .map(|t| format!(" trace={t}"))
        .unwrap_or_default();
    format!("{} {} {}:{} {} {}{trace}", n("ts"), s("ph"), n("pid"), n("tid"), s("cat"), s("name"))
}

fn load_trace_events(path: &str) -> Vec<Json> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("pimtrace: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("pimtrace: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    match doc.get("traceEvents").and_then(Json::as_arr) {
        Some(events) => events.to_vec(),
        None => {
            eprintln!("pimtrace: {path} has no traceEvents array");
            std::process::exit(1);
        }
    }
}

fn cmd_filter(args: &mut impl Iterator<Item = String>) {
    let mut path = None;
    let mut name = None;
    let mut cat = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => path = Some(next_value(args, "--trace")),
            "--name" => name = Some(next_value(args, "--name")),
            "--cat" => cat = Some(next_value(args, "--cat")),
            other => bad(format!("unknown argument '{other}'")),
        }
    }
    let Some(path) = path else { bad("filter requires --trace PATH".to_string()) };
    let events = load_trace_events(&path);
    let total = events.len();
    let mut matched = 0usize;
    // Write through a locked handle and stop quietly on a closed pipe
    // (`pimtrace filter ... | head` is the expected usage).
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for e in &events {
        let ename = e.get("name").and_then(Json::as_str).unwrap_or("");
        let ecat = e.get("cat").and_then(Json::as_str).unwrap_or("");
        if name.as_deref().is_some_and(|n| !ename.contains(n)) {
            continue;
        }
        if cat.as_deref().is_some_and(|c| !ecat.contains(c)) {
            continue;
        }
        if writeln!(out, "{}", event_line(e)).is_err() {
            return;
        }
        matched += 1;
    }
    eprintln!("{matched} of {total} events matched");
}

fn cmd_diff(a: &str, b: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("pimtrace: cannot read {p}: {e}");
            std::process::exit(1);
        })
    };
    let (ta, tb) = (read(a), read(b));
    if ta == tb {
        println!("identical: {a} == {b} ({} bytes)", ta.len());
        return;
    }
    for (i, (la, lb)) in ta.lines().zip(tb.lines()).enumerate() {
        if la != lb {
            println!("differ at line {}:", i + 1);
            println!("- {la}");
            println!("+ {lb}");
            std::process::exit(1);
        }
    }
    println!(
        "differ in length: {a} has {} lines, {b} has {}",
        ta.lines().count(),
        tb.lines().count()
    );
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => cmd_run(&mut args),
        Some("selftest") => cmd_selftest(&mut args),
        Some("filter") => cmd_filter(&mut args),
        Some("diff") => {
            let a = next_value(&mut args, "diff");
            let b = next_value(&mut args, "diff");
            cmd_diff(&a, &b);
        }
        Some("--help") | Some("-h") | None => usage(),
        Some(other) => bad(format!("unknown subcommand '{other}'")),
    }
}
