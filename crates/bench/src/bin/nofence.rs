//! Reproduces the Section VII-B no-fence experiment: an order-preserving
//! PIM-mode DRAM controller removes the per-8-command barriers.
fn main() {
    println!("No-fence experiment: ordered PIM-mode controller vs fenced baseline\n");
    for (batch, gain) in pim_bench::experiments::nofence() {
        println!(
            "batch {batch}: removing fences speeds PIM microbenchmarks by {gain:.2}x (geo-mean)"
        );
    }
    println!("\npaper= 2.2x / 1.9x / 2.0x for batch 1 / 2 / 4.");
}
