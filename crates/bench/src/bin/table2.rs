//! Reproduces Table II: supported operations and operand combinations,
//! enumerated from the implemented ISA's legality rules.
use pim_bench::report::format_table;

fn main() {
    let c = pim_bench::experiments::table2();
    println!("Table II: operand combinations enumerated from the ISA\n");
    let rows = vec![
        vec![
            "MUL".into(),
            "GRF, BANK".into(),
            "GRF, BANK, SRF_M".into(),
            "GRF".into(),
            c.mul.to_string(),
        ],
        vec![
            "ADD".into(),
            "GRF, BANK, SRF_A".into(),
            "GRF, BANK, SRF_A".into(),
            "GRF".into(),
            c.add.to_string(),
        ],
        vec![
            "MAC".into(),
            "GRF, BANK".into(),
            "GRF, BANK, SRF_M".into(),
            "GRF_B".into(),
            c.mac.to_string(),
        ],
        vec![
            "MAD".into(),
            "GRF, BANK".into(),
            "GRF, BANK, SRF_M (+SRF_A)".into(),
            "GRF".into(),
            c.mad.to_string(),
        ],
        vec![
            "MOV(ReLU)".into(),
            "GRF, BANK, SRF".into(),
            "-".into(),
            "GRF".into(),
            c.mov.to_string(),
        ],
    ];
    println!("{}", format_table(&["Op. Type", "SRC0", "SRC1", "DST", "# of Combinations"], &rows));
    println!(
        "compute total = {} (paper: 114), data movements = {} (paper: 24)",
        c.compute_total(),
        c.mov
    );
    println!("paper= MUL 32, ADD 40, MAC 14, MAD 28, MOV 24 -- all reproduced exactly.");
}
