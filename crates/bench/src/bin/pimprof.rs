//! `pimprof` — per-kernel profiles for the Table VI GEMV microbenchmarks.
//!
//! Runs one GEMV on a fully-instrumented one-stack system and prints the
//! plain-text profile table (row hit rate, fence stalls, bank residency,
//! mode transitions). Optionally writes the event stream as Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`) and the
//! metrics registry as CSV.
//!
//! ```text
//! usage: pimprof [GEMV1|GEMV2|GEMV3|GEMV4 | NxK] [--scale D]
//!                [--trace PATH.json] [--csv PATH.csv]
//! ```
//!
//! `--scale D` divides both matrix dimensions by `D` (the full Table VI
//! sizes stream up to 128 MB of weights through the simulator; scaled runs
//! keep the same command mix at a fraction of the wall time).

use pim_bench::profile::{profile_gemv, render_profile};
use pim_bench::report;
use pim_bench::trace::render_attrib;
use pim_obs::{chrome::chrome_trace_json, csv::metrics_csv, Attribution};

fn usage() -> ! {
    eprintln!(
        "usage: pimprof [GEMV1|GEMV2|GEMV3|GEMV4 | NxK] [--scale D] [--trace PATH] [--csv PATH] \
         [--attrib] [--folded PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut name = "GEMV1".to_string();
    let mut shape: Option<(usize, usize)> = None;
    let mut scale = 1usize;
    let mut trace_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut attrib = false;
    let mut folded_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: pimprof [GEMV1|GEMV2|GEMV3|GEMV4 | NxK] [--scale D] [--trace PATH] \
                     [--csv PATH] [--attrib] [--folded PATH]"
                );
                return;
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&d| d > 0)
                    .unwrap_or_else(|| usage());
            }
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--csv" => csv_path = Some(args.next().unwrap_or_else(|| usage())),
            "--attrib" => attrib = true,
            "--folded" => folded_path = Some(args.next().unwrap_or_else(|| usage())),
            w => {
                if let Some(wl) = pim_bench::workloads::gemv_workloads()
                    .iter()
                    .find(|wl| wl.name.eq_ignore_ascii_case(w))
                {
                    name = wl.name.to_string();
                    shape = Some((wl.n, wl.k));
                } else if let Some((n, k)) = w.split_once('x') {
                    match (n.parse(), k.parse()) {
                        (Ok(n), Ok(k)) => {
                            name = w.to_string();
                            shape = Some((n, k));
                        }
                        _ => usage(),
                    }
                } else {
                    usage()
                }
            }
        }
    }
    let (mut n, mut k) = shape.unwrap_or_else(|| {
        let wl = pim_bench::workloads::gemv_workloads()[0];
        (wl.n, wl.k)
    });
    n = (n / scale).max(1);
    k = (k / scale).max(1);

    println!("profiling {name} as {n}x{k} GEMV (scale 1/{scale}) on a one-stack system");
    let run = profile_gemv(n, k).unwrap_or_else(|e| {
        eprintln!("pimprof: {e}");
        std::process::exit(1);
    });

    let r = &run.report;
    println!(
        "kernel: {} cycles ({}), {} commands, {} fences, {} PIM triggers",
        r.cycles,
        report::time(r.seconds),
        r.commands,
        r.fences,
        r.pim_triggers
    );
    println!();
    print!("{}", render_profile(&run.recorder.metrics()));

    let events = run.recorder.events().unwrap_or_default();
    println!();
    println!("events recorded: {}", events.len());

    if attrib || folded_path.is_some() {
        let a =
            Attribution::from_events(&events, run.channels, run.end_cycle).unwrap_or_else(|e| {
                eprintln!("pimprof: attribution failed: {e}");
                std::process::exit(1);
            });
        if let Err(e) = a.check_conservation() {
            eprintln!("pimprof: cycle conservation violated: {e}");
            std::process::exit(1);
        }
        if attrib {
            println!();
            println!("cycle attribution ({} channels, end cycle {}):", run.channels, run.end_cycle);
            print!("{}", render_attrib(&a));
        }
        if let Some(path) = &folded_path {
            match std::fs::write(path, a.folded()) {
                Ok(()) => println!("folded stacks written to {path}"),
                Err(e) => {
                    eprintln!("pimprof: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if let Some(path) = trace_path {
        let json = chrome_trace_json(&events);
        match std::fs::write(&path, json) {
            Ok(()) => {
                println!("chrome trace written to {path} (open in Perfetto or chrome://tracing)")
            }
            Err(e) => {
                eprintln!("pimprof: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = csv_path {
        match std::fs::write(&path, metrics_csv(&run.recorder.metrics().registry)) {
            Ok(()) => println!("metrics CSV written to {path}"),
            Err(e) => {
                eprintln!("pimprof: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
