//! Table I's accuracy dimension, measured: the area/energy table says what
//! each MAC unit *costs*; this experiment shows what each one *loses*.
//! FP16's per-value exponent keeps dot-product error low across data
//! distributions without calibration, which is the paper's rationale for
//! paying 1.32x the INT16 area (Section III-C).
use pim_bench::report::format_table;
use pim_fp16::intmac::dot_product_errors;

fn main() {
    println!("MAC-unit accuracy: dot-product error vs f64 reference (n=1024)\n");
    let n = 1024;
    let cases: Vec<(&str, Vec<f32>, Vec<f32>)> = vec![
        (
            "uniform [-1,1]",
            (0..n).map(|i| ((i * 37 % 201) as f32 - 100.0) / 100.0).collect(),
            (0..n).map(|i| ((i * 53 % 199) as f32 - 99.0) / 99.0).collect(),
        ),
        (
            "gaussian-ish small",
            (0..n).map(|i| (((i * 29 % 97) as f32 - 48.0) / 480.0).powi(3) * 10.0).collect(),
            (0..n).map(|i| (((i * 31 % 89) as f32 - 44.0) / 440.0).powi(3) * 10.0).collect(),
        ),
        (
            "wide dynamic range",
            (0..n).map(|i| if i % 16 == 0 { 8.0 } else { 0.01 }).collect(),
            (0..n).map(|i| if i % 16 == 1 { -8.0 } else { 0.01 }).collect(),
        ),
        (
            "outlier-heavy",
            (0..n).map(|i| if i == 7 { 60.0 } else { ((i % 11) as f32 - 5.0) * 0.05 }).collect(),
            (0..n).map(|i| if i == 7 { 60.0 } else { ((i % 13) as f32 - 6.0) * 0.05 }).collect(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, a, b) in &cases {
        let e = dot_product_errors(a, b);
        let rel = |err: f64| format!("{:.3}%", 100.0 * err / e.reference.abs().max(1e-9));
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", e.reference),
            rel(e.fp16_err),
            rel(e.int16_err),
            rel(e.int8_err),
        ]);
    }
    println!(
        "{}",
        format_table(&["distribution", "reference", "FP16 err", "INT16 err", "INT8 err"], &rows)
    );
    println!("FP16 needs no calibration and degrades gracefully on skewed data —");
    println!("the accuracy side of Table I's 'comparable to INT16' cost argument.");
}
