//! Reproduces Table VI: the microbenchmark workload sizes.
use pim_bench::report::format_table;
use pim_bench::workloads;

fn main() {
    println!("Table VI: Microbenchmark\n");
    let mut rows = Vec::new();
    for (g, a) in workloads::gemv_workloads().iter().zip(workloads::add_workloads().iter()) {
        rows.push(vec![
            g.name.to_string(),
            format!("{}k x {}k", g.n / 1024, g.k / 1024),
            a.name.to_string(),
            format!("{}M", a.elements >> 20),
        ]);
    }
    println!("{}", format_table(&["Name", "GEMV Dim.", "Name", "ADD Dim."], &rows));
    println!("paper= identical sizes (GEMV 1kx4k..8kx8k; ADD 2M..16M).");
}
