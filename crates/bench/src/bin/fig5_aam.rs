//! Reproduces the Fig. 5 instruction-ordering demonstration: functional
//! PIM ADD results under in-order, AAM-tolerated-reorder, and broken
//! unfenced-reorder regimes, on real data through the simulated device.
fn main() {
    println!("Fig. 5: ordering MAC/ADD triggers under DRAM-controller reordering\n");
    let r = pim_bench::experiments::fig5_aam_demo();
    println!("fenced, program order      : max |err| = {}", r.fenced_in_order_err);
    println!(
        "fenced, reordered in-window: max |err| = {}  (AAM makes reordering invisible)",
        r.fenced_reordered_err
    );
    println!(
        "NO fences, reordered       : max |err| = {}  (Fig. 5(c): wrong operands)",
        r.unfenced_reordered_err
    );
    assert_eq!(r.fenced_in_order_err, 0.0);
    assert_eq!(r.fenced_reordered_err, 0.0);
    assert!(r.unfenced_reordered_err > 0.0);
    println!("\npaper= AAM tolerates out-of-order accesses within the 8-command window;");
    println!("       without fences, commands re-associate with the wrong PIM instructions.");
}
