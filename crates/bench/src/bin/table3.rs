//! Reproduces Table III: the 32-bit instruction format, by encoding one
//! representative of every instruction class and showing the bit fields.
use pim_bench::report::format_table;

fn main() {
    println!("Table III: instruction encodings (layout: see pim_core::isa docs)\n");
    let rows: Vec<Vec<String>> = pim_bench::experiments::table3()
        .into_iter()
        .map(|(text, word)| vec![text, format!("{word:#010X}"), format!("{word:032b}")])
        .collect();
    println!("{}", format_table(&["Instruction", "Word", "Bits"], &rows));
    println!("paper= field order matches Table III (OPCODE | DST SRC0 SRC1 SRC2 | A R | #s);");
    println!("       exact bit positions are this implementation's documented concretization.");
    println!("       Round-trip encode/decode is property-tested over the full field space.");
}
