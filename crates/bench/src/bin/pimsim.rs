//! `pimsim` — a script-driven single-channel PIM-HBM simulator shell.
//!
//! Reads a script from the file named in the first argument (or stdin), executes it
//! against a fresh paper-configuration channel, and prints the output.
//! Run `pimsim --help` for the command language, or try the built-in demo
//! with `pimsim --demo`. See `pim_runtime::script` for the full reference.
use pim_runtime::ScriptSession;
use std::io::Read;

const DEMO: &str = r#"# pimsim demo: scale-by-2 microkernel on unit 0
poke 0 0 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
mode ab
program
  MUL GRF_A[0], EVEN_BANK, SRF_M[0]
  MOV EVEN_BANK, GRF_A[0]
  EXIT
end
srf 2 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0
pim on
act 0
rd 0
rd 0
pre
pim off
mode sb
peek 0 0 0
stats
"#;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = args.iter().any(|a| a == "--profile");
    args.retain(|a| a != "--profile");
    let arg = args.first().cloned();
    let source = match arg.as_deref() {
        Some("--help") | Some("-h") => {
            println!("usage: pimsim [SCRIPT.pim | --demo] [--profile]   (stdin if omitted)\n");
            println!("commands: mode ab|sb, pim on|off, program..end, srf, poke, peek,");
            println!("          act, rd, wr, pre, prea, dump, stats, trace, profile  (# comments)");
            println!(
                "\n--profile attaches a recorder and prints the metrics profile after the run"
            );
            return;
        }
        Some("--demo") => {
            println!("{DEMO}");
            DEMO.to_string()
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("pimsim: cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("pimsim: cannot read stdin: {e}");
                std::process::exit(1);
            }
            s
        }
    };
    let mut session = ScriptSession::new();
    if profile {
        session.enable_profiling();
    }
    match session.run(&source) {
        Ok(output) => {
            for line in output {
                println!("{line}");
            }
            println!("-- done at cycle {} in {} mode", session.now(), session.mode());
            if let Some(recorder) = session.recorder() {
                println!();
                print!("{}", pim_bench::profile::render_profile(&recorder.metrics()));
            }
        }
        Err(e) => {
            eprintln!("pimsim: {e}");
            std::process::exit(1);
        }
    }
}
