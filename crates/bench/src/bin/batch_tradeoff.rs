//! The latency/throughput trade-off behind the paper's batch-1 focus:
//! "a larger batch size gives more data reusability ... and increases
//! throughput. Nonetheless, it also increases response time. Hence, we
//! focus on ... batch size of 1 as we consider the target use of PIM-HBM
//! systems for memory-bound, latency-sensitive applications such as
//! commercial online services" (Section VII-A).
use pim_bench::report::{format_table, time};
use pim_energy::SystemPowerModel;
use pim_models::{models, CostModel, ModelRunner, SystemKind};

fn main() {
    println!("DS2: latency vs throughput across batch sizes\n");
    let mut cost = CostModel::paper();
    let power = SystemPowerModel::paper();
    let model = models::deepspeech2();
    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8] {
        let hbm = ModelRunner::run(&mut cost, &power, &model, SystemKind::ProcHbm, batch);
        let pim = ModelRunner::run(&mut cost, &power, &model, SystemKind::PimHbm, batch);
        rows.push(vec![
            format!("B{batch}"),
            time(hbm.total_seconds),
            time(pim.total_seconds),
            format!("{:.1}/s", batch as f64 / hbm.total_seconds),
            format!("{:.1}/s", batch as f64 / pim.total_seconds),
            format!("{:.2}x", pim.speedup_over(&hbm)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["batch", "HBM latency", "PIM latency", "HBM thru", "PIM thru", "PIM speedup"],
            &rows
        )
    );
    println!("PIM's advantage is a *latency* advantage: it peaks at batch 1, where");
    println!("online services live; batching buys the host throughput instead.");
}
