//! Reproduces Fig. 12: relative power and energy of PROC-HBM, PIM-HBM and
//! PROC-HBMx4 for the microbenchmarks and applications.
use pim_bench::report::format_table;

fn main() {
    println!("Fig. 12: relative power and energy (normalized to PROC-HBM)\n");
    let rows = pim_bench::experiments::fig12();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}", r.rel_power[1]),
                format!("{:.2}", r.rel_power[2]),
                format!("{:.2}", r.rel_energy[1]),
                format!("{:.2}", r.rel_energy[2]),
                format!("{:.2}x", r.pim_efficiency_gain()),
                format!("{:.2}x", r.pim_gain_over_x4()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Workload", "P(PIM)", "P(x4)", "E(PIM)", "E(x4)", "PIM eff vs HBM", "vs x4"],
            &table
        )
    );
    println!("paper= efficiency gains: GEMV 8.25x, ADD 1.4x, DS2 3.2x, GNMT 1.38x, AlexNet 1.5x;");
    println!("       vs PROC-HBMx4: DS2 2.8x, GNMT 1.1x, AlexNet 1.3x.");
}
