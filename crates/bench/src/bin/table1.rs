//! Reproduces Table I: relative area and energy/op of MAC units in the
//! 20nm DRAM technology.
use pim_bench::report::format_table;

fn main() {
    println!("Table I: MAC units in a DRAM 20nm technology (normalized to INT16 w/ 48-bit Acc.)\n");
    let rows: Vec<Vec<String>> = pim_bench::experiments::table1()
        .into_iter()
        .map(|m| {
            vec![
                m.format.label().to_string(),
                format!("{:.2}", m.rel_area),
                format!("{:.2}", m.rel_energy),
            ]
        })
        .collect();
    println!("{}", format_table(&["Number format", "Area", "Energy/Op."], &rows));
    println!("paper= identical values (Table I is reproduced verbatim as model constants;");
    println!("       the FP16-over-BFLOAT16 design rationale is asserted by unit tests).");
}
