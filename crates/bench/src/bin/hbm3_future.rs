//! The paper's future work (Section VIII): HBM3-generation fine-grained
//! SB/AB-PIM interleaving enabling host+PIM *collaborative* GEMV. This
//! binary quantifies the opportunity with the calibrated cost models.
use pim_bench::report::{format_table, time};
use pim_models::capacity::collaborative_gemv;
use pim_models::CostModel;

fn main() {
    println!("Collaborative GEMV (host + PIM on disjoint banks), 16384 x 4096\n");
    let mut rows = Vec::new();
    for host_speedup in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let mut cost = CostModel::paper();
        let (share, combined, pim_only) = collaborative_gemv(&mut cost, 16384, 4096, host_speedup);
        rows.push(vec![
            format!("{host_speedup:.0}x"),
            format!("{:.0}%", share * 100.0),
            time(combined),
            time(pim_only),
            format!("{:.2}x", pim_only / combined),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["host GEMV quality", "best host share", "combined", "PIM alone", "gain"],
            &rows
        )
    );
    println!("With the paper-calibrated (unoptimized) host GEMV the best share is 0%:");
    println!("PIM's pass-quantized time cannot be trimmed by a host that slow — the");
    println!("quantified reason the paper leaves collaboration as future work.");
}
