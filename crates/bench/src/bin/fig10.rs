//! Reproduces Fig. 10: relative performance of PIM-HBM over HBM, and LLC
//! miss rates, for all microbenchmarks and applications at batch 1/2/4.
use pim_bench::report::format_table;

fn main() {
    println!("Fig. 10: relative performance (PIM-HBM / HBM) and LLC miss rates\n");
    let rows = pim_bench::experiments::fig10();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("B{}", r.batch),
                format!("{:.2}x", r.relative_perf),
                r.llc_miss.map(|m| format!("{:.0}%", m * 100.0)).unwrap_or_else(|| "n/a".into()),
            ]
        })
        .collect();
    println!("{}", format_table(&["Workload", "Batch", "Rel. perf", "LLC miss (HBM)"], &table));
    println!(
        "paper= B1: GEMV 1.4~11.2x, ADD ~1.6x, DS2 3.5x, GNMT 1.5x, AlexNet 1.4x, ResNet 1.0x;"
    );
    println!("       B2: GEMV4 3.2x, DS2 1.6x, RNN-T 1.9x; B4: HBM outperforms for GEMV.");
    println!("       LLC miss ~100% at B1 dropping to 70-80% at B4.");
}
