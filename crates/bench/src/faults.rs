//! Seeded fault-injection campaigns — the `pimfault` binary's engine.
//!
//! A campaign sweeps a base fault rate over a fixed mixture of the
//! injector's fault classes, runs the resilient runtime at every point,
//! and reports what the recovery ladder did: corrections, detections,
//! retries, quarantines, host fallbacks, and (the figure of merit) wrong
//! answers that escaped everything.
//!
//! Every campaign is deterministic in `(seed, elements, rates)`: fault
//! decisions are pure hashes of per-channel state, so the same campaign
//! produces a byte-identical JSON report under the sequential and
//! threaded execution backends. The report deliberately omits the backend
//! so that equality can be asserted on the serialized bytes.

use crate::json::{obj, Json};
use pim_faults::FaultPlan;
use pim_fp16::F16;
use pim_host::ExecutionBackend;
use pim_runtime::{resilient_add, PimContext, PimError, ResilienceConfig};

/// Campaign shape: the sweep and the workload size.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every fault decision derives from it.
    pub seed: u64,
    /// Elements per vector-add workload.
    pub elements: usize,
    /// Base fault rates to sweep (see [`fault_mix`]).
    pub rates: Vec<f64>,
    /// Host execution backend (does not affect the report).
    pub backend: ExecutionBackend,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0xFA17,
            elements: 4096,
            rates: vec![0.0, 1e-4, 1e-3, 1e-2],
            backend: ExecutionBackend::Sequential,
        }
    }
}

/// One sweep point: the recovery ladder's counters at a base rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPoint {
    /// The base fault rate of this point.
    pub rate: f64,
    /// Scrub passes over resident operands.
    pub scrubs: u64,
    /// Single-bit errors corrected by the scrub path.
    pub corrected: u64,
    /// Uncorrectable errors detected by the scrub path.
    pub detected: u64,
    /// Blocks re-stored from the golden copy.
    pub restored: u64,
    /// Kernel launches (1 on a clean point).
    pub launches: u64,
    /// Launches retried after a wrong result.
    pub retries: u64,
    /// Channels quarantined.
    pub quarantined: u64,
    /// Result blocks computed host-side.
    pub fallback_blocks: u64,
    /// Elements wrong in the final output, checked independently against
    /// the exact FP16 sum. Zero means the ladder fully recovered.
    pub wrong_answers: u64,
    /// Simulated cycles across all launches.
    pub cycles: u64,
    /// DRAM commands across all launches.
    pub commands: u64,
}

/// The sweep's fault mixture at base rate `r`: transient cell flips
/// dominate (as in the field), persistent and device faults ride along at
/// fixed fractions, and whole-channel failures are rarest.
pub fn fault_mix(seed: u64, rate: f64) -> FaultPlan {
    let mut p = FaultPlan::quiet(seed);
    p.cell_flip_rate = rate;
    p.stuck_cell_rate = rate / 4.0;
    p.stuck_pair_rate = rate / 8.0;
    p.cmd_drop_rate = rate / 4.0;
    p.cmd_corrupt_rate = rate / 4.0;
    p.glitch_rate = rate / 16.0;
    p.chan_fail_rate = rate / 2.0;
    p.chan_stall_rate = rate / 8.0;
    p.stall_penalty = 32;
    p
}

/// Deterministic campaign operands (pure hash of the seed — the campaign
/// must not depend on ambient randomness).
fn operands(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
    let mix = |i: u64| {
        let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    let val = |i: u64, salt: u64| ((mix(i ^ salt) % 509) as f32 - 254.0) * 0.125;
    let x = (0..n as u64).map(|i| val(i, 0)).collect();
    let y = (0..n as u64).map(|i| val(i, 0x5A5A)).collect();
    (x, y)
}

/// Runs one sweep point on a fresh one-stack (16-channel) system.
///
/// # Errors
///
/// Propagates [`PimError`] from the resilient runtime (only plumbing
/// failures — fault damage itself is recovered, not reported as an error).
pub fn run_point(cfg: &CampaignConfig, rate: f64) -> Result<CampaignPoint, PimError> {
    let mut ctx = PimContext::small_system();
    ctx.set_backend(cfg.backend);
    if rate > 0.0 {
        ctx.inject_faults(&fault_mix(cfg.seed, rate));
    }
    let (x, y) = operands(cfg.seed, cfg.elements);
    let (z, rep) = resilient_add(&mut ctx, &x, &y, &ResilienceConfig::default())?;
    let wrong = z
        .iter()
        .zip(x.iter().zip(&y))
        .filter(|(&got, (&a, &b))| {
            got.to_bits() != (F16::from_f32(a) + F16::from_f32(b)).to_f32().to_bits()
        })
        .count() as u64;
    Ok(CampaignPoint {
        rate,
        scrubs: rep.scrubs,
        corrected: rep.ecc_corrected,
        detected: rep.ecc_detected,
        restored: rep.blocks_restored,
        launches: rep.launches,
        retries: rep.retries,
        quarantined: rep.quarantined.len() as u64,
        fallback_blocks: rep.host_fallback_blocks,
        wrong_answers: wrong,
        cycles: rep.kernel.cycles,
        commands: rep.kernel.commands,
    })
}

/// Runs the full sweep.
///
/// # Errors
///
/// Fails on the first point that returns a [`PimError`].
pub fn run_campaign(cfg: &CampaignConfig) -> Result<Vec<CampaignPoint>, PimError> {
    cfg.rates.iter().map(|&rate| run_point(cfg, rate)).collect()
}

/// Serializes a campaign to the `pim-bench/fault-campaign-v1` document.
/// Backend-independent by construction (see module docs).
pub fn report_json(cfg: &CampaignConfig, points: &[CampaignPoint]) -> Json {
    let point_json = |p: &CampaignPoint| {
        obj([
            ("rate", Json::Num(p.rate)),
            ("scrubs", Json::Num(p.scrubs as f64)),
            ("corrected", Json::Num(p.corrected as f64)),
            ("detected", Json::Num(p.detected as f64)),
            ("restored", Json::Num(p.restored as f64)),
            ("launches", Json::Num(p.launches as f64)),
            ("retries", Json::Num(p.retries as f64)),
            ("quarantined", Json::Num(p.quarantined as f64)),
            ("fallback_blocks", Json::Num(p.fallback_blocks as f64)),
            ("wrong_answers", Json::Num(p.wrong_answers as f64)),
            ("cycles", Json::Num(p.cycles as f64)),
            ("commands", Json::Num(p.commands as f64)),
        ])
    };
    obj([
        ("schema", Json::Str("pim-bench/fault-campaign-v1".to_string())),
        ("seed", Json::Num(cfg.seed as f64)),
        ("elements", Json::Num(cfg.elements as f64)),
        ("points", Json::Arr(points.iter().map(point_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn small() -> CampaignConfig {
        CampaignConfig { elements: 1024, rates: vec![0.0, 1e-3], ..CampaignConfig::default() }
    }

    #[test]
    fn zero_rate_point_is_clean() {
        let cfg = small();
        let p = run_point(&cfg, 0.0).unwrap();
        assert_eq!(p.launches, 1);
        assert_eq!(p.corrected + p.detected + p.retries + p.quarantined, 0);
        assert_eq!(p.wrong_answers, 0);
        assert!(p.cycles > 0);
    }

    #[test]
    fn faulty_points_recover_to_zero_wrong_answers() {
        let cfg = small();
        for p in run_campaign(&cfg).unwrap() {
            assert_eq!(p.wrong_answers, 0, "ladder must fully recover: {p:?}");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let cfg = small();
        let points = run_campaign(&cfg).unwrap();
        let doc = report_json(&cfg, &points);
        let text = json::to_string(&doc);
        let back = json::parse(&text).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("pim-bench/fault-campaign-v1"));
        assert_eq!(back.get("points").unwrap().as_arr().unwrap().len(), 2);
    }
}
