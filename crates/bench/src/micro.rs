//! Microbenchmark execution: HBM-baseline vs PIM-HBM times per workload
//! and batch, with the LLC miss rates of Fig. 10's lower panel.

use crate::workloads::{AddWorkload, GemvWorkload};
use pim_host::llc;
use pim_models::CostModel;
use pim_runtime::StreamOp;

/// One microbenchmark data point.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroResult {
    /// Workload name (e.g. "GEMV2").
    pub name: String,
    /// Batch size.
    pub batch: usize,
    /// HBM-baseline seconds.
    pub hbm_s: f64,
    /// PIM-HBM seconds.
    pub pim_s: f64,
    /// LLC miss rate on the HBM baseline.
    pub llc_miss: f64,
}

impl MicroResult {
    /// Relative performance of PIM-HBM over HBM (>1 means PIM wins).
    pub fn speedup(&self) -> f64 {
        self.hbm_s / self.pim_s
    }
}

/// Runs one GEMV workload at `batch` on both systems.
///
/// PIM executes the batch as `batch` sequential matrix-vector products
/// (the device has no batching notion); the host's library gets the usual
/// batched-GEMM benefits (Section VII-B).
pub fn gemv_micro(cost: &mut CostModel, w: &GemvWorkload, batch: usize) -> MicroResult {
    let pim = cost.pim_gemv(w.n, w.k);
    let hbm = cost.host_gemv(w.n, w.k, batch, 1.0);
    MicroResult {
        name: w.name.to_string(),
        batch,
        hbm_s: hbm.seconds,
        pim_s: pim.seconds * batch as f64,
        llc_miss: llc::batched_miss_rate(w.weight_bytes(), cost.host.llc_bytes, batch),
    }
}

/// Runs one ADD workload at `batch` on both systems. "ADD, which is the
/// level-1 BLAS, is still memory-bound regardless of the batch size": the
/// work simply scales with batch on both sides.
pub fn add_micro(cost: &mut CostModel, w: &AddWorkload, batch: usize) -> MicroResult {
    stream_micro(cost, w, batch, StreamOp::Add)
}

/// Runs one BN workload at `batch` (Fig. 14's extra kernel).
pub fn bn_micro(cost: &mut CostModel, w: &AddWorkload, batch: usize) -> MicroResult {
    stream_micro(cost, w, batch, StreamOp::Bn)
}

fn stream_micro(cost: &mut CostModel, w: &AddWorkload, batch: usize, op: StreamOp) -> MicroResult {
    let elements = w.elements * batch;
    let pim = cost.pim_stream(op, elements);
    let hbm = cost.host_stream(op, elements, 1.0);
    MicroResult {
        name: w.name.to_string(),
        batch,
        hbm_s: hbm.seconds,
        pim_s: pim.seconds,
        // Pure streaming: no reuse at any batch.
        llc_miss: 1.0,
    }
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geo-mean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn gemv_batch1_strongly_favors_pim() {
        let mut cost = CostModel::paper();
        let w = &workloads::gemv_workloads()[3]; // GEMV4
        let r = gemv_micro(&mut cost, w, 1);
        // Paper: "PIM-HBM improves the performance of GEMV by up to 11.2x".
        assert!((9.0..13.0).contains(&r.speedup()), "GEMV4 B1 speedup {}", r.speedup());
        assert!((r.llc_miss - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gemv_batch4_favors_hbm() {
        let mut cost = CostModel::paper();
        let w = &workloads::gemv_workloads()[1];
        let r = gemv_micro(&mut cost, w, 4);

        assert!(r.speedup() < 1.0, "B4 speedup {} should flip to HBM", r.speedup());
        assert!(r.llc_miss < 0.85, "B4 miss {} drops below streaming", r.llc_miss);
    }

    #[test]
    fn add_modestly_favors_pim_at_all_batches() {
        let mut cost = CostModel::paper();
        let w = &workloads::add_workloads()[0];
        for batch in [1, 2, 4] {
            let r = add_micro(&mut cost, w, batch);
            assert!(r.speedup() > 1.0 && r.speedup() < 3.5, "ADD B{batch} speedup {}", r.speedup());
        }
    }

    #[test]
    fn geo_mean_math() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn geo_mean_empty_panics() {
        geo_mean(&[]);
    }
}
