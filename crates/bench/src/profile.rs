//! Per-kernel profile reports over the [`pim_obs`] metrics registry.
//!
//! The instrumented simulation layers (controller, device, engine, runtime)
//! feed one shared [`pim_obs::Recorder`]; this module turns the resulting
//! metrics snapshot into the plain-text profile table the `pimprof` binary
//! and `pimsim --profile` print — row hit rates, fence stalls, bank-state
//! residency, mode transitions — in the same [`crate::report::format_table`]
//! style as the paper-reproduction tables.

use crate::report::format_table;
use pim_obs::{names, MetricsSnapshot, Recorder};
use pim_runtime::{KernelReport, PimBlas, PimContext, PimError};

/// A profiled GEMV run: the result vector, the kernel report, and the
/// recorder holding the full event stream and metrics registry.
#[derive(Debug)]
pub struct ProfiledGemv {
    /// The result vector `y = W x`.
    pub y: Vec<f32>,
    /// The kernel-level cycle/command report.
    pub report: KernelReport,
    /// The recorder attached to every simulation layer for this run.
    pub recorder: Recorder,
    /// Channels in the profiled system.
    pub channels: u16,
    /// Barrier-aligned cycle at which the run ended — the denominator for
    /// exact cycle attribution ([`pim_obs::Attribution`]).
    pub end_cycle: u64,
}

/// Runs an `n × k` GEMV on a fresh one-stack system with profiling enabled
/// and bank-residency gauges snapshotted at the end of the run.
///
/// Inputs are deterministic ramps (no RNG), so repeated runs produce
/// identical cycle counts and metrics.
///
/// # Errors
///
/// Propagates [`PimError`] from [`PimBlas::gemv`] (empty or over-sized
/// operands).
pub fn profile_gemv(n: usize, k: usize) -> Result<ProfiledGemv, PimError> {
    let mut ctx = PimContext::small_system();
    let recorder = Recorder::vec();
    ctx.enable_profiling(recorder.clone());
    let w: Vec<f32> = (0..n * k).map(|i| ((i * 7 % 41) as f32 - 20.0) / 32.0).collect();
    let x: Vec<f32> = (0..k).map(|i| ((i * 3 % 17) as f32 - 8.0) / 16.0).collect();
    let (y, report) = PimBlas::gemv(&mut ctx, &w, n, k, &x)?;
    ctx.snapshot_residency();
    let channels = ctx.sys.channel_count() as u16;
    let end_cycle = ctx.sys.barrier();
    Ok(ProfiledGemv { y, report, recorder, channels, end_cycle })
}

/// Renders the profile table for one metrics snapshot.
///
/// Covers the controller (row hit/miss/conflict classification, queue
/// depth), the banks (open/closed residency), the PIM device (mode
/// transitions, CRF loads, triggers), and the host engine (batches, fences,
/// fence-stall cycles). Metrics that were never recorded render as `-`.
pub fn render_profile(snapshot: &MetricsSnapshot) -> String {
    let m = &snapshot.registry;
    let c = |name: &str| m.counter(name);
    let pct = |num: f64, den: f64| {
        if den == 0.0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * num / den)
        }
    };

    let hits = c(names::CTRL_ROW_HIT);
    let misses = c(names::CTRL_ROW_MISS);
    let conflicts = c(names::CTRL_ROW_CONFLICT);
    let classified = hits + misses + conflicts;
    let open = m.gauge(names::BANK_OPEN_CYCLES).unwrap_or(0.0);
    let closed = m.gauge(names::BANK_CLOSED_CYCLES).unwrap_or(0.0);
    let fences = c(names::ENGINE_FENCES);
    let stall = c(names::ENGINE_FENCE_STALL_CYCLES);
    let batches = c(names::ENGINE_BATCHES);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |metric: &str, value: String, detail: String| {
        rows.push(vec![metric.to_string(), value, detail]);
    };

    push("row hits", hits.to_string(), pct(hits as f64, classified as f64));
    push("row misses", misses.to_string(), pct(misses as f64, classified as f64));
    push("row conflicts", conflicts.to_string(), pct(conflicts as f64, classified as f64));
    push(
        "row hit rate",
        pct(hits as f64, classified as f64),
        format!("{classified} classified accesses"),
    );
    push("requests completed", c(names::CTRL_COMPLETED).to_string(), String::new());
    push("raw PIM-path commands", c(names::CTRL_RAW_COMMANDS).to_string(), String::new());
    push("reordered requests", c(names::CTRL_REORDERED).to_string(), String::new());
    match m.histogram(names::CTRL_QUEUE_DEPTH) {
        Some(h) => push(
            "queue depth",
            format!("mean {:.1}", h.mean()),
            format!("max {}", h.max().unwrap_or(0)),
        ),
        None => push("queue depth", "-".to_string(), String::new()),
    }
    push("bank open cycles", format!("{open:.0}"), pct(open, open + closed));
    push("bank closed cycles", format!("{closed:.0}"), pct(closed, open + closed));
    push("mode transitions", c(names::DEV_MODE_TRANSITIONS).to_string(), String::new());
    push("CRF words loaded", c(names::DEV_CRF_LOADS).to_string(), String::new());
    push("PIM triggers", c(names::DEV_PIM_TRIGGERS).to_string(), String::new());
    push("unit busy cycles", c(names::DEV_UNIT_BUSY_CYCLES).to_string(), String::new());
    let batch_detail = match m.histogram(names::ENGINE_BATCH_LEN) {
        Some(h) => format!("mean len {:.1}, max {}", h.mean(), h.max().unwrap_or(0)),
        None => String::new(),
    };
    push("command batches", batches.to_string(), batch_detail);
    push("fences", fences.to_string(), String::new());
    let stall_detail = if fences == 0 {
        String::new()
    } else {
        format!("{:.1} cycles/fence", stall as f64 / fences as f64)
    };
    push("fence stall cycles", stall.to_string(), stall_detail);

    format_table(&["metric", "value", "detail"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_placeholders() {
        let r = Recorder::counting();
        let table = render_profile(&r.metrics());
        assert!(table.contains("row hit rate"));
        assert!(table.contains("fence stall cycles"));
        // No classified accesses -> percentage columns degrade to `-`.
        assert!(table.contains('-'));
    }

    #[test]
    fn gemv_profile_populates_every_section() {
        let run = profile_gemv(32, 64).expect("gemv");
        assert_eq!(run.y.len(), 32);
        let snapshot = run.recorder.metrics();
        let m = &snapshot.registry;
        assert!(m.counter(names::ENGINE_FENCE_STALL_CYCLES) > 0, "fences must stall");
        assert!(m.counter(names::CTRL_RAW_COMMANDS) > 0);
        assert!(m.gauge(names::BANK_OPEN_CYCLES).unwrap_or(0.0) > 0.0);
        let table = render_profile(&snapshot);
        assert!(table.contains("row hit rate"));
        assert!(table.contains("cycles/fence"), "{table}");
        // The deterministic run matches its own kernel report.
        assert_eq!(m.counter(names::DEV_PIM_TRIGGERS), run.report.pim_triggers);
    }
}
