//! Wall-clock benchmarks for the parallel execution backend, and the
//! machine-portable perf-regression gate built on them.
//!
//! Two workloads:
//!
//! * **synthetic64** — 64 channels × N seeded batches driven straight
//!   through [`KernelEngine::run_system`]; embarrassingly parallel, no
//!   host-side work between kernels, so it measures the backend's fan-out
//!   ceiling.
//! * **Table VI GEMV** — the paper's GEMV1 through the full PIM-BLAS
//!   runtime (layout, choreography, readback), measuring what the backend
//!   buys a real kernel end to end.
//!
//! The perf gate never compares absolute wall time across machines: a CI
//! runner and a developer laptop differ by integer factors. Instead every
//! measurement is normalized by a **calibration score** — the throughput of
//! a fixed, simulator-independent integer workload ([`calibrate`]) measured
//! in the same process seconds before. Simulated cycles per host-work-unit
//! is a machine-portable quantity; a >20% drop means the *simulator code*
//! got slower, not the machine.

use crate::json::{obj, Json};
use pim_core::PimConfig;
use pim_dram::{BankAddr, Command};
use pim_host::{Batch, ExecutionBackend, ExecutionMode, HostConfig, KernelEngine, PimSystem};
use pim_runtime::{PimBlas, PimContext};
use std::time::Instant;

/// One timed `run_system` invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// Host wall-clock seconds.
    pub wall_s: f64,
    /// Process CPU seconds (user + system) consumed by the run; equals
    /// `wall_s` on platforms without [`cpu_time_s`].
    pub cpu_s: f64,
    /// Simulated end cycle (deterministic).
    pub end_cycle: u64,
    /// DRAM commands issued (deterministic).
    pub commands: u64,
    /// Fences executed (deterministic).
    pub fences: u64,
}

impl RunMeasurement {
    /// Simulated cycles advanced per host wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.end_cycle as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Simulated cycles advanced per process CPU second — immune to
    /// preemption by other processes, which is why the perf gate uses it.
    pub fn cycles_per_cpu_sec(&self) -> f64 {
        if self.cpu_s > 0.0 {
            self.end_cycle as f64 / self.cpu_s
        } else {
            0.0
        }
    }
}

/// Process CPU time (user + system) in seconds, read from
/// `/proc/self/stat`; `None` where that file does not exist (non-Linux).
///
/// Resolution is one scheduler tick (typically 10 ms), so only differences
/// over runs of a few hundred milliseconds are meaningful. The tick rate is
/// assumed to be the near-universal 100 Hz; a different rate scales every
/// CPU-time measurement in the process equally, so it cancels out of the
/// perf gate's normalized (workload ÷ calibration) ratio.
pub fn cpu_time_s() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field (2nd) may itself contain spaces and parens; the state
    // field (3rd) starts after the LAST ')'.
    let rest = stat.rsplit(')').next()?;
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Wall + CPU stopwatch for one measurement.
struct Stopwatch {
    wall: Instant,
    cpu: Option<f64>,
}

impl Stopwatch {
    fn start() -> Stopwatch {
        Stopwatch { wall: Instant::now(), cpu: cpu_time_s() }
    }

    /// `(wall_s, cpu_s)`; CPU falls back to wall where unavailable.
    fn stop(self) -> (f64, f64) {
        let wall_s = self.wall.elapsed().as_secs_f64();
        let cpu_s = match (self.cpu, cpu_time_s()) {
            (Some(a), Some(b)) => b - a,
            _ => wall_s,
        };
        (wall_s, cpu_s)
    }
}

/// A deterministic xorshift64* stream — the benches can't use `rand` (it is
/// a dev-dependency only) and the calibration loop wants fixed,
/// optimizer-resistant integer work anyway.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the stream (0 is remapped — xorshift has a zero fixed point).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed.max(1) }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Builds the seeded synthetic workload: `channels` batch lists, each
/// `batches_per_channel` fenced 8-read batches bracketed by row management,
/// over pseudo-random (bank, row) pairs.
///
/// Fully deterministic in `(channels, batches_per_channel, seed)`: the
/// generator never consults the clock or the thread, so the same arguments
/// describe the same kernel on every machine — the property the perf gate's
/// exact cycle/command comparison rests on.
pub fn synthetic_batches(
    channels: usize,
    batches_per_channel: usize,
    seed: u64,
) -> Vec<Vec<Batch>> {
    (0..channels)
        .map(|ch| {
            let mut rng = XorShift64::new(seed ^ (ch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut batches = Vec::with_capacity(batches_per_channel * 3);
            for _ in 0..batches_per_channel {
                let r = rng.next_u64();
                let bank = BankAddr::new((r & 3) as u8, ((r >> 2) & 3) as u8);
                let row = ((r >> 4) & 0x1FFF) as u32;
                batches.push(Batch::setup(vec![Command::Act { bank, row }]));
                batches.push(Batch::commutative(
                    (0..8).map(|c| Command::Rd { bank, col: c }).collect(),
                ));
                batches.push(Batch::setup(vec![Command::Pre { bank }]));
            }
            batches
        })
        .collect()
}

/// Runs `per_channel` on a fresh paper system under `backend`; returns the
/// timed measurement.
pub fn measure_run_system(backend: ExecutionBackend, per_channel: &[Vec<Batch>]) -> RunMeasurement {
    let mut sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
    sys.set_backend(backend);
    let watch = Stopwatch::start();
    let r = KernelEngine::run_system(&mut sys, per_channel, ExecutionMode::Ordered);
    let (wall_s, cpu_s) = watch.stop();
    RunMeasurement { wall_s, cpu_s, end_cycle: r.end_cycle, commands: r.commands, fences: r.fences }
}

/// Runs the Table VI GEMV1 (scaled down by `scale`) through the full
/// PIM-BLAS runtime on a fresh paper system under `backend`.
pub fn measure_gemv(backend: ExecutionBackend, scale: usize) -> RunMeasurement {
    let wl = crate::workloads::gemv_workloads()[0];
    let (n, k) = ((wl.n / scale.max(1)).max(1), (wl.k / scale.max(1)).max(1));
    let mut ctx = PimContext::paper_system();
    ctx.set_backend(backend);
    let w: Vec<f32> = (0..n * k).map(|i| ((i * 7 % 41) as f32 - 20.0) / 32.0).collect();
    let x: Vec<f32> = (0..k).map(|i| ((i * 3 % 17) as f32 - 8.0) / 16.0).collect();
    let watch = Stopwatch::start();
    let (_y, report) = PimBlas::gemv(&mut ctx, &w, n, k, &x).expect("bench GEMV");
    let (wall_s, cpu_s) = watch.stop();
    RunMeasurement {
        wall_s,
        cpu_s,
        end_cycle: report.cycles,
        commands: report.commands,
        fences: report.fences,
    }
}

/// Measures the host's raw integer throughput (iterations/second of a fixed
/// xorshift64* loop) — the machine-speed normalizer for the perf gate.
///
/// The loop is simulator-independent on purpose: normalizing a simulator
/// measurement by *another simulator measurement* would cancel out real
/// code regressions, while normalizing by fixed integer work only cancels
/// the machine.
pub fn calibrate(iterations: u64) -> CalibrationScore {
    let mut rng = XorShift64::new(0xC0FF_EE00_DEAD_BEEF);
    let watch = Stopwatch::start();
    let mut acc = 0u64;
    for _ in 0..iterations {
        acc = acc.wrapping_add(rng.next_u64());
    }
    let (wall_s, cpu_s) = watch.stop();
    std::hint::black_box(acc);
    CalibrationScore {
        iters_per_sec: iterations as f64 / wall_s.max(1e-9),
        iters_per_cpu_sec: iterations as f64 / cpu_s.max(1e-9),
    }
}

/// The host-speed score [`calibrate`] produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationScore {
    /// Calibration iterations per wall-clock second.
    pub iters_per_sec: f64,
    /// Calibration iterations per process CPU second.
    pub iters_per_cpu_sec: f64,
}

/// One workload's sweep over worker counts.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Workload label.
    pub name: String,
    /// Channels driven.
    pub channels: usize,
    /// The sequential reference.
    pub sequential: RunMeasurement,
    /// `(workers, measurement, deterministic-result-identical)` per point.
    pub points: Vec<(usize, RunMeasurement, bool)>,
}

impl SweepResult {
    /// Speedup of the `workers`-thread point over sequential.
    pub fn speedup(&self, workers: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(w, _, _)| *w == workers)
            .map(|(_, m, _)| self.sequential.wall_s / m.wall_s.max(1e-12))
    }

    /// Renders this sweep as a JSON object.
    pub fn to_json(&self) -> Json {
        let sweep: Vec<Json> = self
            .points
            .iter()
            .map(|(w, m, identical)| {
                obj([
                    ("workers", Json::Num(*w as f64)),
                    ("wall_s", Json::Num(m.wall_s)),
                    ("cycles_per_sec", Json::Num(m.cycles_per_sec())),
                    ("speedup", Json::Num(self.sequential.wall_s / m.wall_s.max(1e-12))),
                    ("identical_to_sequential", Json::Bool(*identical)),
                ])
            })
            .collect();
        obj([
            ("name", Json::Str(self.name.clone())),
            ("channels", Json::Num(self.channels as f64)),
            ("sim_cycles", Json::Num(self.sequential.end_cycle as f64)),
            ("commands", Json::Num(self.sequential.commands as f64)),
            ("fences", Json::Num(self.sequential.fences as f64)),
            ("sequential_wall_s", Json::Num(self.sequential.wall_s)),
            ("sequential_cycles_per_sec", Json::Num(self.sequential.cycles_per_sec())),
            ("sweep", Json::Arr(sweep)),
        ])
    }
}

/// Sweeps `worker_counts` over one measurement function, checking each
/// point's deterministic fields against the sequential reference.
pub fn sweep(
    name: &str,
    channels: usize,
    worker_counts: &[usize],
    mut measure: impl FnMut(ExecutionBackend) -> RunMeasurement,
) -> SweepResult {
    let sequential = measure(ExecutionBackend::Sequential);
    let points = worker_counts
        .iter()
        .map(|&w| {
            let m = measure(ExecutionBackend::Threads(w));
            let identical = m.end_cycle == sequential.end_cycle
                && m.commands == sequential.commands
                && m.fences == sequential.fences;
            (w, m, identical)
        })
        .collect();
    SweepResult { name: name.to_string(), channels, sequential, points }
}

/// The parameters of one benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    /// Batches per channel in the synthetic workload.
    pub synthetic_batches: usize,
    /// Table VI GEMV1 scale divisor.
    pub gemv_scale: usize,
    /// Calibration loop iterations.
    pub calibration_iters: u64,
    /// Worker counts to sweep.
    pub worker_counts: [usize; 3],
}

impl BenchParams {
    /// The CI smoke configuration: completes in well under 10 s of
    /// simulator work on a laptop-class core.
    pub fn smoke() -> BenchParams {
        BenchParams {
            synthetic_batches: 400,
            gemv_scale: 8,
            calibration_iters: 50_000_000,
            worker_counts: [2, 4, 8],
        }
    }

    /// The full configuration for committed numbers: the unscaled Table VI
    /// GEMV1 and a ~half-second sequential synthetic run.
    pub fn full() -> BenchParams {
        BenchParams {
            synthetic_batches: 16_000,
            gemv_scale: 1,
            calibration_iters: 200_000_000,
            worker_counts: [2, 4, 8],
        }
    }
}

/// Runs the complete benchmark (calibration + both sweeps) and renders the
/// `BENCH_parallel.json` document.
pub fn run_bench(params: BenchParams) -> (Json, Vec<SweepResult>) {
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let calibration = calibrate(params.calibration_iters).iters_per_sec;
    let per_channel = synthetic_batches(64, params.synthetic_batches, 0x5EED);
    let synthetic = sweep("synthetic64", 64, &params.worker_counts, |backend| {
        measure_run_system(backend, &per_channel)
    });
    let gemv = sweep("GEMV1", 64, &params.worker_counts, |backend| {
        measure_gemv(backend, params.gemv_scale)
    });
    let doc = obj([
        ("schema", Json::Str("pim-bench/parallel-v1".to_string())),
        ("host_parallelism", Json::Num(host_parallelism as f64)),
        ("calibration_score", Json::Num(calibration)),
        ("workloads", Json::Arr(vec![synthetic.to_json(), gemv.to_json()])),
    ]);
    (doc, vec![synthetic, gemv])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_workload_is_deterministic() {
        let a = synthetic_batches(4, 3, 42);
        let b = synthetic_batches(4, 3, 42);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].len(), 9);
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert_eq!(x.commands, y.commands);
        }
        // Different channels get different rows.
        assert_ne!(format!("{:?}", a[0][0].commands), format!("{:?}", a[1][0].commands));
    }

    #[test]
    fn measured_sweep_is_identical_across_backends() {
        let per_channel = synthetic_batches(8, 4, 7);
        let s = sweep("t", 8, &[2, 4], |b| measure_run_system(b, &per_channel));
        for (w, m, identical) in &s.points {
            assert!(*identical, "{w} workers diverged: {m:?} vs {:?}", s.sequential);
        }
        assert!(s.sequential.end_cycle > 0);
        assert!(s.sequential.commands == 8 * 4 * 10);
    }

    #[test]
    fn calibration_is_positive() {
        let score = calibrate(100_000);
        assert!(score.iters_per_sec > 0.0);
        assert!(score.iters_per_cpu_sec > 0.0);
    }

    #[test]
    fn cpu_time_is_monotonic_where_available() {
        if let Some(a) = cpu_time_s() {
            // Burn a little CPU; the clock must not go backwards.
            let mut rng = XorShift64::new(1);
            for _ in 0..200_000 {
                std::hint::black_box(rng.next_u64());
            }
            let b = cpu_time_s().expect("stays available");
            assert!(b >= a);
        }
    }

    #[test]
    fn bench_json_shape_parses_back() {
        let params = BenchParams {
            synthetic_batches: 2,
            gemv_scale: 64,
            calibration_iters: 10_000,
            worker_counts: [2, 4, 8],
        };
        let (doc, sweeps) = run_bench(params);
        let text = crate::json::to_string(&doc);
        let parsed = crate::json::parse(&text).expect("bench emits valid JSON");
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("pim-bench/parallel-v1"));
        assert_eq!(parsed.get("workloads").unwrap().as_arr().unwrap().len(), 2);
        assert!(sweeps.iter().all(|s| s.points.iter().all(|(_, _, ok)| *ok)));
    }
}
