//! Shared drivers for `pimlint` and the linting integration tests: run the
//! `pim-verify` passes over every built-in microkernel and every executor
//! command choreography the runtime ships.

use pim_core::{PimConfig, PimVariant};
use pim_dram::{BankAddr, Command};
use pim_runtime::kernels::{
    gemv_batches, gemv_microkernel, sls_batches, sls_microkernel, stream_batches,
    stream_microkernel, StreamOp,
};
use pim_runtime::Executor;
use pim_verify::{
    check_fences, events_from_batches, lint_stream, verify_program, PvCode, Report, Site,
};

/// Lints `.pim` assembly text: assembler diagnostics (which carry spans
/// and, for semantic violations, a typed [`pim_core::isa::ValidateError`])
/// are mapped to their PV codes; a program that assembles runs the full
/// kernel verifier.
pub fn lint_pim_source(cfg: &PimConfig, source: &str) -> Report {
    match pim_core::asm::assemble(source) {
        Ok(prog) => verify_program(cfg, &prog),
        Err(e) => {
            let code = match &e.violation {
                Some(v) => pim_verify::code_of_violation(v),
                None if e.message.contains("exceeds") => PvCode::Pv009ProgramTooLong,
                None => PvCode::Pv030AsmSyntax,
            };
            let mut r = Report::new();
            r.error(code, Site::Line { line: e.line, col: e.col }, e.message.clone());
            r
        }
    }
}

/// Lints `.trace` command-stream text: parse, then the protocol and
/// fence-race passes over the parsed stream.
pub fn lint_trace_source(cfg: &PimConfig, source: &str) -> Report {
    match pim_verify::parse_trace(source) {
        Err(r) => r,
        Ok(events) => {
            let mut r = lint_stream(&events);
            r.merge(check_fences(cfg, &events));
            r
        }
    }
}

/// The `; expect: PV###` header of a corpus file, if present on the first
/// non-blank line.
pub fn expected_code(source: &str) -> Option<PvCode> {
    let line = source.lines().find(|l| !l.trim().is_empty())?;
    let rest = line.trim().trim_start_matches([';', '#']).trim();
    let code = rest.strip_prefix("expect:")?.trim();
    PvCode::ALL.into_iter().find(|c| c.as_str() == code)
}

/// All stream ops, in declaration order.
const STREAM_OPS: [StreamOp; 5] =
    [StreamOp::Add, StreamOp::Mul, StreamOp::Relu, StreamOp::Bn, StreamOp::Axpy];

/// Runs the kernel verifier over every built-in microkernel on every
/// hardware variant. Returns `(name, report)` pairs; all must be clean.
pub fn builtin_kernel_reports() -> Vec<(String, Report)> {
    let mut out = Vec::new();
    for variant in PimVariant::ALL {
        let cfg = PimConfig::with_variant(variant);
        for op in STREAM_OPS {
            for groups in [1u32, 2] {
                let prog = stream_microkernel(op, groups, &cfg);
                out.push((
                    format!("{op:?}(groups={groups}) on {variant:?}"),
                    verify_program(&cfg, &prog),
                ));
            }
        }
        for groups in [1u32, 8] {
            let prog = gemv_microkernel(groups, &cfg);
            out.push((
                format!("GEMV(groups={groups}) on {variant:?}"),
                verify_program(&cfg, &prog),
            ));
        }
        for lookups in [1u32, 8] {
            let prog = sls_microkernel(lookups, &cfg);
            out.push((
                format!("SLS(lookups={lookups}) on {variant:?}"),
                verify_program(&cfg, &prog),
            ));
        }
    }
    out
}

/// The memory-mapped GRF readback command tail ([`Executor::read_grf_a`] /
/// `read_grf_b` at the command level): ACT the GRF row, read 8 columns,
/// PRE.
fn grf_readback(col_base: u32) -> Vec<Command> {
    let bank = BankAddr::new(0, 0);
    let mut cmds = vec![Command::Act { bank, row: pim_core::conf::GRF_ROW }];
    cmds.extend((0..8).map(|i| Command::Rd { bank, col: col_base + i }));
    cmds.push(Command::Pre { bank });
    cmds
}

/// Runs the protocol linter and the fence-race detector over the full
/// executor choreography of each built-in kernel family (including the
/// post-kernel GRF readback where the BLAS layer performs one). Returns
/// `(name, protocol report, fence report)` triples; all must be clean.
pub fn builtin_stream_reports() -> Vec<(String, Report, Report)> {
    let cfg = PimConfig::paper();
    let base_row = 0x100;
    let mut out = Vec::new();

    for op in STREAM_OPS {
        let prog = stream_microkernel(op, 2, &cfg);
        let data = stream_batches(op, 2, base_row, &cfg);
        let batches = Executor::full_kernel(&prog, None, false, &data);
        let events = events_from_batches(&batches);
        out.push((
            format!("{op:?} choreography"),
            lint_stream(&events),
            check_fences(&cfg, &events),
        ));
    }

    // GEMV: data phase + the host-side readback of the GRF_B accumulators.
    let k = 64usize;
    let x = vec![1.0f32; k];
    let prog = gemv_microkernel((k / 8) as u32, &cfg);
    let data = gemv_batches(k, base_row, &x, &cfg);
    let batches = Executor::full_kernel(&prog, None, true, &data);
    let mut events = events_from_batches(&batches);
    let n = events.len();
    for (i, c) in grf_readback(8).into_iter().enumerate() {
        events.push(pim_verify::StreamEvent::cmd(n + i, c));
    }
    out.push((
        "GEMV choreography + readback".to_string(),
        lint_stream(&events),
        check_fences(&cfg, &events),
    ));

    // SLS: gather phase + the GRF_A partial-sum readback.
    let prog = sls_microkernel(4, &cfg);
    let data = sls_batches(&[0, 1, 2, 3], base_row);
    let batches = Executor::full_kernel(&prog, None, false, &data);
    let mut events = events_from_batches(&batches);
    let n = events.len();
    for (i, c) in grf_readback(0).into_iter().enumerate() {
        events.push(pim_verify::StreamEvent::cmd(n + i, c));
    }
    out.push((
        "SLS choreography + readback".to_string(),
        lint_stream(&events),
        check_fences(&cfg, &events),
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_kernel_is_clean() {
        for (name, report) in builtin_kernel_reports() {
            assert!(report.is_clean(), "{name} not clean:\n{}", report.render(&name));
        }
    }

    #[test]
    fn every_builtin_stream_is_clean() {
        for (name, protocol, fences) in builtin_stream_reports() {
            assert!(protocol.is_clean(), "{name} protocol:\n{}", protocol.render(&name));
            assert!(fences.is_clean(), "{name} fences:\n{}", fences.render(&name));
        }
    }
}
