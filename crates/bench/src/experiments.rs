//! Every table and figure of the paper's evaluation, as callable
//! experiments returning structured data. See DESIGN.md §4 for the index
//! and EXPERIMENTS.md for the paper-vs-measured record.

use crate::micro::{add_micro, bn_micro, gemv_micro, geo_mean, MicroResult};
use crate::workloads;
use pim_core::isa;
use pim_core::{PimConfig, PimVariant};
use pim_dram::TimingParams;
use pim_energy::components::{paper_abpim_mode, StreamMode};
use pim_energy::{EnergyParams, HostPowerState, MemoryEnergyBreakdown, SystemPowerModel};
use pim_fp16::F16;
use pim_host::{ExecutionMode, HostConfig};
use pim_models::{models, CostModel, ModelRunner, RunReport, SystemKind};
use pim_runtime::{PimBlas, PimContext};

/// One row of Table I (re-exported from the energy model, where the data
/// lives).
pub use pim_energy::mac::table1;

/// Table II: the operand-combination counts enumerated from the ISA.
pub fn table2() -> isa::CombinationCounts {
    isa::combination_counts()
}

/// Table III: a representative encoding of every instruction class with
/// its 32-bit word, demonstrating the bit-exact format.
pub fn table3() -> Vec<(String, u32)> {
    use isa::{Instruction, Operand};
    let samples = vec![
        Instruction::Nop { cycles: 4 },
        Instruction::Jump { target: 1, count: 8 },
        Instruction::Exit,
        Instruction::Mov {
            dst: Operand::grf_a(0),
            src: Operand::even_bank(),
            relu: true,
            aam: false,
        },
        Instruction::Fill { dst: Operand::srf_m(0), src: Operand::wdata(), aam: false },
        Instruction::Add {
            dst: Operand::grf_a(1),
            src0: Operand::grf_a(1),
            src1: Operand::even_bank(),
            aam: true,
        },
        Instruction::Mul {
            dst: Operand::grf_b(0),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(2),
            aam: false,
        },
        Instruction::Mac {
            dst: Operand::grf_b(0),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(0),
            aam: true,
        },
        Instruction::Mad {
            dst: Operand::grf_a(0),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(3),
            aam: true,
        },
    ];
    samples.into_iter().map(|i| (format!("{i}"), i.encode())).collect()
}

/// Table IV: the PIM execution unit specification, with derived values.
pub fn table4() -> Vec<(String, String)> {
    let c = PimConfig::paper();
    vec![
        ("# of MUL/ADD FPUs".into(), format!("{}/{}", c.lanes, c.lanes)),
        ("Datapath Width".into(), format!("{} bits (16 bits x {} lanes)", c.lanes * 16, c.lanes)),
        ("Operating Frequency".into(), "250MHz ~ 300MHz".into()),
        ("Throughput".into(), format!("{} GFLOPs at {}MHz", c.unit_gflops(), c.unit_mhz)),
        ("Equivalent Gate Count".into(), format!("{} (only logic)", c.gate_count)),
        ("Instruction Registers".into(), format!("32b x {} (CRF)", c.crf_entries)),
        (
            "Vector and Scalar Registers".into(),
            format!("256b x {} (GRF), 16b x 16 (SRF)", 2 * c.grf_entries_per_file),
        ),
        ("Area".into(), format!("{} mm2", c.unit_area_mm2)),
    ]
}

/// Table V: the PIM-HBM device specification, with bandwidths derived from
/// the timing engine.
pub fn table5() -> Vec<(String, String)> {
    let t = TimingParams::hbm2();
    let t_lo = TimingParams::hbm2_2gbps();
    let c = PimConfig::paper();
    let on_hi = t.peak_pch_allbank_bandwidth_gbs(c.units_per_pch) * 16.0;
    let on_lo = t_lo.peak_pch_allbank_bandwidth_gbs(c.units_per_pch) * 16.0;
    let off_hi = t.peak_pch_bandwidth_gbs() * 16.0;
    let off_lo = t_lo.peak_pch_bandwidth_gbs() * 16.0;
    vec![
        ("Ext. Clocking Frequency".into(), "1 ~ 1.2GHz".into()),
        ("Timing Parameters".into(), "Same as HBM2".into()),
        ("# of pCHs".into(), "16".into()),
        ("# of banks per pCH".into(), "16".into()),
        ("# of PIM exe. units per pCH".into(), format!("{}", c.units_per_pch)),
        ("On-Chip (Compute) Bandwidth".into(), format!("{on_lo:.0}GB/s ~ {on_hi:.1}GB/s")),
        ("Off-Chip (I/O) Bandwidth".into(), format!("{off_lo:.0}GB/s ~ {off_hi:.1}GB/s")),
        ("Capacity".into(), "6GB (4x4Gb PIM dies + 4x8Gb HBM dies)".into()),
        ("Area of DRAM Die".into(), "84.4 mm2".into()),
    ]
}

/// The Fig. 5 ordering demonstration: functional ADD results under the
/// three ordering regimes, on real data through the real device.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// Max abs error with fences, program order.
    pub fenced_in_order_err: f32,
    /// Max abs error with fences and controller reordering *within* the
    /// AAM window — must still be zero (AAM tolerance).
    pub fenced_reordered_err: f32,
    /// Max abs error with reordering and **no** fences — must be wrong,
    /// demonstrating why the fences exist (Fig. 5(c)).
    pub unfenced_reordered_err: f32,
}

/// Runs the Fig. 5 demonstration.
pub fn fig5_aam_demo() -> Fig5Result {
    let n = 4096usize;
    let x: Vec<f32> = (0..n).map(|i| (i % 251) as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 127) as f32).collect();
    let reference: Vec<f32> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
    let err = |mode: ExecutionMode| -> f32 {
        let mut ctx = PimContext::small_system();
        ctx.set_mode(mode);
        let (z, _) = PimBlas::add(&mut ctx, &x, &y).expect("add");
        z.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    };
    Fig5Result {
        fenced_in_order_err: err(ExecutionMode::Fenced { reorder_seed: None }),
        fenced_reordered_err: err(ExecutionMode::Fenced { reorder_seed: Some(0xF16) }),
        unfenced_reordered_err: err(ExecutionMode::UnfencedReordered { seed: 0xF16 }),
    }
}

/// One bar of Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Workload name.
    pub name: String,
    /// Batch size.
    pub batch: usize,
    /// PIM-HBM performance relative to HBM (>1: PIM wins).
    pub relative_perf: f64,
    /// LLC miss rate on the HBM system, if measurable for the workload
    /// (the paper cannot report it for multi-kernel applications either).
    pub llc_miss: Option<f64>,
}

/// Fig. 10: relative performance and LLC miss rates of every workload at
/// batch 1, 2 and 4.
pub fn fig10() -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    let mut cost = CostModel::paper();
    let power = SystemPowerModel::paper();
    for batch in [1usize, 2, 4] {
        for w in workloads::gemv_workloads() {
            let r = gemv_micro(&mut cost, &w, batch);
            rows.push(Fig10Row {
                name: r.name.clone(),
                batch,
                relative_perf: r.speedup(),
                llc_miss: Some(r.llc_miss),
            });
        }
        for w in workloads::add_workloads() {
            let r = add_micro(&mut cost, &w, batch);
            rows.push(Fig10Row {
                name: r.name.clone(),
                batch,
                relative_perf: r.speedup(),
                llc_miss: Some(r.llc_miss),
            });
        }
        for m in models::all_models() {
            let hbm = ModelRunner::run(&mut cost, &power, &m, SystemKind::ProcHbm, batch);
            let pim = ModelRunner::run(&mut cost, &power, &m, SystemKind::PimHbm, batch);
            rows.push(Fig10Row {
                name: m.name.to_string(),
                batch,
                relative_perf: pim.speedup_over(&hbm),
                llc_miss: None,
            });
        }
    }
    rows
}

/// One bar of Fig. 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Bar {
    /// "HBM" or "PIM-HBM".
    pub system: &'static str,
    /// Per-component power in watts of one pseudo channel streaming
    /// back-to-back column reads.
    pub breakdown: MemoryEnergyBreakdown,
}

/// Fig. 11 plus the Section VII-C headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Result {
    /// The two stacked bars.
    pub bars: Vec<Fig11Bar>,
    /// PIM-HBM power / HBM power (paper: 1.054).
    pub power_ratio: f64,
    /// On-chip bandwidth ratio at those powers (4×).
    pub bandwidth_ratio: f64,
    /// HBM energy/bit divided by PIM energy/bit (paper: ~3.5×).
    pub energy_per_bit_ratio: f64,
    /// Power saving if the buffer-die I/O were gated, as a fraction of HBM
    /// power (paper: ~10%).
    pub buffer_gating_saving: f64,
}

/// Fig. 11: power breakdown of HBM vs PIM-HBM over back-to-back reads.
pub fn fig11() -> Fig11Result {
    let p = EnergyParams::hbm2();
    let bus = 1200;
    let sb = p.stream_power_w(StreamMode::SingleBank, 2, bus);
    let ab = p.stream_power_w(paper_abpim_mode(), 4, bus);
    let gated = p.stream_power_w(
        StreamMode::AbPim { operating_banks: 8, units: 8, buffer_io_gated: true },
        4,
        bus,
    );
    Fig11Result {
        bars: vec![
            Fig11Bar { system: "HBM", breakdown: sb },
            Fig11Bar { system: "PIM-HBM", breakdown: ab },
        ],
        power_ratio: ab.total() / sb.total(),
        bandwidth_ratio: (8.0 / 4.0) / (1.0 / 2.0),
        energy_per_bit_ratio: p.energy_per_bit_pj(StreamMode::SingleBank)
            / p.energy_per_bit_pj(paper_abpim_mode()),
        buffer_gating_saving: (ab.total() - gated.total()) / sb.total(),
    }
}

/// One workload row of Fig. 12: relative power and energy of the three
/// systems (normalized to PROC-HBM).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Workload name.
    pub name: String,
    /// [PROC-HBM, PIM-HBM, PROC-HBM×4] average power relative to PROC-HBM.
    pub rel_power: [f64; 3],
    /// Same, for energy per inference.
    pub rel_energy: [f64; 3],
}

impl Fig12Row {
    /// PIM-HBM's energy-efficiency gain over PROC-HBM (the paper's quoted
    /// numbers: GEMV 8.25×, ADD 1.4×, DS2 3.2×, GNMT 1.38×, AlexNet 1.5×).
    pub fn pim_efficiency_gain(&self) -> f64 {
        self.rel_energy[0] / self.rel_energy[1]
    }

    /// PIM-HBM's gain over PROC-HBM×4 (paper: DS2 2.8×, GNMT 1.1×,
    /// AlexNet 1.3×).
    pub fn pim_gain_over_x4(&self) -> f64 {
        self.rel_energy[2] / self.rel_energy[1]
    }
}

/// Fig. 12: the GEMV and ADD microbenchmarks plus DS2 / GNMT / AlexNet.
pub fn fig12() -> Vec<Fig12Row> {
    let mut out = Vec::new();
    let mut cost = CostModel::paper();
    let power = SystemPowerModel::paper();
    let host = HostConfig::paper();

    // Microbenchmarks: GEMV4 and ADD4 at batch 1, phases built directly.
    let micro_row =
        |name: &str, r: &MicroResult, util_hbm: f64, power: &SystemPowerModel| -> Fig12Row {
            let p_hbm = power.system_power_w(
                HostPowerState::Streaming,
                power.memory_stream_power_w(util_hbm, 4),
            );
            let p_pim = power.system_power_w(
                HostPowerState::DrivingPim,
                power.memory_pim_power_w(SystemPowerModel::PIM_PHASE_UTILIZATION),
            );
            // ×4: bandwidth-bound micro scales 4× faster at ~4× the
            // memory-side power (see SystemPowerModel::x4_host_overhead).
            let p_x4 = power.system_power_w(
                HostPowerState::Streaming,
                power.memory_stream_power_w(util_hbm, 16)
                    + power.host_power_w(HostPowerState::Streaming) * power.x4_host_overhead,
            );
            let t_hbm = r.hbm_s;
            let t_pim = r.pim_s;
            let t_x4 = r.hbm_s / 4.0;
            let e = [p_hbm * t_hbm, p_pim * t_pim, p_x4 * t_x4];
            Fig12Row {
                name: name.to_string(),
                rel_power: [1.0, p_pim / p_hbm, p_x4 / p_hbm],
                rel_energy: [1.0, e[1] / e[0], e[2] / e[0]],
            }
        };
    let g4 = workloads::gemv_workloads()[3];
    let r = gemv_micro(&mut cost, &g4, 1);
    out.push(micro_row("GEMV", &r, host.gemv_efficiency(1), &power));
    let a4 = workloads::add_workloads()[3];
    let r = add_micro(&mut cost, &a4, 1);
    out.push(micro_row("ADD", &r, host.add_stream_efficiency, &power));

    // Applications, from the runner's traces.
    for m in [models::deepspeech2(), models::gnmt(), models::alexnet()] {
        let systems = [SystemKind::ProcHbm, SystemKind::PimHbm, SystemKind::ProcHbmX4];
        let runs: Vec<RunReport> =
            systems.iter().map(|&s| ModelRunner::run(&mut cost, &power, &m, s, 1)).collect();
        let e: Vec<f64> = runs.iter().map(|r| r.energy_j(&power)).collect();
        let p: Vec<f64> = runs.iter().zip(e.iter()).map(|(r, e)| e / r.total_seconds).collect();
        out.push(Fig12Row {
            name: m.name.to_string(),
            rel_power: [1.0, p[1] / p[0], p[2] / p[0]],
            rel_energy: [1.0, e[1] / e[0], e[2] / e[0]],
        });
    }
    out
}

/// A sampled power time series: `(seconds, watts)` points.
pub type PowerSeries = Vec<(f64, f64)>;

/// Fig. 13: average system power of DS2 over time, on both systems.
/// Returns `(hbm_series, pim_series)`.
pub fn fig13(samples: usize) -> (PowerSeries, PowerSeries) {
    let mut cost = CostModel::paper();
    let power = SystemPowerModel::paper();
    let m = models::deepspeech2();
    let hbm = ModelRunner::run(&mut cost, &power, &m, SystemKind::ProcHbm, 1);
    let pim = ModelRunner::run(&mut cost, &power, &m, SystemKind::PimHbm, 1);
    (hbm.trace.sample(&power, samples), pim.trace.sample(&power, samples))
}

/// One point of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Variant label.
    pub variant: &'static str,
    /// Workload name.
    pub workload: String,
    /// Speedup over the HBM baseline.
    pub speedup: f64,
}

/// Fig. 14: the DSE variants over the microbenchmarks + BN. Returns the
/// per-workload rows and the per-variant geometric means.
pub fn fig14() -> (Vec<Fig14Row>, Vec<(&'static str, f64)>) {
    let mut rows = Vec::new();
    let mut geo = Vec::new();
    for variant in PimVariant::ALL {
        let cfg = PimConfig::with_variant(variant);
        let mut cost = CostModel::new(HostConfig::paper(), cfg, TimingParams::hbm2());
        let mut speedups = Vec::new();
        let push = |rows: &mut Vec<Fig14Row>, name: String, s: f64, speedups: &mut Vec<f64>| {
            speedups.push(s);
            rows.push(Fig14Row { variant: variant.label(), workload: name, speedup: s });
        };
        for w in workloads::gemv_workloads() {
            let r = gemv_micro(&mut cost, &w, 1);
            push(&mut rows, w.name.to_string(), r.speedup(), &mut speedups);
        }
        for w in workloads::add_workloads() {
            let r = add_micro(&mut cost, &w, 1);
            push(&mut rows, w.name.to_string(), r.speedup(), &mut speedups);
        }
        for w in workloads::bn_workloads() {
            let r = bn_micro(&mut cost, &w, 1);
            push(&mut rows, w.name.to_string(), r.speedup(), &mut speedups);
        }
        geo.push((variant.label(), geo_mean(&speedups)));
    }
    (rows, geo)
}

/// §VII-B's no-fence experiment: the geometric-mean factor by which
/// removing fences (an order-preserving PIM-mode controller) speeds up the
/// PIM microbenchmarks, per batch size. Paper: 2.2× / 1.9× / 2.0×.
pub fn nofence() -> Vec<(usize, f64)> {
    let mut fenced = CostModel::paper();
    let mut ordered = CostModel::paper();
    ordered.mode = ExecutionMode::Ordered;
    let mut out = Vec::new();
    for batch in [1usize, 2, 4] {
        let mut gains = Vec::new();
        for w in workloads::gemv_workloads() {
            let f = gemv_micro(&mut fenced, &w, batch);
            let o = gemv_micro(&mut ordered, &w, batch);
            gains.push(f.pim_s / o.pim_s);
        }
        for w in workloads::add_workloads() {
            let f = add_micro(&mut fenced, &w, batch);
            let o = add_micro(&mut ordered, &w, batch);
            gains.push(f.pim_s / o.pim_s);
        }
        out.push((batch, geo_mean(&gains)));
    }
    out
}

/// A tiny end-to-end functional check used by several binaries: PIM GEMV
/// against the f32 reference.
pub fn functional_spot_check() -> f32 {
    let mut ctx = PimContext::small_system();
    let n = 64;
    let k = 64;
    let w: Vec<f32> = (0..n * k).map(|i| ((i % 13) as f32 - 6.0) / 8.0).collect();
    let x: Vec<f32> = (0..k).map(|i| ((i % 7) as f32 - 3.0) / 4.0).collect();
    let (out, _) = PimBlas::gemv(&mut ctx, &w, n, k, &x).expect("gemv");
    let reference = PimBlas::reference_gemv(&w, n, k, &x);
    let out16: Vec<F16> = out.iter().map(|&v| F16::from_f32(v)).collect();
    pim_fp16::max_abs_error(&out16, &reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_the_paper_table() {
        let c = table2();
        assert_eq!((c.mul, c.add, c.mac, c.mad, c.mov), (32, 40, 14, 28, 24));
        assert_eq!(c.compute_total(), 114);
    }

    #[test]
    fn table3_round_trips() {
        for (text, word) in table3() {
            let decoded = isa::Instruction::decode(word).unwrap();
            assert_eq!(format!("{decoded}"), text);
        }
    }

    #[test]
    fn table5_bandwidth_band() {
        let rows = table5();
        let on = rows.iter().find(|(k, _)| k.starts_with("On-Chip")).unwrap();
        assert!(on.1.contains("1228.8"), "{}", on.1);
        let off = rows.iter().find(|(k, _)| k.starts_with("Off-Chip")).unwrap();
        assert!(off.1.contains("307.2"), "{}", off.1);
    }

    #[test]
    fn fig5_demonstrates_the_ordering_hazard() {
        let r = fig5_aam_demo();
        assert_eq!(r.fenced_in_order_err, 0.0);
        assert_eq!(r.fenced_reordered_err, 0.0, "AAM tolerates in-window reordering");
        assert!(r.unfenced_reordered_err > 0.0, "unfenced reordering must corrupt results");
    }

    #[test]
    fn fig11_headlines() {
        let f = fig11();
        assert!((1.0..1.10).contains(&f.power_ratio), "{}", f.power_ratio);
        assert_eq!(f.bandwidth_ratio, 4.0);
        assert!((3.0..4.0).contains(&f.energy_per_bit_ratio), "{}", f.energy_per_bit_ratio);
        assert!((0.07..0.13).contains(&f.buffer_gating_saving), "{}", f.buffer_gating_saving);
    }

    #[test]
    fn nofence_gains_are_about_2x() {
        for (batch, gain) in nofence() {
            assert!((1.6..2.4).contains(&gain), "B{batch} gain {gain}");
        }
    }

    #[test]
    fn functional_spot_check_is_accurate() {
        assert!(functional_spot_check() < 0.05);
    }
}
