//! The reproduction harness: every table and figure of the paper's
//! evaluation as a callable experiment.
//!
//! Each experiment is a library function returning structured data; the
//! `src/bin/*` targets print them (`cargo run -p pim-bench --bin fig10`
//! etc.), the integration tests assert their shapes against the paper, and
//! the Criterion benches time scaled versions. EXPERIMENTS.md records the
//! paper-vs-measured comparison for every entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod faults;
pub mod json;
pub mod lint;
pub mod micro;
pub mod parallel;
pub mod profile;
pub mod report;
pub mod serve;
pub mod trace;
pub mod workloads;

pub use micro::MicroResult;
