//! A minimal JSON reader/writer for the benchmark result files.
//!
//! The workspace builds fully offline (no serde); the benchmark and
//! perf-gate binaries exchange small, flat documents (`BENCH_parallel.json`,
//! `BENCH_baseline.json`), so a compact recursive-descent parser over the
//! full JSON grammar is all that is needed. Numbers parse as `f64` —
//! cycle counts in these files stay well under 2^53, where `f64` is exact.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialization deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { at: self.pos, msg: msg.into() })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or(JsonError { at: self.pos, msg: "unterminated escape".into() })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                }
            }
        }
    }

    /// Consumes a run of ASCII digits, returning how many were consumed.
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        if self.digits() == 0 {
            return self.err("expected a digit in number");
        }
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return self.err("leading zeros are not allowed");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return self.err("expected a digit after '.'");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return self.err("expected a digit in exponent");
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return self.err("number is not valid UTF-8");
        };
        match text.parse::<f64>() {
            // `f64::from_str` accepts overflowing literals by saturating to
            // infinity; JSON has no infinity, so reject those too.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(format!("number '{text}' does not fit a finite f64")),
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax error,
/// including trailing garbage after the top-level value.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(v)
}

/// Serializes a [`Json`] value compactly (object keys in `BTreeMap` order).
pub fn write(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => {
            out.push('"');
            out.push_str(&pim_obs::chrome::escape_json(s));
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&pim_obs::chrome::escape_json(k));
                out.push_str("\":");
                write(v, out);
            }
            out.push('}');
        }
    }
}

/// Serializes to an owned string.
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write(value, &mut out);
    out
}

/// Convenience: builds an object from `(key, value)` pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        let reserialized = to_string(&v);
        assert_eq!(parse(&reserialized).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_scientific_numbers() {
        let v = parse("[1e3, 2.5e-2]").unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_f64(), Some(1000.0));
        assert_eq!(v.as_arr().unwrap()[1].as_f64(), Some(0.025));
    }

    #[test]
    fn exact_integers_survive_round_trip() {
        let v = Json::Num(9_007_199_254_740_992.0 - 1.0);
        let s = to_string(&v);
        assert_eq!(parse(&s).unwrap().as_u64(), Some(9_007_199_254_740_991));
    }

    #[test]
    fn malformed_numbers_are_errors_not_panics() {
        for bad in ["-", "1e", "1e+", "1.", "01", "-01", "1e999", "-1e999", "1.e3", "0x10", "1e1e1"]
        {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn edge_case_numbers_still_parse() {
        assert_eq!(parse("-0").unwrap().as_f64(), Some(-0.0));
        assert_eq!(parse("0.5e+2").unwrap().as_f64(), Some(50.0));
        assert_eq!(parse("2E3").unwrap().as_f64(), Some(2000.0));
        // Underflow to zero is finite, hence fine.
        assert_eq!(parse("1e-999").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn chrome_trace_output_parses() {
        // The Perfetto exporter and this parser must agree on JSON.
        let r = pim_obs::Recorder::vec();
        r.begin(1, "op", "op", pim_obs::Scope::channel(3));
        r.end(5, "op", "op", pim_obs::Scope::channel(3));
        let trace = pim_obs::chrome::chrome_trace_json(&r.events().unwrap());
        let v = parse(&trace).expect("exporter emits valid JSON");
        // Two kernel events plus the channel's process_name/thread_name
        // metadata records.
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 4);
    }
}
