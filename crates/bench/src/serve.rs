//! Seeded open-loop serving campaigns — the `pimserve` binary's engine.
//!
//! A campaign sweeps arrival rate (mean inter-arrival cycles) against base
//! fault rate (via [`crate::faults::fault_mix`]), drives the deterministic
//! serving layer (`pim_runtime::serve`) with a seeded request trace at
//! every point, and reports what the scheduler did: goodput, latency
//! percentiles, sheds, deadline misses, watchdog cancels, breaker trips,
//! and (the figure of merit) wrong answers that reached a caller.
//!
//! Every campaign is deterministic in its config: arrivals, operands, and
//! fault decisions are pure hashes of the seed, and every scheduler
//! decision is a function of the simulated clock. The same campaign
//! produces a byte-identical JSON report under the sequential and threaded
//! execution backends; the report deliberately omits the backend so that
//! equality can be asserted on the serialized bytes.

use crate::faults::fault_mix;
use crate::json::{obj, Json};
use pim_fp16::F16;
use pim_host::ExecutionBackend;
use pim_obs::Quantiles;
use pim_runtime::{
    Disposition, PimContext, PimError, RejectReason, ServeConfig, ServeOp, ServeRequest, Server,
};

/// Campaign shape: the sweep grid and the trace parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCampaignConfig {
    /// Master seed; arrivals, operands, and fault decisions derive from it.
    pub seed: u64,
    /// Elements per request.
    pub elements: usize,
    /// Requests per sweep point.
    pub requests: usize,
    /// Tenants the trace round-robins over.
    pub tenants: u32,
    /// Deadline slack granted to each request, in cycles past its arrival.
    pub deadline_slack: u64,
    /// Mean inter-arrival cycles to sweep (small = overload).
    pub intervals: Vec<u64>,
    /// Base fault rates to sweep (see [`crate::faults::fault_mix`]).
    pub fault_rates: Vec<f64>,
    /// Host execution backend (does not affect the report).
    pub backend: ExecutionBackend,
}

impl Default for ServeCampaignConfig {
    fn default() -> ServeCampaignConfig {
        ServeCampaignConfig {
            seed: 0x5E17E,
            elements: 1024,
            requests: 32,
            tenants: 2,
            deadline_slack: 4_000,
            // 150 cycles ≈ 4× the sustainable arrival rate (overload);
            // 2 000 is near saturation; 40 000 is comfortably idle.
            intervals: vec![150, 2_000, 40_000],
            fault_rates: vec![0.0, 1e-3],
            backend: ExecutionBackend::Sequential,
        }
    }
}

/// One sweep point: the serving layer's counters at (interval, rate).
#[derive(Debug, Clone, PartialEq)]
pub struct ServePoint {
    /// Mean inter-arrival cycles of this point.
    pub interval: u64,
    /// Base fault rate of this point.
    pub rate: f64,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed on PIM within their deadline.
    pub completed: u64,
    /// Requests shed with `QueueFull`.
    pub shed_queue_full: u64,
    /// Requests shed with `Overloaded`.
    pub shed_overloaded: u64,
    /// Requests that missed their deadline.
    pub deadline_missed: u64,
    /// Requests computed host-side by the degradation policy.
    pub host_fallbacks: u64,
    /// Kernel launches cancelled by the watchdog.
    pub watchdog_cancels: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Re-layouts over a reduced channel-group set.
    pub relayouts: u64,
    /// Median arrival-to-finish latency of served requests, in cycles.
    pub p50_cycles: u64,
    /// 99th-percentile latency of served requests, in cycles.
    pub p99_cycles: u64,
    /// Sim cycle at which the trace drained.
    pub end_cycle: u64,
    /// Served (correct-result) elements per second of simulated time.
    pub goodput_eps: f64,
    /// Served results whose data does not match the exact FP16 oracle.
    /// Zero means every result that reached a caller was right.
    pub wrong_answers: u64,
}

/// SplitMix64 — the campaign's only source of variation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic operands for request `id` at sweep point `point_salt`.
fn operands(seed: u64, point_salt: u64, id: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
    let val = |i: u64, salt: u64| {
        (mix(seed ^ point_salt.rotate_left(17) ^ id.rotate_left(32) ^ i ^ salt) % 509) as f32
            * 0.125
            - 31.75
    };
    let x = (0..n as u64).map(|i| val(i, 0)).collect();
    let y = (0..n as u64).map(|i| val(i, 0x5A5A)).collect();
    (x, y)
}

/// Builds the seeded open-loop trace for one sweep point. Public so the
/// traced-artifact runner ([`crate::trace`]) replays the exact same
/// request stream the campaign would.
pub fn build_trace(cfg: &ServeCampaignConfig, interval: u64, point_salt: u64) -> Vec<ServeRequest> {
    let mut arrival = 0u64;
    (0..cfg.requests as u64)
        .map(|id| {
            // Jittered gaps with mean ≈ interval: uniform in
            // [interval/2, 3*interval/2).
            let gap = interval / 2 + mix(cfg.seed ^ point_salt ^ id) % interval.max(1);
            arrival += gap;
            let (x, y) = operands(cfg.seed, point_salt, id, cfg.elements);
            ServeRequest {
                tenant: (id % cfg.tenants.max(1) as u64) as u32,
                arrival,
                deadline: arrival + cfg.deadline_slack,
                groups: None,
                budget: None,
                op: ServeOp::Add { x, y },
            }
        })
        .collect()
}

/// The per-point salt mixed into every seeded decision of a sweep point.
pub fn point_salt(interval: u64, rate: f64) -> u64 {
    interval ^ ((rate * 1e9) as u64).rotate_left(32)
}

/// Runs one sweep point on a fresh one-stack (16-channel) system.
///
/// # Errors
///
/// Propagates [`PimError`] from the serving layer (only plumbing failures
/// — overload and fault damage end as typed dispositions, not errors).
pub fn run_point(
    cfg: &ServeCampaignConfig,
    interval: u64,
    rate: f64,
) -> Result<ServePoint, PimError> {
    run_point_recorded(cfg, interval, rate, None)
}

/// [`run_point`] with an optional recorder attached to every simulation
/// layer — the counters and SLO histograms accumulate across points into
/// the recorder's metrics registry (the `pimserve --metrics` export).
/// Recording has zero observer effect: the returned [`ServePoint`] is
/// byte-for-byte the one an unrecorded run produces.
///
/// # Errors
///
/// Propagates [`PimError`] from the serving layer.
pub fn run_point_recorded(
    cfg: &ServeCampaignConfig,
    interval: u64,
    rate: f64,
    recorder: Option<&pim_obs::Recorder>,
) -> Result<ServePoint, PimError> {
    let mut ctx = PimContext::small_system();
    ctx.set_backend(cfg.backend);
    if rate > 0.0 {
        ctx.inject_faults(&fault_mix(cfg.seed, rate));
    }
    if let Some(r) = recorder {
        ctx.enable_profiling(r.clone());
    }
    let point_salt = point_salt(interval, rate);
    let trace = build_trace(cfg, interval, point_salt);

    // Keep the oracle per request so served results can be audited after
    // the run (the server consumes the trace).
    let oracles: Vec<Vec<f32>> = trace
        .iter()
        .map(|r| {
            let ServeOp::Add { x, y } = &r.op else { unreachable!("trace is ADD-only") };
            x.iter().zip(y).map(|(&a, &b)| (F16::from_f32(a) + F16::from_f32(b)).to_f32()).collect()
        })
        .collect();

    let serve_cfg = ServeConfig { breaker_threshold: 2, ..ServeConfig::default() };
    let mut server = Server::new(&mut ctx, serve_cfg);
    let report = server.run(trace)?;

    let mut wrong = 0u64;
    let mut served_elements = 0u64;
    for (o, oracle) in report.outcomes.iter().zip(&oracles) {
        if let Some(result) = &o.result {
            served_elements += result.len() as u64;
            wrong += result
                .iter()
                .zip(oracle)
                .filter(|(got, want)| got.to_bits() != want.to_bits())
                .count() as u64;
        }
        // A non-result disposition must be one of the typed endings.
        assert!(matches!(
            o.disposition,
            Disposition::Completed
                | Disposition::Shed(RejectReason::QueueFull | RejectReason::Overloaded)
                | Disposition::DeadlineMissed
                | Disposition::FellBackToHost
        ));
    }

    let lat = Quantiles::from_samples(report.served_latencies());
    let seconds = ctx.sys.cycles_to_seconds(report.end_cycle);
    Ok(ServePoint {
        interval,
        rate,
        submitted: report.stats.submitted,
        completed: report.stats.completed,
        shed_queue_full: report.stats.shed_queue_full,
        shed_overloaded: report.stats.shed_overloaded,
        deadline_missed: report.stats.deadline_missed,
        host_fallbacks: report.stats.host_fallbacks,
        watchdog_cancels: report.stats.watchdog_cancels,
        breaker_trips: report.stats.breaker_trips,
        relayouts: report.stats.relayouts,
        p50_cycles: lat.percentile(50),
        p99_cycles: lat.percentile(99),
        end_cycle: report.end_cycle,
        goodput_eps: if seconds > 0.0 { served_elements as f64 / seconds } else { 0.0 },
        wrong_answers: wrong,
    })
}

/// Runs the full (interval × fault-rate) grid.
///
/// # Errors
///
/// Fails on the first point that returns a [`PimError`].
pub fn run_campaign(cfg: &ServeCampaignConfig) -> Result<Vec<ServePoint>, PimError> {
    run_campaign_recorded(cfg, None)
}

/// [`run_campaign`] with an optional recorder shared by every grid point
/// (see [`run_point_recorded`]).
///
/// # Errors
///
/// Fails on the first point that returns a [`PimError`].
pub fn run_campaign_recorded(
    cfg: &ServeCampaignConfig,
    recorder: Option<&pim_obs::Recorder>,
) -> Result<Vec<ServePoint>, PimError> {
    let mut points = Vec::new();
    for &interval in &cfg.intervals {
        for &rate in &cfg.fault_rates {
            points.push(run_point_recorded(cfg, interval, rate, recorder)?);
        }
    }
    Ok(points)
}

/// Serializes a campaign to the `pim-bench/serve-campaign-v1` document.
/// Backend-independent by construction (see module docs).
pub fn report_json(cfg: &ServeCampaignConfig, points: &[ServePoint]) -> Json {
    let point_json = |p: &ServePoint| {
        obj([
            ("interval", Json::Num(p.interval as f64)),
            ("rate", Json::Num(p.rate)),
            ("submitted", Json::Num(p.submitted as f64)),
            ("completed", Json::Num(p.completed as f64)),
            ("shed_queue_full", Json::Num(p.shed_queue_full as f64)),
            ("shed_overloaded", Json::Num(p.shed_overloaded as f64)),
            ("deadline_missed", Json::Num(p.deadline_missed as f64)),
            ("host_fallbacks", Json::Num(p.host_fallbacks as f64)),
            ("watchdog_cancels", Json::Num(p.watchdog_cancels as f64)),
            ("breaker_trips", Json::Num(p.breaker_trips as f64)),
            ("relayouts", Json::Num(p.relayouts as f64)),
            ("p50_cycles", Json::Num(p.p50_cycles as f64)),
            ("p99_cycles", Json::Num(p.p99_cycles as f64)),
            ("end_cycle", Json::Num(p.end_cycle as f64)),
            ("goodput_eps", Json::Num(p.goodput_eps)),
            ("wrong_answers", Json::Num(p.wrong_answers as f64)),
        ])
    };
    obj([
        ("schema", Json::Str("pim-bench/serve-campaign-v1".to_string())),
        ("seed", Json::Num(cfg.seed as f64)),
        ("elements", Json::Num(cfg.elements as f64)),
        ("requests", Json::Num(cfg.requests as f64)),
        ("tenants", Json::Num(cfg.tenants as f64)),
        ("deadline_slack", Json::Num(cfg.deadline_slack as f64)),
        ("points", Json::Arr(points.iter().map(point_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn small() -> ServeCampaignConfig {
        ServeCampaignConfig {
            elements: 512,
            requests: 8,
            intervals: vec![5_000],
            fault_rates: vec![0.0],
            ..ServeCampaignConfig::default()
        }
    }

    #[test]
    fn clean_low_rate_point_serves_everything() {
        let cfg =
            ServeCampaignConfig { intervals: vec![200_000], deadline_slack: 2_000_000, ..small() };
        let p = run_point(&cfg, 200_000, 0.0).unwrap();
        assert_eq!(p.submitted, 8);
        assert_eq!(p.completed, 8, "{p:?}");
        assert_eq!(p.wrong_answers, 0);
        assert!(p.p50_cycles > 0 && p.p99_cycles >= p.p50_cycles);
        assert!(p.goodput_eps > 0.0);
    }

    #[test]
    fn overload_point_sheds_or_misses_but_never_lies() {
        // Arrivals far faster than service, with little deadline slack:
        // some requests must shed or miss, and every result that does come
        // back must be exact.
        let cfg = ServeCampaignConfig { requests: 16, deadline_slack: 2_000, ..small() };
        let p = run_point(&cfg, 200, 0.0).unwrap();
        assert_eq!(p.submitted, 16);
        assert!(
            p.shed_queue_full + p.shed_overloaded + p.deadline_missed > 0,
            "expected overload effects: {p:?}"
        );
        assert_eq!(p.wrong_answers, 0);
    }

    #[test]
    fn campaign_grid_covers_intervals_by_rates() {
        let cfg = ServeCampaignConfig {
            intervals: vec![5_000, 100_000],
            fault_rates: vec![0.0, 1e-3],
            ..small()
        };
        let points = run_campaign(&cfg).unwrap();
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.wrong_answers == 0), "{points:?}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let cfg = small();
        let points = run_campaign(&cfg).unwrap();
        let doc = report_json(&cfg, &points);
        let text = json::to_string(&doc);
        let back = json::parse(&text).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("pim-bench/serve-campaign-v1"));
        assert_eq!(back.get("points").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn report_is_byte_identical_across_backends() {
        let mk = |backend| {
            let cfg = ServeCampaignConfig { backend, fault_rates: vec![0.0, 1e-3], ..small() };
            let points = run_campaign(&cfg).unwrap();
            json::to_string(&report_json(&cfg, &points))
        };
        let seq = mk(ExecutionBackend::Sequential);
        assert_eq!(seq, mk(ExecutionBackend::Threads(2)));
        assert_eq!(seq, mk(ExecutionBackend::Threads(4)));
    }
}
