//! Traced serving runs and their exported artifacts — the `pimtrace`
//! binary's engine.
//!
//! Re-runs one serve-campaign sweep point (the exact request stream
//! [`crate::serve::build_trace`] produces) with a [`Recorder`] attached to
//! every simulation layer, then folds the recording into the full artifact
//! set:
//!
//! * **`trace.json`** — Chrome trace-event JSON with per-channel tracks
//!   and request flow arrows (admission → dispatch → launch → done).
//! * **`attrib.txt`** — the exact cycle-attribution table: simulated
//!   cycles decomposed by (channel × kernel phase × command class ×
//!   tenant), conserving `channels × end_cycle` to the cycle.
//! * **`attrib.folded`** — the same decomposition as folded stacks for
//!   flamegraph tools.
//! * **`metrics.om`** — the metrics registry in OpenMetrics text format,
//!   validated by the in-repo parser before it is returned.
//!
//! Every artifact is deterministic in the config and byte-identical across
//! execution backends ([`assert_backend_identity`] proves it at runtime);
//! the recorder has zero observer effect on simulated cycle counts, so the
//! traced run reports the same [`ServePoint`]-level counters as the
//! untraced campaign.

use crate::faults::fault_mix;
use crate::report::format_table;
use crate::serve::{build_trace, point_salt, ServeCampaignConfig};
use pim_host::ExecutionBackend;
use pim_obs::{chrome::chrome_trace_json, openmetrics, Attribution, Recorder};
use pim_runtime::{PimContext, PimError, ServeConfig, ServeReport, Server};

/// The complete artifact set of one traced sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArtifacts {
    /// Chrome trace-event JSON (`trace.json`).
    pub chrome: String,
    /// Rendered attribution table (`attrib.txt`).
    pub attrib_table: String,
    /// Folded-stack attribution (`attrib.folded`).
    pub folded: String,
    /// OpenMetrics exposition (`metrics.om`), already validated.
    pub openmetrics: String,
    /// Events the recorder captured.
    pub events: usize,
    /// Sim cycle at which the trace drained (barrier-aligned).
    pub end_cycle: u64,
}

fn internal(detail: String) -> PimError {
    PimError::Internal { detail }
}

/// Runs one sweep point with full tracing and returns the report plus the
/// recorder (callers that only want the artifacts use [`run_traced`]).
///
/// # Errors
///
/// Propagates [`PimError`] from the serving layer.
pub fn run_traced_report(
    cfg: &ServeCampaignConfig,
    interval: u64,
    rate: f64,
) -> Result<(ServeReport, Recorder, u16), PimError> {
    let mut ctx = PimContext::small_system();
    ctx.set_backend(cfg.backend);
    if rate > 0.0 {
        ctx.inject_faults(&fault_mix(cfg.seed, rate));
    }
    let recorder = Recorder::vec();
    ctx.enable_profiling(recorder.clone());
    let trace = build_trace(cfg, interval, point_salt(interval, rate));
    let serve_cfg = ServeConfig { breaker_threshold: 2, ..ServeConfig::default() };
    let mut server = Server::new(&mut ctx, serve_cfg);
    let report = server.run(trace)?;
    let channels = ctx.sys.channel_count() as u16;
    Ok((report, recorder, channels))
}

/// Runs one sweep point with full tracing and exports every artifact.
///
/// The attribution's conservation invariant and the OpenMetrics
/// exposition's well-formedness are both checked before returning; a
/// violation is a simulator bug and surfaces as [`PimError::Internal`].
///
/// # Errors
///
/// Propagates [`PimError`] from the serving layer; fails on a conservation
/// or exposition-format violation.
pub fn run_traced(
    cfg: &ServeCampaignConfig,
    interval: u64,
    rate: f64,
) -> Result<TraceArtifacts, PimError> {
    let (report, recorder, channels) = run_traced_report(cfg, interval, rate)?;
    let events = recorder.events().unwrap_or_default();
    let attribution = Attribution::from_events(&events, channels, report.end_cycle)
        .map_err(|e| internal(format!("attribution failed: {e}")))?;
    attribution
        .check_conservation()
        .map_err(|e| internal(format!("cycle conservation violated: {e}")))?;
    let exposition = openmetrics::render(&recorder.metrics().registry);
    openmetrics::validate(&exposition)
        .map_err(|e| internal(format!("invalid OpenMetrics exposition: {e}")))?;
    Ok(TraceArtifacts {
        chrome: chrome_trace_json(&events),
        attrib_table: render_attrib(&attribution),
        folded: attribution.folded(),
        openmetrics: exposition,
        events: events.len(),
        end_cycle: report.end_cycle,
    })
}

/// Renders an [`Attribution`] as the plain-text table `pimprof --attrib`
/// and `pimtrace run` print: one row per (phase, class, tenant) summed
/// over channels, cycles and share-of-total, then the conservation line.
pub fn render_attrib(a: &Attribution) -> String {
    let total = a.total();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for ((phase, class, tenant), cycles) in a.by_phase_class() {
        if cycles == 0 {
            continue;
        }
        rows.push(vec![
            phase,
            class,
            tenant.map_or("-".to_string(), |t| t.to_string()),
            cycles.to_string(),
            format!("{:.2}%", 100.0 * cycles as f64 / total.max(1) as f64),
        ]);
    }
    let mut out = format_table(&["phase", "class", "tenant", "cycles", "share"], &rows);
    out.push_str(&format!(
        "\nconservation: {} channels x {} cycles = {} attributed ({})\n",
        a.channels(),
        a.end_cycle(),
        total,
        match a.check_conservation() {
            Ok(()) => "exact".to_string(),
            Err(e) => format!("VIOLATED: {e}"),
        }
    ));
    out
}

/// Asserts that every artifact of `(cfg, interval, rate)` is byte-identical
/// when re-run under each backend in `backends`, returning the reference
/// artifacts on success.
///
/// # Errors
///
/// Reports the first artifact that differs (name plus backend), or any
/// underlying [`PimError`].
pub fn assert_backend_identity(
    cfg: &ServeCampaignConfig,
    interval: u64,
    rate: f64,
    backends: &[ExecutionBackend],
) -> Result<TraceArtifacts, PimError> {
    let reference = run_traced(cfg, interval, rate)?;
    for &backend in backends {
        let alt = run_traced(&ServeCampaignConfig { backend, ..cfg.clone() }, interval, rate)?;
        let pairs = [
            ("trace.json", &reference.chrome, &alt.chrome),
            ("attrib.txt", &reference.attrib_table, &alt.attrib_table),
            ("attrib.folded", &reference.folded, &alt.folded),
            ("metrics.om", &reference.openmetrics, &alt.openmetrics),
        ];
        for (name, want, got) in pairs {
            if want != got {
                return Err(internal(format!(
                    "{name} differs under {backend:?} ({} vs {} bytes)",
                    want.len(),
                    got.len()
                )));
            }
        }
    }
    Ok(reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ServeCampaignConfig {
        ServeCampaignConfig {
            elements: 512,
            requests: 6,
            intervals: vec![5_000],
            fault_rates: vec![0.0],
            ..ServeCampaignConfig::default()
        }
    }

    #[test]
    fn traced_point_produces_all_artifacts() {
        let art = run_traced(&small(), 5_000, 0.0).expect("traced run");
        assert!(art.events > 0);
        assert!(art.end_cycle > 0);
        assert!(art.chrome.starts_with("{\"displayTimeUnit\""));
        assert!(art.attrib_table.contains("conservation:"), "{}", art.attrib_table);
        assert!(art.attrib_table.contains("exact"), "{}", art.attrib_table);
        assert!(art.folded.contains("channel 0;"), "{}", art.folded);
        assert!(art.openmetrics.ends_with("# EOF\n"));
    }

    #[test]
    fn artifacts_are_byte_identical_across_backends() {
        let art = assert_backend_identity(
            &small(),
            5_000,
            0.0,
            &[ExecutionBackend::Threads(2), ExecutionBackend::Threads(4)],
        )
        .expect("identity");
        assert!(art.events > 0);
    }

    #[test]
    fn faulty_point_still_conserves_cycles() {
        // Faults push requests down the resilience ladder (retries,
        // re-layouts, host fallback); attribution must stay exact.
        let art = run_traced(&small(), 2_000, 1e-3).expect("faulty traced run");
        assert!(art.attrib_table.contains("exact"), "{}", art.attrib_table);
    }
}
