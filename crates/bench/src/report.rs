//! Plain-text table formatting for the reproduction binaries.

/// Formats a table with a header row and aligned columns.
///
/// ```
/// use pim_bench::report::format_table;
/// let t = format_table(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["b".into(), "22".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths.iter()) {
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a ratio like the paper's text ("11.2x").
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats seconds with an appropriate unit.
pub fn time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} us", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(&["a", "bb"], &[vec!["xxx".into(), "y".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(11.2), "11.20x");
        assert_eq!(time(0.0015), "1.500 ms");
        assert_eq!(time(2.0), "2.000 s");
        assert_eq!(time(2e-6), "2.000 us");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        format_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }
}
