//! The microbenchmark workloads of Table VI.

/// One GEMV microbenchmark: `n × k` (the paper writes them `k × n`-style
/// as "1k×4k" meaning a 4k-input, 1k-output matrix-vector product —
/// dimensioned here so GEMV4 streams 128 MB of weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemvWorkload {
    /// Table VI name.
    pub name: &'static str,
    /// Output dimension.
    pub n: usize,
    /// Input dimension.
    pub k: usize,
}

impl GemvWorkload {
    /// Weight bytes (FP16).
    pub fn weight_bytes(&self) -> u64 {
        (self.n * self.k * 2) as u64
    }
}

/// One element-wise ADD microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddWorkload {
    /// Table VI name.
    pub name: &'static str,
    /// Vector elements.
    pub elements: usize,
}

/// Table VI's four GEMV sizes.
pub fn gemv_workloads() -> Vec<GemvWorkload> {
    vec![
        GemvWorkload { name: "GEMV1", n: 1024, k: 4096 },
        GemvWorkload { name: "GEMV2", n: 2048, k: 4096 },
        GemvWorkload { name: "GEMV3", n: 4096, k: 8192 },
        GemvWorkload { name: "GEMV4", n: 8192, k: 8192 },
    ]
}

/// Table VI's four ADD sizes.
pub fn add_workloads() -> Vec<AddWorkload> {
    vec![
        AddWorkload { name: "ADD1", elements: 2 << 20 },
        AddWorkload { name: "ADD2", elements: 4 << 20 },
        AddWorkload { name: "ADD3", elements: 8 << 20 },
        AddWorkload { name: "ADD4", elements: 16 << 20 },
    ]
}

/// The BN workload of Fig. 14 ("a batch-normalization kernel (BN) with the
/// same input size as ADD") — paired with each ADD size.
pub fn bn_workloads() -> Vec<AddWorkload> {
    add_workloads()
        .into_iter()
        .map(|w| AddWorkload {
            name: match w.name {
                "ADD1" => "BN1",
                "ADD2" => "BN2",
                "ADD3" => "BN3",
                _ => "BN4",
            },
            elements: w.elements,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_sizes() {
        let g = gemv_workloads();
        assert_eq!(g.len(), 4);
        assert_eq!(g[0].name, "GEMV1");
        assert_eq!((g[0].n, g[0].k), (1024, 4096));
        assert_eq!((g[3].n, g[3].k), (8192, 8192));
        assert_eq!(g[3].weight_bytes(), 128 << 20);
        let a = add_workloads();
        assert_eq!(a[0].elements, 2 << 20);
        assert_eq!(a[3].elements, 16 << 20);
        assert_eq!(bn_workloads()[2].name, "BN3");
    }
}
