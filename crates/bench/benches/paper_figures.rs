//! Criterion targets regenerating each *figure* of the paper's evaluation
//! (5, 10, 11, 12, 13, 14 and the no-fence study): one benchmark per
//! figure, timing the full experiment and sanity-checking its headline.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::experiments;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig5_aam_ordering", |b| {
        b.iter(|| {
            let r = experiments::fig5_aam_demo();
            assert_eq!(r.fenced_reordered_err, 0.0);
            assert!(r.unfenced_reordered_err > 0.0);
            r
        })
    });

    g.bench_function("fig10_relative_performance", |b| {
        b.iter(|| {
            let rows = experiments::fig10();
            assert_eq!(rows.len(), 3 * 13);
            rows
        })
    });

    g.bench_function("fig11_power_breakdown", |b| {
        b.iter(|| {
            let f = experiments::fig11();
            assert!(f.power_ratio < 1.1);
            f
        })
    });

    g.bench_function("fig12_relative_energy", |b| {
        b.iter(|| {
            let rows = experiments::fig12();
            assert_eq!(rows.len(), 5);
            rows
        })
    });

    g.bench_function("fig13_power_over_time", |b| {
        b.iter(|| {
            let (hbm, pim) = experiments::fig13(32);
            assert_eq!((hbm.len(), pim.len()), (32, 32));
            (hbm, pim)
        })
    });

    g.bench_function("fig14_dse_variants", |b| {
        b.iter(|| {
            let (rows, geo) = experiments::fig14();
            assert_eq!(geo.len(), 4);
            (rows, geo)
        })
    });

    g.bench_function("nofence_study", |b| {
        b.iter(|| {
            let gains = experiments::nofence();
            assert_eq!(gains.len(), 3);
            gains
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
