//! Criterion targets regenerating each *table* of the paper (I–VI): one
//! benchmark per table, timing the full data-generation path and asserting
//! the headline values so `cargo bench` doubles as a reproduction check.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::experiments;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");

    g.bench_function("table1_mac_units", |b| {
        b.iter(|| {
            let t = experiments::table1();
            assert_eq!(t.len(), 6);
            t
        })
    });

    g.bench_function("table2_operand_combinations", |b| {
        b.iter(|| {
            let t = experiments::table2();
            assert_eq!(t.compute_total(), 114);
            t
        })
    });

    g.bench_function("table3_instruction_format", |b| {
        b.iter(|| {
            let t = experiments::table3();
            assert_eq!(t.len(), 9);
            t
        })
    });

    g.bench_function("table4_unit_spec", |b| {
        b.iter(|| {
            let t = experiments::table4();
            assert!(t.iter().any(|(_, v)| v.contains("9.6")));
            t
        })
    });

    g.bench_function("table5_device_spec", |b| {
        b.iter(|| {
            let t = experiments::table5();
            assert!(t.iter().any(|(_, v)| v.contains("1228.8")));
            t
        })
    });

    g.bench_function("table6_workloads", |b| {
        b.iter(|| {
            let g = pim_bench::workloads::gemv_workloads();
            let a = pim_bench::workloads::add_workloads();
            assert_eq!((g.len(), a.len()), (4, 4));
            (g, a)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
