//! Criterion benchmarks of the simulator substrate itself: how fast the
//! reproduction executes DRAM commands, PIM triggers and FP16 arithmetic.
//! These guard the simulator's own performance (a slow simulator makes the
//! larger reproductions impractical).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pim_core::isa::{Instruction, Operand};
use pim_core::{LaneVec, PimChannel, PimConfig, PimUnit, Trigger, TriggerKind};
use pim_dram::{
    BankAddr, Command, CommandSink, ControllerConfig, MemoryController, Request, SchedulingPolicy,
    TimingParams,
};
use pim_fp16::F16;

fn bench_fp16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fp16");
    let a = F16::from_f32(1.2345);
    let b = F16::from_f32(-0.5678);
    let acc = F16::from_f32(10.0);
    g.throughput(Throughput::Elements(1));
    g.bench_function("mac", |bench| bench.iter(|| std::hint::black_box(a).mac(b, acc)));
    g.bench_function("from_f32", |bench| {
        bench.iter(|| F16::from_f32(std::hint::black_box(3.140_62_f32)))
    });
    g.bench_function("lane_vec_mac", |bench| {
        let x = LaneVec::splat(a);
        let y = LaneVec::splat(b);
        let z = LaneVec::splat(acc);
        bench.iter(|| std::hint::black_box(x).mac(y, z))
    });
    // The pure bit-level implementation, for comparison with the f32 path.
    g.bench_function("softfloat_mul_bits", |bench| {
        let (x, y) = (a.to_bits(), b.to_bits());
        bench.iter(|| pim_fp16::softfloat::mul_bits(std::hint::black_box(x), y))
    });
    g.bench_function("softfloat_add_bits", |bench| {
        let (x, y) = (a.to_bits(), acc.to_bits());
        bench.iter(|| pim_fp16::softfloat::add_bits(std::hint::black_box(x), y))
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("channel_column_issue", |bench| {
        bench.iter_batched(
            || {
                let mut ch = pim_dram::PseudoChannel::new(TimingParams::hbm2());
                let bank = BankAddr::new(0, 0);
                ch.issue(&Command::Act { bank, row: 0 }, 0).unwrap();
                (ch, 100u64)
            },
            |(mut ch, mut now)| {
                let cmd = Command::Rd { bank: BankAddr::new(0, 0), col: 0 };
                for _ in 0..64 {
                    let at = ch.earliest_issue(&cmd, now);
                    ch.issue(&cmd, at).unwrap();
                    now = at;
                }
                now
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("controller_frfcfs_mixed", |bench| {
        bench.iter_batched(
            || {
                let mut ctrl = MemoryController::new(ControllerConfig {
                    policy: SchedulingPolicy::FrFcfs,
                    refresh_enabled: false,
                    ..Default::default()
                });
                for i in 0..64u64 {
                    ctrl.enqueue(Request::read((i % 8) * 4096 + (i / 8) * 32));
                }
                ctrl
            },
            |mut ctrl| ctrl.run_to_completion().len(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_pim(c: &mut Criterion) {
    let mut g = c.benchmark_group("pim");
    g.throughput(Throughput::Elements(16));
    g.bench_function("unit_mac_trigger", |bench| {
        let mut unit = PimUnit::new();
        unit.crf_mut().load_program(&[
            Instruction::Mac {
                dst: Operand::grf_b(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(0),
                aam: true,
            },
            Instruction::Jump { target: 0, count: 100_000 },
            Instruction::Exit,
        ]);
        unit.reset_sequencer();
        unit.srf_m_mut().write(0, F16::from_f32(0.5));
        let trig = Trigger {
            kind: TriggerKind::Read,
            row: 0,
            col: 3,
            even_data: LaneVec::splat(F16::from_f32(2.0)),
            odd_data: LaneVec::zero(),
        };
        bench.iter(|| unit.execute(std::hint::black_box(&trig)))
    });
    g.bench_function("channel_abpim_trigger_8units", |bench| {
        bench.iter_batched(
            || {
                let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
                let bank = BankAddr::new(0, 0);
                let mut now = 0;
                for cmd in pim_core::conf::enter_ab_sequence() {
                    let at = ch.earliest_issue(&cmd, now);
                    ch.issue(&cmd, at).unwrap();
                    now = at;
                }
                // Program an endless MAC loop and enter AB-PIM mode.
                let prog = [
                    Instruction::Mac {
                        dst: Operand::grf_b(0),
                        src0: Operand::even_bank(),
                        src1: Operand::srf_m(0),
                        aam: true,
                    },
                    Instruction::Jump { target: 0, count: 100_000 },
                ];
                let mut block = [0u8; 32];
                for (i, ins) in prog.iter().enumerate() {
                    block[i * 4..i * 4 + 4].copy_from_slice(&ins.encode().to_le_bytes());
                }
                for cmd in [
                    Command::Act { bank, row: pim_core::conf::CRF_ROW },
                    Command::Wr { bank, col: 0, data: block },
                    Command::Pre { bank },
                ] {
                    let at = ch.earliest_issue(&cmd, now);
                    ch.issue(&cmd, at).unwrap();
                    now = at;
                }
                for cmd in pim_core::conf::set_pim_op_mode_sequence(true) {
                    let at = ch.earliest_issue(&cmd, now);
                    ch.issue(&cmd, at).unwrap();
                    now = at;
                }
                let at = ch.earliest_issue(&Command::Act { bank, row: 0 }, now);
                ch.issue(&Command::Act { bank, row: 0 }, at).unwrap();
                (ch, at)
            },
            |(mut ch, mut now)| {
                let bank = BankAddr::new(0, 0);
                for col in 0..32u32 {
                    let cmd = Command::Rd { bank, col };
                    let at = ch.earliest_issue(&cmd, now);
                    ch.issue(&cmd, at).unwrap();
                    now = at;
                }
                now
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_fp16, bench_dram, bench_pim);
criterion_main!(benches);
