//! Criterion benchmarks of the PIM-BLAS entry points: full functional
//! kernels (layout + choreography + lock-step execution + readback) on the
//! one-stack test system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pim_runtime::{PimBlas, PimContext};

fn bench_blas(c: &mut Criterion) {
    let mut g = c.benchmark_group("pim_blas");
    g.sample_size(10);

    let n = 64 * 1024;
    let x: Vec<f32> = (0..n).map(|i| (i % 100) as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 50) as f32).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("add_64k", |bench| {
        bench.iter_batched(
            PimContext::small_system,
            |mut ctx| PimBlas::add(&mut ctx, &x, &y).unwrap().1.cycles,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("relu_64k", |bench| {
        bench.iter_batched(
            PimContext::small_system,
            |mut ctx| PimBlas::relu(&mut ctx, &x).unwrap().1.cycles,
            BatchSize::SmallInput,
        )
    });

    let (gn, gk) = (256, 256);
    let w: Vec<f32> = (0..gn * gk).map(|i| ((i % 17) as f32 - 8.0) / 16.0).collect();
    let gx: Vec<f32> = (0..gk).map(|i| (i % 5) as f32).collect();
    g.throughput(Throughput::Elements((gn * gk) as u64));
    g.bench_function("gemv_256x256", |bench| {
        bench.iter_batched(
            PimContext::small_system,
            |mut ctx| PimBlas::gemv(&mut ctx, &w, gn, gk, &gx).unwrap().1.cycles,
            BatchSize::SmallInput,
        )
    });
    // SLS: random gathers are ACT/PRE bound — the RM kernel's signature.
    let rows = 512;
    let dim = 64;
    let table: Vec<f32> = (0..rows * dim).map(|i| (i % 7) as f32).collect();
    let indices: Vec<u32> = (0..64).map(|i| (i * 193 % rows) as u32).collect();
    g.throughput(Throughput::Elements(indices.len() as u64));
    g.bench_function("sls_64_lookups", |bench| {
        bench.iter_batched(
            PimContext::small_system,
            |mut ctx| PimBlas::sls(&mut ctx, &table, rows, dim, &indices).unwrap().1.cycles,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_blas);
criterion_main!(benches);
