//! Last-level cache model.
//!
//! Two layers:
//!
//! * [`Llc`] — a functional set-associative LRU cache driven by address
//!   traces, used in tests and for small-kernel miss-rate measurements;
//! * [`batched_miss_rate`] — the analytic model of how batching raises the
//!   LLC hit rate of BLAS kernels, used by the application runner for
//!   Fig. 10's batch sweep (tracing a 128 MB GEMM per layer per model per
//!   batch would be pointlessly slow; the analytic form is standard tiling
//!   arithmetic, documented below).

/// A set-associative, LRU, write-allocate cache model.
///
/// # Example
///
/// ```
/// use pim_host::Llc;
/// let mut c = Llc::new(1024, 64, 4);
/// assert!(!c.access(0));      // cold miss
/// assert!(c.access(0));       // hit
/// assert!(c.access(32));      // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Llc {
    line: usize,
    sets: usize,
    ways: usize,
    /// `tags[set]` = lines in LRU order (front = most recent).
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// Creates a cache of `capacity` bytes with `line`-byte lines and
    /// `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways × line` sets, or non-power-of-two line size).
    pub fn new(capacity: usize, line: usize, ways: usize) -> Llc {
        assert!(line.is_power_of_two() && line > 0, "line size must be a power of two");
        assert!(
            ways > 0 && capacity.is_multiple_of(ways * line),
            "capacity must be sets*ways*line"
        );
        let sets = capacity / (ways * line);
        Llc { line, sets, ways, tags: vec![Vec::new(); sets], hits: 0, misses: 0 }
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate (LRU
    /// eviction).
    pub fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.line as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            ways.remove(pos);
            ways.insert(0, line_addr);
            self.hits += 1;
            true
        } else {
            ways.insert(0, line_addr);
            ways.truncate(self.ways);
            self.misses += 1;
            false
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses so far (0 if none).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets counters (not contents).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Analytic LLC miss rate of a batched BLAS-2/3 kernel whose dominant
/// traffic is a weight matrix of `weight_bytes` reused across `batch`
/// inputs.
///
/// Derivation: a tiled GEMM touches each weight element once per batch
/// *tile*; with batch `B`, the weight stream amortizes over the batch, so
/// compulsory traffic scales as `1/B`. Real kernels keep a residual stream
/// (activations, partial tiles, TLB/prefetch inefficiency) that does not
/// amortize, captured by `residual`. Weights that fit in the LLC outright
/// are hits after the first pass regardless of batch.
///
/// `miss(B) = residual + (1 - residual) / B` for weights ≫ LLC, clamped by
/// a pure-capacity term otherwise. With `residual = 0.6` this gives
/// 100% / 80% / 70% for B = 1/2/4 — matching Fig. 10's reported drop from
/// "almost ~100%" to "70–80%".
pub fn batched_miss_rate(weight_bytes: u64, llc_bytes: usize, batch: usize) -> f64 {
    assert!(batch >= 1, "batch must be at least 1");
    if weight_bytes <= llc_bytes as u64 / 2 {
        // Comfortably cache-resident (half the LLC left for activations):
        // only compulsory misses on the first pass.
        return (1.0 / batch as f64).min(1.0) * 0.1;
    }
    const RESIDUAL: f64 = 0.6;
    RESIDUAL + (1.0 - RESIDUAL) / batch as f64
}

/// Effective off-chip traffic of the batched kernel in bytes: the weight
/// stream filtered by [`batched_miss_rate`], for all `batch` inputs.
pub fn batched_traffic_bytes(weight_bytes: u64, llc_bytes: usize, batch: usize) -> u64 {
    let miss = batched_miss_rate(weight_bytes, llc_bytes, batch);
    (weight_bytes as f64 * batch as f64 * miss).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_misses_everything() {
        let mut c = Llc::new(64 * 64, 64, 4); // 4 KiB
        for i in 0..1024u64 {
            c.access(i * 64);
        }
        assert_eq!(c.miss_rate(), 1.0);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = Llc::new(64 * 64, 64, 4);
        let lines = 32u64; // half the cache
        for _ in 0..2 {
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        c.reset_counters();
        for i in 0..lines {
            assert!(c.access(i * 64), "line {i} should hit");
        }
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Llc::new(4 * 64, 64, 4); // one set, 4 ways
        for i in 0..4u64 {
            c.access(i * 64); // all map to set 0 (single set)
        }
        c.access(4 * 64); // evicts line 0
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(4 * 64));
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = Llc::new(1024, 64, 4);
        assert!(!c.access(128));
        assert!(c.access(129));
        assert!(c.access(191));
        assert!(!c.access(192));
    }

    #[test]
    fn batched_model_matches_fig10_shape() {
        let weights = 128u64 << 20; // 128 MB ≫ 8 MB LLC
        let llc = 8 << 20;
        let b1 = batched_miss_rate(weights, llc, 1);
        let b2 = batched_miss_rate(weights, llc, 2);
        let b4 = batched_miss_rate(weights, llc, 4);
        assert_eq!(b1, 1.0, "B1 is pure streaming: ~100% (Fig. 10)");
        assert!((0.75..=0.85).contains(&b2), "B2 ~80%, got {b2}");
        assert!((0.65..=0.80).contains(&b4), "B4 in the 70-80% band, got {b4}");
        assert!(b1 > b2 && b2 > b4);
    }

    #[test]
    fn cache_resident_weights_mostly_hit() {
        let m = batched_miss_rate(1 << 20, 8 << 20, 1);
        assert!(m < 0.2);
    }

    #[test]
    fn traffic_amortizes_with_batch() {
        let weights = 128u64 << 20;
        let llc = 8 << 20;
        let t1 = batched_traffic_bytes(weights, llc, 1);
        let t4 = batched_traffic_bytes(weights, llc, 4);
        // Per-input traffic drops with batch even as total grows.
        assert!(t4 < 4 * t1);
        assert!((t4 / 4) < t1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        Llc::new(1000, 60, 4);
    }
}
