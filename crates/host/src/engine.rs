//! The kernel engine: turns per-channel PIM command streams into issued
//! DRAM traffic under the paper's ordering regimes.
//!
//! A PIM kernel is a sequence of [`Batch`]es per channel. Within a batch
//! the DRAM controller is free to reorder commands (FR-FCFS, Fig. 5); the
//! host inserts a barrier *after every batch* to bound that reordering to
//! the AAM tolerance window — "we need to use a barrier for every 8 DRAM
//! commands [...] because our AAM can handle out-of-order execution of only
//! up to 8 PIM instructions at a time" (Section VII-B).
//!
//! Two execution modes reproduce the paper's two measurement regimes:
//!
//! * [`ExecutionMode::Fenced`] — the shipped system: optional deterministic
//!   intra-batch reordering (modelling the FR-FCFS controller) plus a
//!   drain-and-sync cost per barrier;
//! * [`ExecutionMode::Ordered`] — the §VII-B what-if: "a processor
//!   manufacturer confirms that the order of DRAM commands can be preserved
//!   only in PIM mode at negligible hardware and performance costs"; no
//!   reordering, no fences.

use crate::config::HostConfig;
use crate::system::PimSystem;
use pim_core::PimChannel;
use pim_dram::{Command, CommandSink, Cycle, MemoryController};
use pim_obs::{names, Event, Recorder, Scope};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::borrow::Cow;

/// One group of DRAM commands for a single channel, optionally followed by
/// a fence.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The commands, in program order.
    pub commands: Vec<Command>,
    /// Whether the batch's triggers are order-tolerant (AAM arithmetic over
    /// disjoint address-derived registers). Order-tolerant batches may be
    /// reordered by the controller without changing results; the engine
    /// only shuffles these — reordering a non-commutative batch models a
    /// *miscompiled* kernel and is used by the Fig. 5 demonstration.
    pub commutative: bool,
    /// Whether the host issues a barrier after this batch (Section IV-C:
    /// the fence bounding the controller's reordering to the AAM window).
    pub fence_after: bool,
    /// Optional name for profiling spans (the executor stamps its phase
    /// here: `enter_ab`, `crf`, `pim_on`, ...).
    pub label: Option<&'static str>,
}

impl Batch {
    /// A fenced batch of order-tolerant trigger commands — the common shape
    /// of a PIM kernel's data phase (e.g. 8 AAM MACs).
    pub fn commutative(commands: Vec<Command>) -> Batch {
        Batch { commands, commutative: true, fence_after: true, label: None }
    }

    /// A fenced batch whose internal order matters (e.g. the single WR that
    /// streams operands into the SRF before a group of MACs).
    pub fn fenced_ordered(commands: Vec<Command>) -> Batch {
        Batch { commands, commutative: false, fence_after: true, label: None }
    }

    /// An unfenced, ordered batch: row management (ACT/PRE) and mode
    /// setup, whose ordering the DRAM controller already guarantees via
    /// bank-state dependencies.
    pub fn setup(commands: Vec<Command>) -> Batch {
        Batch { commands, commutative: false, fence_after: false, label: None }
    }

    /// Names this batch for profiling spans.
    pub fn with_label(mut self, label: &'static str) -> Batch {
        self.label = Some(label);
        self
    }

    /// The span name: the label if set, else `batch<index>`.
    fn span_name(&self, index: usize) -> Cow<'static, str> {
        match self.label {
            Some(l) => Cow::Borrowed(l),
            None => Cow::Owned(format!("batch{index}")),
        }
    }
}

/// The ordering regime under which a kernel executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Standard FR-FCFS controller + per-batch fences. If
    /// `reorder_seed` is `Some`, commutative batches are deterministically
    /// shuffled before issue (the controller's reordering made visible).
    Fenced {
        /// Seed for the deterministic intra-batch shuffle; `None` issues in
        /// program order (reordering happens, but AAM makes it invisible —
        /// issuing in order is then behaviourally equivalent and cheaper to
        /// simulate).
        reorder_seed: Option<u64>,
    },
    /// In-order PIM-mode controller (the no-fence what-if of §VII-B).
    Ordered,
    /// A deliberately broken regime for the Fig. 5 demonstration: the
    /// controller reorders but the kernel has **no** fences and no AAM
    /// protection — every batch (commutative or not) is shuffled across
    /// the whole kernel.
    UnfencedReordered {
        /// Shuffle seed.
        seed: u64,
    },
}

/// The outcome of a bounded (watchdog-limited) kernel run on one channel:
/// the usual accounting plus whether the cycle limit fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedResult {
    /// Accounting for the commands that actually issued.
    pub result: KernelResult,
    /// Whether the cycle limit fired — at least one data batch was skipped.
    pub cancelled: bool,
}

/// The outcome of running a kernel on one channel or across the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResult {
    /// Cycle at which the kernel completed (max across channels).
    pub end_cycle: Cycle,
    /// Total DRAM commands issued.
    pub commands: u64,
    /// Fences executed.
    pub fences: u64,
}

impl KernelResult {
    /// An empty result — the identity element of [`KernelResult::merged`].
    pub const ZERO: KernelResult = KernelResult { end_cycle: 0, commands: 0, fences: 0 };

    /// Folds per-channel results into the system-level result: `end_cycle`
    /// is the max (channels run concurrently — the wall clock is the
    /// slowest channel's), `commands` and `fences` are sums.
    ///
    /// Every channel-level fan-in goes through this one helper — the
    /// sequential loop, the threaded backend's merge, and any caller
    /// aggregating [`KernelEngine::run_on_channel`] results — so the
    /// reduction is the exact same code no matter where each channel ran.
    /// All three fields are commutative-monoid reductions, but callers
    /// still feed channel-index order so event-stream merging (which is
    /// order-sensitive) can share the iteration.
    pub fn merged(results: impl IntoIterator<Item = KernelResult>) -> KernelResult {
        results.into_iter().fold(KernelResult::ZERO, |acc, r| KernelResult {
            end_cycle: acc.end_cycle.max(r.end_cycle),
            commands: acc.commands + r.commands,
            fences: acc.fences + r.fences,
        })
    }
}

/// Executes PIM kernels over a [`PimSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelEngine;

impl KernelEngine {
    /// Runs `batches` on channel `ctrl` under `mode`; returns the
    /// completion cycle and counts.
    ///
    /// # Panics
    ///
    /// Panics if a command is illegal for the device state (a kernel bug —
    /// PIM execution is deterministic, so the host programmer is expected
    /// to know the exact state, Section III-A).
    pub fn run_on_channel(
        host: &HostConfig,
        ctrl: &mut MemoryController<PimChannel>,
        batches: &[Batch],
        mode: ExecutionMode,
    ) -> KernelResult {
        Self::run_on_channel_bounded(host, ctrl, batches, mode, None).result
    }

    /// [`KernelEngine::run_on_channel`] with a cooperative cancellation
    /// point in the batch loop: once the channel's local clock reaches
    /// `limit`, remaining **data** batches (commutative or fenced) are
    /// skipped, while setup/teardown batches (mode transitions, CRF
    /// programming, `pim_off`/`exit_ab`) still issue so the device is left
    /// in a clean single-bank state. A `limit` of `None` is bit-identical
    /// to the unbounded run.
    ///
    /// The check is against the channel's own deterministic clock, so a
    /// bounded run cancels at exactly the same batch under every execution
    /// backend. Under [`ExecutionMode::UnfencedReordered`] (a demo mode
    /// with a single flattened stream) the limit is only checked once, on
    /// entry.
    ///
    /// # Panics
    ///
    /// As for [`KernelEngine::run_on_channel`].
    pub fn run_on_channel_bounded(
        host: &HostConfig,
        ctrl: &mut MemoryController<PimChannel>,
        batches: &[Batch],
        mode: ExecutionMode,
        limit: Option<Cycle>,
    ) -> BoundedResult {
        let mut cancelled = false;
        let over = |now: Cycle| limit.is_some_and(|l| now >= l);
        let t = ctrl.sink().timing().clone();
        let rec: Option<Recorder> = ctrl.recorder().cloned();
        let scope = Scope::channel(ctrl.channel_id());
        let mut commands = 0u64;
        let mut fences = 0u64;
        let mut order_buf: Vec<Command> = Vec::new();

        match mode {
            ExecutionMode::UnfencedReordered { seed } => {
                // Flatten the kernel and shuffle data-phase column commands
                // across the (absent) fence boundaries — the failure mode
                // of Fig. 5(b/c). Setup batches (mode transitions, CRF
                // programming) keep their order: the controller serializes
                // them through bank-state dependencies, and the hazard the
                // paper describes is among the *trigger* commands.
                let mut shuffle_slots: Vec<usize> = Vec::new();
                for b in batches {
                    let data_phase = b.fence_after || b.commutative;
                    for c in &b.commands {
                        if data_phase && c.is_column() {
                            shuffle_slots.push(order_buf.len());
                        }
                        order_buf.push(c.clone());
                    }
                }
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut cols: Vec<Command> =
                    shuffle_slots.iter().map(|&i| order_buf[i].clone()).collect();
                cols.shuffle(&mut rng);
                for (&slot, cmd) in shuffle_slots.iter().zip(cols) {
                    order_buf[slot] = cmd;
                }
                if over(ctrl.now()) && !shuffle_slots.is_empty() {
                    // Entry-time cancellation: drop the data-phase columns,
                    // keep the setup/teardown skeleton.
                    cancelled = true;
                    let mut keep = vec![true; order_buf.len()];
                    for &slot in &shuffle_slots {
                        keep[slot] = false;
                    }
                    let mut it = keep.iter();
                    order_buf.retain(|_| *it.next().unwrap_or(&true));
                }
                commands += order_buf.len() as u64;
                if let Some(r) = &rec {
                    r.begin(ctrl.now(), "unfenced_stream", names::CAT_BATCH, scope);
                    r.add(names::ENGINE_BATCHES, 1);
                    r.observe(
                        names::ENGINE_BATCH_LEN,
                        names::BATCH_LEN_BUCKETS,
                        order_buf.len() as u64,
                    );
                }
                let last = ctrl.issue_raw(&order_buf);
                if let Some(r) = &rec {
                    r.end(last, "unfenced_stream", names::CAT_BATCH, scope);
                }
            }
            ExecutionMode::Ordered => {
                for (bi, b) in batches.iter().enumerate() {
                    if (b.commutative || b.fence_after) && over(ctrl.now()) {
                        cancelled = true;
                        continue;
                    }
                    commands += b.commands.len() as u64;
                    if let Some(r) = &rec {
                        r.begin(ctrl.now(), b.span_name(bi), names::CAT_BATCH, scope);
                        r.add(names::ENGINE_BATCHES, 1);
                        r.observe(
                            names::ENGINE_BATCH_LEN,
                            names::BATCH_LEN_BUCKETS,
                            b.commands.len() as u64,
                        );
                    }
                    let last = ctrl.issue_raw(&b.commands);
                    if let Some(r) = &rec {
                        r.end(last, b.span_name(bi), names::CAT_BATCH, scope);
                    }
                }
            }
            ExecutionMode::Fenced { reorder_seed } => {
                for (bi, b) in batches.iter().enumerate() {
                    if (b.commutative || b.fence_after) && over(ctrl.now()) {
                        // The watchdog's cancellation point: data batches
                        // (and their fences) stop issuing; the teardown
                        // choreography still runs.
                        cancelled = true;
                        continue;
                    }
                    let cmds: Vec<Command> = match reorder_seed {
                        Some(seed) if b.commutative && b.commands.len() > 1 => {
                            let mut rng = SmallRng::seed_from_u64(seed ^ bi as u64);
                            let mut v = b.commands.clone();
                            v.shuffle(&mut rng);
                            v
                        }
                        _ => b.commands.clone(),
                    };
                    commands += cmds.len() as u64;
                    if let Some(r) = &rec {
                        r.begin(ctrl.now(), b.span_name(bi), names::CAT_BATCH, scope);
                        r.add(names::ENGINE_BATCHES, 1);
                        r.observe(
                            names::ENGINE_BATCH_LEN,
                            names::BATCH_LEN_BUCKETS,
                            cmds.len() as u64,
                        );
                    }
                    let last = ctrl.issue_raw(&cmds);
                    if let Some(r) = &rec {
                        r.end(last, b.span_name(bi), names::CAT_BATCH, scope);
                    }
                    if b.fence_after {
                        // Fence: drain in-flight data (read latency +
                        // burst) and synchronize the thread group.
                        let drain = last + t.t_cl + t.t_bl + host.fence_sync_overhead_cycles;
                        ctrl.advance_to(drain);
                        fences += 1;
                        if let Some(r) = &rec {
                            r.emit(
                                Event::instant(drain, "fence", names::CAT_BATCH, scope)
                                    .with_arg("stall_cycles", drain - last),
                            );
                            r.add(names::ENGINE_FENCES, 1);
                            r.add(names::ENGINE_FENCE_STALL_CYCLES, drain - last);
                        }
                    }
                }
            }
        }
        BoundedResult {
            result: KernelResult { end_cycle: ctrl.now(), commands, fences },
            cancelled,
        }
    }

    /// Runs per-channel batch lists across the system concurrently (each
    /// channel advances its own clock); returns the wall-clock result.
    ///
    /// Which host threads step the channels is decided by the system's
    /// [`crate::ExecutionBackend`] ([`PimSystem::set_backend`]): the
    /// sequential reference loop, or the scoped worker pool. Both produce
    /// identical results, stats, and (merged) event streams — see
    /// [`crate::parallel`] for why that holds.
    ///
    /// Channels beyond `per_channel.len()` run nothing but still advance to
    /// the closing barrier, exactly as in hardware.
    ///
    /// # Panics
    ///
    /// Panics if `per_channel.len()` exceeds the channel count, or if a
    /// command is illegal for a device's state (a kernel bug; under the
    /// threaded backend the worker's panic is re-raised on the caller).
    pub fn run_system(
        sys: &mut PimSystem,
        per_channel: &[Vec<Batch>],
        mode: ExecutionMode,
    ) -> KernelResult {
        Self::run_system_bounded(sys, per_channel, mode, None).0
    }

    /// [`KernelEngine::run_system`] under a watchdog cycle limit: every
    /// channel runs through [`KernelEngine::run_on_channel_bounded`], and
    /// the returned vector flags, per batch list, whether that channel's
    /// run was cancelled. A `limit` of `None` is bit-identical to
    /// [`KernelEngine::run_system`].
    ///
    /// Cancellation is decided against each channel's own deterministic
    /// clock, so the flag vector — like the merged result — is identical
    /// under the sequential and threaded backends.
    ///
    /// # Panics
    ///
    /// As for [`KernelEngine::run_system`].
    pub fn run_system_bounded(
        sys: &mut PimSystem,
        per_channel: &[Vec<Batch>],
        mode: ExecutionMode,
        limit: Option<Cycle>,
    ) -> (KernelResult, Vec<bool>) {
        assert!(per_channel.len() <= sys.channel_count(), "more batch lists than channels");
        match sys.backend() {
            crate::ExecutionBackend::Sequential => {
                let host = sys.host.clone();
                let bounded: Vec<BoundedResult> = per_channel
                    .iter()
                    .enumerate()
                    .map(|(i, batches)| {
                        Self::run_on_channel_bounded(
                            &host,
                            sys.channel_mut(i),
                            batches,
                            mode,
                            limit,
                        )
                    })
                    .collect();
                let cancelled = bounded.iter().map(|b| b.cancelled).collect();
                let merged = KernelResult::merged(bounded.into_iter().map(|b| b.result));
                (KernelResult { end_cycle: sys.barrier(), ..merged }, cancelled)
            }
            crate::ExecutionBackend::Threads(n) => {
                crate::parallel::run_system_threads(sys, per_channel, mode, n, limit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::PimConfig;
    use pim_dram::BankAddr;

    fn system() -> PimSystem {
        PimSystem::new(HostConfig::paper(), PimConfig::paper())
    }

    fn simple_batches() -> Vec<Batch> {
        let b = BankAddr::new(0, 0);
        vec![
            Batch::setup(vec![Command::Act { bank: b, row: 1 }]),
            Batch::commutative((0..8).map(|c| Command::Rd { bank: b, col: c }).collect()),
            Batch::setup(vec![Command::Pre { bank: b }]),
        ]
    }

    #[test]
    fn fenced_mode_costs_more_than_ordered() {
        let mut sys = system();
        let r_f = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            sys.channel_mut(0),
            &simple_batches(),
            ExecutionMode::Fenced { reorder_seed: None },
        );
        let r_o = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            sys.channel_mut(1),
            &simple_batches(),
            ExecutionMode::Ordered,
        );
        assert!(r_f.end_cycle > r_o.end_cycle, "{} vs {}", r_f.end_cycle, r_o.end_cycle);
        assert_eq!(r_f.fences, 1, "only the commutative batch is fenced");
        assert_eq!(r_o.fences, 0);
        assert_eq!(r_f.commands, 10);
    }

    #[test]
    fn reordering_within_batch_is_deterministic() {
        let mut sys = system();
        let run = |sys: &mut PimSystem, ch: usize| {
            KernelEngine::run_on_channel(
                &HostConfig::paper(),
                sys.channel_mut(ch),
                &simple_batches(),
                ExecutionMode::Fenced { reorder_seed: Some(42) },
            )
        };
        let a = run(&mut sys, 0);
        let b = run(&mut sys, 1);
        assert_eq!(a.end_cycle, b.end_cycle, "same seed, same schedule");
    }

    #[test]
    fn system_run_advances_all_channels() {
        let mut sys = system();
        let per_channel: Vec<Vec<Batch>> = (0..64).map(|_| simple_batches()).collect();
        let r = KernelEngine::run_system(
            &mut sys,
            &per_channel,
            ExecutionMode::Fenced { reorder_seed: None },
        );
        assert_eq!(r.commands, 64 * 10);
        assert!(r.end_cycle > 0);
        // Channels ran concurrently: the wall time equals one channel's.
        let mut solo = PimSystem::new(HostConfig::paper(), PimConfig::paper());
        let s = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            solo.channel_mut(0),
            &simple_batches(),
            ExecutionMode::Fenced { reorder_seed: None },
        );
        assert_eq!(r.end_cycle, s.end_cycle);
    }

    #[test]
    fn recorder_observes_fence_stalls_and_batch_spans() {
        let mut sys = system();
        let r = Recorder::vec();
        sys.channel_mut(0).set_recorder(r.clone(), 0);
        let b = BankAddr::new(0, 0);
        let batches = vec![
            Batch::setup(vec![Command::Act { bank: b, row: 1 }]).with_label("act"),
            Batch::commutative((0..8).map(|c| Command::Rd { bank: b, col: c }).collect()),
            Batch::setup(vec![Command::Pre { bank: b }]),
        ];
        let res = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            sys.channel_mut(0),
            &batches,
            ExecutionMode::Fenced { reorder_seed: None },
        );
        let m = r.metrics().registry;
        assert_eq!(m.counter(pim_obs::names::ENGINE_FENCES), res.fences);
        assert!(m.counter(pim_obs::names::ENGINE_FENCE_STALL_CYCLES) > 0);
        assert_eq!(m.counter(pim_obs::names::ENGINE_BATCHES), 3);
        assert_eq!(m.histogram(pim_obs::names::ENGINE_BATCH_LEN).unwrap().count(), 3);
        let events = r.events().unwrap();
        assert!(events.iter().any(|e| e.name == "act"), "labelled batch span");
        assert!(events.iter().any(|e| e.name == "batch2"), "unlabelled fallback name");
        assert!(events.iter().any(|e| e.name == "fence"));
        pim_obs::check_nesting(&events).expect("balanced spans");

        // Observer effect must be zero: the same kernel on an uninstrumented
        // channel lands on the same cycle.
        let res_plain = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            sys.channel_mut(1),
            &batches,
            ExecutionMode::Fenced { reorder_seed: None },
        );
        assert_eq!(res.end_cycle, res_plain.end_cycle);
    }

    #[test]
    fn merged_is_max_end_and_summed_counts() {
        let r = KernelResult::merged([
            KernelResult { end_cycle: 10, commands: 3, fences: 1 },
            KernelResult { end_cycle: 25, commands: 4, fences: 0 },
            KernelResult { end_cycle: 7, commands: 1, fences: 2 },
        ]);
        assert_eq!(r, KernelResult { end_cycle: 25, commands: 8, fences: 3 });
        assert_eq!(KernelResult::merged([]), KernelResult::ZERO);
    }

    #[test]
    fn threaded_backend_matches_sequential() {
        let per_channel: Vec<Vec<Batch>> = (0..64).map(|_| simple_batches()).collect();
        let mut seq_sys = system();
        let seq = KernelEngine::run_system(&mut seq_sys, &per_channel, ExecutionMode::Ordered);
        for workers in [1, 2, 4, 8] {
            let mut par_sys = system();
            par_sys.set_backend(crate::ExecutionBackend::Threads(workers));
            let par = KernelEngine::run_system(&mut par_sys, &per_channel, ExecutionMode::Ordered);
            assert_eq!(par, seq, "{workers} workers");
            for ch in 0..64 {
                assert_eq!(
                    par_sys.channel(ch).now(),
                    seq_sys.channel(ch).now(),
                    "clock of ch {ch} under {workers} workers"
                );
            }
        }
    }

    #[test]
    fn empty_batch_lists_run_under_both_backends() {
        for backend in [crate::ExecutionBackend::Sequential, crate::ExecutionBackend::Threads(4)] {
            let mut sys = system();
            sys.set_backend(backend);
            // Channels 0 and 2 idle, channel 1 works.
            let per_channel = vec![vec![], simple_batches(), vec![]];
            let r = KernelEngine::run_system(
                &mut sys,
                &per_channel,
                ExecutionMode::Fenced { reorder_seed: None },
            );
            assert_eq!(r.commands, 10, "{backend:?}");
            assert!(r.end_cycle > 0);
            // The barrier still aligns every channel, idle ones included.
            assert_eq!(sys.channel(0).now(), r.end_cycle);
            assert_eq!(sys.channel(63).now(), r.end_cycle);
        }
    }

    #[test]
    fn no_batch_lists_at_all_is_a_no_op_under_both_backends() {
        for backend in [crate::ExecutionBackend::Sequential, crate::ExecutionBackend::Threads(2)] {
            let mut sys = system();
            sys.set_backend(backend);
            let r = KernelEngine::run_system(
                &mut sys,
                &[],
                ExecutionMode::Fenced { reorder_seed: None },
            );
            assert_eq!(r, KernelResult::ZERO, "{backend:?}");
        }
    }

    #[test]
    #[should_panic(expected = "more batch lists than channels")]
    fn too_many_batch_lists_panic_sequential() {
        let mut sys = system();
        let per_channel: Vec<Vec<Batch>> = (0..65).map(|_| simple_batches()).collect();
        KernelEngine::run_system(&mut sys, &per_channel, ExecutionMode::Ordered);
    }

    #[test]
    #[should_panic(expected = "more batch lists than channels")]
    fn too_many_batch_lists_panic_threaded() {
        let mut sys = system();
        sys.set_backend(crate::ExecutionBackend::Threads(4));
        let per_channel: Vec<Vec<Batch>> = (0..65).map(|_| simple_batches()).collect();
        KernelEngine::run_system(&mut sys, &per_channel, ExecutionMode::Ordered);
    }

    #[test]
    #[should_panic(expected = "illegal")]
    fn worker_panic_propagates_from_threaded_backend() {
        let mut sys = system();
        sys.set_backend(crate::ExecutionBackend::Threads(4));
        // A column command with no row open is illegal device state — the
        // worker thread panics and run_system must re-raise it.
        let bad = vec![Batch::setup(vec![Command::Rd { bank: BankAddr::new(0, 0), col: 0 }])];
        KernelEngine::run_system(&mut sys, &[bad], ExecutionMode::Ordered);
    }

    #[test]
    fn threaded_backend_merges_recorder_streams_identically() {
        let per_channel: Vec<Vec<Batch>> = (0..8).map(|_| simple_batches()).collect();
        let run = |backend: crate::ExecutionBackend| {
            let mut sys = system();
            sys.set_backend(backend);
            let rec = Recorder::vec();
            for ch in 0..8 {
                sys.channel_mut(ch).set_recorder(rec.clone(), ch as u16);
            }
            let r = KernelEngine::run_system(
                &mut sys,
                &per_channel,
                ExecutionMode::Fenced { reorder_seed: None },
            );
            (r, rec.events().unwrap(), rec.metrics().registry)
        };
        let (seq_r, seq_events, seq_metrics) = run(crate::ExecutionBackend::Sequential);
        for workers in [2, 4, 8] {
            let (par_r, par_events, par_metrics) = run(crate::ExecutionBackend::Threads(workers));
            assert_eq!(par_r, seq_r);
            assert_eq!(par_events, seq_events, "event streams under {workers} workers");
            assert_eq!(par_metrics, seq_metrics);
            // And the recorder is reattached: a later sequential-style use
            // still records.
        }
    }

    #[test]
    fn unbounded_limit_is_bit_identical_to_plain_run() {
        let mut sys = system();
        let plain = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            sys.channel_mut(0),
            &simple_batches(),
            ExecutionMode::Fenced { reorder_seed: None },
        );
        let bounded = KernelEngine::run_on_channel_bounded(
            &HostConfig::paper(),
            sys.channel_mut(1),
            &simple_batches(),
            ExecutionMode::Fenced { reorder_seed: None },
            None,
        );
        assert_eq!(bounded.result, plain);
        assert!(!bounded.cancelled);
    }

    #[test]
    fn zero_limit_cancels_data_batches_but_issues_teardown() {
        let mut sys = system();
        let b = BankAddr::new(0, 0);
        // ACT (setup) + 8 reads (data) + PRE (setup): with limit 0 the
        // data batch is skipped, the row-management skeleton still issues.
        let bounded = KernelEngine::run_on_channel_bounded(
            &HostConfig::paper(),
            sys.channel_mut(0),
            &simple_batches(),
            ExecutionMode::Fenced { reorder_seed: None },
            Some(0),
        );
        assert!(bounded.cancelled);
        assert_eq!(bounded.result.commands, 2, "ACT and PRE only");
        assert_eq!(bounded.result.fences, 0, "skipped batches skip their fences");
        let stats = sys.channel(0).sink().dram().stats();
        assert_eq!(stats.reads, 0);
        assert_eq!(stats.acts, 1);
        let _ = b;
    }

    #[test]
    fn mid_kernel_limit_cancels_later_batches_deterministically() {
        // Find a limit that lands between the first and second data batch.
        let b = BankAddr::new(0, 0);
        let batches = vec![
            Batch::setup(vec![Command::Act { bank: b, row: 1 }]),
            Batch::commutative((0..4).map(|c| Command::Rd { bank: b, col: c }).collect()),
            Batch::commutative((4..8).map(|c| Command::Rd { bank: b, col: c }).collect()),
            Batch::setup(vec![Command::Pre { bank: b }]),
        ];
        let mut probe = system();
        let full = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            probe.channel_mut(0),
            &batches,
            ExecutionMode::Fenced { reorder_seed: None },
        );
        // A limit of 1 lets the first data batch start (clock still low)
        // and cancels the second (clock past the first fence).
        let mut sys = system();
        let bounded = KernelEngine::run_on_channel_bounded(
            &HostConfig::paper(),
            sys.channel_mut(0),
            &batches,
            ExecutionMode::Fenced { reorder_seed: None },
            Some(1),
        );
        assert!(bounded.cancelled);
        assert_eq!(sys.channel(0).sink().dram().stats().reads, 4, "first data batch only");
        assert!(bounded.result.end_cycle < full.end_cycle);
        // And a rerun lands on exactly the same cycle.
        let mut sys2 = system();
        let again = KernelEngine::run_on_channel_bounded(
            &HostConfig::paper(),
            sys2.channel_mut(0),
            &batches,
            ExecutionMode::Fenced { reorder_seed: None },
            Some(1),
        );
        assert_eq!(again, bounded);
    }

    #[test]
    fn bounded_system_run_matches_across_backends() {
        let per_channel: Vec<Vec<Batch>> = (0..16).map(|_| simple_batches()).collect();
        let mut seq = system();
        let (seq_r, seq_c) = KernelEngine::run_system_bounded(
            &mut seq,
            &per_channel,
            ExecutionMode::Fenced { reorder_seed: None },
            Some(0),
        );
        assert!(seq_c.iter().all(|&c| c), "every channel over budget cancels");
        for workers in [2, 4] {
            let mut par = system();
            par.set_backend(crate::ExecutionBackend::Threads(workers));
            let (par_r, par_c) = KernelEngine::run_system_bounded(
                &mut par,
                &per_channel,
                ExecutionMode::Fenced { reorder_seed: None },
                Some(0),
            );
            assert_eq!(par_r, seq_r, "{workers} workers");
            assert_eq!(par_c, seq_c, "{workers} workers");
        }
    }

    #[test]
    fn unfenced_reorder_shuffles_columns_only() {
        let mut sys = system();
        let r = KernelEngine::run_on_channel(
            &HostConfig::paper(),
            sys.channel_mut(0),
            &simple_batches(),
            ExecutionMode::UnfencedReordered { seed: 7 },
        );
        // Still 10 commands; ACT first, PRE last (non-columns keep slots).
        assert_eq!(r.commands, 10);
        let stats = sys.channel(0).sink().dram().stats();
        assert_eq!(stats.reads, 8);
        assert_eq!(stats.acts, 1);
    }
}
