//! The thread-group programming model (Section V-B, Fig. 8).
//!
//! "If the maximum memory access size of the memory access APIs determined
//! by a given processor ISA is 16 bytes, we need 16 threads to generate
//! memory requests for accessing 256 bytes at a time. All 16 threads are
//! allocated to one thread group, which is executed in a lockstep manner
//! [...] we let each thread group exclusively access a single DRAM
//! channel." This module models that structure: a [`ThreadGroup`] turns a
//! 256-byte step into the per-thread 16-byte accesses and tracks barrier
//! ordering; the kernel engine allocates one group per pseudo channel
//! (64 groups × 16 threads = 1,024 threads on the paper's system).

/// Threads per group (Fig. 8: 16).
pub const THREADS_PER_GROUP: usize = 16;
/// Bytes one thread accesses per step (Fig. 8: 16).
pub const THREAD_ACCESS_BYTES: usize = 16;
/// Bytes one group accesses per step: 256 = one GRF-register-sized region.
pub const GROUP_ACCESS_BYTES: usize = THREADS_PER_GROUP * THREAD_ACCESS_BYTES;

/// One lock-step thread group bound to a pseudo channel.
///
/// # Example
///
/// ```
/// use pim_host::ThreadGroup;
/// let mut g = ThreadGroup::new(3);
/// let accesses = g.step(0x1000);
/// assert_eq!(accesses.len(), 16);
/// assert_eq!(accesses[1], 0x1010);
/// ```
#[derive(Debug, Clone)]
pub struct ThreadGroup {
    channel: usize,
    steps: u64,
    barriers: u64,
}

impl ThreadGroup {
    /// Creates a group bound to pseudo channel `channel`.
    pub fn new(channel: usize) -> ThreadGroup {
        ThreadGroup { channel, steps: 0, barriers: 0 }
    }

    /// The exclusively owned channel.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// One lock-step memory step: every thread issues one 16-byte access to
    /// the 256-byte region at `base`; returns the 16 per-thread addresses.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 256-byte aligned — the programming model
    /// requires each group step to cover one contiguous, aligned GRF-sized
    /// region ("8 memory requests to a contiguous memory region of 256
    /// bytes").
    pub fn step(&mut self, base: u64) -> Vec<u64> {
        assert_eq!(base % GROUP_ACCESS_BYTES as u64, 0, "group step must be 256-byte aligned");
        self.steps += 1;
        (0..THREADS_PER_GROUP as u64).map(|t| base + t * THREAD_ACCESS_BYTES as u64).collect()
    }

    /// A barrier: all threads of the group synchronize, ordering their
    /// memory requests relative to later ones.
    pub fn barrier(&mut self) {
        self.barriers += 1;
    }

    /// Steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Barriers executed.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }
}

/// Turns a thread group's lock-step memory steps into the DRAM requests
/// the memory controller sees — the full Fig. 8 path: 16 threads × 16 B
/// per step, coalescing into eight 32-byte column requests per 256-byte
/// region, all landing on the group's exclusive channel.
///
/// Returns the 32-byte-aligned request addresses (after coalescing pairs
/// of 16-byte thread accesses) for `steps` consecutive group steps
/// starting at `base`.
///
/// # Panics
///
/// Panics if `base` is not 256-byte aligned.
pub fn coalesced_requests(group: &mut ThreadGroup, base: u64, steps: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(steps * 8);
    for s in 0..steps as u64 {
        let accesses = group.step(base + s * GROUP_ACCESS_BYTES as u64);
        // The memory system coalesces the 16 half-block accesses into 8
        // column commands ("8 memory requests to a contiguous memory
        // region of 256 bytes", Section V-B).
        for pair in accesses.chunks(2) {
            debug_assert_eq!(pair[0] + THREAD_ACCESS_BYTES as u64, pair[1]);
            out.push(pair[0]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dram::AddressMapping;

    #[test]
    fn group_step_covers_256_bytes() {
        let mut g = ThreadGroup::new(0);
        let a = g.step(512);
        assert_eq!(a.len(), THREADS_PER_GROUP);
        assert_eq!(a[0], 512);
        assert_eq!(*a.last().unwrap(), 512 + 240);
        // The union of accesses covers exactly [512, 768).
        let covered: u64 = a.iter().map(|_| THREAD_ACCESS_BYTES as u64).sum();
        assert_eq!(covered, GROUP_ACCESS_BYTES as u64);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_step_rejected() {
        ThreadGroup::new(0).step(100);
    }

    #[test]
    fn counters_track_activity() {
        let mut g = ThreadGroup::new(7);
        g.step(0);
        g.step(256);
        g.barrier();
        assert_eq!(g.channel(), 7);
        assert_eq!(g.steps(), 2);
        assert_eq!(g.barriers(), 1);
    }

    #[test]
    fn coalesced_requests_are_eight_blocks_per_step() {
        let mut g = ThreadGroup::new(0);
        let reqs = coalesced_requests(&mut g, 0, 2);
        assert_eq!(reqs.len(), 16, "8 column requests per 256-byte step");
        for (i, &a) in reqs.iter().enumerate() {
            assert_eq!(a, i as u64 * 32);
            assert_eq!(a % 32, 0, "column-command aligned");
        }
        assert_eq!(g.steps(), 2);
    }

    #[test]
    fn group_requests_stay_on_one_channel() {
        // The programming model's exclusivity invariant (Section V-B: "we
        // let each thread group exclusively access single DRAM channel"),
        // verified through the real address mapping: a group stepping
        // through its channel's contiguous regions never touches another
        // channel.
        let m = AddressMapping::new(16);
        let mut g = ThreadGroup::new(5);
        // Channel 5's 256-byte regions sit at base + 5*256 + k*4096.
        for k in 0..8u64 {
            let base = 5 * 256 + k * 4096;
            for addr in coalesced_requests(&mut g, base, 1) {
                assert_eq!(m.decode(addr).pch, 5, "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn paper_system_thread_count() {
        // 64 pCHs × 16 threads = 1,024 threads (Section V-B).
        let groups: Vec<ThreadGroup> = (0..64).map(ThreadGroup::new).collect();
        let threads: usize = groups.len() * THREADS_PER_GROUP;
        assert_eq!(threads, 1024);
    }
}
