//! Host processor model for the PIM-HBM reproduction.
//!
//! The paper integrates four PIM-HBM stacks with an **unmodified commercial
//! processor** — "60 compute units, each operating at 1.725 GHz" (Section
//! VI), i.e. a GPU-class device. The host's role in every reported result
//! is threefold, and all three are modelled here:
//!
//! 1. **Command generation** ([`KernelEngine`]): PIM kernels are ordinary
//!    memory kernels — thread groups of 16 threads issue 16-byte accesses,
//!    256 bytes per group per step, one thread group per pseudo channel,
//!    with barriers enforcing order every GRF's-worth of commands
//!    (Fig. 8 programming model; Section IV-C fencing).
//! 2. **Cache filtering** ([`Llc`], [`llc::batched_miss_rate`]): batching
//!    turns the memory-bound GEMV into the compute-bound GEMM by raising
//!    LLC hit rates (Fig. 10's B1/B2/B4 sweep).
//! 3. **Compute throughput** ([`HostConfig::compute_time_s`]): the
//!    compute-bound layers (convolutions, batched GEMM) run on the host's
//!    FP16/FP32 units; PIM never slows them down (ResNet-50 in Fig. 10).
//!
//! [`PimSystem`] assembles the full evaluation platform: 4 stacks × 16
//! pseudo channels = 64 channels, each behind its own JEDEC controller
//! driving a [`pim_core::PimChannel`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bypass;
mod config;
mod engine;
pub mod llc;
pub mod parallel;
mod system;
mod threads;

pub use bypass::{BypassPolicy, RegionError};
pub use config::HostConfig;
pub use engine::{Batch, BoundedResult, ExecutionMode, KernelEngine, KernelResult};
pub use llc::Llc;
pub use parallel::ExecutionBackend;
pub use system::PimSystem;
pub use threads::{
    coalesced_requests, ThreadGroup, GROUP_ACCESS_BYTES, THREADS_PER_GROUP, THREAD_ACCESS_BYTES,
};
