//! Host processor configuration and time models.

/// Configuration of the host processor and its memory system.
///
/// The structural numbers come from Section VI of the paper; the
/// *efficiency factors* are the calibration constants the reproduction
/// needs because the paper's host is a real GPU with a real BLAS library
/// whose kernel quality we cannot rebuild. Each factor is documented with
/// the paper sentence that motivates it; together they are chosen so the
/// microbenchmark ratios land in the paper's reported ranges (see
/// EXPERIMENTS.md for the calibration audit).
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// Compute units (Section VI: 60).
    pub cus: usize,
    /// CU clock in MHz (Section VI: 1725).
    pub cu_mhz: u64,
    /// FP16 FLOPs per CU per cycle (GPU-class: 256 → ~26.5 TFLOPS total).
    pub flops_per_cu_cycle_fp16: f64,
    /// Last-level cache capacity in bytes (GPU-class: 8 MiB).
    pub llc_bytes: usize,
    /// LLC line size in bytes.
    pub llc_line: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// HBM stacks integrated with the processor (Section VI: 4).
    pub stacks: usize,
    /// Fraction of peak off-chip bandwidth the host's GEMV kernel sustains
    /// **at batch 1**; see [`HostConfig::gemv_efficiency`] for the batch
    /// scaling.
    ///
    /// Calibration: the paper's GEMV speedups span "1.4~11.2×" across the
    /// Table VI sizes. PIM's GEMV time depends only on K (all ≤8192
    /// outputs compute in one lock-step pass) while the host's scales with
    /// N·K — so the speedup grows ∝N, and anchoring GEMV1 (1k×4k) at 1.4×
    /// and GEMV4 (8k×8k) at 11.2× puts the host's single-batch GEMV at
    /// ~13% of peak bandwidth ("not optimized to fully utilize the
    /// off-chip memory bandwidth", Section VII-B).
    pub gemv_stream_efficiency: f64,
    /// Fraction of peak bandwidth the host's element-wise kernels sustain.
    ///
    /// Streaming ADD is easy to write well; near-peak (90%) makes PIM's
    /// ADD advantage small (paper: 1.6×), exactly as reported.
    pub add_stream_efficiency: f64,
    /// Fraction of peak bandwidth well-written host kernels (LSTM via
    /// batched GEMV inside cuBLAS-class libraries) sustain at batch 1;
    /// see [`HostConfig::lstm_efficiency`]. Calibrated so DS2's end-to-end
    /// speedup lands at the paper's 3.5×.
    pub lstm_stream_efficiency: f64,
    /// Host-side cost of launching one (PIM or compute) kernel, in
    /// microseconds. Dominates GNMT's decoder, which "is required to
    /// invoke the PIM kernel at every step and every layer" (Section
    /// VII-B).
    pub kernel_launch_overhead_us: f64,
    /// Extra bus cycles one fence/barrier costs beyond draining in-flight
    /// commands (thread-group synchronization on the host).
    pub fence_sync_overhead_cycles: u64,
}

impl HostConfig {
    /// The paper's evaluation system (Section VI).
    pub fn paper() -> HostConfig {
        HostConfig {
            cus: 60,
            cu_mhz: 1725,
            flops_per_cu_cycle_fp16: 256.0,
            llc_bytes: 8 * 1024 * 1024,
            llc_line: 64,
            llc_ways: 16,
            stacks: 4,
            gemv_stream_efficiency: 0.131,
            add_stream_efficiency: 0.90,
            lstm_stream_efficiency: 0.33,
            kernel_launch_overhead_us: 6.0,
            fence_sync_overhead_cycles: 24,
        }
    }

    /// Effective GEMV bandwidth efficiency at a given batch size.
    ///
    /// Batching switches the host's BLAS dispatch from the unoptimized
    /// GEMV path to progressively better-tiled GEMM kernels; calibrated to
    /// Fig. 10's 11.2× → 3.2× → <1× progression over B1/B2/B4 for GEMV4,
    /// the efficiency grows ~`B^1.5` up to the bandwidth ceiling.
    pub fn gemv_efficiency(&self, batch: usize) -> f64 {
        (self.gemv_stream_efficiency * (batch as f64).powf(1.5)).min(1.0)
    }

    /// Effective LSTM-library bandwidth efficiency at a given batch size
    /// (grows `~B^0.8`, calibrated to DS2's 3.5× → 1.6× over B1/B2).
    pub fn lstm_efficiency(&self, batch: usize) -> f64 {
        (self.lstm_stream_efficiency * (batch as f64).powf(0.8)).min(1.0)
    }

    /// Peak FP16 throughput in GFLOPS.
    pub fn peak_fp16_gflops(&self) -> f64 {
        self.cus as f64 * self.cu_mhz as f64 * 1e6 * self.flops_per_cu_cycle_fp16 / 1e9
    }

    /// Peak off-chip bandwidth in GB/s: `stacks × 16 pCH × per-pCH peak`.
    pub fn peak_bandwidth_gbs(&self, per_pch_gbs: f64) -> f64 {
        self.stacks as f64 * 16.0 * per_pch_gbs
    }

    /// Time for the host to stream `bytes` at `efficiency × peak` off-chip
    /// bandwidth, in seconds.
    pub fn stream_time_s(&self, bytes: u64, per_pch_gbs: f64, efficiency: f64) -> f64 {
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency must be in (0, 1]");
        bytes as f64 / (self.peak_bandwidth_gbs(per_pch_gbs) * 1e9 * efficiency)
    }

    /// Time for the host to perform `flops` FP16 operations at `utilization`
    /// of peak, in seconds.
    pub fn compute_time_s(&self, flops: u64, utilization: f64) -> f64 {
        assert!(utilization > 0.0 && utilization <= 1.0);
        flops as f64 / (self.peak_fp16_gflops() * 1e9 * utilization)
    }

    /// Kernel-launch overhead in seconds.
    pub fn launch_overhead_s(&self) -> f64 {
        self.kernel_launch_overhead_us * 1e-6
    }
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_shape() {
        let h = HostConfig::paper();
        assert_eq!(h.cus, 60);
        assert_eq!(h.stacks, 4);
        // ~26.5 TFLOPS FP16 — GPU-class.
        assert!((h.peak_fp16_gflops() - 26496.0).abs() < 1.0);
    }

    #[test]
    fn bandwidth_composition() {
        let h = HostConfig::paper();
        // 4 stacks × 307.2 GB/s = 1.2288 TB/s (Section VI: "total off-chip
        // memory bandwidth for the processor is 1.229TB/s").
        let bw = h.peak_bandwidth_gbs(19.2);
        assert!((bw - 1228.8).abs() < 1e-9);
    }

    #[test]
    fn stream_time_scales_inversely_with_efficiency() {
        let h = HostConfig::paper();
        let fast = h.stream_time_s(1 << 30, 19.2, 1.0);
        let slow = h.stream_time_s(1 << 30, 19.2, 0.25);
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        HostConfig::paper().stream_time_s(1, 19.2, 0.0);
    }
}
