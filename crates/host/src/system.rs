//! The full evaluation platform: host + 4 PIM-HBM stacks (Section VI).

use crate::config::HostConfig;
use crate::parallel::ExecutionBackend;
use pim_core::{PimChannel, PimConfig};
use pim_dram::{
    AddressMapping, ControllerConfig, Cycle, MemoryController, SchedulingPolicy, TimingParams,
};
use pim_faults::FaultPlan;

/// The paper's evaluation system: an unmodified host processor 2.5D-
/// integrated with `stacks × 16` pseudo channels of PIM-HBM, each behind
/// its own JEDEC-compliant memory controller.
///
/// "The host processor can independently control PIM operations of each
/// memory channel" (Section III-A) — hence one controller and one local
/// clock per channel, synchronized only at barriers.
#[derive(Debug)]
pub struct PimSystem {
    /// Host configuration.
    pub host: HostConfig,
    pim_config: PimConfig,
    timing: TimingParams,
    channels: Vec<MemoryController<PimChannel>>,
    /// How `KernelEngine::run_system` distributes channels over host
    /// threads. Defaults to [`ExecutionBackend::Sequential`].
    backend: ExecutionBackend,
}

impl PimSystem {
    /// Builds the system: `host.stacks × 16` PIM channels.
    ///
    /// Refresh is disabled in the controllers by default: PIM kernels are
    /// short relative to tREFI and the executor brackets them between
    /// refresh windows; determinism of the reported cycle counts is part of
    /// the architecture's contract.
    pub fn new(host: HostConfig, pim: PimConfig) -> PimSystem {
        PimSystem::with_timing(host, pim, TimingParams::hbm2())
    }

    /// Builds the system with explicit DRAM timing.
    pub fn with_timing(host: HostConfig, pim: PimConfig, timing: TimingParams) -> PimSystem {
        let n = host.stacks * 16;
        let channels = (0..n)
            .map(|i| {
                let cfg = ControllerConfig {
                    timing: timing.clone(),
                    mapping: AddressMapping::new(16),
                    pch_id: i % 16,
                    policy: SchedulingPolicy::FrFcfs,
                    page_policy: pim_dram::PagePolicy::Open,
                    refresh_enabled: false,
                };
                MemoryController::with_sink(cfg, PimChannel::new(timing.clone(), pim.clone()))
            })
            .collect();
        PimSystem { host, pim_config: pim, timing, channels, backend: ExecutionBackend::Sequential }
    }

    /// The execution backend kernels run under.
    pub fn backend(&self) -> ExecutionBackend {
        self.backend
    }

    /// Selects the execution backend. Purely a host-side scheduling choice:
    /// results, stats, and merged event streams are identical under every
    /// backend (the determinism contract of [`crate::parallel`]).
    pub fn set_backend(&mut self, backend: ExecutionBackend) {
        self.backend = backend;
    }

    /// The PIM device configuration.
    pub fn pim_config(&self) -> &PimConfig {
        &self.pim_config
    }

    /// DRAM timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Number of pseudo channels (64 on the paper system).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The controller of channel `i`.
    pub fn channel(&self, i: usize) -> &MemoryController<PimChannel> {
        &self.channels[i]
    }

    /// Mutable controller access.
    pub fn channel_mut(&mut self, i: usize) -> &mut MemoryController<PimChannel> {
        &mut self.channels[i]
    }

    /// All controllers as one mutable slice — what the parallel backend
    /// partitions into disjoint per-worker chunks.
    pub fn channels_mut(&mut self) -> &mut [MemoryController<PimChannel>] {
        &mut self.channels
    }

    /// The latest local clock across channels.
    pub fn max_now(&self) -> Cycle {
        self.channels.iter().map(|c| c.now()).max().unwrap_or(0)
    }

    /// Global barrier: aligns every channel's clock to the latest.
    pub fn barrier(&mut self) -> Cycle {
        let now = self.max_now();
        for c in &mut self.channels {
            c.advance_to(now);
        }
        now
    }

    /// Converts a channel-cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: Cycle) -> f64 {
        self.timing.cycles_to_seconds(cycles)
    }

    /// Sum of PIM triggers across all channels (work actually executed).
    pub fn total_pim_triggers(&self) -> u64 {
        self.channels.iter().map(|c| c.sink().stats().pim_triggers).sum()
    }

    /// Installs a seeded fault plan on every channel: the device-level
    /// command injector plus per-bank cell faults, each salted with the
    /// system-level channel index so channels fault independently. Never
    /// calling this (the default) keeps the system bit-identical to a
    /// build without fault support.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for (i, c) in self.channels.iter_mut().enumerate() {
            c.sink_mut().install_faults(plan, i as u16);
        }
    }

    /// Channels whose PIM units are hard-failed by the installed plan.
    pub fn hard_failed_channels(&self) -> Vec<usize> {
        (0..self.channels.len()).filter(|&i| self.channels[i].sink().hard_failed()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_has_64_channels() {
        let sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
        assert_eq!(sys.channel_count(), 64);
        assert_eq!(sys.max_now(), 0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
        sys.channel_mut(5).advance_to(1000);
        let now = sys.barrier();
        assert_eq!(now, 1000);
        assert_eq!(sys.channel(63).now(), 1000);
    }

    #[test]
    fn channels_start_in_single_bank_mode() {
        let sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
        for i in 0..sys.channel_count() {
            assert_eq!(sys.channel(i).sink().mode(), pim_core::PimMode::SingleBank);
        }
    }
}
