//! Cache bypassing for PIM memory regions (Section VIII).
//!
//! "PIM requires data to be located in memory. Thus, we need to make
//! memory regions that PIM operates on uncacheable [...] we use cache
//! bypass instructions (e.g., LDNP/STNP in ARMv8) [...] making such memory
//! regions uncacheable in fact reduces interference and contention at
//! caches and thus improves the performance."
//!
//! [`BypassPolicy`] classifies accesses; [`pollution_experiment`] measures
//! the paper's claim with the functional LLC model: streaming a large PIM
//! operand region through the cache evicts the host's hot working set,
//! while bypassing it preserves the hot set's hit rate.

use crate::llc::Llc;

/// Why a requested PIM region cannot back a [`BypassPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The region has zero length.
    Empty,
    /// `base + len` overflows the 64-bit address space.
    Overflow {
        /// Start of the rejected region.
        base: u64,
        /// Requested length.
        len: u64,
    },
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Empty => write!(f, "empty PIM region"),
            RegionError::Overflow { base, len } => {
                write!(f, "PIM region {base:#x}+{len:#x} overflows the address space")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// Classifies addresses into cacheable host traffic and uncacheable PIM
/// traffic, by address range (the driver's reserved region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BypassPolicy {
    /// Start of the uncacheable PIM region.
    pub pim_base: u64,
    /// Exclusive end of the region.
    pub pim_end: u64,
}

impl BypassPolicy {
    /// A policy over the region `[base, base + len)`.
    ///
    /// # Errors
    ///
    /// Rejects an empty region ([`RegionError::Empty`]) before anything
    /// else — a zero-length request is a caller bug regardless of `base` —
    /// and then a region whose end would overflow the address space
    /// ([`RegionError::Overflow`]). This constructor sits on the runtime
    /// recovery path (host-fallback execution for quarantined channels),
    /// so it reports failure instead of panicking.
    pub fn new(base: u64, len: u64) -> Result<BypassPolicy, RegionError> {
        if len == 0 {
            return Err(RegionError::Empty);
        }
        let end = base.checked_add(len).ok_or(RegionError::Overflow { base, len })?;
        Ok(BypassPolicy { pim_base: base, pim_end: end })
    }

    /// `true` if an access to `addr` must bypass the cache hierarchy and
    /// issue a DRAM command directly (LDNP/STNP-style).
    pub fn bypasses(&self, addr: u64) -> bool {
        (self.pim_base..self.pim_end).contains(&addr)
    }
}

/// The outcome of the pollution experiment: the hot working set's miss
/// rate with and without bypassing the PIM stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollutionResult {
    /// Hot-set miss rate when PIM traffic bypasses the LLC.
    pub hot_miss_with_bypass: f64,
    /// Hot-set miss rate when PIM traffic is cached (no bypass).
    pub hot_miss_without_bypass: f64,
}

/// Runs the interference experiment: a hot working set (`hot_bytes`,
/// cache-resident) interleaved with a PIM operand stream
/// (`stream_bytes`, far larger than the cache), with and without the
/// bypass policy. Returns the hot set's steady-state miss rates.
///
/// # Panics
///
/// Panics if `hot_bytes` does not fit in the cache (the experiment's
/// premise).
pub fn pollution_experiment(
    llc_bytes: usize,
    llc_line: usize,
    llc_ways: usize,
    hot_bytes: u64,
    stream_bytes: u64,
) -> PollutionResult {
    assert!(hot_bytes <= llc_bytes as u64 / 2, "hot set must be cache-resident");
    let stream_base = 1u64 << 40;
    let policy = BypassPolicy::new(stream_base, stream_bytes)
        .expect("experiment stream region is non-empty and fits the address space");
    let line = llc_line as u64;

    let run = |bypass: bool| -> f64 {
        let mut cache = Llc::new(llc_bytes, llc_line, llc_ways);
        // Warm the hot set.
        for a in (0..hot_bytes).step_by(llc_line) {
            cache.access(a);
        }
        cache.reset_counters();
        // Interleave: per hot-set sweep, a slice of the PIM stream passes
        // through (or around) the cache.
        let mut stream_pos = 0u64;
        let mut hot_hits = 0u64;
        let mut hot_total = 0u64;
        for _round in 0..8 {
            for a in (0..hot_bytes).step_by(llc_line) {
                hot_total += 1;
                if cache.access(a) {
                    hot_hits += 1;
                }
                // Eight stream lines per hot line (a memory-bound PIM
                // operand stream moves far more data than the host's own
                // working set sees).
                for _ in 0..8 {
                    let sa = stream_base + (stream_pos % stream_bytes);
                    stream_pos += line;
                    if !policy.bypasses(sa) || !bypass {
                        cache.access(sa);
                    }
                    // With bypass, the access goes straight to DRAM and
                    // never perturbs the cache.
                }
            }
        }
        1.0 - hot_hits as f64 / hot_total as f64
    };

    PollutionResult { hot_miss_with_bypass: run(true), hot_miss_without_bypass: run(false) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_classifies_by_range() {
        let p = BypassPolicy::new(0x1000, 0x1000).unwrap();
        assert!(!p.bypasses(0xFFF));
        assert!(p.bypasses(0x1000));
        assert!(p.bypasses(0x1FFF));
        assert!(!p.bypasses(0x2000));
    }

    #[test]
    fn bypassing_pim_streams_protects_the_hot_set() {
        // The paper's claim, measured: with bypass the hot set stays
        // resident (near-zero misses); without, the stream thrashes it.
        let r = pollution_experiment(1 << 20, 64, 16, 1 << 18, 64 << 20);
        assert!(
            r.hot_miss_with_bypass < 0.01,
            "hot set should stay resident: {}",
            r.hot_miss_with_bypass
        );
        assert!(
            r.hot_miss_without_bypass > 0.5,
            "cached streaming should thrash: {}",
            r.hot_miss_without_bypass
        );
    }

    #[test]
    #[should_panic(expected = "cache-resident")]
    fn oversized_hot_set_rejected() {
        pollution_experiment(1 << 20, 64, 16, 1 << 20, 1 << 24);
    }

    #[test]
    fn empty_and_overflowing_regions_rejected() {
        assert_eq!(BypassPolicy::new(0, 0), Err(RegionError::Empty));
        // Empty wins even when the base is pathological: a zero-length
        // request is a caller bug regardless of where it points.
        assert_eq!(BypassPolicy::new(u64::MAX, 0), Err(RegionError::Empty));
        assert_eq!(
            BypassPolicy::new(u64::MAX, 2),
            Err(RegionError::Overflow { base: u64::MAX, len: 2 })
        );
        // A region ending exactly at the top of the address space is fine.
        assert!(BypassPolicy::new(u64::MAX - 4, 4).is_ok());
    }
}
