//! The parallel execution backend: channel-level fan-out over a scoped
//! worker pool.
//!
//! The paper's system is embarrassingly parallel at the channel level —
//! "the host processor can independently control PIM operations of each
//! memory channel" (Section III-A). Every pseudo channel owns its
//! controller, its device model, and its local clock, and channels only
//! meet at barriers; nothing about one channel's simulation reads another's
//! state. The backend exploits exactly that: it partitions the per-channel
//! batch lists into contiguous chunks, runs each chunk on its own
//! `std::thread` worker, and folds the per-channel results back together
//! **in stable channel-index order**, so the output is byte-identical to
//! the sequential loop.
//!
//! # Determinism
//!
//! Three properties make parallel == sequential an invariant rather than an
//! aspiration:
//!
//! 1. **Per-channel ownership.** A worker gets `&mut` over a disjoint slice
//!    of controllers ([`slice::chunks_mut`]); each channel's simulation is
//!    a pure function of its own state plus the (shared, read-only) host
//!    config and batch list.
//! 2. **Stable merge order.** Workers return per-channel [`KernelResult`]s
//!    in chunk order; chunks are contiguous, so concatenation reproduces
//!    channel-index order, and the reduction ([`KernelResult::merged`]) is
//!    the exact same code the sequential loop runs.
//! 3. **Per-channel event buffers.** An attached [`Recorder`] is swapped
//!    for a private per-channel buffer before the workers start and merged
//!    back ([`Recorder::merge_from`]) in channel-index order at the
//!    barrier. A sequential run emits events in exactly that channel-major
//!    order (channel 0's whole kernel, then channel 1's, ...), so the
//!    merged stream — and every derived export, Chrome trace included —
//!    is identical, and span nesting stays balanced.
//!
//! The worker pool uses `std::thread::scope` (no external dependencies) and
//! is created per [`crate::KernelEngine::run_system`] call: PIM kernels are
//! long relative to thread spawn cost, and a persistent pool would have to
//! smuggle `&mut` controllers across an API boundary for no measured gain.

use crate::config::HostConfig;
use crate::engine::{Batch, BoundedResult, ExecutionMode, KernelEngine, KernelResult};
use crate::system::PimSystem;
use pim_core::PimChannel;
use pim_dram::{Cycle, MemoryController};
use pim_obs::Recorder;

/// How [`crate::KernelEngine::run_system`] distributes channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecutionBackend {
    /// One thread steps the channels in index order — the reference
    /// behaviour every other backend must reproduce bit-for-bit.
    #[default]
    Sequential,
    /// A scoped worker pool of `n` threads, each running a contiguous chunk
    /// of channels to completion on its own clock. `Threads(1)` exercises
    /// the full fan-out/merge machinery on a single worker (useful for
    /// tests); `Threads(0)` is normalized to 1.
    Threads(usize),
}

impl ExecutionBackend {
    /// A threaded backend sized to the host's available parallelism (1 if
    /// it cannot be determined).
    pub fn auto() -> ExecutionBackend {
        ExecutionBackend::Threads(
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        )
    }

    /// The worker count this backend runs `n_channels` channels with.
    pub fn workers_for(&self, n_channels: usize) -> usize {
        match *self {
            ExecutionBackend::Sequential => 1,
            ExecutionBackend::Threads(n) => n.max(1).min(n_channels.max(1)),
        }
    }
}

/// A channel's original recorders, detached while its worker runs with a
/// private buffer.
struct SwappedRecorders {
    channel: usize,
    /// The per-channel buffer both layers (controller + device) record into.
    buffer: Recorder,
    /// The controller's original recorder and channel id, if one was set.
    ctrl: Option<(Recorder, u16)>,
    /// The device's original recorder and channel id, if one was set and it
    /// is a *different* handle than the controller's (the usual shared
    /// handle is merged once, through `ctrl`).
    device: Option<(Recorder, u16)>,
}

/// Swaps every attached recorder on the first `n` channels for private
/// per-channel buffers; returns the undo list.
fn detach_recorders(sys: &mut PimSystem, n: usize) -> Vec<SwappedRecorders> {
    let mut swapped = Vec::new();
    for i in 0..n {
        let ctrl = sys.channel_mut(i);
        let ctrl_rec = ctrl.recorder().cloned().map(|r| (r, ctrl.channel_id()));
        let dev_rec = {
            let dev = ctrl.sink();
            dev.recorder().cloned().map(|r| (r, dev.channel_id()))
        };
        if ctrl_rec.is_none() && dev_rec.is_none() {
            continue;
        }
        let buffer = Recorder::vec();
        // The buffer inherits the parent's ambient trace context so events
        // recorded on worker threads are stamped exactly as a sequential
        // run would stamp them; `merge_from` then replays them verbatim.
        let parent_trace = ctrl_rec
            .as_ref()
            .map(|(r, _)| r)
            .or(dev_rec.as_ref().map(|(r, _)| r))
            .and_then(|r| r.trace());
        buffer.set_trace(parent_trace);
        if let Some((_, id)) = &ctrl_rec {
            ctrl.set_recorder(buffer.clone(), *id);
        }
        if let Some((_, id)) = &dev_rec {
            ctrl.sink_mut().set_recorder(buffer.clone(), *id);
        }
        // One merge per distinct parent handle: when controller and device
        // share a recorder (the `enable_profiling` wiring), merging the
        // buffer into it twice would duplicate the stream.
        let device = match (&ctrl_rec, &dev_rec) {
            (Some((c, _)), Some((d, _))) if c.same_handle(d) => None,
            _ => dev_rec.clone(),
        };
        swapped.push(SwappedRecorders { channel: i, buffer, ctrl: ctrl_rec, device });
    }
    swapped
}

/// Merges the per-channel buffers into their parents in channel-index order
/// and restores the original recorders.
fn merge_and_restore(sys: &mut PimSystem, swapped: Vec<SwappedRecorders>) {
    // `detach_recorders` pushed in ascending channel order; merging in that
    // same order is what makes the merged stream match a sequential run.
    for s in swapped {
        if let Some((r, id)) = s.ctrl {
            r.merge_from(&s.buffer);
            sys.channel_mut(s.channel).set_recorder(r, id);
        }
        if let Some((r, id)) = s.device {
            r.merge_from(&s.buffer);
            sys.channel_mut(s.channel).sink_mut().set_recorder(r, id);
        }
    }
}

/// Runs `per_channel` batch lists across `workers` scoped threads under an
/// optional watchdog cycle limit; the caller (`run_system_bounded`) has
/// already validated the list count. Returns the merged result plus the
/// per-channel cancelled flags in channel-index order.
pub(crate) fn run_system_threads(
    sys: &mut PimSystem,
    per_channel: &[Vec<Batch>],
    mode: ExecutionMode,
    workers: usize,
    limit: Option<Cycle>,
) -> (KernelResult, Vec<bool>) {
    let n = per_channel.len();
    let host: HostConfig = sys.host.clone();
    let swapped = detach_recorders(sys, n);

    let workers = workers.max(1).min(n.max(1));
    let chunk_len = n.div_ceil(workers.max(1)).max(1);
    let mut results: Vec<BoundedResult> = Vec::with_capacity(n);
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    {
        let channels: &mut [MemoryController<PimChannel>] = sys.channels_mut();
        std::thread::scope(|scope| {
            let host = &host;
            let mut handles = Vec::with_capacity(workers);
            for (ctrl_chunk, batch_chunk) in
                channels[..n].chunks_mut(chunk_len).zip(per_channel.chunks(chunk_len))
            {
                handles.push(scope.spawn(move || {
                    ctrl_chunk
                        .iter_mut()
                        .zip(batch_chunk)
                        .map(|(ctrl, batches)| {
                            KernelEngine::run_on_channel_bounded(host, ctrl, batches, mode, limit)
                        })
                        .collect::<Vec<BoundedResult>>()
                }));
            }
            // Join in spawn (= channel) order so `results` concatenates to
            // channel-index order. A worker panic (an illegal command is a
            // kernel bug) is re-raised on the caller thread after all
            // workers have stopped, preserving the panic message.
            for handle in handles {
                match handle.join() {
                    Ok(r) => results.extend(r),
                    Err(e) => panic_payload = Some(e),
                }
            }
        });
    }
    merge_and_restore(sys, swapped);
    if let Some(e) = panic_payload {
        std::panic::resume_unwind(e);
    }

    let cancelled = results.iter().map(|b| b.cancelled).collect();
    let merged = KernelResult::merged(results.into_iter().map(|b| b.result));
    (KernelResult { end_cycle: sys.barrier(), ..merged }, cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_defaults_to_sequential() {
        assert_eq!(ExecutionBackend::default(), ExecutionBackend::Sequential);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(ExecutionBackend::Threads(0).workers_for(64), 1);
        assert_eq!(ExecutionBackend::Threads(4).workers_for(64), 4);
        assert_eq!(ExecutionBackend::Threads(16).workers_for(3), 3);
        assert_eq!(ExecutionBackend::Threads(8).workers_for(0), 1);
        assert_eq!(ExecutionBackend::Sequential.workers_for(64), 1);
    }

    #[test]
    fn auto_backend_has_at_least_one_worker() {
        match ExecutionBackend::auto() {
            ExecutionBackend::Threads(n) => assert!(n >= 1),
            ExecutionBackend::Sequential => panic!("auto() must pick Threads"),
        }
    }
}
