//! PIM execution unit and device configuration (Tables IV and V), plus the
//! design-space-exploration variants of Section VII-D / Fig. 14.

/// The architectural variants evaluated in the paper.
///
/// The base variant is the fabricated chip; the other three are the
/// enhanced microarchitectures the paper simulates with DRAMSim2 because
/// they "could not be implemented due to constraints such as die size, pin
/// compatibility, timing, and use of a JEDEC-compliant DRAM controller".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimVariant {
    /// The fabricated PIM-HBM (Table IV/V).
    Base,
    /// PIM-HBM-2×: every PIM execution unit gets 2× the resources (GRF
    /// depth doubles, so the out-of-order tolerance window and the fence
    /// interval double). Costs +24% die area (Fig. 14 discussion).
    DoubleResources,
    /// PIM-HBM-2BA: a unit can access EVEN_BANK and ODD_BANK in the same
    /// instruction, so two-source streaming ops (ADD/BN) need half the
    /// column commands. Costs +60% power.
    TwoBankAccess,
    /// PIM-HBM-SRW: simultaneous column RD and WR — a WR command's 32-byte
    /// block arrives on the write datapath *while* the column address reads
    /// the bank, so GEMV skips the separate GRF/SRF preload commands.
    SimultaneousReadWrite,
}

impl PimVariant {
    /// All variants in Fig. 14 order.
    pub const ALL: [PimVariant; 4] = [
        PimVariant::Base,
        PimVariant::DoubleResources,
        PimVariant::TwoBankAccess,
        PimVariant::SimultaneousReadWrite,
    ];

    /// Label used in Fig. 14.
    pub fn label(self) -> &'static str {
        match self {
            PimVariant::Base => "PIM-HBM",
            PimVariant::DoubleResources => "PIM-HBM-2x",
            PimVariant::TwoBankAccess => "PIM-HBM-2BA",
            PimVariant::SimultaneousReadWrite => "PIM-HBM-SRW",
        }
    }

    /// Relative die-size increase over the base PIM-HBM die (Section
    /// VII-D: 2× "increases the die size by 24%"; 2BA "does not notably
    /// increase the die size"; SRW adds a write-datapath mux of negligible
    /// area).
    pub fn die_area_overhead(self) -> f64 {
        match self {
            PimVariant::Base => 0.0,
            PimVariant::DoubleResources => 0.24,
            PimVariant::TwoBankAccess => 0.01,
            PimVariant::SimultaneousReadWrite => 0.01,
        }
    }

    /// Relative PIM-mode power increase over base (Section VII-D: 2BA
    /// "consumes 60% more power").
    pub fn power_overhead(self) -> f64 {
        match self {
            PimVariant::Base => 0.0,
            PimVariant::DoubleResources => 0.15,
            PimVariant::TwoBankAccess => 0.60,
            PimVariant::SimultaneousReadWrite => 0.05,
        }
    }
}

impl std::fmt::Display for PimVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a PIM-HBM device (Table IV/V constants).
#[derive(Debug, Clone, PartialEq)]
pub struct PimConfig {
    /// PIM execution units per pseudo channel (paper: 8, one per bank
    /// pair).
    pub units_per_pch: usize,
    /// SIMD lanes per unit (paper: 16).
    pub lanes: usize,
    /// GRF registers per file (paper: 8 per file, 16 total per unit).
    pub grf_entries_per_file: usize,
    /// CRF instruction entries (paper: 32).
    pub crf_entries: usize,
    /// The microarchitectural variant.
    pub variant: PimVariant,
    /// PIM unit clock in MHz (paper: 250–300; bus/4).
    pub unit_mhz: u64,
    /// Equivalent gate count of one unit (Table IV: ~200,000).
    pub gate_count: u64,
    /// Area of one unit in mm² (Table IV: 0.712).
    pub unit_area_mm2: f64,
}

impl PimConfig {
    /// The fabricated chip's configuration (Tables IV and V).
    pub fn paper() -> PimConfig {
        PimConfig {
            units_per_pch: 8,
            lanes: 16,
            grf_entries_per_file: 8,
            crf_entries: 32,
            variant: PimVariant::Base,
            unit_mhz: 300,
            gate_count: 200_000,
            unit_area_mm2: 0.712,
        }
    }

    /// The paper configuration with a different variant.
    pub fn with_variant(variant: PimVariant) -> PimConfig {
        let mut c = PimConfig::paper();
        c.variant = variant;
        if variant == PimVariant::DoubleResources {
            c.grf_entries_per_file *= 2;
        }
        c
    }

    /// Peak throughput of one unit in GFLOPS: `lanes × 2 ops × f`.
    ///
    /// At 300 MHz this is Table IV's 9.6 GFLOPS.
    pub fn unit_gflops(&self) -> f64 {
        self.lanes as f64 * 2.0 * self.unit_mhz as f64 / 1e3
    }

    /// Peak compute throughput of one 16-pCH device in GFLOPS.
    pub fn device_gflops(&self) -> f64 {
        self.unit_gflops() * self.units_per_pch as f64 * 16.0
    }

    /// The out-of-order tolerance window in column commands: AAM can fix up
    /// reordering only within one GRF's worth of commands, so the host must
    /// fence every `fence_window` commands (Sections IV-C, VII-B).
    pub fn fence_window(&self) -> usize {
        self.grf_entries_per_file
    }

    /// How many banks' operands one column command consumes: 1 per unit
    /// normally (8 "operating banks" per pCH, Table V); 2 per unit for the
    /// 2BA variant.
    pub fn operand_banks_per_command(&self) -> usize {
        match self.variant {
            PimVariant::TwoBankAccess => 2 * self.units_per_pch,
            _ => self.units_per_pch,
        }
    }

    /// Whether `instr` is legal on this variant: the base microarchitecture
    /// enforces [`crate::isa::Instruction::validate`]'s single-bank-operand
    /// rule, while PIM-HBM-2BA "can access EVEN_BANK and ODD_BANK at the
    /// same time to get two operands for one PIM instruction" (Section
    /// VII-D).
    ///
    /// # Errors
    ///
    /// Returns the violated rule, as in `Instruction::validate`.
    pub fn instruction_legal(
        &self,
        instr: &crate::isa::Instruction,
    ) -> Result<(), crate::isa::ValidateError> {
        match instr.validate() {
            Err(crate::isa::ValidateError::MultipleBankOperands)
                if self.variant == PimVariant::TwoBankAccess =>
            {
                Ok(())
            }
            r => r,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.units_per_pch == 0 || self.units_per_pch > 8 {
            return Err("units_per_pch must be in 1..=8 (one per bank pair)".into());
        }
        if self.lanes != 16 {
            return Err("the datapath is fixed at 16 lanes (256 bits)".into());
        }
        if self.crf_entries != 32 {
            return Err("the CRF is fixed at 32 entries".into());
        }
        if self.grf_entries_per_file != 8 && self.grf_entries_per_file != 16 {
            return Err("GRF is 8 entries per file (16 for the 2x variant)".into());
        }
        Ok(())
    }
}

impl Default for PimConfig {
    fn default() -> PimConfig {
        PimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_throughput() {
        let c = PimConfig::paper();
        assert_eq!(c.unit_gflops(), 9.6, "Table IV: 9.6 GFLOPs at 300MHz");
        c.validate().unwrap();
    }

    #[test]
    fn device_throughput_scales() {
        let c = PimConfig::paper();
        // 8 units × 16 pCH × 9.6 GFLOPS = 1.2288 TFLOPS per device.
        assert!((c.device_gflops() - 1228.8).abs() < 1e-9);
    }

    #[test]
    fn fence_window_is_grf_depth() {
        assert_eq!(PimConfig::paper().fence_window(), 8);
        assert_eq!(
            PimConfig::with_variant(PimVariant::DoubleResources).fence_window(),
            16,
            "2x variant doubles the tolerance window"
        );
    }

    #[test]
    fn operand_banks() {
        assert_eq!(PimConfig::paper().operand_banks_per_command(), 8);
        assert_eq!(
            PimConfig::with_variant(PimVariant::TwoBankAccess).operand_banks_per_command(),
            16
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = PimConfig::paper();
        c.units_per_pch = 9;
        assert!(c.validate().is_err());
        let mut c = PimConfig::paper();
        c.lanes = 8;
        assert!(c.validate().is_err());
        let mut c = PimConfig::paper();
        c.grf_entries_per_file = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn variant_labels() {
        assert_eq!(PimVariant::Base.label(), "PIM-HBM");
        assert_eq!(PimVariant::ALL.len(), 4);
        assert!(PimVariant::TwoBankAccess.power_overhead() > 0.5);
        assert!(PimVariant::DoubleResources.die_area_overhead() > 0.2);
    }
}
